//! Command-line interface of the `aurix-contention` binary.
//!
//! Hand-rolled argument parsing (no extra dependencies): subcommands
//! mirror the paper's artefacts plus a one-shot bound query.
//!
//! ```text
//! aurix-contention calibrate
//! aurix-contention figure4 [--scenario sc1|sc2|low]
//! aurix-contention bound --scenario sc1 --level high [--model ilp|ftc|fsb]
//! aurix-contention trace [--scenario sc1] [--limit 40]
//! ```
//!
//! Every subcommand accepts a global `--jobs N` flag sizing the
//! experiment engine's worker pool (default: the machine's available
//! parallelism). Results are identical for any `N`.
//!
//! Three further global flags control the fault-tolerant evaluation
//! pipeline: `--strict` rejects counter profiles that violate a
//! platform invariant, `--repair` (the default) clamps them and warns,
//! and `--ilp-budget N` caps the ILP solver at `N` branch-and-bound
//! nodes — when the budget runs out, `bound --model ilp` degrades to
//! the sound fTC bound and tags the output `fallback=ftc`.
//!
//! Finally, `--journal <file>` records every completed simulation to a
//! crash-safe write-ahead journal, `--resume <file>` replays a journal
//! (re-executing only what is missing), and `--watchdog-ms N` puts a
//! wall-clock watchdog on every simulation job. Output is byte-identical
//! with and without a journal.
//!
//! `--telemetry FILE[:FORMAT]` attaches the deterministic telemetry
//! recorder: structured spans and metrics flushed on exit as JSONL
//! (default), a Chrome `trace_event` document (`:chrome`), or a human
//! summary (`:summary`; `-` writes to stderr). The deterministic subset
//! of the stream is byte-identical across `--jobs` and `--engine`
//! choices, and the recorder doubles as the consolidated warning
//! channel: repaired profiles, truncated traces and torn journals are
//! deduplicated and land in the stream instead of scrolling away.

use contention::{
    ContentionModel, EvalOptions, Evaluator, FsbModel, FtcModel, ObservedContention, Platform,
    TightnessReport, ValidationPolicy, Validator, WcetEstimate,
};
use mbta::{BatchRunner, CampaignConfig, CampaignRunner, ExecEngine, SinkSpec, Telemetry};
use std::path::PathBuf;
use std::sync::Arc;
use tc27x_sim::{AccessClass, CoreId, DeploymentScenario, Engine, SimConfig, SriTarget, System};
use workloads::LoadLevel;

/// A parsed invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Run the Table 2 calibration campaign.
    Calibrate,
    /// Print Figure 4 panels for one or both scenarios.
    Figure4 {
        /// Restrict to one scenario (all when `None`).
        scenario: Option<DeploymentScenario>,
    },
    /// Compute one WCET bound.
    Bound {
        /// Deployment scenario.
        scenario: DeploymentScenario,
        /// Contender load level.
        level: LoadLevel,
        /// Model selector.
        model: ModelChoice,
    },
    /// Dump an execution trace of the app in isolation.
    Trace {
        /// Deployment scenario.
        scenario: DeploymentScenario,
        /// Maximum number of events printed.
        limit: usize,
    },
    /// Emit an isolation-profile record (CSV) for exchange.
    Profile {
        /// Deployment scenario.
        scenario: DeploymentScenario,
        /// Contender level; the application when `None`.
        level: Option<LoadLevel>,
    },
    /// Attribute co-run wait cycles to aggressor cores and audit the
    /// model bounds' tightness against the observation.
    ContentionAttr {
        /// Restrict to one scenario (sc1 and sc2 when `None`).
        scenario: Option<DeploymentScenario>,
        /// Contender load level (default: high).
        level: LoadLevel,
    },
    /// Print usage.
    Help,
}

impl Command {
    /// Stable label naming the subcommand in telemetry meta records.
    pub fn label(&self) -> &'static str {
        match self {
            Command::Calibrate => "calibrate",
            Command::Figure4 { .. } => "figure4",
            Command::Bound { .. } => "bound",
            Command::Trace { .. } => "trace",
            Command::Profile { .. } => "profile",
            Command::ContentionAttr { .. } => "contention-attr",
            Command::Help => "help",
        }
    }
}

/// Which model `bound` evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelChoice {
    /// The ILP-PTAC model (scenario-tailored).
    Ilp,
    /// The fully time-composable closed form.
    Ftc,
    /// The FSB (single-bus) reduction.
    Fsb,
}

/// Errors from argument parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn parse_scenario(s: &str) -> Result<DeploymentScenario, ParseError> {
    match s {
        "sc1" | "scenario1" => Ok(DeploymentScenario::Scenario1),
        "sc2" | "scenario2" => Ok(DeploymentScenario::Scenario2),
        "low" | "low-traffic" => Ok(DeploymentScenario::LowTraffic),
        other => Err(ParseError(format!(
            "unknown scenario `{other}` (expected sc1, sc2 or low)"
        ))),
    }
}

fn parse_level(s: &str) -> Result<LoadLevel, ParseError> {
    match s {
        "high" | "h" => Ok(LoadLevel::High),
        "medium" | "m" => Ok(LoadLevel::Medium),
        "low" | "l" => Ok(LoadLevel::Low),
        other => Err(ParseError(format!(
            "unknown level `{other}` (expected high, medium or low)"
        ))),
    }
}

fn parse_model(s: &str) -> Result<ModelChoice, ParseError> {
    match s {
        "ilp" | "ilp-ptac" => Ok(ModelChoice::Ilp),
        "ftc" => Ok(ModelChoice::Ftc),
        "fsb" => Ok(ModelChoice::Fsb),
        other => Err(ParseError(format!(
            "unknown model `{other}` (expected ilp, ftc or fsb)"
        ))),
    }
}

/// Reads `--key value` pairs from `args`.
fn take_option<'a>(args: &'a [String], key: &str) -> Result<Option<&'a str>, ParseError> {
    if let Some(pos) = args.iter().position(|a| a == key) {
        args.get(pos + 1)
            .map(|v| Some(v.as_str()))
            .ok_or_else(|| ParseError(format!("{key} requires a value")))
    } else {
        Ok(None)
    }
}

/// Settings of the fault-tolerant evaluation pipeline, shared by every
/// subcommand (from the global `--strict`/`--repair`/`--ilp-budget`
/// flags).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PipelineSettings {
    /// How profile-invariant violations are treated (default: repair).
    pub policy: ValidationPolicy,
    /// Branch-and-bound node budget override for the ILP solver; the
    /// model default when `None`.
    pub ilp_budget: Option<u64>,
    /// Simulator timing kernel (`--engine tick|event`; default event).
    /// The kernels are bit-identical — this flag only trades speed, and
    /// `tick` exists to re-verify that claim on any command.
    pub engine: Engine,
}

/// Campaign options from the global `--journal`/`--resume`/
/// `--watchdog-ms` flags.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CampaignOptions {
    /// Record a fresh crash-safe journal at this path.
    pub journal: Option<PathBuf>,
    /// Resume (replay + complete) the journal at this path.
    pub resume: Option<PathBuf>,
    /// Per-job wall-clock watchdog in milliseconds.
    pub watchdog_millis: Option<u64>,
}

impl CampaignOptions {
    /// Whether any campaign machinery was requested at all.
    pub fn is_active(&self) -> bool {
        self.journal.is_some() || self.resume.is_some()
    }
}

/// A fully parsed invocation: the subcommand plus the global options
/// every subcommand shares.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Invocation {
    /// The subcommand to run.
    pub command: Command,
    /// Worker count for the experiment engine (`--jobs N`).
    pub jobs: usize,
    /// Evaluation-pipeline settings.
    pub settings: PipelineSettings,
    /// Crash-safe campaign options.
    pub campaign: CampaignOptions,
    /// Telemetry sink (`--telemetry FILE[:FORMAT]`); disabled when
    /// `None`.
    pub telemetry: Option<SinkSpec>,
    /// Attribution sink (`--attribution FILE`): switches the per-grant
    /// contention attribution recorder on for every simulation and
    /// flushes the folded matrices as JSONL `matrix` records on exit.
    /// Attribution is observation-only, so every other output is
    /// unchanged.
    pub attribution: Option<PathBuf>,
    /// Simulated machine (`--platform NAME`; default: the paper's
    /// TC27x). Unlike the other global flags this one *changes
    /// results*: core placement, slave topology and arbitration all
    /// follow the description, and the models derive their tables
    /// from it.
    pub platform: platform::PlatformDesc,
}

/// Parses an argument vector (without the program name), extracting the
/// global `--jobs N`, `--strict`, `--repair` and `--ilp-budget N` flags
/// before subcommand dispatch.
///
/// # Errors
///
/// [`ParseError`] on unknown subcommands, options or values.
pub fn parse_invocation(args: &[String]) -> Result<Invocation, ParseError> {
    let mut rest = args.to_vec();
    let jobs = match rest.iter().position(|a| a == "--jobs") {
        Some(pos) => {
            let v = rest
                .get(pos + 1)
                .ok_or_else(|| ParseError("--jobs requires a value".into()))?;
            let n = v
                .parse::<usize>()
                .map_err(|_| ParseError(format!("invalid --jobs `{v}`")))?;
            if n == 0 {
                return Err(ParseError("--jobs must be at least 1".into()));
            }
            rest.drain(pos..pos + 2);
            n
        }
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    let strict = take_flag(&mut rest, "--strict");
    let repair = take_flag(&mut rest, "--repair");
    if strict && repair {
        return Err(ParseError(
            "--strict and --repair are mutually exclusive".into(),
        ));
    }
    let policy = if strict {
        ValidationPolicy::Strict
    } else {
        ValidationPolicy::Repair
    };
    let ilp_budget = match rest.iter().position(|a| a == "--ilp-budget") {
        Some(pos) => {
            let v = rest
                .get(pos + 1)
                .ok_or_else(|| ParseError("--ilp-budget requires a value".into()))?;
            let n = v
                .parse::<u64>()
                .map_err(|_| ParseError(format!("invalid --ilp-budget `{v}`")))?;
            if n == 0 {
                return Err(ParseError("--ilp-budget must be at least 1".into()));
            }
            rest.drain(pos..pos + 2);
            Some(n)
        }
        None => None,
    };
    let engine = take_value(&mut rest, "--engine")?
        .map(|v| v.parse::<Engine>().map_err(|e| ParseError(e.to_string())))
        .transpose()?
        .unwrap_or_default();
    let journal = take_value(&mut rest, "--journal")?.map(PathBuf::from);
    let resume = take_value(&mut rest, "--resume")?.map(PathBuf::from);
    if journal.is_some() && resume.is_some() {
        return Err(ParseError(
            "--journal and --resume are mutually exclusive (resume appends in place)".into(),
        ));
    }
    let watchdog_millis = take_value(&mut rest, "--watchdog-ms")?
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| ParseError(format!("invalid --watchdog-ms `{v}`")))
        })
        .transpose()?;
    let telemetry = take_value(&mut rest, "--telemetry")?
        .map(|v| {
            v.parse::<SinkSpec>()
                .map_err(|e| ParseError(format!("invalid --telemetry `{v}`: {e}")))
        })
        .transpose()?;
    let attribution = take_value(&mut rest, "--attribution")?.map(PathBuf::from);
    let platform = match take_value(&mut rest, "--platform")? {
        Some(v) => platform::PlatformDesc::builtin(&v).ok_or_else(|| {
            ParseError(format!(
                "unknown platform `{v}` (known platforms: {})",
                platform::PlatformDesc::names().join(", ")
            ))
        })?,
        None => platform::default_platform().clone(),
    };
    Ok(Invocation {
        command: parse(&rest)?,
        jobs,
        settings: PipelineSettings {
            policy,
            ilp_budget,
            engine,
        },
        campaign: CampaignOptions {
            journal,
            resume,
            watchdog_millis,
        },
        telemetry,
        attribution,
        platform,
    })
}

/// Removes a boolean flag from `args`, reporting whether it was present.
fn take_flag(args: &mut Vec<String>, key: &str) -> bool {
    match args.iter().position(|a| a == key) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

/// Removes a `--key value` pair from `args`, returning the value.
fn take_value(args: &mut Vec<String>, key: &str) -> Result<Option<String>, ParseError> {
    match args.iter().position(|a| a == key) {
        Some(pos) => {
            if pos + 1 >= args.len() {
                return Err(ParseError(format!("{key} requires a value")));
            }
            let value = args.remove(pos + 1);
            args.remove(pos);
            Ok(Some(value))
        }
        None => Ok(None),
    }
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// [`ParseError`] on unknown subcommands, options or values.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "calibrate" => Ok(Command::Calibrate),
        "figure4" => {
            let scenario = take_option(&args[1..], "--scenario")?
                .map(parse_scenario)
                .transpose()?;
            Ok(Command::Figure4 { scenario })
        }
        "bound" => {
            let scenario = parse_scenario(
                take_option(&args[1..], "--scenario")?
                    .ok_or_else(|| ParseError("bound requires --scenario".into()))?,
            )?;
            let level = parse_level(
                take_option(&args[1..], "--level")?
                    .ok_or_else(|| ParseError("bound requires --level".into()))?,
            )?;
            let model = take_option(&args[1..], "--model")?
                .map(parse_model)
                .transpose()?
                .unwrap_or(ModelChoice::Ilp);
            Ok(Command::Bound {
                scenario,
                level,
                model,
            })
        }
        "trace" => {
            let scenario = take_option(&args[1..], "--scenario")?
                .map(parse_scenario)
                .transpose()?
                .unwrap_or(DeploymentScenario::Scenario1);
            let limit = take_option(&args[1..], "--limit")?
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| ParseError(format!("invalid --limit `{v}`")))
                })
                .transpose()?
                .unwrap_or(40);
            Ok(Command::Trace { scenario, limit })
        }
        "profile" => {
            let scenario = take_option(&args[1..], "--scenario")?
                .map(parse_scenario)
                .transpose()?
                .unwrap_or(DeploymentScenario::Scenario1);
            let level = take_option(&args[1..], "--level")?
                .map(parse_level)
                .transpose()?;
            Ok(Command::Profile { scenario, level })
        }
        "contention-attr" => {
            let scenario = take_option(&args[1..], "--scenario")?
                .map(parse_scenario)
                .transpose()?;
            let level = take_option(&args[1..], "--level")?
                .map(parse_level)
                .transpose()?
                .unwrap_or(LoadLevel::High);
            Ok(Command::ContentionAttr { scenario, level })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(ParseError(format!("unknown subcommand `{other}`"))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
aurix-contention — multicore contention WCET bounds for the AURIX TC27x

USAGE:
    aurix-contention <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
    calibrate                       run the Table 2 calibration campaign
    figure4  [--scenario S]         model predictions vs isolation (S: sc1|sc2|low)
    bound    --scenario S --level L [--model M]
                                    one WCET bound (L: high|medium|low; M: ilp|ftc|fsb)
    trace    [--scenario S] [--limit N]
                                    dump an isolation execution trace
    profile  [--scenario S] [--level L]
                                    emit an isolation-profile CSV record
    contention-attr [--scenario S] [--level L]
                                    attribute co-run wait cycles to aggressor
                                    cores and audit model-bound tightness
                                    (observed vs budget, per access class and
                                    slave; default: sc1 and sc2 at high load)
    help                            this text

GLOBAL OPTIONS:
    --jobs N                        worker threads for the experiment engine
                                    (default: available parallelism; results
                                    are identical for any N)
    --strict                        reject counter profiles that violate a
                                    platform invariant
    --repair                        clamp inconsistent profiles and warn
                                    (default)
    --ilp-budget N                  branch-and-bound node budget for the ILP
                                    solver; on exhaustion `bound --model ilp`
                                    degrades to the sound fTC bound and tags
                                    the output `fallback=ftc`
    --engine tick|event             simulator timing kernel (default: event).
                                    `event` skips provably quiescent cycles;
                                    `tick` is the reference per-cycle stepper.
                                    The two are bit-identical, so every other
                                    output is unaffected by this flag
    --journal FILE                  record every completed simulation to a
                                    crash-safe write-ahead journal
    --resume FILE                   replay a journal, re-executing only the
                                    missing jobs; output is byte-identical to
                                    an uninterrupted run
    --watchdog-ms N                 wall-clock watchdog per simulation job;
                                    livelocked jobs are journalled as timed
                                    out instead of hanging the campaign
    --telemetry FILE[:FORMAT]       record structured spans, metrics and
                                    deduplicated warnings, flushed on exit as
                                    jsonl (default), chrome (trace_event JSON
                                    for chrome://tracing) or summary; FILE `-`
                                    writes to stderr. The deterministic subset
                                    is byte-identical for any --jobs/--engine
    --attribution FILE              record per-grant contention attribution on
                                    every simulation and flush the folded
                                    (slave, victim, aggressor) wait matrices to
                                    FILE as JSONL matrix records on exit.
                                    Observation-only: every other output is
                                    unchanged, and the matrices are identical
                                    for any --jobs/--engine
    --platform NAME                 simulated machine (default: tc27x, the
                                    paper's TC277). Unlike every flag above
                                    this one changes results: core placement,
                                    slave topology and arbitration follow the
                                    named description and the models derive
                                    their tables from it. Built-ins: tc27x,
                                    tc27x-tdma, ahb2
";

/// Executes a parsed invocation: builds the experiment engine from the
/// global options, wraps it in a crash-safe [`CampaignRunner`] when
/// `--journal`/`--resume` ask for one, and runs the subcommand on it.
/// An incomplete campaign (jobs left unrecovered after retries and
/// watchdog) prints its partial-result manifest to stderr and fails.
///
/// # Errors
///
/// Propagates simulation/model/journal errors as boxed errors.
pub fn run_invocation(inv: Invocation) -> Result<(), Box<dyn std::error::Error>> {
    // The recorder is always attached: it is the consolidated warning
    // channel, so repaired-profile and trace-truncated diagnostics are
    // deduplicated (first occurrence printed, repeats counted) even in
    // plain one-shot runs. The stream is only flushed to disk when
    // `--telemetry` names a sink.
    let telemetry: Arc<Telemetry> = Arc::new(Telemetry::new(inv.command.label()));
    let engine = ExecEngine::new(inv.jobs)
        .with_sim_engine(inv.settings.engine)
        .with_platform(inv.platform.clone())
        .with_attribution(
            inv.attribution.is_some() || matches!(inv.command, Command::ContentionAttr { .. }),
        )
        .with_telemetry(Arc::clone(&telemetry));
    let config = CampaignConfig {
        watchdog_millis: inv.campaign.watchdog_millis,
        ..CampaignConfig::default()
    };
    let campaign = if let Some(path) = &inv.campaign.journal {
        let runner = CampaignRunner::journaled(&engine, config, path)?;
        eprintln!("journal: recording to {}", path.display());
        Some(runner)
    } else if let Some(path) = &inv.campaign.resume {
        let (runner, report) = CampaignRunner::resumed(&engine, config, path)?;
        // Through the warning channel the torn-tail diagnostic is
        // recorded in the stream and deduplicated; the recovery count
        // line itself is informational, not a warning.
        eprintln!(
            "resume: {} record(s) recovered from {}",
            report.records,
            path.display()
        );
        if report.truncated_bytes > 0 {
            telemetry.warn(
                "journal.torn",
                format!(
                    "{} byte(s) of a torn trailing record truncated from {}",
                    report.truncated_bytes,
                    path.display()
                ),
            );
        }
        Some(runner)
    } else {
        None
    };
    let runner: &dyn BatchRunner = match campaign.as_ref() {
        Some(c) => c,
        None => &engine,
    };
    let result = run_with_telemetry(runner, inv.command, inv.settings, Some(&telemetry));
    if let Some(campaign) = campaign.as_ref() {
        telemetry.record_campaign(&campaign.stats());
    }
    if let Some(spec) = inv.telemetry.as_ref() {
        telemetry.record_engine(&engine.report());
        let flushed = telemetry.flush(spec);
        if result.is_ok() {
            flushed.map_err(|e| format!("cannot write telemetry to {}: {e}", spec.path))?;
        }
    }
    if let Some(path) = inv.attribution.as_ref() {
        let rendered = mbta::telemetry::render_attribution_jsonl(&telemetry.attribution());
        let written = std::fs::write(path, rendered);
        if result.is_ok() {
            written.map_err(|e| format!("cannot write attribution to {}: {e}", path.display()))?;
        }
    }
    // Dedup summary: the first occurrence of each warning was printed
    // as it happened; repeats were only counted. Surface the totals so
    // a 10k-job sweep reports each distinct warning once, with a count.
    for w in telemetry.warnings() {
        if w.count > 1 {
            eprintln!("warning: {} ({} occurrences in total)", w.message, w.count);
        }
    }
    if let Some(campaign) = campaign.as_ref() {
        let manifest = campaign.manifest();
        if !manifest.is_complete() {
            eprint!("{}", manifest.render());
            if result.is_ok() {
                return Err(Box::new(ParseError(format!(
                    "campaign finished degraded: {} job(s) unrecovered (see manifest above)",
                    manifest.unrecovered.len()
                ))));
            }
        }
    }
    result
}

/// Executes a parsed command on a default (available-parallelism)
/// engine. Kept as the simple entry point; [`run_invocation`] honours
/// `--jobs` and the campaign flags.
///
/// # Errors
///
/// Propagates simulation/model errors as boxed errors.
pub fn run(cmd: Command) -> Result<(), Box<dyn std::error::Error>> {
    run_with(&ExecEngine::with_available_parallelism(), cmd)
}

/// [`run_with_settings`] under default pipeline settings (repair
/// policy, model-default ILP budget).
///
/// # Errors
///
/// Propagates simulation/model errors as boxed errors.
pub fn run_with(runner: &dyn BatchRunner, cmd: Command) -> Result<(), Box<dyn std::error::Error>> {
    run_with_settings(runner, cmd, PipelineSettings::default())
}

/// Executes a parsed command, writing human-readable output to stdout.
/// All simulations go through `runner` — a bare [`ExecEngine`] or a
/// crash-safe [`CampaignRunner`] — so repeated profiles are served
/// from the memo cache (or journal replay) and batches spread across
/// the workers. Profile validation and the ILP solve budget follow
/// `settings`; repaired profiles are reported on stderr.
///
/// # Errors
///
/// Propagates simulation/model errors as boxed errors.
pub fn run_with_settings(
    engine: &dyn BatchRunner,
    cmd: Command,
    settings: PipelineSettings,
) -> Result<(), Box<dyn std::error::Error>> {
    run_with_telemetry(engine, cmd, settings, None)
}

/// Reports a repaired-profile diagnostic: through the deduplicated
/// warning channel when a recorder is attached, as a plain stderr line
/// otherwise (both render the same `warning:` line on first sight).
fn warn_repaired(telemetry: Option<&Telemetry>, detail: &str) {
    match telemetry {
        Some(t) => t.warn("profile.repaired", format!("repaired profile: {detail}")),
        None => eprintln!("warning: repaired profile: {detail}"),
    }
}

/// [`run_with_settings`] with an optional telemetry recorder collecting
/// ILP solve records and the formerly ad-hoc stderr diagnostics
/// (repaired profiles, truncated traces).
///
/// # Errors
///
/// Propagates simulation/model errors as boxed errors.
pub fn run_with_telemetry(
    engine: &dyn BatchRunner,
    cmd: Command,
    settings: PipelineSettings,
    telemetry: Option<&Telemetry>,
) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Calibrate => {
            let cal = mbta::calibrate_with(engine)?;
            let p = cal.into_platform();
            println!("calibrated Table 2 constants:");
            for (t, o, v) in cal.latency.iter() {
                if p.paths().is_feasible(t, o) {
                    println!(
                        "  l^{{{t},{o}}} = {v}  cs^{{{t},{o}}} = {}",
                        cal.stall.get(t, o)
                    );
                }
            }
            println!("  lmu dirty-miss latency = {}", cal.lmu_dirty_latency);
            Ok(())
        }
        Command::Figure4 { scenario } => {
            let platform = Platform::from_desc(engine.platform());
            let scenarios = match scenario {
                Some(s) => vec![s],
                None => vec![DeploymentScenario::Scenario1, DeploymentScenario::Scenario2],
            };
            for s in scenarios {
                let panel = mbta::figure4_panel_with(engine, s, &platform, 42)?;
                println!("{s}: isolation {} cycles", panel.app.counters().ccnt);
                for cell in panel.cells.iter().rev() {
                    println!(
                        "  {:<7} fTC {:.2}x  ILP {:.2}x  observed {:.2}x",
                        cell.level.to_string(),
                        cell.ftc.ratio(),
                        cell.ilp.ratio(),
                        cell.observed_ratio()
                    );
                }
                println!("  sound: {}", panel.all_bounds_sound());
            }
            Ok(())
        }
        Command::Bound {
            scenario,
            level,
            model,
        } => {
            let desc = engine.platform();
            let platform = Platform::from_desc(desc);
            let (app_core, load_core) = (CoreId(desc.app_core as u8), CoreId(desc.load_core as u8));
            let app = engine.isolation(
                &workloads::control_loop_on(desc, scenario, app_core, 42),
                app_core,
            )?;
            let load = engine.isolation(
                &workloads::contender_on(desc, scenario, level, load_core, 7),
                load_core,
            )?;
            match model {
                ModelChoice::Ilp => {
                    // The fault-tolerant pipeline: validate under the
                    // configured policy, solve the ILP exactly within
                    // its node budget, degrade to fTC when it runs out.
                    let mut options = EvalOptions::for_scenario(mbta::constraints_for(scenario));
                    options.policy = settings.policy;
                    if let Some(budget) = settings.ilp_budget {
                        options.ilp.node_budget = budget;
                    }
                    let evaluated = Evaluator::new(&platform, options).bound(&app, &load)?;
                    for report in &evaluated.reports {
                        if !report.is_clean() {
                            warn_repaired(telemetry, &report.detail());
                        }
                    }
                    if let Some(t) = telemetry {
                        t.record_solve(
                            format!("solve:{scenario}-{level}"),
                            evaluated.nodes_explored,
                            evaluated.source.is_fallback(),
                        );
                    }
                    let est = WcetEstimate {
                        isolation_cycles: app.counters().ccnt,
                        contention_cycles: evaluated.bound.delta_cycles,
                    };
                    println!("{est} [{}]", evaluated.source.tag());
                }
                ModelChoice::Ftc | ModelChoice::Fsb => {
                    let validator = Validator::new(&platform, settings.policy);
                    let (app, report_a) = validator.apply(&app)?;
                    let (load, report_b) = validator.apply(&load)?;
                    for report in [&report_a, &report_b] {
                        if !report.is_clean() {
                            warn_repaired(telemetry, &report.detail());
                        }
                    }
                    let est: WcetEstimate = match model {
                        ModelChoice::Ftc => {
                            FtcModel::new(&platform).wcet_estimate(&app, &[&load])?
                        }
                        _ => FsbModel::new(&platform).wcet_estimate(&app, &[&load])?,
                    };
                    println!("{est}");
                }
            }
            Ok(())
        }
        Command::Profile { scenario, level } => {
            let desc = engine.platform();
            let (app_core, load_core) = (CoreId(desc.app_core as u8), CoreId(desc.load_core as u8));
            let profile = match level {
                None => engine.isolation(
                    &workloads::control_loop_on(desc, scenario, app_core, 42),
                    app_core,
                )?,
                Some(l) => engine.isolation(
                    &workloads::contender_on(desc, scenario, l, load_core, 7),
                    load_core,
                )?,
            };
            println!("{}", profile.to_record());
            Ok(())
        }
        Command::ContentionAttr { scenario, level } => {
            let desc = engine.platform();
            let (app_core, load_core) = (CoreId(desc.app_core as u8), CoreId(desc.load_core as u8));
            let scenarios = match scenario {
                Some(s) => vec![s],
                None => vec![DeploymentScenario::Scenario1, DeploymentScenario::Scenario2],
            };
            println!(
                "contention attribution — platform {}, app c{} vs {level} contender c{}",
                desc.name, app_core.0, load_core.0
            );
            for s in scenarios {
                let app_spec = workloads::control_loop_on(desc, s, app_core, 42);
                let load_spec = workloads::contender_on(desc, s, level, load_core, 7);
                // The isolation profile feeds the Eq. 2–4 access bounds
                // (memoized / journaled through the engine as usual).
                let profile = engine.isolation(&app_spec, app_core)?;
                // The attributed co-run itself runs inline: the ledger
                // must stay per-scenario, not folded across the batch.
                let cfg = SimConfig::from_platform(desc)
                    .with_engine(settings.engine)
                    .with_attribution(true);
                let mut sys = System::with_config(cfg);
                sys.load(app_core, &app_spec)?;
                sys.load(load_core, &load_spec)?;
                let out = sys.run_until(app_core)?;
                let corun_cycles = out.counters(app_core).ccnt;
                let stats = sys.stats();
                let m = &stats.attribution;
                if let Some(t) = telemetry {
                    let job = mbta::SimJob::Corun {
                        app: app_spec.clone(),
                        app_core,
                        load: load_spec.clone(),
                        load_core,
                    };
                    t.record_job(
                        mbta::job_key_on(&job, desc),
                        &job,
                        corun_cycles,
                        Some(&stats),
                    );
                }
                println!();
                println!(
                    "{s}: isolation {} cycles, co-run {} cycles",
                    profile.counters().ccnt,
                    corun_cycles
                );
                println!("  wait matrix [cycles a victim lost at each slave, by cause]");
                print!("  {:<10}", "slave/vic");
                for a in 0..CoreId::COUNT {
                    print!(" {:>8}", format!("c{a}"));
                }
                println!(" {:>8}", "sched");
                for t in SriTarget::all() {
                    if !desc.slave(t.index()).present {
                        continue;
                    }
                    for v in CoreId::all() {
                        let row = m.row(t, v);
                        print!("  {:<10}", format!("{t}/c{}", v.0));
                        for cell in row {
                            print!(" {cell:>8}");
                        }
                        println!();
                    }
                }
                let mut observed = ObservedContention {
                    contenders: 1,
                    ..Default::default()
                };
                for (i, class) in [AccessClass::Code, AccessClass::Data]
                    .into_iter()
                    .enumerate()
                {
                    observed.interference[i] = m.interference_total(app_core, class);
                    observed.grants[i] = m.class_grants_total(app_core, class);
                }
                for t in SriTarget::all() {
                    observed.max_wait[t.index()] = m.max_wait(t, app_core);
                }
                let report =
                    TightnessReport::audit(desc, &profile, &observed, format!("{s}/{level}"));
                println!("{report}");
            }
            Ok(())
        }
        Command::Trace { scenario, limit } => {
            let desc = engine.platform();
            let app_core = CoreId(desc.app_core as u8);
            let cfg = SimConfig::from_platform(desc)
                .with_trace_capacity(limit.max(1))
                .with_engine(settings.engine);
            let mut sys = System::with_config(cfg);
            sys.load(
                app_core,
                &workloads::control_loop_on(desc, scenario, app_core, 42),
            )?;
            let out = sys.run()?;
            if out.trace_dropped(app_core) > 0 {
                let message = format!(
                    "trace truncated — {} event(s) were dropped after the \
                     {}-event buffer filled; raise --limit to capture them",
                    out.trace_dropped(app_core),
                    limit.max(1)
                );
                match telemetry {
                    Some(t) => t.warn("trace.dropped", message),
                    None => eprintln!("warning: {message}"),
                }
            }
            let trace = sys.trace(app_core);
            for r in trace.records().iter().take(limit) {
                println!("{r}");
            }
            if trace.dropped() > 0 {
                println!("... {} further events not recorded", trace.dropped());
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_calibrate_and_help() {
        assert_eq!(parse(&argv("calibrate")).unwrap(), Command::Calibrate);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn parses_figure4_with_and_without_scenario() {
        assert_eq!(
            parse(&argv("figure4")).unwrap(),
            Command::Figure4 { scenario: None }
        );
        assert_eq!(
            parse(&argv("figure4 --scenario sc2")).unwrap(),
            Command::Figure4 {
                scenario: Some(DeploymentScenario::Scenario2)
            }
        );
    }

    #[test]
    fn parses_bound_with_defaults() {
        let cmd = parse(&argv("bound --scenario sc1 --level high")).unwrap();
        assert_eq!(
            cmd,
            Command::Bound {
                scenario: DeploymentScenario::Scenario1,
                level: LoadLevel::High,
                model: ModelChoice::Ilp,
            }
        );
        let cmd = parse(&argv("bound --scenario low --level m --model fsb")).unwrap();
        assert_eq!(
            cmd,
            Command::Bound {
                scenario: DeploymentScenario::LowTraffic,
                level: LoadLevel::Medium,
                model: ModelChoice::Fsb,
            }
        );
    }

    #[test]
    fn parses_trace_defaults() {
        assert_eq!(
            parse(&argv("trace")).unwrap(),
            Command::Trace {
                scenario: DeploymentScenario::Scenario1,
                limit: 40
            }
        );
        assert_eq!(
            parse(&argv("trace --scenario sc2 --limit 7")).unwrap(),
            Command::Trace {
                scenario: DeploymentScenario::Scenario2,
                limit: 7
            }
        );
    }

    #[test]
    fn parses_profile() {
        assert_eq!(
            parse(&argv("profile")).unwrap(),
            Command::Profile {
                scenario: DeploymentScenario::Scenario1,
                level: None
            }
        );
        assert_eq!(
            parse(&argv("profile --scenario sc2 --level high")).unwrap(),
            Command::Profile {
                scenario: DeploymentScenario::Scenario2,
                level: Some(LoadLevel::High)
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("bound --scenario sc1")).is_err());
        assert!(parse(&argv("bound --scenario nope --level high")).is_err());
        assert!(parse(&argv("bound --scenario sc1 --level nope")).is_err());
        assert!(parse(&argv("bound --scenario sc1 --level h --model nope")).is_err());
        assert!(parse(&argv("trace --limit abc")).is_err());
        assert!(parse(&argv("figure4 --scenario")).is_err());
    }

    #[test]
    fn parses_global_jobs_flag() {
        let inv = parse_invocation(&argv("calibrate --jobs 4")).unwrap();
        assert_eq!(inv.command, Command::Calibrate);
        assert_eq!(inv.jobs, 4);
        // Position-independent: before the subcommand or between options.
        let inv = parse_invocation(&argv("--jobs 2 figure4 --scenario sc2")).unwrap();
        assert_eq!(
            inv.command,
            Command::Figure4 {
                scenario: Some(DeploymentScenario::Scenario2)
            }
        );
        assert_eq!(inv.jobs, 2);
        let inv = parse_invocation(&argv("bound --scenario sc1 --jobs 8 --level high")).unwrap();
        assert_eq!(inv.jobs, 8);
        // Default: available parallelism, at least one worker.
        let inv = parse_invocation(&argv("calibrate")).unwrap();
        assert!(inv.jobs >= 1);
    }

    #[test]
    fn rejects_bad_jobs_values() {
        assert!(parse_invocation(&argv("calibrate --jobs")).is_err());
        assert!(parse_invocation(&argv("calibrate --jobs 0")).is_err());
        assert!(parse_invocation(&argv("calibrate --jobs many")).is_err());
    }

    #[test]
    fn parses_pipeline_flags() {
        let inv = parse_invocation(&argv("bound --scenario sc1 --level high")).unwrap();
        assert_eq!(inv.settings, PipelineSettings::default());
        assert_eq!(inv.settings.policy, ValidationPolicy::Repair);
        assert_eq!(inv.settings.ilp_budget, None);

        let inv = parse_invocation(&argv("--strict bound --scenario sc1 --level high")).unwrap();
        assert_eq!(inv.settings.policy, ValidationPolicy::Strict);

        let inv = parse_invocation(&argv("bound --repair --scenario sc1 --level high")).unwrap();
        assert_eq!(inv.settings.policy, ValidationPolicy::Repair);

        let inv = parse_invocation(&argv(
            "bound --scenario sc1 --ilp-budget 1 --level high --jobs 2",
        ))
        .unwrap();
        assert_eq!(inv.settings.ilp_budget, Some(1));
        assert_eq!(inv.jobs, 2);
        assert_eq!(
            inv.command,
            Command::Bound {
                scenario: DeploymentScenario::Scenario1,
                level: LoadLevel::High,
                model: ModelChoice::Ilp,
            }
        );
    }

    #[test]
    fn rejects_bad_pipeline_flags() {
        assert!(parse_invocation(&argv("calibrate --strict --repair")).is_err());
        assert!(parse_invocation(&argv("calibrate --ilp-budget")).is_err());
        assert!(parse_invocation(&argv("calibrate --ilp-budget 0")).is_err());
        assert!(parse_invocation(&argv("calibrate --ilp-budget lots")).is_err());
    }

    #[test]
    fn parses_engine_flag() {
        let inv = parse_invocation(&argv("calibrate")).unwrap();
        assert_eq!(inv.settings.engine, Engine::Event, "event is the default");

        let inv = parse_invocation(&argv("--engine tick calibrate")).unwrap();
        assert_eq!(inv.settings.engine, Engine::Tick);
        let inv = parse_invocation(&argv("calibrate --engine reference")).unwrap();
        assert_eq!(inv.settings.engine, Engine::Tick);
        let inv = parse_invocation(&argv("trace --engine event --limit 3")).unwrap();
        assert_eq!(inv.settings.engine, Engine::Event);
        assert_eq!(
            inv.command,
            Command::Trace {
                scenario: DeploymentScenario::Scenario1,
                limit: 3
            }
        );
    }

    #[test]
    fn rejects_bad_engine_values() {
        assert!(parse_invocation(&argv("calibrate --engine")).is_err());
        let err = parse_invocation(&argv("calibrate --engine warp")).unwrap_err();
        assert!(err.to_string().contains("warp"));
    }

    #[test]
    fn parses_campaign_flags() {
        let inv = parse_invocation(&argv("calibrate")).unwrap();
        assert_eq!(inv.campaign, CampaignOptions::default());
        assert!(!inv.campaign.is_active());

        let inv = parse_invocation(&argv("--journal cal.journal calibrate --jobs 2")).unwrap();
        assert_eq!(inv.campaign.journal, Some(PathBuf::from("cal.journal")));
        assert_eq!(inv.campaign.resume, None);
        assert!(inv.campaign.is_active());
        assert_eq!(inv.command, Command::Calibrate);
        assert_eq!(inv.jobs, 2);

        let inv = parse_invocation(&argv(
            "figure4 --resume fig4.journal --watchdog-ms 5000 --scenario sc2",
        ))
        .unwrap();
        assert_eq!(inv.campaign.resume, Some(PathBuf::from("fig4.journal")));
        assert_eq!(inv.campaign.watchdog_millis, Some(5000));
        assert_eq!(
            inv.command,
            Command::Figure4 {
                scenario: Some(DeploymentScenario::Scenario2)
            }
        );
    }

    #[test]
    fn rejects_bad_campaign_flags() {
        assert!(parse_invocation(&argv("calibrate --journal a --resume b")).is_err());
        assert!(parse_invocation(&argv("calibrate --journal")).is_err());
        assert!(parse_invocation(&argv("calibrate --resume")).is_err());
        assert!(parse_invocation(&argv("calibrate --watchdog-ms")).is_err());
        assert!(parse_invocation(&argv("calibrate --watchdog-ms soon")).is_err());
    }

    /// End-to-end through `run_invocation`: a journaled calibrate run
    /// followed by a resumed one, both exercising the campaign plumbing
    /// behind the global flags.
    #[test]
    fn run_invocation_journals_and_resumes() {
        let mut path = std::env::temp_dir();
        path.push(format!("aurix-cli-journal-{}", std::process::id()));
        let journal_args = argv(&format!("--jobs 1 --journal {} calibrate", path.display()));
        run_invocation(parse_invocation(&journal_args).unwrap()).unwrap();
        assert!(path.exists(), "journal file must be written");

        let resume_args = argv(&format!("--jobs 1 --resume {} calibrate", path.display()));
        run_invocation(parse_invocation(&resume_args).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn usage_mentions_every_subcommand() {
        for sub in [
            "calibrate",
            "figure4",
            "bound",
            "trace",
            "profile",
            "contention-attr",
            "--jobs",
            "--strict",
            "--repair",
            "--ilp-budget",
            "--journal",
            "--resume",
            "--watchdog-ms",
            "--engine",
            "--telemetry",
            "--platform",
            "--attribution",
        ] {
            assert!(USAGE.contains(sub), "{sub}");
        }
    }

    #[test]
    fn parses_telemetry_flag() {
        let inv = parse_invocation(&argv("calibrate")).unwrap();
        assert_eq!(inv.telemetry, None);

        let inv = parse_invocation(&argv("--telemetry run.jsonl calibrate --jobs 2")).unwrap();
        let spec = inv.telemetry.expect("sink spec parsed");
        assert_eq!(spec.path, "run.jsonl");
        assert_eq!(spec.format, mbta::Format::Jsonl);
        assert_eq!(inv.command, Command::Calibrate);
        assert_eq!(inv.jobs, 2);

        let inv = parse_invocation(&argv("trace --telemetry out.json:chrome")).unwrap();
        let spec = inv.telemetry.expect("sink spec parsed");
        assert_eq!(spec.path, "out.json");
        assert_eq!(spec.format, mbta::Format::Chrome);

        let inv = parse_invocation(&argv("calibrate --telemetry -:summary")).unwrap();
        let spec = inv.telemetry.expect("sink spec parsed");
        assert_eq!(spec.path, "-");
        assert_eq!(spec.format, mbta::Format::Summary);
    }

    #[test]
    fn parses_platform_flag() {
        let inv = parse_invocation(&argv("calibrate")).unwrap();
        assert!(inv.platform.is_default(), "default is the paper's TC27x");
        assert_eq!(inv.platform.name, "tc27x");

        let inv = parse_invocation(&argv("--platform tc27x-tdma trace --limit 3")).unwrap();
        assert_eq!(inv.platform.name, "tc27x-tdma");
        assert!(!inv.platform.is_default());
        assert_eq!(
            inv.command,
            Command::Trace {
                scenario: DeploymentScenario::Scenario1,
                limit: 3
            }
        );

        let err = parse_invocation(&argv("calibrate --platform vax")).unwrap_err();
        for name in platform::PlatformDesc::names() {
            assert!(err.to_string().contains(name), "error must list `{name}`");
        }
        assert!(parse_invocation(&argv("calibrate --platform")).is_err());
    }

    #[test]
    fn parses_contention_attr() {
        assert_eq!(
            parse(&argv("contention-attr")).unwrap(),
            Command::ContentionAttr {
                scenario: None,
                level: LoadLevel::High
            }
        );
        assert_eq!(
            parse(&argv("contention-attr --scenario sc2 --level low")).unwrap(),
            Command::ContentionAttr {
                scenario: Some(DeploymentScenario::Scenario2),
                level: LoadLevel::Low
            }
        );
        assert!(parse(&argv("contention-attr --scenario nope")).is_err());
        assert!(parse(&argv("contention-attr --level nope")).is_err());
    }

    #[test]
    fn parses_attribution_flag() {
        let inv = parse_invocation(&argv("calibrate")).unwrap();
        assert_eq!(inv.attribution, None);
        let inv = parse_invocation(&argv("--attribution attr.jsonl calibrate --jobs 2")).unwrap();
        assert_eq!(inv.attribution, Some(PathBuf::from("attr.jsonl")));
        assert_eq!(inv.command, Command::Calibrate);
        assert!(parse_invocation(&argv("calibrate --attribution")).is_err());
    }

    /// End-to-end: `contention-attr` prints the wait matrix and a
    /// tightness report with no violations, and `--attribution` flushes
    /// matrix records.
    #[test]
    fn run_invocation_audits_tightness_and_flushes_attribution() {
        let mut path = std::env::temp_dir();
        path.push(format!("aurix-cli-attr-{}.jsonl", std::process::id()));
        let args = argv(&format!(
            "--jobs 1 --attribution {} contention-attr --scenario sc1",
            path.display()
        ));
        run_invocation(parse_invocation(&args).unwrap()).unwrap();
        let stream = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(
            stream.contains("\"k\":\"matrix\""),
            "matrix records: {stream}"
        );
        assert!(stream.contains("attribution.wait"));
        assert!(stream.contains("attribution.interference"));
    }

    #[test]
    fn rejects_bad_telemetry_flags() {
        assert!(parse_invocation(&argv("calibrate --telemetry")).is_err());
        assert!(parse_invocation(&argv("calibrate --telemetry :chrome")).is_err());
    }

    /// End-to-end: `--telemetry` writes a JSONL stream whose
    /// deterministic records carry the subcommand and the exec metrics,
    /// and whose only `det:false` record is the profile.
    #[test]
    fn run_invocation_flushes_a_telemetry_stream() {
        let mut path = std::env::temp_dir();
        path.push(format!("aurix-cli-telemetry-{}.jsonl", std::process::id()));
        let args = argv(&format!(
            "--jobs 1 --telemetry {} bound --scenario sc1 --level high",
            path.display()
        ));
        run_invocation(parse_invocation(&args).unwrap()).unwrap();
        let stream = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(stream.contains("\"k\":\"meta\""), "meta record present");
        assert!(stream.contains("\"command\":\"bound\""), "subcommand named");
        assert!(stream.contains("ilp.solves"), "solve counter recorded");
        assert!(stream.contains("\"k\":\"span\""), "job spans recorded");
        let nondet: Vec<&str> = stream
            .lines()
            .filter(|l| l.contains("\"det\":false"))
            .collect();
        assert!(
            nondet.iter().all(|l| !l.contains("\"k\":\"span\"")),
            "spans are deterministic"
        );
        assert!(
            stream
                .lines()
                .filter(|l| l.contains("wall_seconds"))
                .all(|l| l.contains("\"det\":false")),
            "wall-clock only in nondet records"
        );
    }
}
