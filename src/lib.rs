//! # `aurix-contention` — facade crate
//!
//! One-stop re-export of the DAC'18 *Modelling Multicore Contention on
//! the AURIX TC27x* reproduction. See the individual crates for
//! details:
//!
//! * [`contention`] — the paper's contribution: fTC, ILP-PTAC and ideal
//!   contention models over debug-counter readings;
//! * [`tc27x_sim`] — cycle-level TC27x platform simulator (cores,
//!   caches, SRI crossbar, flash/LMU slaves, DSU debug counters);
//! * [`workloads`] — control-loop application, H/M/L-load contenders
//!   and calibration microbenchmarks;
//! * [`mbta`] — measurement-based timing-analysis harness (isolation
//!   runs, calibration, model-vs-observation experiments);
//! * [`ilp`] — exact rational ILP solver used by the ILP-PTAC model.
//!
//! # Examples
//!
//! Bound the slowdown a control-loop application can suffer from a
//! high-load contender, without ever co-running them:
//!
//! ```
//! use aurix_contention::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::tc277_reference();
//! let scenario = DeploymentScenario::Scenario1;
//! let (app_core, load_core) = (CoreId(1), CoreId(2));
//!
//! // Measure both tasks in isolation on the simulated TC277.
//! let app = workloads::control_loop(scenario, app_core, 42);
//! let load = workloads::contender(scenario, LoadLevel::High, load_core, 7);
//! let app_profile = mbta::isolation_profile(&app, app_core)?;
//! let load_profile = mbta::isolation_profile(&load, load_core)?;
//!
//! // Feed the counter readings to the ILP-PTAC model.
//! let model = IlpPtacModel::new(&platform, ScenarioConstraints::scenario1());
//! let estimate = model.wcet_estimate(&app_profile, &[&load_profile])?;
//! assert!(estimate.contention_cycles > 0);
//! assert!(estimate.ratio() > 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cli;

pub use contention;
pub use ilp;
pub use mbta;
pub use tc27x_sim;
pub use workloads;

/// Convenience re-exports of the most frequently used items.
pub mod prelude {
    pub use contention::{
        AccessBounds, AccessCounts, ContentionBound, ContentionModel, FtcModel, IdealModel,
        IlpPtacModel, IlpPtacOptions, IsolationProfile, LatencyTable, ModelError, Operation,
        Platform, ScenarioConstraints, StallTable, Target, WcetEstimate,
    };
    pub use mbta;
    pub use tc27x_sim::{
        CoreId, DataObject, DeploymentScenario, Pattern, Placement, Program, Region, SimConfig,
        System, TaskSpec,
    };
    pub use workloads::{self, LoadLevel};
}
