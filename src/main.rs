//! The `aurix-contention` command-line tool.

use aurix_contention::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let inv = match cli::parse_invocation(&args) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", cli::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = cli::run_invocation(inv) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
