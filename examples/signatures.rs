//! Contender signatures: analyse a task against a *contractual* ceiling
//! on co-runner traffic instead of a concrete co-runner — the
//! "resource usage templates and signatures" workflow (reference [10]
//! of the paper) that makes pre-integration analysis possible when the
//! other suppliers' code does not exist yet.
//!
//! ```text
//! cargo run --example signatures
//! ```

use aurix_contention::prelude::*;
use contention::ContenderSignature;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::tc277_reference();
    let scenario = DeploymentScenario::Scenario1;

    // Our own task, measured in isolation.
    let app_spec = workloads::control_loop(scenario, CoreId(1), 42);
    let app = mbta::isolation_profile(&app_spec, CoreId(1))?;
    println!("app isolation: {} cycles\n", app.counters().ccnt);

    // The integration contract: the co-runner may issue at most this
    // many SRI requests while our task runs.
    let contract = ContenderSignature::new("integration-contract", 12_000, 8_000);
    println!("contract: {contract}");

    let model = IlpPtacModel::new(&platform, ScenarioConstraints::scenario1());
    let worst = model.wcet_estimate(&app, &[&contract.to_profile(&platform)])?;
    println!(
        "WCET under the contract: {} cycles ({:.2}x)\n",
        worst.bound_cycles(),
        worst.ratio()
    );

    // Months later, the real co-runner arrives. Check it against the
    // contract and against the pre-computed bound.
    for level in [LoadLevel::Low, LoadLevel::Medium, LoadLevel::High] {
        let real_spec = workloads::contender(scenario, level, CoreId(2), 7);
        let real = mbta::isolation_profile(&real_spec, CoreId(2))?;
        let admitted = contract.admits(&platform, &real);
        let est = model.wcet_estimate(&app, &[&real])?;
        println!(
            "{level}: {} the contract; exact bound {:.2}x {}",
            if admitted { "within" } else { "EXCEEDS" },
            est.ratio(),
            if admitted {
                assert!(est.bound_cycles() <= worst.bound_cycles());
                "(covered by the contract bound)"
            } else {
                "(contract bound not applicable)"
            }
        );
    }

    println!(
        "\ncovering signature for the H-Load contender: {}",
        ContenderSignature::covering(
            &platform,
            &mbta::isolation_profile(
                &workloads::contender(scenario, LoadLevel::High, CoreId(2), 7),
                CoreId(2)
            )?
        )
    );
    Ok(())
}
