//! The full OEM integration loop: contention-aware WCET bounds feed a
//! fixed-priority response-time analysis, answering "do all
//! applications still fit their time budgets once multicore contention
//! is factored in?" — the question the paper's introduction motivates.
//!
//! ```text
//! cargo run --example schedulability
//! ```

use aurix_contention::prelude::*;
use contention::rta::{analyze, PeriodicTask};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::tc277_reference();
    let scenario = DeploymentScenario::Scenario1;

    // The core-1 task set: a fast control task (modelled as a fixed
    // budget) and the cruise-control application under analysis.
    let app_spec = workloads::control_loop(scenario, CoreId(1), 42);
    let app = mbta::isolation_profile(&app_spec, CoreId(1))?;
    let model = IlpPtacModel::new(&platform, ScenarioConstraints::scenario1());

    // Periods chosen around the measured isolation time.
    let period_fast: u64 = 400_000;
    let wcet_fast: u64 = 90_000;
    let period_app: u64 = 1_600_000;

    println!("core-1 task set: fast-ctrl (C={wcet_fast}, T={period_fast}),");
    println!(
        "cruise-control (isolation {} cycles, T={period_app})\n",
        app.counters().ccnt
    );

    for level in [None, Some(LoadLevel::Low), Some(LoadLevel::High)] {
        let (label, wcet_app) = match level {
            None => ("single-core view (no contention)".to_owned(), {
                app.counters().ccnt
            }),
            Some(l) => {
                let load = mbta::isolation_profile(
                    &workloads::contender(scenario, l, CoreId(2), 7),
                    CoreId(2),
                )?;
                let est = model.wcet_estimate(&app, &[&load])?;
                (
                    format!("with {l} contender (ILP bound {:.2}x)", est.ratio()),
                    est.bound_cycles(),
                )
            }
        };
        let verdict = analyze(&[
            PeriodicTask::new("fast-ctrl", period_fast, wcet_fast),
            PeriodicTask::new("cruise-control", period_app, wcet_app),
        ]);
        println!("{label}:");
        print!("{verdict}");
        println!(
            "  => {} (U = {:.2})\n",
            if verdict.is_schedulable() {
                "schedulable"
            } else {
                "NOT schedulable"
            },
            verdict.utilization()
        );
    }

    println!("reading guide: the set fits in the single-core view and under a");
    println!("light contender, but the heavy contender's contention bound");
    println!("pushes the cruise-control task past its budget — detected at");
    println!("analysis time, long before integration.");
    Ok(())
}
