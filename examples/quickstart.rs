//! Quickstart: bound the contention a task can suffer without ever
//! co-running it with its contender.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use aurix_contention::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a small task: sequential loads from a shared LMU
    //    buffer, with code fetched from program flash.
    let program = Program::build(|b| {
        b.repeat(500, |b| {
            b.load("shared", Pattern::Sequential);
            b.compute(6);
            b.store("shared", Pattern::Sequential);
        });
    });
    let task = TaskSpec::new("probe", program, Placement::new(Region::Pflash0, true)).with_object(
        DataObject::new("shared", 4 << 10, Placement::new(Region::Lmu, false)),
    );

    // 2. A contender that also hammers the LMU from another core.
    let rival_prog = Program::build(|b| {
        b.repeat(800, |b| {
            b.load("rival_buf", Pattern::Sequential);
            b.compute(3);
        });
    });
    let rival =
        TaskSpec::new("rival", rival_prog, Placement::new(Region::Pflash1, true)).with_object(
            DataObject::new("rival_buf", 4 << 10, Placement::new(Region::Lmu, false)),
        );

    // 3. Measure each in isolation on the simulated TC277 (this is all
    //    the information the models are allowed to use).
    let task_profile = mbta::isolation_profile(&task, CoreId(1))?;
    let rival_profile = mbta::isolation_profile(&rival, CoreId(2))?;
    println!("isolation profiles:");
    println!("  {task_profile}");
    println!("  {rival_profile}");

    // 4. Bound the interference with both models.
    let platform = Platform::tc277_reference();
    let ftc = FtcModel::new(&platform).wcet_estimate(&task_profile, &[&rival_profile])?;
    let ilp = IlpPtacModel::new(&platform, ScenarioConstraints::unconstrained())
        .wcet_estimate(&task_profile, &[&rival_profile])?;
    println!("\nWCET estimates (isolation + contention bound):");
    println!("  fTC      : {ftc}");
    println!("  ILP-PTAC : {ilp}");

    // 5. Validate: actually co-run the two tasks and compare.
    let observed = mbta::observed_corun(&task, CoreId(1), &rival, CoreId(2))?;
    println!("\nobserved co-run: {observed} cycles");
    assert!(ftc.bound_cycles() >= observed, "fTC bound must be sound");
    assert!(ilp.bound_cycles() >= observed, "ILP bound must be sound");
    assert!(ilp.bound_cycles() <= ftc.bound_cycles(), "ILP is tighter");
    println!("both bounds dominate the observation; ILP-PTAC is the tighter one");
    Ok(())
}
