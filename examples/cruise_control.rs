//! The full paper workflow on the cruise-control application (§4.2):
//! calibrate the platform tables from microbenchmarks, profile the app
//! and the H/M/L-Load contenders in isolation, compute fTC and
//! ILP-PTAC WCET estimates, and validate them against real co-runs.
//!
//! ```text
//! cargo run --example cruise_control
//! ```

use aurix_contention::prelude::*;
use mbta::report::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Calibration campaign: recover the Table 2 constants from
    //    DSU-observable measurements (no platform documentation used).
    let calibration = mbta::calibrate()?;
    let platform = calibration.into_platform();
    println!(
        "calibrated: cs_co_min = {}, cs_da_min = {}, lmu dirty = {} cycles\n",
        platform.cs_code_min(),
        platform.cs_data_min(),
        platform.lmu_dirty_latency()
    );

    for scenario in [DeploymentScenario::Scenario1, DeploymentScenario::Scenario2] {
        let panel = mbta::figure4_panel(scenario, &platform, 42)?;
        println!(
            "{scenario}: isolation = {} cycles",
            panel.app.counters().ccnt
        );
        let mut table = Table::new(vec!["contender", "fTC", "ILP-PTAC", "observed co-run"]);
        for cell in panel.cells.iter().rev() {
            table.row(vec![
                cell.level.to_string(),
                format!("{:.2}x", cell.ftc.ratio()),
                format!("{:.2}x", cell.ilp.ratio()),
                format!("{:.2}x", cell.observed_ratio()),
            ]);
        }
        print!("{}", table.render());
        println!(
            "all bounds sound: {}\n",
            if panel.all_bounds_sound() {
                "yes"
            } else {
                "NO"
            }
        );
    }

    println!("paper bands: Sc1 fTC 1.95x / ILP 1.49-1.24x; Sc2 fTC 2.33x / ILP 1.67-1.34x");
    Ok(())
}
