//! Multi-contender analysis — the paper's model "can be easily extended
//! to consider more contenders at the same time" (§2). On the TC277 the
//! task under analysis can face contenders on *both* other cores; under
//! round-robin arbitration each own request can wait for one request
//! from each of them, so pairwise bounds compose by summation.
//!
//! ```text
//! cargo run --example multi_contender
//! ```

use aurix_contention::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::tc277_reference();
    let scenario = DeploymentScenario::Scenario1;

    // App on core 1; contenders on core 2 (high load) and on the
    // efficiency core 0 (low load).
    let app_spec = workloads::control_loop(scenario, CoreId(1), 42);
    let heavy_spec = workloads::contender(scenario, LoadLevel::High, CoreId(2), 7);
    let light_spec = workloads::contender(scenario, LoadLevel::Low, CoreId(0), 9);

    let app = mbta::isolation_profile(&app_spec, CoreId(1))?;
    let heavy = mbta::isolation_profile(&heavy_spec, CoreId(2))?;
    let light = mbta::isolation_profile(&light_spec, CoreId(0))?;

    let model = IlpPtacModel::new(&platform, ScenarioConstraints::scenario1());

    let vs_heavy = model.wcet_estimate(&app, &[&heavy])?;
    let vs_light = model.wcet_estimate(&app, &[&light])?;
    let vs_both = model.wcet_estimate(&app, &[&heavy, &light])?;

    println!("ILP-PTAC estimates for the cruise-control app:");
    println!("  vs heavy contender only : {vs_heavy}");
    println!("  vs light contender only : {vs_light}");
    println!("  vs both contenders      : {vs_both}");
    assert_eq!(
        vs_both.contention_cycles,
        vs_heavy.contention_cycles + vs_light.contention_cycles,
        "pairwise bounds compose additively"
    );

    // Validate against a 3-core co-run.
    let mut sys = System::tc277();
    sys.load(CoreId(1), &app_spec)?;
    sys.load(CoreId(2), &heavy_spec)?;
    sys.load(CoreId(0), &light_spec)?;
    let out = sys.run_until(CoreId(1))?;
    let observed = out.counters(CoreId(1)).ccnt;
    println!("\nobserved 3-core co-run: {observed} cycles");
    assert!(
        vs_both.bound_cycles() >= observed,
        "multi-contender bound must dominate the observation"
    );
    println!(
        "bound {} >= observed {} — sound under dual contention",
        vs_both.bound_cycles(),
        observed
    );
    Ok(())
}
