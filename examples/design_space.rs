//! Pre-integration design-space exploration — the industrial use case
//! the paper motivates: an OEM hands software providers a time budget,
//! and each provider must check *before integration* whether its task
//! still fits under worst-case contention, for every deployment option
//! on the table.
//!
//! This example sweeps deployment scenarios and contender intensities
//! and prints the WCET estimate as a fraction of a fixed budget.
//!
//! ```text
//! cargo run --example design_space
//! ```

use aurix_contention::prelude::*;
use mbta::report::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::tc277_reference();
    // The OEM's time budget for this task (cycles).
    let budget: u64 = 1_500_000;

    println!("pre-integration exploration: does the task fit in {budget} cycles?\n");
    let mut table = Table::new(vec![
        "deployment",
        "isolation",
        "worst contender",
        "ILP-PTAC bound",
        "budget use",
        "verdict",
    ]);

    for scenario in [
        DeploymentScenario::Scenario1,
        DeploymentScenario::Scenario2,
        DeploymentScenario::LowTraffic,
    ] {
        let app_spec = workloads::control_loop(scenario, CoreId(1), 42);
        let app = mbta::isolation_profile(&app_spec, CoreId(1))?;
        let model = IlpPtacModel::new(&platform, mbta::constraints_for(scenario));

        // The provider does not know the final co-runner; it explores
        // the contender intensities the OEM allows.
        for level in [LoadLevel::Low, LoadLevel::High] {
            let load_spec = workloads::contender(scenario, level, CoreId(2), 7);
            let load = mbta::isolation_profile(&load_spec, CoreId(2))?;
            let est = model.wcet_estimate(&app, &[&load])?;
            let use_pct = 100.0 * est.bound_cycles() as f64 / budget as f64;
            table.row(vec![
                scenario.to_string(),
                app.counters().ccnt.to_string(),
                level.to_string(),
                format!("{} ({:.2}x)", est.bound_cycles(), est.ratio()),
                format!("{use_pct:.0}%"),
                if est.bound_cycles() <= budget {
                    "fits".into()
                } else {
                    "OVER BUDGET".into()
                },
            ]);
        }
    }
    print!("{}", table.render());

    println!("\nreading guide: the model lets a supplier rule deployments in or out");
    println!("months before integration — the low-traffic deployment fits under any");
    println!("allowed contender, while scenario 1 only fits next to a light one.");
    Ok(())
}
