#!/usr/bin/env bash
# The CI gate, runnable locally: formatting, lints, hermetic build, tests.
#
# The build is fully offline — the workspace has no external
# dependencies and Cargo.lock is committed — so `--offline` both
# enforces hermeticity and catches accidental dependency creep.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
# Library crates additionally carry
#   #![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
# at their roots, so a stray unwrap()/expect() outside #[cfg(test)] code
# fails this step.
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> unwrap/expect deny attribute present in every crate root"
for root in src/lib.rs crates/*/src/lib.rs; do
    grep -q 'deny(clippy::unwrap_used, clippy::expect_used)' "$root" \
        || { echo "missing unwrap/expect deny attribute: $root"; exit 1; }
done

echo "==> no per-cycle tick loops outside the reference module"
# The event kernel owns timing; only crates/tc27x-sim/src/reference.rs
# may advance the clock one cycle at a time. A `now += 1` / `cycle += 1`
# anywhere else in the simulator is a reintroduced polling loop.
if grep -rn --include='*.rs' --exclude=reference.rs -E '(now|cycle|cyc) \+= 1\b' \
    crates/tc27x-sim/src; then
    echo "per-cycle tick loop found outside crates/tc27x-sim/src/reference.rs"
    exit 1
fi

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --offline"
cargo test --workspace -q --offline

echo "==> fault-injection property suite (1,000 seeded trials)"
cargo test -q --offline -p mbta --test fault_injection

echo "==> golden sweep regression (byte-identical CSV, fallback rates)"
cargo test -q --offline -p contention-bench --test golden_sweep

echo "==> engine equivalence property suite (tick vs event, 500 seeded cases)"
cargo test -q --offline -p tc27x-sim --test engine_equivalence

echo "==> journal recovery property suite (replay idempotence, torn records)"
cargo test -q --offline -p mbta --test journal_recovery

echo "==> kill-and-resume smoke test (journal truncated mid-campaign)"
# A journaled sweep, its journal torn mid-file as a crash would leave
# it, then resumed: the resumed CSV must be byte-identical to the
# uninterrupted golden capture.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
SWEEP=target/release/sweep
cargo build --release --offline -p contention-bench --bin sweep
"$SWEEP" --scenario sc2 --jobs 4 --engine event --journal "$SMOKE_DIR/sweep.journal" \
    > "$SMOKE_DIR/full.csv" 2> /dev/null
# Simulate the crash: drop the final record's tail (every record is
# far longer than 3 bytes, so this always tears the last line).
SIZE=$(wc -c < "$SMOKE_DIR/sweep.journal")
head -c "$((SIZE - 3))" "$SMOKE_DIR/sweep.journal" > "$SMOKE_DIR/torn.journal"
"$SWEEP" --scenario sc2 --jobs 1 --engine event --resume "$SMOKE_DIR/torn.journal" \
    > "$SMOKE_DIR/resumed.csv" 2> "$SMOKE_DIR/resume.log"
diff -u crates/bench/tests/golden/sweep_sc2.csv "$SMOKE_DIR/resumed.csv" \
    || { echo "resumed sweep CSV diverged from the golden capture"; exit 1; }
diff -u "$SMOKE_DIR/full.csv" "$SMOKE_DIR/resumed.csv" \
    || { echo "resumed sweep CSV diverged from the uninterrupted run"; exit 1; }
grep -q "torn trailing record truncated" "$SMOKE_DIR/resume.log" \
    || { echo "torn-record truncation was not reported"; cat "$SMOKE_DIR/resume.log"; exit 1; }

echo "==> golden sweep under the tick stepper (engines byte-identical end to end)"
# The golden CSV was captured under the default (event) engine; the
# reference stepper must reproduce it byte for byte.
"$SWEEP" --scenario sc2 --jobs 4 --engine tick > "$SMOKE_DIR/tick.csv" 2> /dev/null
diff -u crates/bench/tests/golden/sweep_sc2.csv "$SMOKE_DIR/tick.csv" \
    || { echo "tick-engine sweep CSV diverged from the golden capture"; exit 1; }

echo "==> telemetry determinism gate (schema lint, cross-jobs/engine det identity)"
# The Scenario 1 sweep with a recorder attached: every record must pass
# the schema lint, and — because sc1's default solve budget never falls
# back (asserted by golden_sweep) — the run must prove itself
# warning-free (--deny-warn). The deterministic subset must be
# byte-identical across worker counts and timing kernels, and the
# Chrome export must be a valid trace. (sc2 legitimately emits an
# ilp.fallback warning at the default budget, so it is not used here.)
LINT=target/release/telemetry_lint
cargo build --release --offline -p contention-bench --bin telemetry_lint
"$SWEEP" --scenario sc1 --jobs 1 --engine event --telemetry "$SMOKE_DIR/t1.jsonl" \
    > /dev/null 2> /dev/null
"$SWEEP" --scenario sc1 --jobs 4 --engine event --telemetry "$SMOKE_DIR/t4.jsonl" \
    > /dev/null 2> /dev/null
"$SWEEP" --scenario sc1 --jobs 4 --engine tick --telemetry "$SMOKE_DIR/ttick.jsonl" \
    > /dev/null 2> /dev/null
"$LINT" "$SMOKE_DIR/t1.jsonl" --deny-warn --det-diff "$SMOKE_DIR/t4.jsonl" \
    || { echo "telemetry det subset differs across --jobs"; exit 1; }
"$LINT" "$SMOKE_DIR/t1.jsonl" --deny-warn --det-diff "$SMOKE_DIR/ttick.jsonl" \
    || { echo "telemetry det subset differs across timing kernels"; exit 1; }
"$SWEEP" --scenario sc1 --jobs 2 --telemetry "$SMOKE_DIR/t.trace:chrome" \
    > /dev/null 2> /dev/null
"$LINT" --chrome "$SMOKE_DIR/t.trace" \
    || { echo "chrome trace export failed validation"; exit 1; }

echo "==> simulator throughput report (non-gating)"
# Tick vs event wall-clock on the Table 2 probe mix; writes
# BENCH_sim.json. Informational: a slow machine must not fail the gate.
cargo bench --offline -p contention-bench --bench sim_throughput \
    || echo "warning: sim_throughput report failed (non-gating)"

echo "==> CI gate passed"
