#!/usr/bin/env bash
# The CI gate, runnable locally: formatting, lints, hermetic build, tests.
#
# The build is fully offline — the workspace has no external
# dependencies and Cargo.lock is committed — so `--offline` both
# enforces hermeticity and catches accidental dependency creep.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --offline"
cargo test --workspace -q --offline

echo "==> CI gate passed"
