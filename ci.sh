#!/usr/bin/env bash
# The CI gate, runnable locally, in named tiers:
#
#   ci.sh lint     formatting, clippy, source-hygiene greps
#   ci.sh test     hermetic release build + full test suite + property suites
#   ci.sh golden   end-to-end smokes: golden sweeps, kill-and-resume,
#                  telemetry determinism (memo on/off, tick/event, jobs)
#   ci.sh perf     sim_throughput bench + speedup-floor gate
#                  (BENCH_sim.json ratios vs committed BENCH_baseline.json)
#   ci.sh serve    daemon crash-recovery smoke (kill -9 mid-batch,
#                  restart at a different --jobs, byte-for-byte response
#                  diff) + seeded chaos run with a warning-free
#                  telemetry capture
#   ci.sh dse      sharded campaign smoke: partition invariance
#                  (different --shards/--jobs merge to identical curve
#                  bytes), kill -9 of a worker AND the supervisor
#                  followed by --resume, a seeded shard-chaos run that
#                  must reach full coverage, and a permanently hostile
#                  shard that must exit 3 with a FAILED manifest line
#   ci.sh platform cross-platform gate: golden sweep replay per
#                  built-in profile (--jobs 1 vs 4), registry rejection
#                  message, and state-store isolation (a campaign under
#                  one platform refuses another's journals loudly)
#   ci.sh attr     contention-attribution gate: the tightness audit
#                  must report zero violations (observed <= bound) on
#                  every builtin platform and scenario, the committed
#                  golden attribution matrix must replay byte-for-byte
#                  across worker counts and timing kernels, and the
#                  attribution telemetry stream must pass the schema
#                  lint warning-free
#   ci.sh all      every tier in order (the default); perf runs
#                  non-gating here so a slow local machine cannot fail
#                  the full gate, exactly as the old monolithic script
#                  behaved
#
# The build is fully offline — the workspace has no external
# dependencies and Cargo.lock is committed — so `--offline` both
# enforces hermeticity and catches accidental dependency creep.
set -euo pipefail
cd "$(dirname "$0")"

SMOKE_DIR=""
cleanup() { [ -n "$SMOKE_DIR" ] && rm -rf "$SMOKE_DIR"; }
trap cleanup EXIT

stage_lint() {
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy (warnings are errors)"
    # Library crates additionally carry
    #   #![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
    # at their roots, so a stray unwrap()/expect() outside #[cfg(test)]
    # code fails this step.
    cargo clippy --workspace --all-targets --offline -- -D warnings

    echo "==> unwrap/expect deny attribute present in every crate root"
    for root in src/lib.rs crates/*/src/lib.rs; do
        grep -q 'deny(clippy::unwrap_used, clippy::expect_used)' "$root" \
            || { echo "missing unwrap/expect deny attribute: $root"; exit 1; }
    done

    echo "==> no per-cycle tick loops outside the reference module"
    # The event kernel owns timing; only crates/tc27x-sim/src/reference.rs
    # (the per-cycle stepper) and crates/tc27x-sim/src/memo.rs (the block
    # interpreter, which replays the stepper's per-cycle semantics to
    # record a block) may advance a clock one cycle at a time. Both
    # spellings are caught: `now += 1` and `now = <...>now + 1`. The
    # single intentional site in the event kernel — the one-cycle
    # execute step — is allowlisted with a `tick-loop-ok` marker.
    if grep -rn --include='*.rs' --exclude=reference.rs --exclude=memo.rs \
        -E '(now|cycle|cyc)\s*(\+=\s*1\b|=\s*[a-z_.]*(now|cycle|cyc)\s*\+\s*1\b)' \
        crates/tc27x-sim/src | grep -v 'tick-loop-ok'; then
        echo "per-cycle tick loop found outside reference.rs / memo.rs"
        exit 1
    fi

    echo "==> Table 2 service latencies live only in the platform profiles"
    # The paper's slave service times (16 pf, 11/21 lmu, 43 dfl, 12
    # sequential) are platform facts, not model or simulator constants:
    # the only place a service-latency field may be assigned one of them
    # literally is a profile definition in crates/platform. Comment
    # lines are ignored; a legitimate stray site can carry a
    # `table2-ok` marker.
    if grep -rnE --include='*.rs' \
        '(service_sequential|writeback_service|service):\s*(10|11|12|16|21|42|43)\b' \
        src crates \
        | grep -v '^crates/platform/src' \
        | grep -vE ':[0-9]+:\s*//' \
        | grep -v 'table2-ok'; then
        echo "Table 2 service latency hard-coded outside crates/platform"
        exit 1
    fi
}

stage_test() {
    echo "==> cargo build --release --offline"
    cargo build --workspace --release --offline

    echo "==> cargo test --offline"
    cargo test --workspace -q --offline

    echo "==> fault-injection property suite (1,000 seeded trials)"
    cargo test -q --offline -p mbta --test fault_injection

    echo "==> engine equivalence property suite (tick vs event vs memo-off, 500 seeded cases)"
    cargo test -q --offline -p tc27x-sim --test engine_equivalence

    echo "==> block-memo adversarial suite (mid-block SRI posts, co-run warps)"
    cargo test -q --offline -p tc27x-sim --test memo_adversarial

    echo "==> journal recovery property suite (replay idempotence, torn records)"
    cargo test -q --offline -p mbta --test journal_recovery
}

stage_golden() {
    echo "==> golden sweep regression (byte-identical CSV, fallback rates)"
    cargo test -q --offline -p contention-bench --test golden_sweep

    SMOKE_DIR="$(mktemp -d)"
    SWEEP=target/release/sweep
    cargo build --release --offline -p contention-bench --bin sweep

    echo "==> kill-and-resume smoke test (journal truncated mid-campaign, memo enabled)"
    # A journaled sweep, its journal torn mid-file as a crash would
    # leave it, then resumed: the resumed CSV must be byte-identical to
    # the uninterrupted golden capture. The sweep runs with the block
    # memo at its default (enabled), so the journal keys and CSV must be
    # untouched by memoization.
    "$SWEEP" --scenario sc2 --jobs 4 --engine event --journal "$SMOKE_DIR/sweep.journal" \
        > "$SMOKE_DIR/full.csv" 2> /dev/null
    # Simulate the crash: drop the final record's tail (every record is
    # far longer than 3 bytes, so this always tears the last line).
    SIZE=$(wc -c < "$SMOKE_DIR/sweep.journal")
    head -c "$((SIZE - 3))" "$SMOKE_DIR/sweep.journal" > "$SMOKE_DIR/torn.journal"
    "$SWEEP" --scenario sc2 --jobs 1 --engine event --resume "$SMOKE_DIR/torn.journal" \
        > "$SMOKE_DIR/resumed.csv" 2> "$SMOKE_DIR/resume.log"
    diff -u crates/bench/tests/golden/sweep_sc2.csv "$SMOKE_DIR/resumed.csv" \
        || { echo "resumed sweep CSV diverged from the golden capture"; exit 1; }
    diff -u "$SMOKE_DIR/full.csv" "$SMOKE_DIR/resumed.csv" \
        || { echo "resumed sweep CSV diverged from the uninterrupted run"; exit 1; }
    grep -q "torn trailing record truncated" "$SMOKE_DIR/resume.log" \
        || { echo "torn-record truncation was not reported"; cat "$SMOKE_DIR/resume.log"; exit 1; }

    echo "==> golden sweep under the tick stepper and with the memo disabled"
    # The golden CSV was captured under the default (event, memoized)
    # configuration; the reference stepper and the memo-free event
    # kernel must both reproduce it byte for byte.
    "$SWEEP" --scenario sc2 --jobs 4 --engine tick > "$SMOKE_DIR/tick.csv" 2> /dev/null
    diff -u crates/bench/tests/golden/sweep_sc2.csv "$SMOKE_DIR/tick.csv" \
        || { echo "tick-engine sweep CSV diverged from the golden capture"; exit 1; }
    "$SWEEP" --scenario sc2 --jobs 4 --engine event --no-block-memo \
        > "$SMOKE_DIR/nomemo.csv" 2> /dev/null
    diff -u crates/bench/tests/golden/sweep_sc2.csv "$SMOKE_DIR/nomemo.csv" \
        || { echo "memo-free sweep CSV diverged from the golden capture"; exit 1; }

    echo "==> telemetry determinism gate (schema lint, cross-jobs/engine/memo det identity)"
    # The Scenario 1 sweep with a recorder attached: every record must
    # pass the schema lint, and — because sc1's default solve budget
    # never falls back (asserted by golden_sweep) — the run must prove
    # itself warning-free (--deny-warn). The deterministic subset must
    # be byte-identical across worker counts, timing kernels and the
    # memo toggle (memo statistics live in the nondeterministic profile
    # records), and the Chrome export must be a valid trace. (sc2
    # legitimately emits an ilp.fallback warning at the default budget,
    # so it is not used here.)
    LINT=target/release/telemetry_lint
    cargo build --release --offline -p contention-bench --bin telemetry_lint
    "$SWEEP" --scenario sc1 --jobs 1 --engine event --telemetry "$SMOKE_DIR/t1.jsonl" \
        > /dev/null 2> /dev/null
    "$SWEEP" --scenario sc1 --jobs 4 --engine event --telemetry "$SMOKE_DIR/t4.jsonl" \
        > /dev/null 2> /dev/null
    "$SWEEP" --scenario sc1 --jobs 4 --engine tick --telemetry "$SMOKE_DIR/ttick.jsonl" \
        > /dev/null 2> /dev/null
    "$SWEEP" --scenario sc1 --jobs 4 --engine event --no-block-memo \
        --telemetry "$SMOKE_DIR/tnomemo.jsonl" > /dev/null 2> /dev/null
    "$LINT" "$SMOKE_DIR/t1.jsonl" --deny-warn --det-diff "$SMOKE_DIR/t4.jsonl" \
        || { echo "telemetry det subset differs across --jobs"; exit 1; }
    "$LINT" "$SMOKE_DIR/t1.jsonl" --deny-warn --det-diff "$SMOKE_DIR/ttick.jsonl" \
        || { echo "telemetry det subset differs across timing kernels"; exit 1; }
    "$LINT" "$SMOKE_DIR/t1.jsonl" --deny-warn --det-diff "$SMOKE_DIR/tnomemo.jsonl" \
        || { echo "telemetry det subset differs across the memo toggle"; exit 1; }
    "$SWEEP" --scenario sc1 --jobs 2 --telemetry "$SMOKE_DIR/t.trace:chrome" \
        > /dev/null 2> /dev/null
    "$LINT" --chrome "$SMOKE_DIR/t.trace" \
        || { echo "chrome trace export failed validation"; exit 1; }
}

stage_perf() {
    echo "==> simulator throughput bench (writes BENCH_sim.json)"
    # Tick vs event vs event-without-memo wall-clock on the Table 2
    # probe mix; asserts bit-identity across all three configurations
    # and records machine-readable speedup ratios.
    cargo bench --offline -p contention-bench --bench sim_throughput

    echo "==> perf-regression gate (ratios vs committed floors)"
    cargo build --release --offline -p contention-bench --bin perf_gate
    target/release/perf_gate BENCH_baseline.json BENCH_sim.json
}

stage_serve() {
    # Re-point the smoke dir so `ci.sh all` does not accumulate the
    # golden stage's scratch files.
    [ -n "$SMOKE_DIR" ] && rm -rf "$SMOKE_DIR"
    SMOKE_DIR="$(mktemp -d)"
    SERVE=target/release/contention-serve
    CLIENT=target/release/serve-client
    CHAOS=target/release/serve-chaos
    LINT=target/release/telemetry_lint
    cargo build --release --offline -p contention-serve
    cargo build --release --offline -p contention-bench --bin telemetry_lint

    # A mixed batch: Δcont bounds across scenarios, a budget-1 request
    # that must degrade to the fTC fallback (and say so), a soundness
    # sweep and an RTA query, interleaved across two tenants.
    cat > "$SMOKE_DIR/batch.jsonl" <<'EOF'
{"id": "q1", "tenant": "alpha", "kind": "bound", "scenario": "sc1", "level": "high"}
{"id": "q2", "tenant": "beta", "kind": "bound", "scenario": "low", "level": "medium"}
{"id": "q3", "tenant": "alpha", "kind": "bound", "scenario": "low", "level": "high", "budget": 1}
{"id": "q4", "tenant": "beta", "kind": "sweep", "scenario": "low", "level": "low"}
{"id": "q5", "tenant": "alpha", "kind": "rta", "scenario": "low", "level": "medium", "period": 50000000}
{"id": "q6", "tenant": "beta", "kind": "bound", "scenario": "sc2", "level": "low"}
EOF
    echo '{"id": "bye", "tenant": "ops", "kind": "shutdown"}' > "$SMOKE_DIR/shutdown.jsonl"

    # Ready means the startup line is out (printed after the listeners
    # bound), not merely that the socket file exists — a stale socket
    # from a kill -9'd predecessor would fool the latter.
    wait_ready() {
        for _ in $(seq 1 100); do
            grep -q "contention-serve: listening" "$1" 2> /dev/null && return 0
            sleep 0.1
        done
        echo "daemon never became ready:"; cat "$1"; exit 1
    }

    echo "==> serve: uninterrupted reference run"
    "$SERVE" --state "$SMOKE_DIR/state_a" --unix "$SMOKE_DIR/a.sock" --jobs 2 \
        > "$SMOKE_DIR/serve_a.log" 2>&1 &
    SERVE_PID=$!
    wait_ready "$SMOKE_DIR/serve_a.log"
    "$CLIENT" --addr "unix:$SMOKE_DIR/a.sock" --batch "$SMOKE_DIR/batch.jsonl" \
        --out "$SMOKE_DIR/a.jsonl"
    "$CLIENT" --addr "unix:$SMOKE_DIR/a.sock" --batch "$SMOKE_DIR/shutdown.jsonl" > /dev/null
    wait "$SERVE_PID"

    echo "==> serve: kill -9 mid-batch, restart at a different --jobs, replay"
    "$SERVE" --state "$SMOKE_DIR/state_b" --unix "$SMOKE_DIR/b.sock" --jobs 2 \
        > "$SMOKE_DIR/serve_b1.log" 2>&1 &
    SERVE_PID=$!
    wait_ready "$SMOKE_DIR/serve_b1.log"
    "$CLIENT" --addr "unix:$SMOKE_DIR/b.sock" --batch "$SMOKE_DIR/batch.jsonl" \
        --limit 3 --out "$SMOKE_DIR/half.jsonl"
    kill -9 "$SERVE_PID"
    wait "$SERVE_PID" 2> /dev/null || true
    "$SERVE" --state "$SMOKE_DIR/state_b" --unix "$SMOKE_DIR/b.sock" --jobs 1 \
        > "$SMOKE_DIR/serve_b2.log" 2>&1 &
    SERVE_PID=$!
    wait_ready "$SMOKE_DIR/serve_b2.log"
    grep -Eq "recovered [1-9][0-9]* response" "$SMOKE_DIR/serve_b2.log" \
        || { echo "restart recovered nothing from the killed daemon's stores"; \
             cat "$SMOKE_DIR/serve_b2.log"; exit 1; }
    "$CLIENT" --addr "unix:$SMOKE_DIR/b.sock" --batch "$SMOKE_DIR/batch.jsonl" \
        --out "$SMOKE_DIR/b.jsonl"
    "$CLIENT" --addr "unix:$SMOKE_DIR/b.sock" --batch "$SMOKE_DIR/shutdown.jsonl" > /dev/null
    wait "$SERVE_PID"
    diff -u "$SMOKE_DIR/a.jsonl" "$SMOKE_DIR/b.jsonl" \
        || { echo "replayed responses diverged from the uninterrupted run"; exit 1; }
    grep -q '"provenance":"fallback=ftc"' "$SMOKE_DIR/b.jsonl" \
        || { echo "budget-1 request did not degrade with explicit provenance"; exit 1; }
    grep -q '"provenance":"ilp"' "$SMOKE_DIR/b.jsonl" \
        || { echo "no exact-ILP answer in the batch"; exit 1; }

    echo "==> serve: seeded chaos run (tiny queue cap, telemetry must stay warning-free)"
    "$SERVE" --state "$SMOKE_DIR/state_c" --unix "$SMOKE_DIR/c.sock" --jobs 2 \
        --workers 1 --queue-cap 2 --telemetry "$SMOKE_DIR/serve_t.jsonl" \
        > "$SMOKE_DIR/serve_c.log" 2>&1 &
    SERVE_PID=$!
    wait_ready "$SMOKE_DIR/serve_c.log"
    "$CHAOS" --addr "unix:$SMOKE_DIR/c.sock" --seed 42 --ops 40 \
        | tee "$SMOKE_DIR/chaos.log"
    grep -Eq "overloaded [1-9]" "$SMOKE_DIR/chaos.log" \
        || { echo "chaos run never tripped admission control"; exit 1; }
    "$CLIENT" --addr "unix:$SMOKE_DIR/c.sock" --batch "$SMOKE_DIR/shutdown.jsonl" > /dev/null
    wait "$SERVE_PID"
    "$LINT" "$SMOKE_DIR/serve_t.jsonl" --deny-warn \
        || { echo "daemon telemetry failed the lint (warnings under chaos?)"; exit 1; }
}

stage_dse() {
    [ -n "$SMOKE_DIR" ] && rm -rf "$SMOKE_DIR"
    SMOKE_DIR="$(mktemp -d)"
    SUP=target/release/dse-supervisor
    WORKER=target/release/dse-worker
    cargo build --release --offline -p dse
    # A small campaign: 5 utilization levels x 6 task sets = 30 points.
    CFG=(--seed 7 --utils 5 --sets 6 --tasks 3 --worker-bin "$WORKER")

    echo "==> dse: reference campaign (3 shards, 3 jobs)"
    "$SUP" --state-dir "$SMOKE_DIR/ref" --shards 3 --jobs 3 "${CFG[@]}" > /dev/null
    grep -q "# status complete" "$SMOKE_DIR/ref/manifest.txt" \
        || { echo "reference campaign did not complete"; exit 1; }

    echo "==> dse: partition invariance (5 shards, 2 jobs must merge to identical bytes)"
    "$SUP" --state-dir "$SMOKE_DIR/wide" --shards 5 --jobs 2 "${CFG[@]}" > /dev/null
    diff -u "$SMOKE_DIR/ref/curves.txt" "$SMOKE_DIR/wide/curves.txt" \
        || { echo "curves depend on the shard/worker split"; exit 1; }

    echo "==> dse: kill -9 a worker and the supervisor mid-campaign, then --resume"
    "$SUP" --state-dir "$SMOKE_DIR/victim" --shards 3 --jobs 3 --point-delay-ms 60 \
        "${CFG[@]}" > /dev/null 2>&1 &
    SUP_PID=$!
    for _ in $(seq 1 100); do
        [ -f "$SMOKE_DIR/victim/shard-0000.hb" ] && break
        sleep 0.1
    done
    [ -f "$SMOKE_DIR/victim/shard-0000.hb" ] \
        || { echo "no worker made progress before the kill"; exit 1; }
    kill -9 "$(cat "$SMOKE_DIR/victim/shard-0000.pid")" 2> /dev/null || true
    sleep 0.3
    kill -9 "$SUP_PID" 2> /dev/null || true
    wait "$SUP_PID" 2> /dev/null || true
    # Orphaned workers survive the supervisor's death; take them down
    # the way an init system would before resuming.
    for pidfile in "$SMOKE_DIR"/victim/shard-*.pid; do
        [ -f "$pidfile" ] && kill -9 "$(cat "$pidfile")" 2> /dev/null || true
    done
    "$SUP" --state-dir "$SMOKE_DIR/victim" --shards 3 --jobs 3 --resume \
        "${CFG[@]}" > /dev/null
    diff -u "$SMOKE_DIR/ref/curves.txt" "$SMOKE_DIR/victim/curves.txt" \
        || { echo "resumed campaign diverged from the undisturbed run"; exit 1; }

    echo "==> dse: seeded shard chaos (kills + torn tails) must still reach full coverage"
    "$SUP" --state-dir "$SMOKE_DIR/chaos" --shards 2 --jobs 2 \
        --max-attempts 10 --backoff-ms 0 \
        --chaos-seed 11 --chaos-kill 60 --chaos-tear 700 \
        "${CFG[@]}" > /dev/null 2> /dev/null
    diff -u "$SMOKE_DIR/ref/curves.txt" "$SMOKE_DIR/chaos/curves.txt" \
        || { echo "chaos campaign diverged from the undisturbed run"; exit 1; }
    grep -q "# coverage 30/30 = 1.0000" "$SMOKE_DIR/chaos/manifest.txt" \
        || { echo "chaos campaign did not reach full coverage"; \
             cat "$SMOKE_DIR/chaos/manifest.txt"; exit 1; }

    echo "==> dse: a permanently hostile shard must degrade loudly (exit 3, FAILED manifest)"
    RC=0
    "$SUP" --state-dir "$SMOKE_DIR/partial" --shards 2 --jobs 2 \
        --max-attempts 2 --backoff-ms 0 \
        --chaos-seed 1 --chaos-kill 1000 --chaos-shard 1 \
        "${CFG[@]}" > /dev/null 2> /dev/null || RC=$?
    [ "$RC" -eq 3 ] \
        || { echo "partial campaign exited $RC, expected the distinct status 3"; exit 1; }
    grep -q "# status partial" "$SMOKE_DIR/partial/manifest.txt" \
        || { echo "manifest does not admit partial coverage"; exit 1; }
    grep -q "FAILED" "$SMOKE_DIR/partial/manifest.txt" \
        || { echo "manifest does not name the failed shard"; exit 1; }
}

stage_platform() {
    [ -n "$SMOKE_DIR" ] && rm -rf "$SMOKE_DIR"
    SMOKE_DIR="$(mktemp -d)"
    SWEEP=target/release/sweep
    SUP=target/release/dse-supervisor
    WORKER=target/release/dse-worker
    cargo build --release --offline -p contention-bench --bin sweep
    cargo build --release --offline -p dse

    echo "==> platform: golden sweep replay per profile (--jobs 1 vs 4)"
    # Each built-in profile has a committed golden; the sweep must
    # reproduce it byte for byte at any worker count. The explicit
    # `--platform tc27x` spelling must equal the flagless default.
    for jobs in 1 4; do
        "$SWEEP" --scenario sc2 --platform tc27x --jobs "$jobs" \
            > "$SMOKE_DIR/def.csv" 2> /dev/null
        diff -u crates/bench/tests/golden/sweep_sc2.csv "$SMOKE_DIR/def.csv" \
            || { echo "explicit --platform tc27x diverged from the default golden"; exit 1; }
        "$SWEEP" --scenario sc2 --platform tc27x-tdma --jobs "$jobs" \
            > "$SMOKE_DIR/tdma.csv" 2> /dev/null
        diff -u crates/bench/tests/golden/sweep_sc2_tdma.csv "$SMOKE_DIR/tdma.csv" \
            || { echo "tc27x-tdma sweep diverged from its golden at --jobs $jobs"; exit 1; }
        "$SWEEP" --scenario low --platform ahb2 --jobs "$jobs" \
            > "$SMOKE_DIR/ahb2.csv" 2> /dev/null
        diff -u crates/bench/tests/golden/sweep_low_ahb2.csv "$SMOKE_DIR/ahb2.csv" \
            || { echo "ahb2 sweep diverged from its golden at --jobs $jobs"; exit 1; }
    done

    echo "==> platform: unknown profile is rejected with the registry listing"
    if "$SWEEP" --platform vax > /dev/null 2> "$SMOKE_DIR/err.log"; then
        echo "unknown platform was accepted"; exit 1
    fi
    grep -q "known platforms: .*tc27x-tdma" "$SMOKE_DIR/err.log" \
        || { echo "rejection does not list the built-in profiles"; \
             cat "$SMOKE_DIR/err.log"; exit 1; }

    echo "==> platform: cross-platform state isolation (alien journals refused loudly)"
    # A campaign's persisted state binds its platform fingerprint: a
    # resume of a default-platform state dir under tc27x-tdma must not
    # silently reuse (or corrupt) the alien journals — it fails loudly,
    # while a fresh tdma campaign completes and yields distinct curves.
    CFG=(--shards 2 --jobs 2 --seed 7 --utils 4 --sets 4 --tasks 3 --worker-bin "$WORKER")
    "$SUP" --state-dir "$SMOKE_DIR/def" "${CFG[@]}" > /dev/null
    RC=0
    "$SUP" --state-dir "$SMOKE_DIR/def" --platform tc27x-tdma --resume \
        "${CFG[@]}" > /dev/null 2> /dev/null || RC=$?
    [ "$RC" -ne 0 ] \
        || { echo "tdma resume silently consumed a default-platform state dir"; exit 1; }
    grep -q "different campaign configuration" "$SMOKE_DIR"/def/shard-*.log \
        || { echo "alien journal was not refused with an explicit mismatch error"; exit 1; }
    "$SUP" --state-dir "$SMOKE_DIR/tdma" --platform tc27x-tdma "${CFG[@]}" > /dev/null
    grep -q "# status complete" "$SMOKE_DIR/tdma/manifest.txt" \
        || { echo "fresh tdma campaign did not complete"; exit 1; }
    if cmp -s "$SMOKE_DIR/def/curves.txt" "$SMOKE_DIR/tdma/curves.txt"; then
        echo "tdma curves are identical to the default platform's"; exit 1
    fi
}

stage_attr() {
    [ -n "$SMOKE_DIR" ] && rm -rf "$SMOKE_DIR"
    SMOKE_DIR="$(mktemp -d)"
    MAIN=target/release/aurix-contention
    LINT=target/release/telemetry_lint
    cargo build --release --offline
    cargo build --release --offline -p contention-bench --bin telemetry_lint

    echo "==> attr: tightness audit on every builtin platform (observed <= bound)"
    # Every audited bound must hold for every access class, slave and
    # scenario; a single VIOLATION row means an unsound model and fails
    # the gate outright.
    for p in tc27x tc27x-tdma ahb2; do
        for s in sc1 sc2; do
            "$MAIN" --platform "$p" --jobs 1 contention-attr --scenario "$s" \
                > "$SMOKE_DIR/attr_${p}_${s}.txt" 2> /dev/null
            if grep -q "VIOLATION" "$SMOKE_DIR/attr_${p}_${s}.txt"; then
                echo "bound violation on $p/$s:"
                cat "$SMOKE_DIR/attr_${p}_${s}.txt"; exit 1
            fi
            grep -q "violations: 0" "$SMOKE_DIR/attr_${p}_${s}.txt" \
                || { echo "no tightness verdict in the $p/$s report"; \
                     cat "$SMOKE_DIR/attr_${p}_${s}.txt"; exit 1; }
        done
    done

    echo "==> attr: golden attribution matrix replay (jobs 1 vs 4, event vs tick)"
    # The committed sc2 attribution stream must reproduce byte-for-byte
    # at any worker count and under either timing kernel — the ledger
    # inherits the grant sequence's bit-identity.
    for variant in "--jobs 1 --engine event" "--jobs 4 --engine event" "--jobs 4 --engine tick"; do
        # shellcheck disable=SC2086  # variant is a flag list on purpose
        "$MAIN" $variant --attribution "$SMOKE_DIR/attr.jsonl" \
            contention-attr --scenario sc2 > /dev/null 2> /dev/null
        diff -u crates/bench/tests/golden/attribution_sc2.jsonl "$SMOKE_DIR/attr.jsonl" \
            || { echo "attribution stream diverged from the golden at $variant"; exit 1; }
    done

    echo "==> attr: attribution telemetry passes the schema lint warning-free"
    "$LINT" "$SMOKE_DIR/attr.jsonl" --deny-warn \
        || { echo "attribution telemetry failed the lint"; exit 1; }
}

STAGE="${1:-all}"
case "$STAGE" in
    lint)     stage_lint ;;
    test)     stage_test ;;
    golden)   stage_golden ;;
    perf)     stage_perf ;;
    serve)    stage_serve ;;
    dse)      stage_dse ;;
    platform) stage_platform ;;
    attr)     stage_attr ;;
    all)
        stage_lint
        stage_test
        stage_golden
        stage_serve
        stage_dse
        stage_platform
        stage_attr
        # Informational in the full gate: a slow or noisy local machine
        # must not fail `ci.sh all`. Run `ci.sh perf` to gate.
        stage_perf || echo "warning: perf stage failed (non-gating in 'all')"
        ;;
    *)
        echo "usage: $0 [lint|test|golden|perf|serve|dse|platform|attr|all]" >&2
        exit 2
        ;;
esac

echo "==> CI stage '$STAGE' passed"
