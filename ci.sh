#!/usr/bin/env bash
# The CI gate, runnable locally: formatting, lints, hermetic build, tests.
#
# The build is fully offline — the workspace has no external
# dependencies and Cargo.lock is committed — so `--offline` both
# enforces hermeticity and catches accidental dependency creep.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
# Library crates additionally carry
#   #![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
# at their roots, so a stray unwrap()/expect() outside #[cfg(test)] code
# fails this step.
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> unwrap/expect deny attribute present in every crate root"
for root in src/lib.rs crates/*/src/lib.rs; do
    grep -q 'deny(clippy::unwrap_used, clippy::expect_used)' "$root" \
        || { echo "missing unwrap/expect deny attribute: $root"; exit 1; }
done

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --offline"
cargo test --workspace -q --offline

echo "==> fault-injection property suite (1,000 seeded trials)"
cargo test -q --offline -p mbta --test fault_injection

echo "==> golden sweep regression (byte-identical CSV, fallback rates)"
cargo test -q --offline -p contention-bench --test golden_sweep

echo "==> CI gate passed"
