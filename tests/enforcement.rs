//! Signature contracts + runtime capacity enforcement (reference [16]):
//! the combination that makes a pre-computed, signature-based WCET bound
//! hold even against a misbehaving co-runner.

use contention::{
    ContenderSignature, ContentionModel, IlpPtacModel, Platform, ScenarioConstraints,
};
use tc27x_sim::{
    CoreId, DataObject, Pattern, Placement, Program, Region, SimConfig, System, TaskSpec,
};

fn lmu_hammer(core: CoreId, accesses: u32) -> TaskSpec {
    let prog = Program::build(|b| {
        b.repeat(accesses, |b| {
            b.load("buf", Pattern::Sequential);
        });
    });
    TaskSpec::new("hammer", prog, Placement::pspr(core)).with_object(DataObject::new(
        "buf",
        4 << 10,
        Placement::new(Region::Lmu, false),
    ))
}

/// Without enforcement, a contender that ignores its contract can push
/// the victim past the signature-based bound; with the [16]-style SRI
/// quota, the bound holds.
#[test]
fn enforcement_restores_signature_soundness() {
    let platform = Platform::tc277_reference();
    let (victim_core, rogue_core) = (CoreId(1), CoreId(2));
    let victim = lmu_hammer(victim_core, 400);
    // The rogue issues 10x more traffic than its contract admits.
    let rogue = lmu_hammer(rogue_core, 4_000);
    let contract = ContenderSignature::new("contract", 0, 60);

    let victim_profile = mbta::isolation_profile(&victim, victim_core).unwrap();
    let rogue_profile = mbta::isolation_profile(&rogue, rogue_core).unwrap();
    assert!(
        !contract.admits(&platform, &rogue_profile),
        "the rogue must actually violate its contract"
    );

    let model = IlpPtacModel::new(&platform, ScenarioConstraints::unconstrained());
    let contract_bound = model
        .wcet_estimate(&victim_profile, &[&contract.to_profile(&platform)])
        .unwrap()
        .bound_cycles();

    // Unenforced co-run: the contract bound is broken.
    let unenforced = {
        let mut sys = System::tc277();
        sys.load(victim_core, &victim).unwrap();
        sys.load(rogue_core, &rogue).unwrap();
        sys.run_until(victim_core)
            .unwrap()
            .execution_time(victim_core)
    };
    assert!(
        unenforced > contract_bound,
        "the rogue should break the contract bound ({unenforced} <= {contract_bound})"
    );

    // Enforced co-run: quota = contract ceiling; the bound holds.
    let cfg = SimConfig::tc277_reference().with_sri_quota(rogue_core, 60);
    let mut sys = System::with_config(cfg);
    sys.load(victim_core, &victim).unwrap();
    sys.load(rogue_core, &rogue).unwrap();
    let out = sys.run_until(victim_core).unwrap();
    assert!(
        out.result(rogue_core).suspended,
        "the rogue must be cut off"
    );
    let enforced = out.execution_time(victim_core);
    assert!(
        enforced <= contract_bound,
        "enforced co-run {enforced} must respect the contract bound {contract_bound}"
    );
}

/// Enforcement is invisible to well-behaved contenders: with a quota
/// above its real usage, the co-run is cycle-identical to the
/// unenforced one.
#[test]
fn enforcement_is_transparent_within_budget() {
    let (a, b) = (CoreId(1), CoreId(2));
    let victim = lmu_hammer(a, 300);
    let polite = lmu_hammer(b, 200);

    let unenforced = {
        let mut sys = System::tc277();
        sys.load(a, &victim).unwrap();
        sys.load(b, &polite).unwrap();
        sys.run_until(a).unwrap().execution_time(a)
    };
    let enforced = {
        let cfg = SimConfig::tc277_reference().with_sri_quota(b, 10_000);
        let mut sys = System::with_config(cfg);
        sys.load(a, &victim).unwrap();
        sys.load(b, &polite).unwrap();
        sys.run_until(a).unwrap().execution_time(a)
    };
    assert_eq!(unenforced, enforced);
}
