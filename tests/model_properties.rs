//! Property-style tests on the contention models: soundness orderings
//! and monotonicity over randomly generated counter profiles.
//!
//! Profiles are generated with the simulator's seeded [`SplitMix64`];
//! each case index is a deterministic reproducer.

use contention::{
    AccessCounts, ContentionModel, DebugCounters, FtcModel, IdealModel, IlpPtacModel,
    IsolationProfile, Operation, Platform, ScenarioConstraints, Target,
};
use tc27x_sim::rng::SplitMix64;

/// A random but *internally consistent* profile: per-target access
/// counts are drawn first, counters are derived from them assuming every
/// request stalls for its Table 2 minimum (the best case the bounding
/// equations are designed around).
fn consistent_profile(rng: &mut SplitMix64, name: &'static str) -> IsolationProfile {
    let platform = Platform::tc277_reference();
    let p0c = rng.below(300);
    let p1c = rng.below(300);
    let p0d = rng.below(200);
    let p1d = rng.below(200);
    let dfd = rng.below(100);
    let lmc = rng.below(400);
    let lmd = rng.below(400);
    let base = 1_000 + rng.below(99_000);
    let mut ptac = AccessCounts::new();
    ptac.set(Target::Pf0, Operation::Code, p0c);
    ptac.set(Target::Pf1, Operation::Code, p1c);
    ptac.set(Target::Pf0, Operation::Data, p0d);
    ptac.set(Target::Pf1, Operation::Data, p1d);
    ptac.set(Target::Dfl, Operation::Data, dfd);
    ptac.set(Target::Lmu, Operation::Code, lmc);
    ptac.set(Target::Lmu, Operation::Data, lmd);
    let ps: u64 = [Target::Pf0, Target::Pf1, Target::Lmu]
        .iter()
        .map(|t| ptac.get(*t, Operation::Code) * platform.stall(*t, Operation::Code))
        .sum();
    let ds: u64 = Target::all()
        .iter()
        .map(|t| ptac.get(*t, Operation::Data) * platform.stall(*t, Operation::Data))
        .sum();
    let counters = DebugCounters {
        ccnt: base + ps + ds,
        pmem_stall: ps,
        dmem_stall: ds,
        pcache_miss: p0c + p1c + lmc,
        dcache_miss_clean: 0,
        dcache_miss_dirty: 0,
    };
    IsolationProfile::new(name, counters).with_ptac(ptac)
}

/// Model ordering: ideal ≤ ILP-PTAC ≤ fTC on consistent profiles.
#[test]
fn model_hierarchy_holds() {
    let platform = Platform::tc277_reference();
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0x01de_0000 + case);
        let a = consistent_profile(&mut rng, "a");
        let b = consistent_profile(&mut rng, "b");
        let ideal = IdealModel::new(&platform).pairwise_bound(&a, &b).unwrap();
        let ilp = IlpPtacModel::new(&platform, ScenarioConstraints::unconstrained())
            .pairwise_bound(&a, &b)
            .unwrap();
        let ftc = FtcModel::new(&platform).pairwise_bound(&a, &b).unwrap();
        assert!(
            ideal.delta_cycles <= ilp.delta_cycles,
            "case {case}: ideal {} > ilp {}",
            ideal.delta_cycles,
            ilp.delta_cycles
        );
        assert!(
            ilp.delta_cycles <= ftc.delta_cycles,
            "case {case}: ilp {} > ftc {}",
            ilp.delta_cycles,
            ftc.delta_cycles
        );
    }
}

/// The ILP bound is monotone in the contender's traffic: doubling
/// every contender counter can only increase the bound.
#[test]
fn ilp_monotone_in_contender() {
    let platform = Platform::tc277_reference();
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0x2070_0000 + case);
        let a = consistent_profile(&mut rng, "a");
        let b = consistent_profile(&mut rng, "b");
        let model = IlpPtacModel::new(&platform, ScenarioConstraints::unconstrained());
        let small = model.pairwise_bound(&a, &b).unwrap();
        let c = *b.counters();
        let doubled = IsolationProfile::new(
            "b2",
            DebugCounters {
                ccnt: c.ccnt * 2,
                pmem_stall: c.pmem_stall * 2,
                dmem_stall: c.dmem_stall * 2,
                pcache_miss: c.pcache_miss * 2,
                dcache_miss_clean: c.dcache_miss_clean * 2,
                dcache_miss_dirty: c.dcache_miss_dirty * 2,
            },
        );
        let big = model.pairwise_bound(&a, &doubled).unwrap();
        assert!(big.delta_cycles >= small.delta_cycles, "case {case}");
    }
}

/// Multi-contender bounds are the sum of pairwise bounds.
#[test]
fn multi_contender_additivity() {
    let platform = Platform::tc277_reference();
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0x3add_0000 + case);
        let a = consistent_profile(&mut rng, "a");
        let b = consistent_profile(&mut rng, "b");
        let c = consistent_profile(&mut rng, "c");
        let model = IlpPtacModel::new(&platform, ScenarioConstraints::unconstrained());
        let ab = model.pairwise_bound(&a, &b).unwrap().delta_cycles;
        let ac = model.pairwise_bound(&a, &c).unwrap().delta_cycles;
        let both = model.contention_bound(&a, &[&b, &c]).unwrap().delta_cycles;
        assert_eq!(both, ab + ac, "case {case}");
    }
}

/// The fTC bound dominates the ideal model against *any* contender —
/// the formal meaning of full time-composability.
#[test]
fn ftc_dominates_ideal_for_any_contender() {
    let platform = Platform::tc277_reference();
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0x4f7c_0000 + case);
        let a = consistent_profile(&mut rng, "a");
        let b = consistent_profile(&mut rng, "b");
        let c = consistent_profile(&mut rng, "c");
        let ftc = FtcModel::new(&platform).pairwise_bound(&a, &b).unwrap();
        for other in [&b, &c] {
            let ideal = IdealModel::new(&platform)
                .pairwise_bound(&a, other)
                .unwrap();
            assert!(ftc.delta_cycles >= ideal.delta_cycles, "case {case}");
        }
    }
}

/// Interference witnesses returned by the ILP respect the paper's
/// constraints (Eqs. 10-19) against the witness access counts.
#[test]
fn ilp_witness_satisfies_constraints() {
    let platform = Platform::tc277_reference();
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0x5717_0000 + case);
        let a = consistent_profile(&mut rng, "a");
        let b = consistent_profile(&mut rng, "b");
        let model = IlpPtacModel::new(&platform, ScenarioConstraints::unconstrained());
        let sol = model.solve_detailed(&a, &b).unwrap();
        if sol.relaxed {
            // Rounded witnesses of the LP fallback are only approximate.
            continue;
        }
        let mapping = sol.bound.interference.as_ref().unwrap();
        let nb = sol.nb.as_ref().unwrap();
        for t in Target::all() {
            let a_sum: u64 = Operation::all().iter().map(|o| sol.na.get(t, *o)).sum();
            let mut ba_sum = 0;
            for o in Operation::all() {
                if !platform.paths().is_feasible(t, o) {
                    continue;
                }
                let v = mapping.get(t, o);
                assert!(v <= nb.get(t, o), "case {case}: n_ba > n_b at {t}/{o}");
                ba_sum += v;
            }
            assert!(
                ba_sum <= a_sum,
                "case {case}: cumulative cap violated at {t}"
            );
        }
    }
}
