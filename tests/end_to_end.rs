//! End-to-end integration: calibration → platform tables → isolation
//! profiling → models → co-run validation, across all crates.

use aurix_contention::prelude::*;

#[test]
fn calibrated_platform_reproduces_reference_tables() {
    let cal = mbta::calibrate().expect("calibration campaign");
    let reference = Platform::tc277_reference();
    for (t, o, v) in reference.stall_table().iter() {
        if reference.paths().is_feasible(t, o) {
            assert_eq!(cal.stall.get(t, o), v, "cs^{{{t},{o}}}");
        }
    }
    for (t, o, v) in reference.latency_table().iter() {
        if reference.paths().is_feasible(t, o) {
            assert_eq!(cal.latency.get(t, o), v, "l^{{{t},{o}}}");
        }
    }
    assert_eq!(cal.lmu_dirty_latency, reference.lmu_dirty_latency());
}

#[test]
fn full_pipeline_with_calibrated_tables() {
    // Use the *calibrated* platform end to end, not the reference one:
    // this is exactly the paper's deployment story.
    let platform = mbta::calibrate().expect("calibration").into_platform();
    let panel =
        mbta::figure4_panel(DeploymentScenario::Scenario1, &platform, 42).expect("figure 4 panel");
    assert!(panel.all_bounds_sound());
    // fTC stays load-invariant, ILP adapts.
    assert_eq!(
        panel.cells[0].ftc.bound_cycles(),
        panel.cells[2].ftc.bound_cycles()
    );
    assert!(panel.cells[0].ilp.bound_cycles() < panel.cells[2].ilp.bound_cycles());
}

#[test]
fn wcet_estimates_scale_with_isolation_time() {
    let platform = Platform::tc277_reference();
    let app_spec = workloads::control_loop(DeploymentScenario::Scenario1, CoreId(1), 42);
    let load_spec =
        workloads::contender(DeploymentScenario::Scenario1, LoadLevel::High, CoreId(2), 7);
    let app = mbta::isolation_profile(&app_spec, CoreId(1)).unwrap();
    let load = mbta::isolation_profile(&load_spec, CoreId(2)).unwrap();
    let model = IlpPtacModel::new(&platform, ScenarioConstraints::scenario1());
    let est = model.wcet_estimate(&app, &[&load]).unwrap();
    assert_eq!(est.isolation_cycles, app.counters().ccnt);
    assert_eq!(
        est.bound_cycles(),
        est.isolation_cycles + est.contention_cycles
    );
}

#[test]
fn hwm_campaign_feeds_models_conservatively() {
    let platform = Platform::tc277_reference();
    let spec = workloads::control_loop(DeploymentScenario::Scenario1, CoreId(1), 3);
    let hwm = mbta::hwm_campaign(&spec, CoreId(1), 3).unwrap();
    let single = mbta::isolation_profile(&spec, CoreId(1)).unwrap();
    // Envelope counters dominate the single-run profile, so the fTC
    // bound from the campaign dominates the single-run bound.
    let load = mbta::isolation_profile(
        &workloads::contender(DeploymentScenario::Scenario1, LoadLevel::Low, CoreId(2), 7),
        CoreId(2),
    )
    .unwrap();
    let ftc = FtcModel::new(&platform);
    let from_hwm = ftc.contention_bound(&hwm.profile, &[&load]).unwrap();
    let from_single = ftc.contention_bound(&single, &[&load]).unwrap();
    assert!(from_hwm.delta_cycles >= from_single.delta_cycles);
}

#[test]
fn table6_counter_identities() {
    // Scenario 1: P$_MISS equals the exact number of SRI code requests
    // — the identity the tailoring exploits.
    let block = mbta::table6_block(DeploymentScenario::Scenario1, 42).unwrap();
    for profile in [&block.core1, &block.core2] {
        let ptac = profile.ptac().expect("simulator attaches PTAC");
        let code_reqs = ptac.op_total(Operation::Code);
        assert_eq!(
            profile.counters().pcache_miss,
            code_reqs,
            "{}",
            profile.name()
        );
        // And data never touches the flash banks in scenario 1.
        assert_eq!(ptac.get(Target::Pf0, Operation::Data), 0);
        assert_eq!(ptac.get(Target::Pf1, Operation::Data), 0);
        assert_eq!(ptac.get(Target::Dfl, Operation::Data), 0);
    }
}

#[test]
fn low_traffic_contention_is_about_ten_percent() {
    // §4.2 closing remark: realistic applications see ~10% bounds.
    let platform = Platform::tc277_reference();
    let panel = mbta::figure4_panel(DeploymentScenario::LowTraffic, &platform, 42).unwrap();
    let h = panel.cells.last().unwrap();
    let overhead = h.ilp.ratio() - 1.0;
    assert!(
        overhead > 0.0 && overhead < 0.25,
        "low-traffic ILP overhead {overhead:.2} should be small"
    );
    // And far below the stressing benchmark's 30-50%.
    let stress = mbta::figure4_panel(DeploymentScenario::Scenario1, &platform, 42).unwrap();
    let stress_overhead = stress.cells.last().unwrap().ilp.ratio() - 1.0;
    assert!(overhead < stress_overhead / 2.0);
}

#[test]
fn facade_prelude_covers_the_workflow() {
    // Compile-time check that the prelude exposes what the README
    // advertises; minimal smoke use.
    let platform = Platform::tc277_reference();
    let _ = FtcModel::new(&platform);
    let _ = IdealModel::new(&platform);
    let _: ScenarioConstraints = ScenarioConstraints::scenario2();
    let _: SimConfig = SimConfig::tc277_reference();
    let bounds = AccessBounds::from_counters(
        &platform,
        &contention::DebugCounters {
            pmem_stall: 60,
            dmem_stall: 100,
            ..Default::default()
        },
    );
    assert_eq!(bounds.total(), 20);
}
