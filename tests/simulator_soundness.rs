//! The strongest cross-crate property: for *randomly generated*
//! workloads, every model's WCET estimate must dominate the observed
//! co-run execution time on the simulator. This exercises the entire
//! stack — program builder, linker, caches, SRI arbitration, counters,
//! access-count bounding and the ILP — against the ground truth.

use contention::{ContentionModel, FtcModel, IlpPtacModel, Platform, ScenarioConstraints};
use proptest::prelude::*;
use tc27x_sim::{CoreId, DataObject, Pattern, Placement, Program, Region, TaskSpec};

/// A randomly shaped task: loops of loads/stores/computes over objects
/// in randomly chosen (admissible) shared placements.
#[derive(Clone, Debug)]
struct RandTask {
    code_bank: u8,
    code_cacheable: bool,
    obj_region: u8,
    iters: u32,
    loads: u32,
    stores: u32,
    compute: u32,
    seed: u64,
}

fn rand_task() -> impl Strategy<Value = RandTask> {
    (
        0u8..3,          // code bank: pf0, pf1, lmu
        proptest::bool::ANY,
        0u8..3,          // object region: lmu n$, dfl n$, pf $ (reads only)
        1u32..40,        // iters
        0u32..12,        // loads per iter
        0u32..6,         // stores per iter
        0u32..30,        // compute cycles per iter
        0u64..1000,
    )
        .prop_map(
            |(code_bank, code_cacheable, obj_region, iters, loads, stores, compute, seed)| {
                RandTask {
                    code_bank,
                    code_cacheable,
                    obj_region,
                    iters,
                    loads,
                    stores,
                    compute,
                    seed,
                }
            },
        )
}

fn build_spec(t: &RandTask, name: &str) -> TaskSpec {
    let code_region = match t.code_bank {
        0 => Region::Pflash0,
        1 => Region::Pflash1,
        _ => Region::Lmu,
    };
    let (obj_region, obj_cacheable, stores_allowed) = match t.obj_region {
        0 => (Region::Lmu, false, true),
        1 => (Region::Dflash, false, true),
        // Flash data must be cacheable; keep it read-only so write-backs
        // never target the flash (realistic: constants).
        _ => (Region::Pflash0, true, false),
    };
    let prog = Program::build(|b| {
        b.repeat(t.iters, |b| {
            for _ in 0..t.loads {
                b.load("obj", Pattern::Sequential);
            }
            if stores_allowed {
                for _ in 0..t.stores {
                    b.store("obj", Pattern::Sequential);
                }
            }
            if t.compute > 0 {
                b.compute(t.compute);
            }
        });
    });
    TaskSpec::new(name, prog, Placement::new(code_region, t.code_cacheable))
        .with_object(DataObject::new(
            "obj",
            4 << 10,
            Placement::new(obj_region, obj_cacheable),
        ))
        .with_seed(t.seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// fTC and (unconstrained) ILP-PTAC bounds computed from isolation
    /// profiles dominate the observed co-run time, whatever the
    /// workloads look like.
    #[test]
    fn bounds_dominate_random_corun(a in rand_task(), b in rand_task()) {
        let platform = Platform::tc277_reference();
        let (ca, cb) = (CoreId(1), CoreId(2));
        let spec_a = build_spec(&a, "rand-a");
        let spec_b = build_spec(&b, "rand-b");

        let pa = mbta::isolation_profile(&spec_a, ca).unwrap();
        let pb = mbta::isolation_profile(&spec_b, cb).unwrap();
        let observed = mbta::observed_corun(&spec_a, ca, &spec_b, cb).unwrap();

        let ftc = FtcModel::new(&platform).wcet_estimate(&pa, &[&pb]).unwrap();
        prop_assert!(
            ftc.bound_cycles() >= observed,
            "fTC bound {} < observed {} for {:?} vs {:?}",
            ftc.bound_cycles(), observed, a, b
        );

        let ilp = IlpPtacModel::new(&platform, ScenarioConstraints::unconstrained())
            .wcet_estimate(&pa, &[&pb]).unwrap();
        prop_assert!(
            ilp.bound_cycles() >= observed,
            "ILP bound {} < observed {} for {:?} vs {:?}",
            ilp.bound_cycles(), observed, a, b
        );
        prop_assert!(ilp.bound_cycles() <= ftc.bound_cycles());
    }

    /// Co-running never makes a task faster, and isolation is
    /// deterministic.
    #[test]
    fn corun_never_speeds_up(a in rand_task(), b in rand_task()) {
        let (ca, cb) = (CoreId(1), CoreId(2));
        let spec_a = build_spec(&a, "rand-a");
        let spec_b = build_spec(&b, "rand-b");
        let iso1 = mbta::isolation_profile(&spec_a, ca).unwrap().counters().ccnt;
        let iso2 = mbta::isolation_profile(&spec_a, ca).unwrap().counters().ccnt;
        prop_assert_eq!(iso1, iso2, "isolation runs are deterministic");
        let co = mbta::observed_corun(&spec_a, ca, &spec_b, cb).unwrap();
        prop_assert!(co >= iso1);
    }
}

/// Deterministic regression: a hand-picked nasty pair (both hammering
/// the same flash bank with non-cacheable code and the LMU with data).
#[test]
fn worst_alignment_pair_is_still_bounded() {
    let platform = Platform::tc277_reference();
    let mk = |_core: CoreId| {
        let prog = Program::build(|b| {
            b.repeat(300, |b| {
                b.load("obj", Pattern::Sequential);
            });
        });
        TaskSpec::new("hammer", prog, Placement::new(Region::Pflash0, false))
            .with_object(DataObject::new(
                "obj",
                2 << 10,
                Placement::new(Region::Lmu, false),
            ))
    };
    let (ca, cb) = (CoreId(1), CoreId(2));
    let (sa, sb) = (mk(ca), mk(cb));
    let pa = mbta::isolation_profile(&sa, ca).unwrap();
    let pb = mbta::isolation_profile(&sb, cb).unwrap();
    let observed = mbta::observed_corun(&sa, ca, &sb, cb).unwrap();
    let ftc = FtcModel::new(&platform).wcet_estimate(&pa, &[&pb]).unwrap();
    let ilp = IlpPtacModel::new(&platform, ScenarioConstraints::unconstrained())
        .wcet_estimate(&pa, &[&pb])
        .unwrap();
    assert!(ftc.bound_cycles() >= observed);
    assert!(ilp.bound_cycles() >= observed);
    // This pair really does contend hard — the observation should be
    // clearly above isolation, making the soundness check meaningful.
    assert!(observed as f64 > 1.1 * pa.counters().ccnt as f64);
}
