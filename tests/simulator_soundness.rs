//! The strongest cross-crate property: for *randomly generated*
//! workloads, every model's WCET estimate must dominate the observed
//! co-run execution time on the simulator. This exercises the entire
//! stack — program builder, linker, caches, SRI arbitration, counters,
//! access-count bounding and the ILP — against the ground truth.
//!
//! Workload shapes are drawn from the simulator's seeded
//! [`SplitMix64`]; each case index is a deterministic reproducer.

use contention::{ContentionModel, FtcModel, IlpPtacModel, Platform, ScenarioConstraints};
use tc27x_sim::rng::SplitMix64;
use tc27x_sim::{CoreId, DataObject, Pattern, Placement, Program, Region, TaskSpec};

/// A randomly shaped task: loops of loads/stores/computes over objects
/// in randomly chosen (admissible) shared placements.
#[derive(Clone, Debug)]
struct RandTask {
    code_bank: u8,
    code_cacheable: bool,
    obj_region: u8,
    iters: u32,
    loads: u32,
    stores: u32,
    compute: u32,
    seed: u64,
}

fn rand_task(rng: &mut SplitMix64) -> RandTask {
    RandTask {
        code_bank: rng.below(3) as u8,
        code_cacheable: rng.flip(),
        obj_region: rng.below(3) as u8,
        iters: 1 + rng.below_u32(39),
        loads: rng.below_u32(12),
        stores: rng.below_u32(6),
        compute: rng.below_u32(30),
        seed: rng.below(1000),
    }
}

fn build_spec(t: &RandTask, name: &str) -> TaskSpec {
    let code_region = match t.code_bank {
        0 => Region::Pflash0,
        1 => Region::Pflash1,
        _ => Region::Lmu,
    };
    let (obj_region, obj_cacheable, stores_allowed) = match t.obj_region {
        0 => (Region::Lmu, false, true),
        1 => (Region::Dflash, false, true),
        // Flash data must be cacheable; keep it read-only so write-backs
        // never target the flash (realistic: constants).
        _ => (Region::Pflash0, true, false),
    };
    let prog = Program::build(|b| {
        b.repeat(t.iters, |b| {
            for _ in 0..t.loads {
                b.load("obj", Pattern::Sequential);
            }
            if stores_allowed {
                for _ in 0..t.stores {
                    b.store("obj", Pattern::Sequential);
                }
            }
            if t.compute > 0 {
                b.compute(t.compute);
            }
        });
    });
    TaskSpec::new(name, prog, Placement::new(code_region, t.code_cacheable))
        .with_object(DataObject::new(
            "obj",
            4 << 10,
            Placement::new(obj_region, obj_cacheable),
        ))
        .with_seed(t.seed)
}

/// fTC and (unconstrained) ILP-PTAC bounds computed from isolation
/// profiles dominate the observed co-run time, whatever the
/// workloads look like.
#[test]
fn bounds_dominate_random_corun() {
    let platform = Platform::tc277_reference();
    for case in 0..20u64 {
        let mut rng = SplitMix64::new(0xb0d0_0000 + case);
        let a = rand_task(&mut rng);
        let b = rand_task(&mut rng);
        let (ca, cb) = (CoreId(1), CoreId(2));
        let spec_a = build_spec(&a, "rand-a");
        let spec_b = build_spec(&b, "rand-b");

        let pa = mbta::isolation_profile(&spec_a, ca).unwrap();
        let pb = mbta::isolation_profile(&spec_b, cb).unwrap();
        let observed = mbta::observed_corun(&spec_a, ca, &spec_b, cb).unwrap();

        let ftc = FtcModel::new(&platform).wcet_estimate(&pa, &[&pb]).unwrap();
        assert!(
            ftc.bound_cycles() >= observed,
            "case {case}: fTC bound {} < observed {} for {a:?} vs {b:?}",
            ftc.bound_cycles(),
            observed,
        );

        let ilp = IlpPtacModel::new(&platform, ScenarioConstraints::unconstrained())
            .wcet_estimate(&pa, &[&pb])
            .unwrap();
        assert!(
            ilp.bound_cycles() >= observed,
            "case {case}: ILP bound {} < observed {} for {a:?} vs {b:?}",
            ilp.bound_cycles(),
            observed,
        );
        assert!(ilp.bound_cycles() <= ftc.bound_cycles(), "case {case}");
    }
}

/// Co-running never makes a task faster, and isolation is
/// deterministic.
#[test]
fn corun_never_speeds_up() {
    for case in 0..20u64 {
        let mut rng = SplitMix64::new(0xc0f0_0000 + case);
        let a = rand_task(&mut rng);
        let b = rand_task(&mut rng);
        let (ca, cb) = (CoreId(1), CoreId(2));
        let spec_a = build_spec(&a, "rand-a");
        let spec_b = build_spec(&b, "rand-b");
        let iso1 = mbta::isolation_profile(&spec_a, ca)
            .unwrap()
            .counters()
            .ccnt;
        let iso2 = mbta::isolation_profile(&spec_a, ca)
            .unwrap()
            .counters()
            .ccnt;
        assert_eq!(iso1, iso2, "case {case}: isolation runs are deterministic");
        let co = mbta::observed_corun(&spec_a, ca, &spec_b, cb).unwrap();
        assert!(co >= iso1, "case {case}");
    }
}

/// Deterministic regression: a hand-picked nasty pair (both hammering
/// the same flash bank with non-cacheable code and the LMU with data).
#[test]
fn worst_alignment_pair_is_still_bounded() {
    let platform = Platform::tc277_reference();
    let mk = |_core: CoreId| {
        let prog = Program::build(|b| {
            b.repeat(300, |b| {
                b.load("obj", Pattern::Sequential);
            });
        });
        TaskSpec::new("hammer", prog, Placement::new(Region::Pflash0, false)).with_object(
            DataObject::new("obj", 2 << 10, Placement::new(Region::Lmu, false)),
        )
    };
    let (ca, cb) = (CoreId(1), CoreId(2));
    let (sa, sb) = (mk(ca), mk(cb));
    let pa = mbta::isolation_profile(&sa, ca).unwrap();
    let pb = mbta::isolation_profile(&sb, cb).unwrap();
    let observed = mbta::observed_corun(&sa, ca, &sb, cb).unwrap();
    let ftc = FtcModel::new(&platform).wcet_estimate(&pa, &[&pb]).unwrap();
    let ilp = IlpPtacModel::new(&platform, ScenarioConstraints::unconstrained())
        .wcet_estimate(&pa, &[&pb])
        .unwrap();
    assert!(ftc.bound_cycles() >= observed);
    assert!(ilp.bound_cycles() >= observed);
    // This pair really does contend hard — the observation should be
    // clearly above isolation, making the soundness check meaningful.
    assert!(observed as f64 > 1.1 * pa.counters().ccnt as f64);
}
