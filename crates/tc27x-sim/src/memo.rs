//! Basic-block timing memoization for the event kernel.
//!
//! A *block* is a maximal run of instructions that a core executes
//! without touching the SRI: compute bursts, loop branches, scratchpad
//! accesses, and cache-*hit* fetches and data accesses. Inside such a
//! run the core is invisible to every other component — it posts no
//! requests, writes no trace records, and touches no counter except the
//! lazily-accounted `CCNT` — so its timing is a pure function of
//! core-private state. The event kernel exploits this twice:
//!
//! * **cold path** — instead of scheduling one kernel iteration per
//!   blocked/compute cycle, [`BlockMemo::attempt`] *interprets* the
//!   whole block in a tight loop, applies its state effects directly,
//!   and parks the core in a single `Blocked { until }` window covering
//!   the block's full cycle cost;
//! * **hot path** — the interpreted block is fingerprinted (FNV-1a over
//!   `(pc, fetch-buffer line)`, the same discipline as the profile memo
//!   cache in the `mbta` crate) and recorded with its cycle delta and
//!   state deltas, so the next visit with matching guards fast-forwards
//!   it without re-interpreting a single instruction.
//!
//! # Why bit-identity to the reference stepper holds
//!
//! The warp replaces a sequence of per-cycle steps whose *only*
//! externally visible action is `CCNT += 1` per cycle — and `CCNT` is
//! not charged eagerly. The core is left in exactly the
//! `Blocked { until }` state the live execution would reach, and the
//! kernel's existing lazy accounting ([`crate::engine`] fast-forwards
//! plus the `Blocked` arm of [`CorePipeline::step`]) charges `CCNT`
//! cycle-accurately whether or not the run survives to the end of the
//! window (cycle limits and observed-core completion cut it short in
//! some runs). Everything else a block mutates — `pc`, activation
//! wraps, loop counters, pattern cursors, the RNG, the fetch buffer and
//! the cache LRU/dirty state — is core-private and unobservable until
//! the core's next live step, at which point the warp has applied
//! precisely the mutations the reference stepper would have.
//!
//! Replay is guarded, not trusted: an entry is applied only when every
//! input the recorded block depended on matches — first-touch loop
//! counters, exact cursors for cacheable sites, the RNG state when a
//! cacheable random access occurred, residency of every recorded cache
//! line, and enough activations left to cover the recorded wraps.
//! Pattern cursors of scratchpad-resident objects evolve as pure
//! modular increments, so those need no guard at all and are replayed
//! as deltas. A fingerprint match whose guards fail counts as an
//! *invalidation* and falls back to re-interpretation (which re-records
//! the block, displacing the stale entry).
//!
//! Co-runner SRI posts need no invalidation sweep: blocks contain no
//! SRI operations by construction, so no co-runner action can change
//! what a block does or how long it takes — contention only ever shows
//! up at block *boundaries* (misses and non-cacheable accesses), which
//! always execute live through the unmodified [`CorePipeline::step`]
//! path. The adversarial co-run cases in `tests/memo_adversarial.rs`
//! and the 500-case differential suite in `tests/engine_equivalence.rs`
//! hold the whole argument to bit-identity, traces included.

use crate::core_pipeline::{CorePipeline, State};
use crate::counters::KernelStats;
use crate::linker::InstrKind;
use crate::program::Pattern;
use crate::rng::SplitMix64;

/// Hard cap on instructions interpreted per block: bounds the work done
/// in one warp and keeps entries small. Purely a performance knob — any
/// instruction boundary is a sound cut point.
const MAX_BLOCK: u32 = 512;

/// Replays shorter than this many cycles are declined: guard checking
/// plus delta application costs about as much as simply stepping the
/// couple of instructions live, so warping them buys nothing. Purely a
/// performance knob — the entry stays recorded and the live path is
/// bit-identical by construction.
const MIN_REPLAY_CYCLES: u64 = 4;

/// First-touch guard and final value of one loop counter.
#[derive(Clone, PartialEq, Eq, Debug)]
enum LoopSite {
    /// The site's counter reset inside the block (an execution took the
    /// exit branch), so later branch directions depend on the absolute
    /// counter value: guard on the exact entry value, restore the end
    /// value.
    Exact { idx: u32, entry: u32, end: u32 },
    /// Every execution of the site took the back-edge. Branch
    /// directions are then reproduced from *any* entry value `c` with
    /// `c + execs < count` (each of the `execs` increments stays below
    /// the trip count), and the counter simply advances by `execs` —
    /// this is what lets a block spanning a *partial* loop iteration
    /// replay across iterations, where the counter differs every visit.
    Advance { idx: u32, execs: u32, count: u32 },
}

/// Exact-cursor guard and final value (cacheable sites, whose access
/// offsets — and therefore cache lines — depend on the cursor value).
#[derive(Clone, PartialEq, Eq, Debug)]
struct CursorExact {
    idx: u32,
    entry: u32,
    end: u32,
}

/// Guard-free modular cursor advance (scratchpad sites: the offset is
/// never observable, and `k` sequential/stride steps compose to a
/// single `+= advance (mod modulus)` for *any* starting cursor).
#[derive(Clone, PartialEq, Eq, Debug)]
struct CursorDelta {
    idx: u32,
    advance: u32,
    modulus: u32,
}

/// How a block moves the core's RNG.
#[derive(Clone, PartialEq, Eq, Debug)]
enum RngEffect {
    /// No random-pattern site executed.
    Untouched,
    /// Only scratchpad random sites: the drawn values are unobservable,
    /// so skipping the stream forward by the draw count is exact.
    Draws(u64),
    /// A cacheable random site executed: the drawn offsets picked cache
    /// lines, so replay requires the exact entry state and restores the
    /// exact end state.
    Exact { entry: SplitMix64, end: SplitMix64 },
}

/// One recorded cache access. Every recorded access was a hit, and
/// replay re-performs it through the real cache so LRU order, dirty
/// bits and hit statistics move exactly as live execution would.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct HitAccess {
    /// `true` for the d-cache, `false` for the i-cache.
    dcache: bool,
    line: u32,
    write: bool,
}

/// A memoized stall-free block: entry fingerprint, guards, and the
/// complete state delta of executing it.
#[derive(Clone, PartialEq, Eq, Debug)]
struct BlockEntry {
    /// Entry `pc` (fingerprint component).
    pc: u32,
    /// Entry fetch-buffer line (fingerprint component).
    fetched_line: Option<u32>,
    /// Cycle cost of the whole block.
    dt: u64,
    /// Non-finishing activation wraps inside the block.
    wraps: u32,
    pc_end: u32,
    fetched_line_end: Option<u32>,
    loops: Vec<LoopSite>,
    cursor_exact: Vec<CursorExact>,
    cursor_delta: Vec<CursorDelta>,
    rng: RngEffect,
    accesses: Vec<HitAccess>,
}

/// FNV-1a 64 fingerprint of a block entry point.
fn fingerprint(pc: u32, fetched_line: Option<u32>) -> u64 {
    let mut bytes = [0u8; 9];
    bytes[..4].copy_from_slice(&pc.to_le_bytes());
    match fetched_line {
        Some(line) => {
            bytes[4] = 1;
            bytes[5..].copy_from_slice(&line.to_le_bytes());
        }
        None => bytes[4] = 0,
    }
    obs::fnv1a(&bytes)
}

/// Per-core block-memo table: direct-mapped over the entry fingerprint,
/// so lookup order and eviction are a pure function of the executed
/// instruction stream (no `HashMap` iteration-order hazards). Entries
/// are boxed so an empty table costs 8 bytes per slot — a run that
/// never records pays almost nothing for the table.
#[derive(Clone, Debug)]
pub(crate) struct BlockMemo {
    slots: Vec<Option<Box<BlockEntry>>>,
    /// The last few block heads whose attempt declined — `(pc,
    /// fetched_line + 1)`, zero line meaning an empty fetch buffer.
    /// A core stuck in a tight SRI-hammering loop attempts the same
    /// unprofitable head (a too-short block, or a data access that
    /// keeps missing the cache) at almost every interesting cycle;
    /// this tiny round-robin cache turns those repeats into a single
    /// compare. Purely a fast path: a skipped attempt just runs live,
    /// and a head that later becomes profitable is retried as soon as
    /// other declines rotate it out.
    declined: [(u32, u32); DECLINE_SLOTS],
    declined_next: u8,
}

/// Remembered declined heads; a hammering loop alternates between at
/// most a couple of heads, and anything bigger should fall through to
/// the real table.
const DECLINE_SLOTS: usize = 4;

impl BlockMemo {
    /// Creates a table with `capacity` direct-mapped slots, rounded up
    /// to the next power of two so slot selection is a mask rather than
    /// a division (0 disables memoization entirely).
    pub(crate) fn new(capacity: usize) -> Self {
        BlockMemo {
            slots: vec![
                None;
                capacity.next_power_of_two().min(1 << 20) * usize::from(capacity > 0)
            ],
            declined: [(u32::MAX, u32::MAX); DECLINE_SLOTS],
            declined_next: 0,
        }
    }

    /// Remembers `head` as declined and reports the attempt as such.
    fn decline(&mut self, head: (u32, u32)) -> bool {
        self.declined[self.declined_next as usize] = head;
        self.declined_next = (self.declined_next + 1) % DECLINE_SLOTS as u8;
        false
    }

    /// Tries to warp `core` across one stall-free block starting at
    /// simulation cycle `now`. On success the core's state carries all
    /// of the block's effects and sits in `Blocked { until }` at the
    /// block's exit cycle; `CCNT` is deliberately *not* charged (the
    /// kernel's lazy accounting covers the window exactly). Returns
    /// `false` — leaving the core untouched — when the very next
    /// instruction is a block boundary and must run live.
    ///
    /// The caller must only invoke this for a core in `Ready` or
    /// expired-`Blocked` state (about to process an instruction).
    pub(crate) fn attempt(
        &mut self,
        core: &mut CorePipeline,
        now: u64,
        kernel: &mut KernelStats,
    ) -> bool {
        if self.slots.is_empty() {
            return false;
        }
        // Statically-boundary instructions — shared non-cacheable data
        // ops — head no block, ever: skip the table entirely so cores
        // hammering the SRI pay one match, not a hash, per cycle.
        if let Some(instr) = core.image.instrs.get(core.pc as usize) {
            if let InstrKind::Mem { obj, .. } = instr.kind {
                let o = &core.image.objects[obj as usize];
                if !o.region.is_local() && !o.cacheable {
                    return false;
                }
            }
        }
        let head = (core.pc, core.fetched_line.map_or(0, |l| l + 1));
        if self.declined.contains(&head) {
            return false;
        }
        let slot =
            (fingerprint(core.pc, core.fetched_line) & (self.slots.len() as u64 - 1)) as usize;
        if let Some(entry) = &self.slots[slot] {
            if entry.pc == core.pc && entry.fetched_line == core.fetched_line {
                if entry.dt < MIN_REPLAY_CYCLES {
                    // Too short to be worth a warp; step it live.
                    return self.decline(head);
                }
                if replay_guards_hold(entry, core) {
                    apply(entry, core, now);
                    kernel.memo_hits += 1;
                    kernel.memo_warp_cycles += entry.dt;
                    return true;
                }
                kernel.memo_invalidations += 1;
            }
        }
        // Miss (or stale entry): interpret the block live, recording it.
        let Some(entry) = interpret(core, now) else {
            return self.decline(head);
        };
        kernel.memo_records += 1;
        kernel.memo_warp_cycles += entry.dt;
        if self.slots[slot]
            .as_ref()
            .is_some_and(|old| old.pc != entry.pc || old.fetched_line != entry.fetched_line)
        {
            kernel.memo_evictions += 1;
        }
        self.slots[slot] = Some(Box::new(entry));
        true
    }
}

/// Checks every guard of `entry` against the core's current state.
fn replay_guards_hold(entry: &BlockEntry, core: &CorePipeline) -> bool {
    // Every recorded wrap must leave activations to spare, or the block
    // would finish the task mid-replay.
    if entry.wraps > 0
        && core.activation as u64 + entry.wraps as u64 >= core.image.activations as u64
    {
        return false;
    }
    if !entry.loops.iter().all(|l| match l {
        LoopSite::Exact { idx, entry, .. } => core.loop_counters[*idx as usize] == *entry,
        LoopSite::Advance { idx, execs, count } => {
            (core.loop_counters[*idx as usize] as u64 + *execs as u64) < *count as u64
        }
    }) {
        return false;
    }
    if !entry
        .cursor_exact
        .iter()
        .all(|c| core.cursors[c.idx as usize] == c.entry)
    {
        return false;
    }
    if let RngEffect::Exact { entry: rng_in, .. } = &entry.rng {
        if core.rng != *rng_in {
            return false;
        }
    }
    // Every recorded access was a hit; hits never change the resident
    // set, so residency against the *entry* state implies residency at
    // each access's replay position.
    entry.accesses.iter().all(|a| {
        if a.dcache {
            core.dcache.probe(a.line)
        } else {
            core.icache.probe(a.line)
        }
    })
}

/// Applies a verified entry to the core.
fn apply(entry: &BlockEntry, core: &mut CorePipeline, now: u64) {
    for a in &entry.accesses {
        if a.dcache {
            core.dcache.replay_hit(a.line, a.write);
        } else {
            core.icache.replay_hit(a.line, a.write);
        }
    }
    for l in &entry.loops {
        match l {
            LoopSite::Exact { idx, end, .. } => core.loop_counters[*idx as usize] = *end,
            LoopSite::Advance { idx, execs, .. } => {
                core.loop_counters[*idx as usize] += *execs;
            }
        }
    }
    for c in &entry.cursor_exact {
        core.cursors[c.idx as usize] = c.end;
    }
    for d in &entry.cursor_delta {
        let cur = &mut core.cursors[d.idx as usize];
        *cur = (*cur + d.advance) % d.modulus;
    }
    match &entry.rng {
        RngEffect::Untouched => {}
        RngEffect::Draws(n) => core.rng.advance(*n),
        RngEffect::Exact { end, .. } => core.rng = end.clone(),
    }
    core.activation += entry.wraps;
    core.fetched_line = entry.fetched_line_end;
    core.pc = entry.pc_end;
    core.state = State::Blocked {
        until: now + entry.dt,
    };
}

/// Records the first-touch value of a guarded site, once per index.
fn first_touch(sites: &mut Vec<(u32, u32)>, idx: u32, value: u32) {
    if !sites.iter().any(|(i, _)| *i == idx) {
        sites.push((idx, value));
    }
}

/// Recording state for one `LoopEnd` site.
struct LoopRecord {
    idx: u32,
    /// Counter value at the site's first execution in the block.
    entry: u32,
    /// Number of executions in the block.
    execs: u32,
    /// Trip count (identical at every execution of the same site).
    count: u32,
    /// An execution took the exit branch (counter reset to zero).
    reset: bool,
}

/// Notes one execution of a `LoopEnd` site (before the increment).
fn note_loop_exec(records: &mut Vec<LoopRecord>, idx: u32, value: u32, count: u32, taken: bool) {
    let rec = match records.iter_mut().find(|r| r.idx == idx) {
        Some(r) => r,
        None => {
            records.push(LoopRecord {
                idx,
                entry: value,
                execs: 0,
                count,
                reset: false,
            });
            records
                .last_mut()
                .unwrap_or_else(|| unreachable!("pushed above"))
        }
    };
    rec.execs += 1;
    if !taken {
        rec.reset = true;
    }
}

/// Accumulates a modular cursor advance for a scratchpad site.
fn accumulate_delta(deltas: &mut Vec<CursorDelta>, idx: u32, step: u32, modulus: u32) {
    if let Some(d) = deltas.iter_mut().find(|d| d.idx == idx) {
        d.advance = (d.advance + step) % modulus;
    } else {
        deltas.push(CursorDelta {
            idx,
            advance: step % modulus,
            modulus,
        });
    }
}

/// Interprets one stall-free block starting at the instruction the core
/// is about to process, mutating the core exactly as the per-cycle path
/// would, and returns the recorded entry — or `None` if the very first
/// instruction is a block boundary (SRI access or task completion) and
/// nothing was executed.
///
/// On return the core sits in `Blocked { until: now + dt }`; `CCNT` is
/// not charged (see [`BlockMemo::attempt`]).
fn interpret(core: &mut CorePipeline, now: u64) -> Option<BlockEntry> {
    let entry_pc = core.pc;
    let entry_fetched = core.fetched_line;
    let rng_at_entry = core.rng.clone();
    let mut t = now;
    let mut executed = 0u32;
    let mut wraps = 0u32;
    let mut loop_records: Vec<LoopRecord> = Vec::new();
    let mut exact_entries: Vec<(u32, u32)> = Vec::new();
    let mut cursor_delta: Vec<CursorDelta> = Vec::new();
    let mut draws = 0u64;
    let mut rng_exact = false;
    let mut accesses: Vec<HitAccess> = Vec::new();

    while executed < MAX_BLOCK {
        // Activation wrap (free within the same processing cycle). A
        // wrap that would *finish* the task runs live: completion
        // writes a trace record and adjusts CCNT.
        if core.pc as usize >= core.image.instrs.len() {
            if core.activation as u64 + 1 >= core.image.activations as u64 {
                break;
            }
            core.activation += 1;
            core.pc = 0;
            wraps += 1;
        }
        let instr = core.image.instrs[core.pc as usize].clone();

        // Fetch through the PMI: scratchpad and i-cache hits stay in
        // the block; anything that would post to the SRI is a boundary.
        let line = instr.addr.line();
        if core.fetched_line != Some(line) {
            if instr.region.is_local() {
                core.fetched_line = Some(line);
            } else if instr.cacheable && core.icache.probe(line) {
                core.icache.replay_hit(line, false);
                accesses.push(HitAccess {
                    dcache: false,
                    line,
                    write: false,
                });
                core.fetched_line = Some(line);
            } else {
                break;
            }
        }

        // Execute.
        match instr.kind {
            InstrKind::Compute(n) => {
                core.pc += 1;
                t += n.max(1) as u64;
            }
            InstrKind::LoopEnd { target, count } => {
                let idx = core.pc;
                let before = core.loop_counters[idx as usize];
                let c = &mut core.loop_counters[idx as usize];
                *c += 1;
                let taken = *c < count;
                if taken {
                    core.pc = target;
                } else {
                    *c = 0;
                    core.pc += 1;
                }
                note_loop_exec(&mut loop_records, idx, before, count, taken);
                t += 1;
            }
            InstrKind::Mem {
                obj,
                pattern,
                write,
            } => {
                let idx = core.pc;
                let o = core.image.objects[obj as usize].clone();
                if o.region.is_local() {
                    // Offset is unobservable; only the cursor/RNG move.
                    match pattern {
                        Pattern::Sequential if o.size >= 4 => {
                            accumulate_delta(&mut cursor_delta, idx, 4, o.size);
                        }
                        Pattern::Stride(s) if o.size >= 4 => {
                            accumulate_delta(&mut cursor_delta, idx, s.max(4) % o.size, o.size);
                        }
                        Pattern::Sequential | Pattern::Stride(_) => {
                            // Tiny object: the cursor recurrence is not
                            // a plain modular add — guard it exactly.
                            first_touch(&mut exact_entries, idx, core.cursors[idx as usize]);
                        }
                        Pattern::Random => draws += 1,
                        Pattern::Fixed(_) => {}
                    }
                    let _ = core.next_offset(idx as usize, pattern, o.size);
                    core.pc += 1;
                    t += 1;
                } else if o.cacheable {
                    // Peek the offset without committing so a miss (run
                    // live) leaves the cursor for the live path.
                    let off = core.peek_offset(idx as usize, pattern, o.size);
                    let line2 = o.base.offset(off).line();
                    if core.dcache.probe(line2) {
                        match pattern {
                            Pattern::Sequential | Pattern::Stride(_) => {
                                first_touch(&mut exact_entries, idx, core.cursors[idx as usize]);
                            }
                            Pattern::Random => rng_exact = true,
                            Pattern::Fixed(_) => {}
                        }
                        let _ = core.next_offset(idx as usize, pattern, o.size);
                        core.dcache.replay_hit(line2, write);
                        accesses.push(HitAccess {
                            dcache: true,
                            line: line2,
                            write,
                        });
                        core.pc += 1;
                        t += 1;
                    } else {
                        break;
                    }
                } else {
                    // Non-cacheable shared data: SRI boundary.
                    break;
                }
            }
        }
        executed += 1;
    }

    if executed == 0 {
        return None;
    }
    core.state = State::Blocked { until: t };
    Some(BlockEntry {
        pc: entry_pc,
        fetched_line: entry_fetched,
        dt: t - now,
        wraps,
        pc_end: core.pc,
        fetched_line_end: core.fetched_line,
        loops: loop_records
            .into_iter()
            .map(|r| {
                if r.reset {
                    LoopSite::Exact {
                        idx: r.idx,
                        entry: r.entry,
                        end: core.loop_counters[r.idx as usize],
                    }
                } else {
                    LoopSite::Advance {
                        idx: r.idx,
                        execs: r.execs,
                        count: r.count,
                    }
                }
            })
            .collect(),
        cursor_exact: exact_entries
            .into_iter()
            .map(|(idx, entry)| CursorExact {
                idx,
                entry,
                end: core.cursors[idx as usize],
            })
            .collect(),
        cursor_delta,
        rng: if rng_exact {
            RngEffect::Exact {
                entry: rng_at_entry,
                end: core.rng.clone(),
            }
        } else if draws > 0 {
            RngEffect::Draws(draws)
        } else {
            RngEffect::Untouched
        },
        accesses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{CoreId, Region};
    use crate::config::SimConfig;
    use crate::layout::{DataObject, Placement, TaskSpec};
    use crate::program::{Pattern, Program};
    use crate::system::System;

    fn pspr_compute_task(core: CoreId) -> TaskSpec {
        let prog = Program::build(|b| {
            b.repeat(10, |b| {
                b.compute(3);
                b.load("buf", Pattern::Sequential);
            });
        });
        TaskSpec::new("memo-probe", prog, Placement::pspr(core)).with_object(DataObject::new(
            "buf",
            1 << 10,
            Placement::dspr(core),
        ))
    }

    /// Builds a loaded core directly, bypassing the engines.
    fn fresh_core(core: CoreId, spec: &TaskSpec) -> (CorePipeline, System) {
        let mut sys = System::with_config(SimConfig::tc277_reference());
        sys.load(core, spec).unwrap();
        let pipeline = sys.cores[core.index()].take().unwrap();
        (pipeline, sys)
    }

    #[test]
    fn fingerprint_distinguishes_fetch_state() {
        assert_ne!(fingerprint(4, None), fingerprint(4, Some(0)));
        assert_ne!(fingerprint(4, Some(1)), fingerprint(4, Some(2)));
        assert_ne!(fingerprint(4, Some(1)), fingerprint(5, Some(1)));
        assert_eq!(fingerprint(4, Some(1)), fingerprint(4, Some(1)));
    }

    #[test]
    fn interpret_stops_before_task_completion() {
        let c = CoreId(1);
        let spec = pspr_compute_task(c);
        let (mut pipeline, _sys) = fresh_core(c, &spec);
        // The whole task is scratchpad-resident: one block covers it up
        // to (not including) the finishing wrap.
        let entry = interpret(&mut pipeline, 0).unwrap();
        assert!(entry.dt > 0);
        assert_eq!(entry.wraps, 0);
        assert!(!pipeline.is_done(), "completion must run live");
        assert_eq!(pipeline.pc as usize, pipeline.image.instrs.len());
    }

    #[test]
    fn interpret_declines_at_a_boundary() {
        let c = CoreId(1);
        let prog = Program::build(|b| {
            b.load("shared", Pattern::Sequential);
        });
        let spec = TaskSpec::new("boundary", prog, Placement::pspr(c)).with_object(
            DataObject::new("shared", 1 << 10, Placement::new(Region::Lmu, false)),
        );
        let (mut pipeline, _sys) = fresh_core(c, &spec);
        assert!(
            interpret(&mut pipeline, 0).is_none(),
            "a leading SRI access cannot be memoized"
        );
        assert_eq!(pipeline.pc, 0, "the core must be left untouched");
        assert_eq!(pipeline.counters().ccnt, 0);
    }

    #[test]
    fn record_then_replay_reproduces_state_and_timing() {
        let c = CoreId(1);
        let spec = pspr_compute_task(c);
        let (mut recorded, _sys) = fresh_core(c, &spec);
        let (mut replayed, _sys2) = fresh_core(c, &spec);

        let mut memo = BlockMemo::new(64);
        let mut kernel = KernelStats::default();
        assert!(memo.attempt(&mut recorded, 5, &mut kernel));
        assert_eq!(kernel.memo_records, 1);
        assert_eq!(kernel.memo_hits, 0);

        assert!(memo.attempt(&mut replayed, 5, &mut kernel));
        assert_eq!(kernel.memo_hits, 1);
        assert_eq!(recorded.pc, replayed.pc);
        assert_eq!(recorded.cursors, replayed.cursors);
        assert_eq!(recorded.loop_counters, replayed.loop_counters);
        assert_eq!(recorded.rng, replayed.rng);
        assert_eq!(recorded.fetched_line, replayed.fetched_line);
        match (&recorded.state, &replayed.state) {
            (State::Blocked { until: a }, State::Blocked { until: b }) => assert_eq!(a, b),
            other => panic!("expected both blocked, got {other:?}"),
        }
        assert_eq!(kernel.memo_warp_cycles % 2, 0, "both passes count cycles");
    }

    #[test]
    fn guard_failure_counts_invalidation_and_rerecords() {
        let c = CoreId(1);
        let spec = pspr_compute_task(c);
        let (mut a, _sys) = fresh_core(c, &spec);
        let mut memo = BlockMemo::new(64);
        let mut kernel = KernelStats::default();
        assert!(memo.attempt(&mut a, 0, &mut kernel));

        // Same entry point, perturbed cursor state: Sequential cursor
        // deltas are guard-free, so force a loop-counter mismatch
        // instead (first-touch guard).
        let (mut b, _sys2) = fresh_core(c, &spec);
        let loop_idx = b
            .image
            .instrs
            .iter()
            .position(|i| matches!(i.kind, InstrKind::LoopEnd { .. }))
            .unwrap();
        b.loop_counters[loop_idx] = 3;
        assert!(memo.attempt(&mut b, 0, &mut kernel));
        assert_eq!(kernel.memo_invalidations, 1);
        assert_eq!(kernel.memo_records, 2, "guard failure re-records");
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let c = CoreId(1);
        let spec = pspr_compute_task(c);
        let (mut pipeline, _sys) = fresh_core(c, &spec);
        let mut memo = BlockMemo::new(0);
        let mut kernel = KernelStats::default();
        assert!(!memo.attempt(&mut pipeline, 0, &mut kernel));
        assert_eq!(kernel.memo_records, 0);
        assert_eq!(pipeline.pc, 0);
    }

    #[test]
    fn cursor_delta_composition_matches_stepped_cursors() {
        // k modular steps compose to one modular add for any entry.
        for size in [4u32, 8, 36, 1000] {
            for step in [4u32, 8, 12, 32] {
                for entry in [0u32, 3, size - 1] {
                    let mut live = entry % size;
                    let mut advance = 0u32;
                    for _ in 0..7 {
                        live = (live % size + step) % size;
                        advance = (advance + step) % size;
                    }
                    assert_eq!(
                        (entry % size + advance) % size,
                        live,
                        "{size} {step} {entry}"
                    );
                }
            }
        }
    }
}
