//! The TriCore pipeline model.
//!
//! Each core executes its linked [`TaskImage`] in order. Instruction
//! fetch goes through the PMI (scratchpad / i-cache / SRI), data accesses
//! through the DMI (scratchpad / d-cache / SRI). Cycles the pipeline
//! spends waiting on the PMI or DMI are charged to the `PMEM_STALL` and
//! `DMEM_STALL` debug counters, exactly like the DSU counters the paper
//! builds on.
//!
//! ## Timing model
//!
//! A request to SRI slave `t` issued at cycle `i` and completing at cycle
//! `c` (queueing + service) stalls the pipeline for `(c − i) − hide`
//! cycles, where `hide` models the work the core overlaps with the
//! transaction: the flash prefetcher's run-ahead for sequential code
//! fetches, and the posted address phase for data accesses (see
//! [`crate::config::SimConfig::hide_cycles`]). In isolation this yields
//! exactly the best-case stall cycles of Table 2; under contention the
//! queueing delay inflates the stall, which is precisely the effect the
//! contention models bound.

use crate::addr::{CoreId, MemMap, Region, SriTarget, LINE_BYTES};
use crate::cache::{Cache, Lookup};
use crate::config::SimConfig;
use crate::counters::{DebugCounters, GroundTruth};
use crate::layout::AccessClass;
use crate::linker::{InstrKind, TaskImage};
use crate::program::Pattern;
use crate::rng::SplitMix64;
use crate::sri::{Grant, Sri, SriRequest};
use crate::trace::{Trace, TraceKind};
use std::collections::VecDeque;

/// One SRI operation of a (possibly multi-part) memory transaction, e.g.
/// a dirty miss = write-back followed by a line fill.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChainOp {
    target: SriTarget,
    class: AccessClass,
    write: bool,
    service: u32,
    hide: u32,
}

/// What to do once the current SRI chain finishes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum AfterChain {
    /// The chain was an instruction fetch: re-process the same pc (the
    /// fetch buffer now holds the line).
    Refetch,
    /// The chain was a data access: charge the 1-cycle execute and move
    /// to the next instruction.
    NextInstr,
}

#[derive(Clone, Debug)]
pub(crate) enum State {
    /// Pick up the instruction at `pc` on the next step.
    Ready,
    /// Busy until the given cycle (compute bursts, post-stall execute).
    Blocked { until: u64 },
    /// An SRI request is posted and awaiting its grant.
    WaitGrant {
        issued: u64,
        hide: u32,
        class: AccessClass,
        target: SriTarget,
        rest: VecDeque<ChainOp>,
        after: AfterChain,
    },
    /// Waiting for the current chain op's stall window to elapse before
    /// posting the next chain op at `at`.
    PostNext {
        at: u64,
        rest: VecDeque<ChainOp>,
        after: AfterChain,
    },
    /// Task finished.
    Done,
}

/// A core with a loaded task.
#[derive(Clone, Debug)]
pub struct CorePipeline {
    id: CoreId,
    pub(crate) image: TaskImage,
    pub(crate) icache: Cache,
    pub(crate) dcache: Cache,
    pub(crate) pc: u32,
    pub(crate) activation: u32,
    /// Per-instruction loop iteration counters.
    pub(crate) loop_counters: Vec<u32>,
    /// Per-instruction data-pattern cursors (byte offsets).
    pub(crate) cursors: Vec<u32>,
    pub(crate) rng: SplitMix64,
    /// Line currently held by the fetch buffer.
    pub(crate) fetched_line: Option<u32>,
    /// Last line read over the SRI per target — the PMU prefetch
    /// buffer is one per flash bank and serves code fetches and data
    /// reads alike, so interleaved streams disrupt each other's
    /// sequentiality.
    last_sri_line: [Option<u32>; SriTarget::COUNT],
    pub(crate) state: State,
    counters: DebugCounters,
    truth: GroundTruth,
    finish_cycle: Option<u64>,
    trace: Trace,
    /// Remaining SRI transaction quota (capacity enforcement); `None`
    /// disables enforcement.
    quota_left: Option<u64>,
    /// Set once the quota ran out and the core was suspended.
    suspended: bool,
}

impl CorePipeline {
    /// Creates a core executing `image`.
    pub fn new(id: CoreId, image: TaskImage, config: &SimConfig) -> Self {
        let n = image.instrs.len();
        let seed = image.seed ^ ((id.0 as u64) << 56) ^ 0x5eed_cafe_f00d_0001;
        CorePipeline {
            id,
            icache: Cache::new(config.icache_for(id)),
            dcache: Cache::new(config.dcache_for(id)),
            pc: 0,
            activation: 0,
            loop_counters: vec![0; n],
            cursors: vec![0; n],
            rng: SplitMix64::new(seed),
            fetched_line: None,
            last_sri_line: [None; SriTarget::COUNT],
            state: if n == 0 { State::Done } else { State::Ready },
            counters: DebugCounters::default(),
            truth: GroundTruth::default(),
            finish_cycle: if n == 0 { Some(0) } else { None },
            trace: Trace::with_capacity(config.trace_capacity),
            quota_left: config.sri_quota[id.index()],
            suspended: false,
            image,
        }
    }

    /// Returns `true` if capacity enforcement suspended this core.
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    /// The per-core execution trace (empty unless
    /// [`SimConfig::trace_capacity`] is set).
    ///
    /// [`SimConfig::trace_capacity`]: crate::config::SimConfig::trace_capacity
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The core id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Debug counter snapshot.
    pub fn counters(&self) -> DebugCounters {
        self.counters
    }

    /// Simulator-only ground truth.
    pub fn ground_truth(&self) -> GroundTruth {
        self.truth
    }

    /// Returns `true` once the task has completed all activations.
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done)
    }

    /// Cycle at which the task finished (if it has).
    pub fn finish_cycle(&self) -> Option<u64> {
        self.finish_cycle
    }

    /// Name of the loaded task.
    pub fn task_name(&self) -> &str {
        &self.image.name
    }

    /// Advances the core by one cycle; may post one SRI request.
    pub fn step(&mut self, now: u64, sri: &mut Sri, config: &SimConfig, map: &MemMap) {
        match std::mem::replace(&mut self.state, State::Ready) {
            State::Done => {
                self.state = State::Done;
            }
            State::WaitGrant {
                issued,
                hide,
                class,
                target,
                rest,
                after,
            } => {
                // Still waiting for arbitration; the grant arrives via
                // `apply_grant`. Restore state.
                self.counters.ccnt += 1;
                self.state = State::WaitGrant {
                    issued,
                    hide,
                    class,
                    target,
                    rest,
                    after,
                };
            }
            State::Blocked { until } => {
                self.counters.ccnt += 1;
                if now < until {
                    self.state = State::Blocked { until };
                } else {
                    self.process(now, sri, config, map);
                }
            }
            State::PostNext {
                at,
                mut rest,
                after,
            } => {
                self.counters.ccnt += 1;
                if now < at {
                    self.state = State::PostNext { at, rest, after };
                } else {
                    let Some(op) = rest.pop_front() else {
                        unreachable!("PostNext implies another op");
                    };
                    self.post_chain_op(now, sri, op, rest, after);
                }
            }
            State::Ready => {
                self.counters.ccnt += 1;
                self.process(now, sri, config, map);
            }
        }
    }

    /// Delivers an SRI grant to this core.
    pub fn apply_grant(&mut self, _now: u64, grant: Grant) {
        let State::WaitGrant {
            issued,
            hide,
            class,
            target,
            rest,
            after,
        } = std::mem::replace(&mut self.state, State::Ready)
        else {
            panic!("grant delivered to a core that was not waiting");
        };
        let latency = grant.complete_at - issued;
        self.truth.note_latency(target, latency);
        let stall = latency.saturating_sub(hide as u64);
        self.trace.record(
            issued,
            self.id,
            TraceKind::SriComplete {
                target,
                latency,
                stall,
            },
        );
        match class {
            AccessClass::Code => self.counters.pmem_stall += stall,
            AccessClass::Data => self.counters.dmem_stall += stall,
        }
        let resume = issued + stall;
        self.state = if rest.is_empty() {
            match after {
                // Re-process the same pc: the fetch buffer now holds the
                // line, so processing falls through to execution.
                AfterChain::Refetch => State::Blocked { until: resume },
                // Data access: one execute cycle on top of the stall.
                AfterChain::NextInstr => State::Blocked { until: resume + 1 },
            }
        } else {
            State::PostNext {
                at: resume,
                rest,
                after,
            }
        };
    }

    /// Returns `true` if this core has a request waiting for a grant.
    pub fn awaiting_grant(&self) -> bool {
        matches!(self.state, State::WaitGrant { .. })
    }

    /// Bulk-charges `delta` provably quiescent cycles: exactly what
    /// `delta` consecutive [`CorePipeline::step`] calls strictly before
    /// the core's next event would do — `CCNT` accrues while the core
    /// waits, nothing else moves. A finished core charges nothing
    /// (`step` on `Done` is a pure no-op).
    pub(crate) fn advance(&mut self, delta: u64) {
        if !matches!(self.state, State::Done) {
            self.counters.charge_busy(delta);
        }
    }

    /// Delegates to the [`crate::engine::EventSource`] impl without
    /// needing the trait in scope.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        crate::engine::EventSource::next_event(self, now)
    }

    fn post_chain_op(
        &mut self,
        now: u64,
        sri: &mut Sri,
        op: ChainOp,
        rest: VecDeque<ChainOp>,
        after: AfterChain,
    ) {
        // Capacity enforcement (reference [16]): a core out of SRI
        // budget is suspended instead of issuing the transaction.
        if let Some(left) = &mut self.quota_left {
            if *left == 0 {
                self.suspended = true;
                self.state = State::Done;
                self.trace.record(now, self.id, TraceKind::TaskComplete);
                return;
            }
            *left -= 1;
        }
        // Counts are recorded at issue time; the end-to-end latency is
        // only known at grant time (`apply_grant` updates the per-target
        // maximum via `note_latency`).
        self.truth.record(op.target, op.class, op.write, 0);
        self.trace.record(
            now,
            self.id,
            TraceKind::SriPost {
                target: op.target,
                class: op.class,
                write: op.write,
            },
        );
        sri.post(
            now,
            SriRequest {
                core: self.id,
                target: op.target,
                class: op.class,
                write: op.write,
                service: op.service,
            },
        );
        self.state = State::WaitGrant {
            issued: now,
            hide: op.hide,
            class: op.class,
            target: op.target,
            rest,
            after,
        };
    }

    /// Processes the instruction at `pc` (fetch check, then execute).
    fn process(&mut self, now: u64, sri: &mut Sri, config: &SimConfig, map: &MemMap) {
        // End-of-stream / activation wrap.
        if self.pc as usize >= self.image.instrs.len() {
            self.activation += 1;
            if self.activation >= self.image.activations {
                self.state = State::Done;
                self.finish_cycle = Some(now);
                self.trace.record(now, self.id, TraceKind::TaskComplete);
                // The wrap-up step itself is not an executed cycle.
                self.counters.ccnt -= 1;
                return;
            }
            self.pc = 0;
        }

        let instr = self.image.instrs[self.pc as usize].clone();

        // --- Instruction fetch through the PMI ---
        let line = instr.addr.line();
        if self.fetched_line != Some(line) {
            if instr.region.is_local() {
                self.fetched_line = Some(line);
            } else if instr.cacheable {
                match self.icache.access(line, false) {
                    Lookup::Hit => {
                        self.fetched_line = Some(line);
                    }
                    Lookup::Miss { .. } => {
                        self.counters.pcache_miss += 1;
                        self.trace
                            .record(now, self.id, TraceKind::IcacheMiss { line });
                        self.start_code_fetch(now, sri, config, instr.region, line);
                        return;
                    }
                }
            } else {
                // Non-cacheable shared code: every line change refetches.
                self.start_code_fetch(now, sri, config, instr.region, line);
                return;
            }
        }

        // --- Execute ---
        match instr.kind {
            InstrKind::Compute(n) => {
                self.pc += 1;
                self.state = State::Blocked {
                    until: now + n.max(1) as u64,
                };
            }
            InstrKind::LoopEnd { target, count } => {
                let c = &mut self.loop_counters[self.pc as usize];
                *c += 1;
                if *c < count {
                    self.pc = target;
                } else {
                    *c = 0;
                    self.pc += 1;
                }
                self.state = State::Blocked { until: now + 1 };
            }
            InstrKind::Mem {
                obj,
                pattern,
                write,
            } => {
                let idx = self.pc as usize;
                self.pc += 1;
                self.exec_mem(now, sri, config, map, idx, obj, pattern, write);
            }
        }
    }

    fn start_code_fetch(
        &mut self,
        now: u64,
        sri: &mut Sri,
        config: &SimConfig,
        region: Region,
        line: u32,
    ) {
        let target = region
            .sri_target()
            .unwrap_or_else(|| unreachable!("shared code regions have an SRI target"));
        let sequential = self.last_sri_line[target.index()] == Some(line.wrapping_sub(1));
        let timing = config.slave(target);
        let service = if sequential && target.is_pflash() {
            timing.service_sequential
        } else {
            timing.service
        };
        let hide = config.hide_cycles(AccessClass::Code, target, sequential);
        self.last_sri_line[target.index()] = Some(line);
        self.fetched_line = Some(line);
        self.post_chain_op(
            now,
            sri,
            ChainOp {
                target,
                class: AccessClass::Code,
                write: false,
                service,
                hide,
            },
            VecDeque::new(),
            AfterChain::Refetch,
        );
    }

    /// The offset [`CorePipeline::next_offset`] would return for this
    /// cursor, without committing the cursor/RNG mutation. The block
    /// memo peeks before a d-cache probe so that a miss (block boundary,
    /// executed live) leaves the cursor untouched for the live path.
    pub(crate) fn peek_offset(&self, idx: usize, pattern: Pattern, size: u32) -> u32 {
        match pattern {
            Pattern::Sequential | Pattern::Stride(_) => self.cursors[idx] % size,
            Pattern::Random => {
                let words = (size / 4).max(1);
                self.rng.clone().below_u32(words) * 4
            }
            Pattern::Fixed(o) => o % size,
        }
    }

    /// Computes the next access offset for a pattern cursor.
    pub(crate) fn next_offset(&mut self, idx: usize, pattern: Pattern, size: u32) -> u32 {
        match pattern {
            Pattern::Sequential => {
                let off = self.cursors[idx] % size;
                self.cursors[idx] = (off + 4) % size.max(4);
                off
            }
            Pattern::Stride(s) => {
                let off = self.cursors[idx] % size;
                self.cursors[idx] = (off + s.max(4)) % size.max(4);
                off
            }
            Pattern::Random => {
                let words = (size / 4).max(1);
                self.rng.below_u32(words) * 4
            }
            Pattern::Fixed(o) => o % size,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_mem(
        &mut self,
        now: u64,
        sri: &mut Sri,
        config: &SimConfig,
        map: &MemMap,
        idx: usize,
        obj: u16,
        pattern: Pattern,
        write: bool,
    ) {
        let o = self.image.objects[obj as usize].clone();
        let off = self.next_offset(idx, pattern, o.size);
        let addr = o.base.offset(off);

        // Scratchpad: single-cycle.
        if o.region.is_local() {
            self.state = State::Blocked { until: now + 1 };
            return;
        }
        let target = o
            .region
            .sri_target()
            .unwrap_or_else(|| unreachable!("shared data regions have an SRI target"));
        let timing = config.slave(target);
        let data_hide = config.hide_cycles(AccessClass::Data, target, false);
        // The flash prefetch buffer also streams sequential data reads.
        let line = addr.line();
        let sequential = self.last_sri_line[target.index()] == Some(line.wrapping_sub(1));
        let read_service = if sequential && target.is_pflash() {
            timing.service_sequential
        } else {
            timing.service
        };

        if o.cacheable {
            match self.dcache.access(addr.line(), write) {
                Lookup::Hit => {
                    self.state = State::Blocked { until: now + 1 };
                }
                Lookup::Miss { evicted_dirty } => {
                    self.trace.record(
                        now,
                        self.id,
                        TraceKind::DcacheMiss {
                            line: addr.line(),
                            write,
                            dirty_eviction: evicted_dirty.is_some(),
                        },
                    );
                    let mut chain = VecDeque::new();
                    if let Some(victim_line) = evicted_dirty {
                        self.counters.dcache_miss_dirty += 1;
                        let victim_addr = crate::addr::Addr(victim_line * LINE_BYTES);
                        let victim_loc = map.decode(victim_addr).unwrap_or_else(|| {
                            unreachable!("victim lines come from mapped addresses")
                        });
                        let victim_target = victim_loc.region.sri_target().unwrap_or_else(|| {
                            unreachable!("cacheable data lives in shared regions")
                        });
                        chain.push_back(ChainOp {
                            target: victim_target,
                            class: AccessClass::Data,
                            write: true,
                            service: config.slave(victim_target).writeback_service,
                            hide: 0,
                        });
                    } else {
                        self.counters.dcache_miss_clean += 1;
                    }
                    // The line fill.
                    chain.push_back(ChainOp {
                        target,
                        class: AccessClass::Data,
                        write: false,
                        service: read_service,
                        hide: data_hide,
                    });
                    self.last_sri_line[target.index()] = Some(line);
                    let Some(first) = chain.pop_front() else {
                        unreachable!("chain has at least the fill");
                    };
                    self.post_chain_op(now, sri, first, chain, AfterChain::NextInstr);
                }
            }
        } else {
            // Non-cacheable: one word transaction per access. Writes
            // invalidate the prefetch stream rather than extending it.
            if write {
                self.last_sri_line[target.index()] = None;
            } else {
                self.last_sri_line[target.index()] = Some(line);
            }
            self.post_chain_op(
                now,
                sri,
                ChainOp {
                    target,
                    class: AccessClass::Data,
                    write,
                    service: if write { timing.service } else { read_service },
                    hide: data_hide,
                },
                VecDeque::new(),
                AfterChain::NextInstr,
            );
        }
    }
}

impl crate::engine::EventSource for CorePipeline {
    /// The next cycle at which [`CorePipeline::step`] does anything
    /// beyond `CCNT += 1`:
    ///
    /// * `Ready` acts immediately;
    /// * `Blocked`/`PostNext` act at their recorded deadline (clamped to
    ///   `now` — a deadline in the past fires on the next step);
    /// * `WaitGrant` is passive: the wake-up comes from the SRI arbiter,
    ///   whose own claim covers the queued request;
    /// * `Done` never acts again.
    fn next_event(&self, now: u64) -> Option<u64> {
        match &self.state {
            State::Done | State::WaitGrant { .. } => None,
            State::Ready => Some(now),
            State::Blocked { until } => Some((*until).max(now)),
            State::PostNext { at, .. } => Some((*at).max(now)),
        }
    }
}
