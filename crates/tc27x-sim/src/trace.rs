//! Bounded execution traces: a per-core event log for debugging
//! workloads and validating counter semantics.
//!
//! Tracing is off by default (zero overhead beyond a branch); enable it
//! with [`crate::config::SimConfig::trace_capacity`]. The trace is a
//! bounded buffer — once full, further events are dropped and counted,
//! so long runs cannot exhaust memory.

use crate::addr::{CoreId, SriTarget};
use crate::layout::AccessClass;
use std::fmt;

/// One traced event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// Cycle the event occurred at.
    pub cycle: u64,
    /// Core the event belongs to.
    pub core: CoreId,
    /// What happened.
    pub kind: TraceKind,
}

/// Event kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// An SRI transaction was posted.
    SriPost {
        /// Destination slave.
        target: SriTarget,
        /// Code fetch or data access.
        class: AccessClass,
        /// Write transaction.
        write: bool,
    },
    /// A posted transaction completed; `stall` pipeline cycles were
    /// charged (after hiding).
    SriComplete {
        /// Destination slave.
        target: SriTarget,
        /// End-to-end latency (queueing + service).
        latency: u64,
        /// Stall cycles charged to the pipeline.
        stall: u64,
    },
    /// An instruction-cache miss (cacheable fetch).
    IcacheMiss {
        /// Missing line index.
        line: u32,
    },
    /// A data-cache miss.
    DcacheMiss {
        /// Missing line index.
        line: u32,
        /// The access was a store.
        write: bool,
        /// A dirty victim was evicted (write-back issued).
        dirty_eviction: bool,
    },
    /// The task finished all activations.
    TaskComplete,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>8}] {} ", self.cycle, self.core)?;
        match self.kind {
            TraceKind::SriPost {
                target,
                class,
                write,
            } => write!(
                f,
                "sri-post {target} {class}{}",
                if write { " write" } else { "" }
            ),
            TraceKind::SriComplete {
                target,
                latency,
                stall,
            } => write!(f, "sri-done {target} latency={latency} stall={stall}"),
            TraceKind::IcacheMiss { line } => write!(f, "i$-miss line={line:#x}"),
            TraceKind::DcacheMiss {
                line,
                write,
                dirty_eviction,
            } => write!(
                f,
                "d$-miss line={line:#x}{}{}",
                if write { " write" } else { "" },
                if dirty_eviction { " dirty-evict" } else { "" }
            ),
            TraceKind::TaskComplete => write!(f, "task-complete"),
        }
    }
}

/// A bounded per-core trace buffer.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace with the given capacity (0 disables recording).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            records: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    /// Returns `true` if recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an event (drops it, counted, when full).
    pub fn record(&mut self, cycle: u64, core: CoreId, kind: TraceKind) {
        if self.capacity == 0 {
            return;
        }
        if self.records.len() < self.capacity {
            self.records.push(TraceRecord { cycle, core, kind });
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of events dropped after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Returns `true` if the buffer filled up and at least one event
    /// was silently dropped — renderers should warn the reader that the
    /// trace is incomplete (see [`crate::system::RunOutcome::trace_dropped`]).
    pub fn is_truncated(&self) -> bool {
        self.dropped > 0
    }

    /// Iterates over events of one kind predicate.
    pub fn filter<'a>(
        &'a self,
        mut pred: impl FnMut(&TraceKind) -> bool + 'a,
    ) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records.iter().filter(move |r| pred(&r.kind))
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.records {
            writeln!(f, "{r}")?;
        }
        if self.dropped > 0 {
            writeln!(f, "... {} events dropped", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::with_capacity(0);
        assert!(!t.is_enabled());
        t.record(1, CoreId(0), TraceKind::TaskComplete);
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn capacity_bounds_and_counts_drops() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(i, CoreId(1), TraceKind::TaskComplete);
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn filter_selects_kinds() {
        let mut t = Trace::with_capacity(10);
        t.record(1, CoreId(1), TraceKind::IcacheMiss { line: 5 });
        t.record(2, CoreId(1), TraceKind::TaskComplete);
        t.record(3, CoreId(1), TraceKind::IcacheMiss { line: 6 });
        let misses: Vec<_> = t
            .filter(|k| matches!(k, TraceKind::IcacheMiss { .. }))
            .collect();
        assert_eq!(misses.len(), 2);
    }

    #[test]
    fn display_is_line_oriented() {
        let mut t = Trace::with_capacity(4);
        t.record(
            7,
            CoreId(2),
            TraceKind::SriComplete {
                target: SriTarget::Lmu,
                latency: 11,
                stall: 10,
            },
        );
        let s = t.to_string();
        assert!(s.contains("sri-done lmu latency=11 stall=10"), "{s}");
    }
}
