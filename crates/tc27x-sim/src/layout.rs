//! Deployment layout: where code and data live, and with what
//! cacheability — the "deployment configurations" of §4.
//!
//! The TC27x constrains placement (Table 3 of the paper): code can never
//! live in DFLASH; non-cacheable data can live only in DFLASH or the
//! LMU. [`Placement::validate`] enforces exactly that table.
//!
//! # Examples
//!
//! ```
//! use tc27x_sim::layout::{AccessClass, Placement};
//! use tc27x_sim::addr::Region;
//!
//! // Code in PFLASH0, cacheable: allowed.
//! assert!(Placement::new(Region::Pflash0, true).validate(AccessClass::Code).is_ok());
//! // Non-cacheable data in PFLASH0: forbidden by Table 3.
//! assert!(Placement::new(Region::Pflash0, false).validate(AccessClass::Data).is_err());
//! ```

use crate::addr::{CoreId, Region};
use crate::program::Program;
use std::error::Error;
use std::fmt;

/// Whether a placement holds code or data (the two operation classes of
/// the paper, `O = {co, da}`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessClass {
    /// Instruction fetches.
    Code,
    /// Data loads/stores.
    Data,
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessClass::Code => write!(f, "code"),
            AccessClass::Data => write!(f, "data"),
        }
    }
}

/// A placement decision: region plus cacheability of the view used.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Placement {
    /// Target region.
    pub region: Region,
    /// Access the region through its cacheable view.
    pub cacheable: bool,
}

impl Placement {
    /// Creates a placement.
    pub fn new(region: Region, cacheable: bool) -> Self {
        Placement { region, cacheable }
    }

    /// Shorthand: local program scratchpad of `core`.
    pub fn pspr(core: CoreId) -> Self {
        Placement::new(Region::Pspr(core), false)
    }

    /// Shorthand: local data scratchpad of `core`.
    pub fn dspr(core: CoreId) -> Self {
        Placement::new(Region::Dspr(core), false)
    }

    /// Checks this placement against the Table 3 constraints for the
    /// given access class.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::ForbiddenPlacement`] when Table 3 forbids
    /// the combination (code in DFLASH; non-cacheable data in PFLASH;
    /// any cacheable view of a scratchpad or DFLASH).
    pub fn validate(self, class: AccessClass) -> Result<(), LayoutError> {
        let ok = match (class, self.region, self.cacheable) {
            // Code: pf0/pf1/lmu in both modes, scratchpad non-cacheable.
            (AccessClass::Code, Region::Pflash0 | Region::Pflash1 | Region::Lmu, _) => true,
            (AccessClass::Code, Region::Pspr(_), false) => true,
            (AccessClass::Code, _, _) => false,
            // Data: dfl non-cacheable only; pf0/pf1 cacheable only;
            // lmu both; scratchpad non-cacheable.
            (AccessClass::Data, Region::Dflash, false) => true,
            (AccessClass::Data, Region::Pflash0 | Region::Pflash1, true) => true,
            (AccessClass::Data, Region::Lmu, _) => true,
            (AccessClass::Data, Region::Dspr(_), false) => true,
            (AccessClass::Data, _, _) => false,
        };
        if ok {
            Ok(())
        } else {
            Err(LayoutError::ForbiddenPlacement {
                class,
                placement: self,
            })
        }
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({})",
            self.region,
            if self.cacheable { "$" } else { "n$" }
        )
    }
}

/// A named data object of a task.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DataObject {
    /// Name referenced by [`crate::program::DataRef`]s.
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// Where the object lives.
    pub placement: Placement,
}

impl DataObject {
    /// Creates a data object.
    pub fn new(name: impl Into<String>, size: u32, placement: Placement) -> Self {
        DataObject {
            name: name.into(),
            size,
            placement,
        }
    }
}

/// A contiguous piece of task code with its own placement; tasks execute
/// their segments in order, which models real deployments where part of
/// the code sits in the scratchpad and part in flash.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CodeSegment {
    /// The operations of this segment.
    pub program: Program,
    /// Where the segment's code is linked.
    pub placement: Placement,
}

/// A complete task specification: code segments, data objects, the
/// number of activations and the RNG seed driving random access
/// patterns.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TaskSpec {
    /// Human-readable task name.
    pub name: String,
    /// Code segments, executed in order per activation.
    pub segments: Vec<CodeSegment>,
    /// The task's data objects.
    pub data_objects: Vec<DataObject>,
    /// How many times the whole segment sequence runs (≥ 1).
    pub activations: u32,
    /// Seed for `Pattern::Random` walks.
    pub seed: u64,
}

impl TaskSpec {
    /// Creates a single-segment task spec with no data objects.
    pub fn new(name: impl Into<String>, program: Program, code_placement: Placement) -> Self {
        TaskSpec {
            name: name.into(),
            segments: vec![CodeSegment {
                program,
                placement: code_placement,
            }],
            data_objects: Vec::new(),
            activations: 1,
            seed: 0,
        }
    }

    /// Creates an empty task spec; add segments with
    /// [`TaskSpec::with_segment`].
    pub fn empty(name: impl Into<String>) -> Self {
        TaskSpec {
            name: name.into(),
            segments: Vec::new(),
            data_objects: Vec::new(),
            activations: 1,
            seed: 0,
        }
    }

    /// Appends a code segment (builder style).
    #[must_use]
    pub fn with_segment(mut self, program: Program, placement: Placement) -> Self {
        self.segments.push(CodeSegment { program, placement });
        self
    }

    /// Adds a data object (builder style).
    #[must_use]
    pub fn with_object(mut self, object: DataObject) -> Self {
        self.data_objects.push(object);
        self
    }

    /// Sets the activation count (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `activations` is zero.
    #[must_use]
    pub fn with_activations(mut self, activations: u32) -> Self {
        assert!(activations > 0, "a task runs at least once");
        self.activations = activations;
        self
    }

    /// Sets the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Looks up a data object by name.
    pub fn object(&self, name: &str) -> Option<&DataObject> {
        self.data_objects.iter().find(|o| o.name == name)
    }

    /// Total dynamic operations across all segments for one activation.
    pub fn dynamic_op_count(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.program.dynamic_op_count())
            .sum()
    }
}

/// The two representative deployment scenarios evaluated in §4.1, plus
/// the low-SRI-traffic variant mentioned for real-world use cases.
///
/// * **Scenario 1** — code cacheable in pf0/pf1; shared *non-cacheable*
///   data in the LMU. `PCACHE_MISS` counts exactly the code SRI
///   requests; nothing is known about data PTAC beyond stalls.
/// * **Scenario 2** — code cacheable in pf0/pf1; data both cacheable and
///   non-cacheable in the LMU and constant (cacheable) data in pf0/pf1.
///   Contention mixes code and data on the same slaves.
/// * **LowTraffic** — most code/data in scratchpads; models the
///   real-world automotive use cases with ~10% contention bounds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DeploymentScenario {
    /// Scenario 1 of the paper (Figure 3-a).
    Scenario1,
    /// Scenario 2 of the paper (Figure 3-b).
    Scenario2,
    /// Low-SRI-traffic variant (§4.2 closing remark).
    LowTraffic,
}

impl DeploymentScenario {
    /// Scenario 1 (Figure 3-a).
    pub fn scenario1() -> Self {
        DeploymentScenario::Scenario1
    }

    /// Scenario 2 (Figure 3-b).
    pub fn scenario2() -> Self {
        DeploymentScenario::Scenario2
    }

    /// All scenarios.
    pub fn all() -> [DeploymentScenario; 3] {
        [
            DeploymentScenario::Scenario1,
            DeploymentScenario::Scenario2,
            DeploymentScenario::LowTraffic,
        ]
    }
}

impl fmt::Display for DeploymentScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeploymentScenario::Scenario1 => write!(f, "scenario1"),
            DeploymentScenario::Scenario2 => write!(f, "scenario2"),
            DeploymentScenario::LowTraffic => write!(f, "low-traffic"),
        }
    }
}

/// Errors detected while validating or linking a layout.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum LayoutError {
    /// The placement violates Table 3.
    ForbiddenPlacement {
        /// Code or data.
        class: AccessClass,
        /// The offending placement.
        placement: Placement,
    },
    /// A region overflowed its capacity.
    RegionOverflow {
        /// The region that overflowed.
        region: Region,
        /// Bytes requested in total.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// The program references an undeclared data object.
    UnknownObject {
        /// The missing object name.
        name: String,
    },
    /// A scratchpad placement names a different core than the task runs on.
    ForeignScratchpad {
        /// The core the task runs on.
        running_on: CoreId,
        /// The scratchpad's owner.
        owner: CoreId,
    },
    /// A data object has zero size.
    EmptyObject {
        /// The object name.
        name: String,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::ForbiddenPlacement { class, placement } => {
                write!(f, "table 3 forbids {class} in {placement}")
            }
            LayoutError::RegionOverflow {
                region,
                requested,
                available,
            } => write!(
                f,
                "region {region} overflow: {requested} bytes requested, {available} available"
            ),
            LayoutError::UnknownObject { name } => {
                write!(f, "program references undeclared object `{name}`")
            }
            LayoutError::ForeignScratchpad { running_on, owner } => write!(
                f,
                "task on {running_on} cannot use the scratchpad of {owner} without SRI traffic"
            ),
            LayoutError::EmptyObject { name } => {
                write!(f, "data object `{name}` has zero size")
            }
        }
    }
}

impl Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Pattern;

    /// Every cell of Table 3, exhaustively.
    #[test]
    fn table3_constraints() {
        use AccessClass::{Code, Data};
        let cases = [
            // (class, region, cacheable, allowed)
            (Code, Region::Pflash0, true, true),
            (Code, Region::Pflash0, false, true),
            (Code, Region::Pflash1, true, true),
            (Code, Region::Pflash1, false, true),
            (Code, Region::Dflash, true, false),
            (Code, Region::Dflash, false, false),
            (Code, Region::Lmu, true, true),
            (Code, Region::Lmu, false, true),
            (Data, Region::Pflash0, true, true),
            (Data, Region::Pflash0, false, false),
            (Data, Region::Pflash1, true, true),
            (Data, Region::Pflash1, false, false),
            (Data, Region::Dflash, true, false),
            (Data, Region::Dflash, false, true),
            (Data, Region::Lmu, true, true),
            (Data, Region::Lmu, false, true),
        ];
        for (class, region, cacheable, allowed) in cases {
            let r = Placement::new(region, cacheable).validate(class);
            assert_eq!(
                r.is_ok(),
                allowed,
                "{class} in {region} cacheable={cacheable}"
            );
        }
    }

    #[test]
    fn scratchpad_rules() {
        let c = CoreId(1);
        assert!(Placement::pspr(c).validate(AccessClass::Code).is_ok());
        assert!(Placement::dspr(c).validate(AccessClass::Data).is_ok());
        // Code in DSPR / data in PSPR are rejected.
        assert!(Placement::dspr(c).validate(AccessClass::Code).is_err());
        assert!(Placement::pspr(c).validate(AccessClass::Data).is_err());
        // Cacheable scratchpad views do not exist.
        assert!(Placement::new(Region::Pspr(c), true)
            .validate(AccessClass::Code)
            .is_err());
    }

    #[test]
    fn task_spec_builder() {
        let prog = Program::build(|b| {
            b.load("buf", Pattern::Sequential);
        });
        let spec = TaskSpec::new("t", prog, Placement::new(Region::Pflash0, true))
            .with_object(DataObject::new(
                "buf",
                256,
                Placement::new(Region::Lmu, false),
            ))
            .with_seed(99);
        assert_eq!(spec.object("buf").unwrap().size, 256);
        assert!(spec.object("nope").is_none());
        assert_eq!(spec.seed, 99);
        assert_eq!(spec.segments.len(), 1);
        assert_eq!(spec.dynamic_op_count(), 1);
    }

    #[test]
    fn multi_segment_spec() {
        let a = Program::build(|b| {
            b.compute(1);
        });
        let c = Program::build(|b| {
            b.compute(2);
            b.compute(3);
        });
        let spec = TaskSpec::empty("t")
            .with_segment(a, Placement::pspr(CoreId(1)))
            .with_segment(c, Placement::new(Region::Pflash1, true))
            .with_activations(3);
        assert_eq!(spec.segments.len(), 2);
        assert_eq!(spec.dynamic_op_count(), 3);
        assert_eq!(spec.activations, 3);
    }

    #[test]
    #[should_panic(expected = "at least once")]
    fn zero_activations_rejected() {
        let _ = TaskSpec::empty("t").with_activations(0);
    }

    #[test]
    fn errors_display() {
        let e = LayoutError::ForbiddenPlacement {
            class: AccessClass::Data,
            placement: Placement::new(Region::Pflash0, false),
        };
        assert!(e.to_string().contains("table 3"));
        let e = LayoutError::UnknownObject { name: "x".into() };
        assert!(e.to_string().contains("`x`"));
    }

    #[test]
    fn scenario_display_and_all() {
        assert_eq!(DeploymentScenario::Scenario1.to_string(), "scenario1");
        assert_eq!(DeploymentScenario::all().len(), 3);
    }
}
