//! Deterministic fault injection for DSU counter readings.
//!
//! On real TC277 silicon the debug counters arrive over a debug port
//! that can drop reads, saturate at the register width, or flip bits,
//! and a co-run observation window can end before the task does. The
//! downstream pipeline (validation, model evaluation, fTC fallback)
//! must survive all of that, so this module reproduces those faults
//! *deterministically*: every perturbation is a pure function of a
//! [`SplitMix64`] seed, which makes fault campaigns replayable bit for
//! bit in tests and CI.
//!
//! # Examples
//!
//! ```
//! use tc27x_sim::counters::DebugCounters;
//! use tc27x_sim::faults::FaultInjector;
//!
//! let clean = DebugCounters {
//!     ccnt: 846_103, pmem_stall: 109_736, dmem_stall: 123_840,
//!     pcache_miss: 18_136, ..Default::default()
//! };
//! let (noisy, records) = FaultInjector::new(7).perturb(&clean);
//! assert!(!records.is_empty());
//! // Same seed, same faults:
//! assert_eq!(FaultInjector::new(7).perturb(&clean), (noisy, records));
//! ```

use crate::counters::DebugCounters;
use crate::rng::SplitMix64;
use std::fmt;

/// Physical width of a DSU counter register: reads saturate at
/// `2^32 - 1`, and bit-flips land within these bits.
pub const COUNTER_WIDTH_BITS: u32 = 32;

/// The saturated reading of a pegged counter.
pub const COUNTER_SATURATED: u64 = (1 << COUNTER_WIDTH_BITS) - 1;

/// Identifies one DSU counter within [`DebugCounters`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum CounterId {
    /// The cycle counter.
    Ccnt,
    /// PMEM_STALL.
    PmemStall,
    /// DMEM_STALL.
    DmemStall,
    /// P$_MISS.
    PcacheMiss,
    /// D$_MISS_CLEAN.
    DcacheMissClean,
    /// D$_MISS_DIRTY.
    DcacheMissDirty,
}

impl CounterId {
    /// Number of DSU counters.
    pub const COUNT: usize = 6;

    /// All counters, in a fixed order.
    pub fn all() -> [CounterId; Self::COUNT] {
        [
            CounterId::Ccnt,
            CounterId::PmemStall,
            CounterId::DmemStall,
            CounterId::PcacheMiss,
            CounterId::DcacheMissClean,
            CounterId::DcacheMissDirty,
        ]
    }

    /// Reads this counter out of a [`DebugCounters`] block.
    pub fn read(self, c: &DebugCounters) -> u64 {
        match self {
            CounterId::Ccnt => c.ccnt,
            CounterId::PmemStall => c.pmem_stall,
            CounterId::DmemStall => c.dmem_stall,
            CounterId::PcacheMiss => c.pcache_miss,
            CounterId::DcacheMissClean => c.dcache_miss_clean,
            CounterId::DcacheMissDirty => c.dcache_miss_dirty,
        }
    }

    /// Writes this counter in a [`DebugCounters`] block.
    pub fn write(self, c: &mut DebugCounters, value: u64) {
        match self {
            CounterId::Ccnt => c.ccnt = value,
            CounterId::PmemStall => c.pmem_stall = value,
            CounterId::DmemStall => c.dmem_stall = value,
            CounterId::PcacheMiss => c.pcache_miss = value,
            CounterId::DcacheMissClean => c.dcache_miss_clean = value,
            CounterId::DcacheMissDirty => c.dcache_miss_dirty = value,
        }
    }
}

impl fmt::Display for CounterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CounterId::Ccnt => "ccnt",
            CounterId::PmemStall => "pmem_stall",
            CounterId::DmemStall => "dmem_stall",
            CounterId::PcacheMiss => "pcache_miss",
            CounterId::DcacheMissClean => "dcache_miss_clean",
            CounterId::DcacheMissDirty => "dcache_miss_dirty",
        };
        f.write_str(name)
    }
}

/// The kind of fault injected into a reading.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// One bit within the counter width flipped in transit.
    BitFlip {
        /// The flipped bit position, `< COUNTER_WIDTH_BITS`.
        bit: u32,
    },
    /// The counter pegged at its register width ([`COUNTER_SATURATED`]).
    Saturate,
    /// The DSU read was dropped and returned zero.
    DroppedRead,
    /// The observation window closed early: every counter holds only a
    /// `permille`/1000 prefix of the run.
    TruncatedCorun {
        /// Fraction of the run that was observed, in permille.
        permille: u64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::BitFlip { bit } => write!(f, "bit-flip(bit={bit})"),
            FaultKind::Saturate => write!(f, "saturate"),
            FaultKind::DroppedRead => write!(f, "dropped-read"),
            FaultKind::TruncatedCorun { permille } => {
                write!(f, "truncated-corun(permille={permille})")
            }
        }
    }
}

/// One counter actually changed by an injected fault.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultRecord {
    /// The fault that caused the change.
    pub kind: FaultKind,
    /// The counter that changed.
    pub counter: CounterId,
    /// Reading before the fault.
    pub before: u64,
    /// Reading after the fault.
    pub after: u64,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {} -> {}",
            self.kind, self.counter, self.before, self.after
        )
    }
}

/// Deterministic fault injector over a [`SplitMix64`] stream.
///
/// Each [`perturb`](Self::perturb) call injects one to three faults;
/// the choice of fault kinds, target counters, bit positions and
/// truncation points is fully determined by the seed.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    rng: SplitMix64,
}

impl FaultInjector {
    /// Creates an injector; equal seeds inject equal fault sequences.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: SplitMix64::new(seed),
        }
    }

    /// Applies one to three seeded faults to a counter block and reports
    /// every reading that changed.
    pub fn perturb(&mut self, counters: &DebugCounters) -> (DebugCounters, Vec<FaultRecord>) {
        let mut c = *counters;
        let mut records = Vec::new();
        let faults = 1 + self.rng.below(3);
        for _ in 0..faults {
            self.inject_one(&mut c, &mut records);
        }
        (c, records)
    }

    fn inject_one(&mut self, c: &mut DebugCounters, records: &mut Vec<FaultRecord>) {
        match self.rng.below(4) {
            0 => {
                let counter = self.pick_counter();
                let bit = self.rng.below_u32(COUNTER_WIDTH_BITS);
                let kind = FaultKind::BitFlip { bit };
                self.apply(c, counter, kind, |v| v ^ (1 << bit), records);
            }
            1 => {
                let counter = self.pick_counter();
                self.apply(
                    c,
                    counter,
                    FaultKind::Saturate,
                    |_| COUNTER_SATURATED,
                    records,
                );
            }
            2 => {
                let counter = self.pick_counter();
                self.apply(c, counter, FaultKind::DroppedRead, |_| 0, records);
            }
            _ => {
                let permille = self.rng.below(1000);
                let kind = FaultKind::TruncatedCorun { permille };
                for counter in CounterId::all() {
                    self.apply(c, counter, kind, |v| v * permille / 1000, records);
                }
            }
        }
    }

    fn pick_counter(&mut self) -> CounterId {
        CounterId::all()[self.rng.below(CounterId::COUNT as u64) as usize]
    }

    fn apply(
        &mut self,
        c: &mut DebugCounters,
        counter: CounterId,
        kind: FaultKind,
        f: impl Fn(u64) -> u64,
        records: &mut Vec<FaultRecord>,
    ) {
        let before = counter.read(c);
        let after = f(before);
        if after != before {
            counter.write(c, after);
            records.push(FaultRecord {
                kind,
                counter,
                before,
                after,
            });
        }
    }
}

impl crate::engine::EventSource for FaultInjector {
    /// Fault injection perturbs counter *readings* after a run
    /// completes; it never participates in the cycle loop, so it is
    /// permanently passive to the event kernel.
    fn next_event(&self, _now: u64) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DebugCounters {
        DebugCounters {
            ccnt: 846_103,
            pmem_stall: 109_736,
            dmem_stall: 123_840,
            pcache_miss: 18_136,
            dcache_miss_clean: 192,
            dcache_miss_dirty: 17,
        }
    }

    #[test]
    fn same_seed_same_faults() {
        let clean = sample();
        for seed in 0..50 {
            let a = FaultInjector::new(seed).perturb(&clean);
            let b = FaultInjector::new(seed).perturb(&clean);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn seeds_diversify_fault_kinds() {
        let clean = sample();
        let mut flip = false;
        let mut sat = false;
        let mut drop = false;
        let mut trunc = false;
        for seed in 0..200 {
            let (_, records) = FaultInjector::new(seed).perturb(&clean);
            for r in &records {
                match r.kind {
                    FaultKind::BitFlip { .. } => flip = true,
                    FaultKind::Saturate => sat = true,
                    FaultKind::DroppedRead => drop = true,
                    FaultKind::TruncatedCorun { .. } => trunc = true,
                }
            }
        }
        assert!(flip && sat && drop && trunc, "{flip} {sat} {drop} {trunc}");
    }

    #[test]
    fn records_match_the_mutation() {
        let clean = sample();
        for seed in 0..100 {
            let (noisy, records) = FaultInjector::new(seed).perturb(&clean);
            // Replaying the records over the clean block must land on the
            // perturbed block.
            let mut replay = clean;
            for r in &records {
                assert_eq!(CounterId::read(r.counter, &replay), r.before, "seed {seed}");
                CounterId::write(r.counter, &mut replay, r.after);
            }
            assert_eq!(replay, noisy, "seed {seed}");
        }
    }

    #[test]
    fn values_stay_within_u64_without_overflow() {
        // A saturated input must survive further faults (bit flips on a
        // pegged counter, truncation of a saturated value).
        let pegged = DebugCounters {
            ccnt: COUNTER_SATURATED,
            pmem_stall: COUNTER_SATURATED,
            dmem_stall: COUNTER_SATURATED,
            pcache_miss: COUNTER_SATURATED,
            dcache_miss_clean: COUNTER_SATURATED,
            dcache_miss_dirty: COUNTER_SATURATED,
        };
        for seed in 0..100 {
            let (noisy, _) = FaultInjector::new(seed).perturb(&pegged);
            for id in CounterId::all() {
                assert!(id.read(&noisy) <= COUNTER_SATURATED);
            }
        }
    }

    #[test]
    fn display_formats_are_greppable() {
        let r = FaultRecord {
            kind: FaultKind::BitFlip { bit: 5 },
            counter: CounterId::PmemStall,
            before: 3,
            after: 35,
        };
        assert_eq!(r.to_string(), "bit-flip(bit=5) on pmem_stall: 3 -> 35");
        assert_eq!(FaultKind::Saturate.to_string(), "saturate");
        assert_eq!(
            FaultKind::TruncatedCorun { permille: 250 }.to_string(),
            "truncated-corun(permille=250)"
        );
    }
}
