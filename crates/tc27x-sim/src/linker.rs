//! The linker: places task code and data into the memory map and
//! compiles programs into the executable form the core pipeline runs.
//!
//! Linking validates every placement against Table 3
//! ([`crate::layout::Placement::validate`]), checks scratchpad ownership
//! and region capacity, resolves data references and flattens nested
//! loops into a flat instruction vector with explicit backward branches.
//!
//! # Examples
//!
//! ```
//! use tc27x_sim::addr::{CoreId, MemMap, Region};
//! use tc27x_sim::layout::{DataObject, Placement, TaskSpec};
//! use tc27x_sim::linker::Linker;
//! use tc27x_sim::program::{Pattern, Program};
//!
//! # fn main() -> Result<(), tc27x_sim::layout::LayoutError> {
//! let prog = Program::build(|b| {
//!     b.repeat(8, |b| { b.load("buf", Pattern::Sequential); });
//! });
//! let spec = TaskSpec::new("t", prog, Placement::new(Region::Pflash0, true))
//!     .with_object(DataObject::new("buf", 1024, Placement::new(Region::Lmu, false)));
//! let mut linker = Linker::new(MemMap::tc277());
//! let image = linker.link(CoreId(1), &spec)?;
//! assert_eq!(image.instrs.len(), 2); // load + loop branch
//! # Ok(())
//! # }
//! ```

use crate::addr::{Addr, CoreId, MemMap, Region, LINE_BYTES};
use crate::layout::{AccessClass, LayoutError, Placement, TaskSpec};
use crate::program::{Op, Pattern, OP_BYTES};
use std::collections::HashMap;

/// A compiled instruction with its linked code address.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LinkedInstr {
    /// Fetch address of this instruction.
    pub addr: Addr,
    /// Whether the fetch goes through a cacheable view.
    pub cacheable: bool,
    /// Region holding the instruction.
    pub region: Region,
    /// The operation itself.
    pub kind: InstrKind,
}

/// Executable instruction kinds (loops are flattened to [`InstrKind::LoopEnd`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstrKind {
    /// Busy pipeline work for the given cycles.
    Compute(u32),
    /// Memory access against object `obj` (index into
    /// [`TaskImage::objects`]).
    Mem {
        /// Object index.
        obj: u16,
        /// Walk pattern.
        pattern: Pattern,
        /// Store (`true`) or load.
        write: bool,
    },
    /// Backward branch: executed once per iteration, jumps to `target`
    /// while fewer than `count` iterations have completed.
    LoopEnd {
        /// Global instruction index of the loop body start.
        target: u32,
        /// Total iterations.
        count: u32,
    },
}

/// A linked data object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ObjRt {
    /// Object name.
    pub name: String,
    /// Base address (through the placement's view).
    pub base: Addr,
    /// Size in bytes.
    pub size: u32,
    /// Region holding the object.
    pub region: Region,
    /// Whether accesses go through a cacheable view.
    pub cacheable: bool,
}

/// A fully linked, executable task.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TaskImage {
    /// Task name.
    pub name: String,
    /// Flat instruction stream (all segments concatenated).
    pub instrs: Vec<LinkedInstr>,
    /// Linked data objects.
    pub objects: Vec<ObjRt>,
    /// Activation count (whole stream repeats).
    pub activations: u32,
    /// RNG seed for random patterns.
    pub seed: u64,
}

impl TaskImage {
    /// Code bytes occupied (sum over segments, without alignment gaps).
    pub fn code_bytes(&self) -> u32 {
        self.instrs.len() as u32 * OP_BYTES
    }

    /// Index of a linked object by name.
    pub fn object_index(&self, name: &str) -> Option<u16> {
        self.objects
            .iter()
            .position(|o| o.name == name)
            .map(|i| i as u16)
    }
}

/// Allocates addresses region-by-region and compiles task specs.
///
/// One `Linker` should be used per [`crate::system::System`] so that
/// tasks linked into the same system never overlap in shared memories.
#[derive(Clone, Debug)]
pub struct Linker {
    map: MemMap,
    cursors: HashMap<RegionKey, u32>,
}

/// Hashable key for a region (CoreId is embedded).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum RegionKey {
    Pspr(u8),
    Dspr(u8),
    Pflash0,
    Pflash1,
    Dflash,
    Lmu,
}

impl From<Region> for RegionKey {
    fn from(r: Region) -> Self {
        match r {
            Region::Pspr(c) => RegionKey::Pspr(c.0),
            Region::Dspr(c) => RegionKey::Dspr(c.0),
            Region::Pflash0 => RegionKey::Pflash0,
            Region::Pflash1 => RegionKey::Pflash1,
            Region::Dflash => RegionKey::Dflash,
            Region::Lmu => RegionKey::Lmu,
        }
    }
}

impl Linker {
    /// Creates a linker over a memory map with all regions empty.
    pub fn new(map: MemMap) -> Self {
        Linker {
            map,
            cursors: HashMap::new(),
        }
    }

    /// The memory map used for linking.
    pub fn map(&self) -> &MemMap {
        &self.map
    }

    /// Allocates `size` line-aligned bytes in `region`; returns the
    /// offset from the region base.
    fn allocate(&mut self, region: Region, size: u32) -> Result<u32, LayoutError> {
        let cap = self.map.region_size(region);
        let cursor = self.cursors.entry(region.into()).or_insert(0);
        let aligned = (*cursor).next_multiple_of(LINE_BYTES);
        let end = aligned as u64 + size as u64;
        if end > cap as u64 {
            return Err(LayoutError::RegionOverflow {
                region,
                requested: end,
                available: cap as u64,
            });
        }
        *cursor = end as u32;
        Ok(aligned)
    }

    fn check_ownership(core: CoreId, placement: Placement) -> Result<(), LayoutError> {
        match placement.region {
            Region::Pspr(owner) | Region::Dspr(owner) if owner != core => {
                Err(LayoutError::ForeignScratchpad {
                    running_on: core,
                    owner,
                })
            }
            _ => Ok(()),
        }
    }

    /// Links a task spec for execution on `core`.
    ///
    /// # Errors
    ///
    /// Any [`LayoutError`]: Table 3 violations, foreign scratchpads,
    /// region overflow, undeclared or empty data objects.
    pub fn link(&mut self, core: CoreId, spec: &TaskSpec) -> Result<TaskImage, LayoutError> {
        // Data objects first (programs reference them).
        let mut objects = Vec::with_capacity(spec.data_objects.len());
        for o in &spec.data_objects {
            o.placement.validate(AccessClass::Data)?;
            Self::check_ownership(core, o.placement)?;
            if o.size == 0 {
                return Err(LayoutError::EmptyObject {
                    name: o.name.clone(),
                });
            }
            let off = self.allocate(o.placement.region, o.size)?;
            let base = self
                .map
                .region_base(o.placement.region, o.placement.cacheable)
                .offset(off);
            objects.push(ObjRt {
                name: o.name.clone(),
                base,
                size: o.size,
                region: o.placement.region,
                cacheable: o.placement.cacheable,
            });
        }
        let obj_index = |name: &str| -> Result<u16, LayoutError> {
            objects
                .iter()
                .position(|o| o.name == name)
                .map(|i| i as u16)
                .ok_or_else(|| LayoutError::UnknownObject {
                    name: name.to_owned(),
                })
        };

        // Compile and place each segment.
        let mut instrs: Vec<LinkedInstr> = Vec::new();
        for seg in &spec.segments {
            seg.placement.validate(AccessClass::Code)?;
            Self::check_ownership(core, seg.placement)?;

            let start = instrs.len();
            compile_ops(seg.program.ops(), &mut instrs, &obj_index, seg.placement)?;
            let emitted = (instrs.len() - start) as u32;
            if emitted == 0 {
                continue;
            }
            let off = self.allocate(seg.placement.region, emitted * OP_BYTES)?;
            let base = self
                .map
                .region_base(seg.placement.region, seg.placement.cacheable)
                .offset(off);
            for (i, instr) in instrs[start..].iter_mut().enumerate() {
                instr.addr = base.offset(i as u32 * OP_BYTES);
            }
        }

        Ok(TaskImage {
            name: spec.name.clone(),
            instrs,
            objects,
            activations: spec.activations,
            seed: spec.seed,
        })
    }
}

/// Recursively compiles an op tree into `out` (addresses patched later).
fn compile_ops(
    ops: &[Op],
    out: &mut Vec<LinkedInstr>,
    obj_index: &dyn Fn(&str) -> Result<u16, LayoutError>,
    placement: Placement,
) -> Result<(), LayoutError> {
    let blank = |kind: InstrKind| LinkedInstr {
        addr: Addr(0),
        cacheable: placement.cacheable,
        region: placement.region,
        kind,
    };
    for op in ops {
        match op {
            Op::Compute(n) => out.push(blank(InstrKind::Compute(*n))),
            Op::Load(r) => out.push(blank(InstrKind::Mem {
                obj: obj_index(&r.object)?,
                pattern: r.pattern,
                write: false,
            })),
            Op::Store(r) => out.push(blank(InstrKind::Mem {
                obj: obj_index(&r.object)?,
                pattern: r.pattern,
                write: true,
            })),
            Op::Loop { count: 0, .. } => {}
            Op::Loop { count, body } => {
                let target = out.len() as u32;
                compile_ops(body, out, obj_index, placement)?;
                out.push(blank(InstrKind::LoopEnd {
                    target,
                    count: *count,
                }));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DataObject;
    use crate::program::Program;

    fn lmu_nc() -> Placement {
        Placement::new(Region::Lmu, false)
    }

    fn pf0() -> Placement {
        Placement::new(Region::Pflash0, true)
    }

    #[test]
    fn loops_flatten_with_back_branch() {
        let prog = Program::build(|b| {
            b.compute(1);
            b.repeat(5, |b| {
                b.compute(2);
                b.compute(3);
            });
        });
        let spec = TaskSpec::new("t", prog, pf0());
        let img = Linker::new(MemMap::tc277()).link(CoreId(1), &spec).unwrap();
        assert_eq!(img.instrs.len(), 4);
        match img.instrs[3].kind {
            InstrKind::LoopEnd { target, count } => {
                assert_eq!(target, 1);
                assert_eq!(count, 5);
            }
            ref k => panic!("expected LoopEnd, got {k:?}"),
        }
        // Addresses are consecutive 4-byte slots.
        for (i, instr) in img.instrs.iter().enumerate() {
            assert_eq!(instr.addr.0 - img.instrs[0].addr.0, i as u32 * 4);
        }
    }

    #[test]
    fn zero_count_loops_are_elided() {
        let prog = Program::build(|b| {
            b.repeat(0, |b| {
                b.compute(1);
            });
            b.compute(9);
        });
        let spec = TaskSpec::new("t", prog, pf0());
        let img = Linker::new(MemMap::tc277()).link(CoreId(1), &spec).unwrap();
        assert_eq!(img.instrs.len(), 1);
    }

    #[test]
    fn objects_are_line_aligned_and_disjoint() {
        let spec = TaskSpec::empty("t")
            .with_object(DataObject::new("a", 40, lmu_nc()))
            .with_object(DataObject::new("b", 8, lmu_nc()));
        let img = Linker::new(MemMap::tc277()).link(CoreId(1), &spec).unwrap();
        let a = &img.objects[0];
        let b = &img.objects[1];
        assert_eq!(a.base.0 % LINE_BYTES, 0);
        assert_eq!(b.base.0 % LINE_BYTES, 0);
        assert!(b.base.0 >= a.base.0 + 40);
    }

    #[test]
    fn two_tasks_share_a_region_without_overlap() {
        let mk =
            |name: &str| TaskSpec::empty(name).with_object(DataObject::new("x", 100, lmu_nc()));
        let mut linker = Linker::new(MemMap::tc277());
        let i1 = linker.link(CoreId(1), &mk("t1")).unwrap();
        let i2 = linker.link(CoreId(2), &mk("t2")).unwrap();
        let r1 = i1.objects[0].base.0..i1.objects[0].base.0 + 100;
        let r2 = i2.objects[0].base.0..i2.objects[0].base.0 + 100;
        assert!(r1.end <= r2.start || r2.end <= r1.start);
    }

    #[test]
    fn region_overflow_is_reported() {
        // LMU is 32 KiB.
        let spec = TaskSpec::empty("t").with_object(DataObject::new("big", 33 << 10, lmu_nc()));
        match Linker::new(MemMap::tc277()).link(CoreId(1), &spec) {
            Err(LayoutError::RegionOverflow { region, .. }) => assert_eq!(region, Region::Lmu),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn foreign_scratchpad_rejected() {
        let spec =
            TaskSpec::empty("t").with_object(DataObject::new("x", 8, Placement::dspr(CoreId(2))));
        match Linker::new(MemMap::tc277()).link(CoreId(1), &spec) {
            Err(LayoutError::ForeignScratchpad { running_on, owner }) => {
                assert_eq!(running_on, CoreId(1));
                assert_eq!(owner, CoreId(2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_object_rejected() {
        let prog = Program::build(|b| {
            b.load("ghost", Pattern::Sequential);
        });
        let spec = TaskSpec::new("t", prog, pf0());
        match Linker::new(MemMap::tc277()).link(CoreId(1), &spec) {
            Err(LayoutError::UnknownObject { name }) => assert_eq!(name, "ghost"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_object_rejected() {
        let spec = TaskSpec::empty("t").with_object(DataObject::new("z", 0, lmu_nc()));
        assert!(matches!(
            Linker::new(MemMap::tc277()).link(CoreId(1), &spec),
            Err(LayoutError::EmptyObject { .. })
        ));
    }

    #[test]
    fn table3_enforced_at_link_time() {
        // Non-cacheable data in pflash.
        let spec = TaskSpec::empty("t").with_object(DataObject::new(
            "x",
            8,
            Placement::new(Region::Pflash0, false),
        ));
        assert!(matches!(
            Linker::new(MemMap::tc277()).link(CoreId(1), &spec),
            Err(LayoutError::ForbiddenPlacement { .. })
        ));
        // Code in dflash.
        let prog = Program::build(|b| {
            b.compute(1);
        });
        let spec = TaskSpec::new("t", prog, Placement::new(Region::Dflash, false));
        assert!(matches!(
            Linker::new(MemMap::tc277()).link(CoreId(1), &spec),
            Err(LayoutError::ForbiddenPlacement { .. })
        ));
    }

    #[test]
    fn multi_segment_addresses_land_in_their_regions() {
        let seg1 = Program::build(|b| {
            b.compute(1);
        });
        let seg2 = Program::build(|b| {
            b.compute(2);
        });
        let spec = TaskSpec::empty("t")
            .with_segment(seg1, Placement::pspr(CoreId(1)))
            .with_segment(seg2, Placement::new(Region::Pflash1, true));
        let img = Linker::new(MemMap::tc277()).link(CoreId(1), &spec).unwrap();
        assert_eq!(img.instrs[0].region, Region::Pspr(CoreId(1)));
        assert_eq!(img.instrs[1].region, Region::Pflash1);
        assert!(img.instrs[1].cacheable);
        assert!(!img.instrs[0].cacheable);
    }

    #[test]
    fn object_index_lookup() {
        let spec = TaskSpec::empty("t")
            .with_object(DataObject::new("a", 8, lmu_nc()))
            .with_object(DataObject::new("b", 8, lmu_nc()));
        let img = Linker::new(MemMap::tc277()).link(CoreId(0), &spec).unwrap();
        assert_eq!(img.object_index("b"), Some(1));
        assert_eq!(img.object_index("c"), None);
    }
}
