//! Contention attribution: charging every SRI wait cycle to the
//! aggressor that caused it.
//!
//! The crossbar already knows the exact queueing delay of every grant
//! (`grant cycle − posting cycle`, see [`crate::sri::Sri::queue_delay`]).
//! This module splits that delay *by cause*: while a request waited,
//! which core's transaction was occupying the slave? Each wait cycle is
//! charged to a `(victim core, aggressor core, slave)` triple at grant
//! time; cycles during which no transaction occupied the slave — TDMA
//! slot alignment, service gaps under a fitting-check — go to a
//! synthetic *schedule* column so the ledger stays conservative:
//!
//! > per slave, the attributed cycles sum **exactly** to the slave's
//! > `queue_delay`.
//!
//! Recording happens inside [`crate::sri::Sri::step`], the single grant
//! site shared by the per-cycle reference stepper and the event kernel
//! (block-memo warps never run while a core has SRI work in flight), so
//! an enabled recorder produces byte-identical matrices across engines,
//! memo settings and worker counts. Recording is opt-in
//! ([`crate::config::SimConfig::with_attribution`]) and zero-cost when
//! off: the crossbar holds an `Option<Box<..>>` that stays `None`.

use crate::addr::{CoreId, SriTarget};
use crate::layout::AccessClass;
use crate::sri::Pending;

/// Aggressor column index for wait cycles no core's transaction covers
/// (TDMA slot alignment and fitting gaps).
pub const SCHED_COL: usize = CoreId::COUNT;

/// Number of aggressor columns: one per core plus [`SCHED_COL`].
pub const AGGRESSOR_COLS: usize = CoreId::COUNT + 1;

/// Access classes tracked per victim (code, data).
const CLASSES: usize = 2;

fn class_idx(class: AccessClass) -> usize {
    match class {
        AccessClass::Code => 0,
        AccessClass::Data => 1,
    }
}

/// The attribution ledger: per slave, a `victim × aggressor` matrix of
/// wait cycles, plus per-victim access-class splits and per-grant
/// maxima for the bound-tightness auditor.
///
/// Matrices are plain integers with a commutative, associative
/// [`AttributionMatrix::merge`], so folding per-job matrices in a fixed
/// (job-key) order is deterministic at any worker count.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AttributionMatrix {
    /// `wait[slave][victim][aggressor][class]` in cycles; the last
    /// aggressor column is [`SCHED_COL`], classes are `[code, data]`.
    wait: [[[[u64; CLASSES]; AGGRESSOR_COLS]; CoreId::COUNT]; SriTarget::COUNT],
    /// Grants counted per victim and access class.
    grants_by_class: [[[u64; CLASSES]; CoreId::COUNT]; SriTarget::COUNT],
    /// Largest cross-core wait any single grant suffered, per (slave,
    /// victim). Cycles a victim spent behind its *own* other-master
    /// transaction (a PMI fetch and a DMI access can target the same
    /// slave) or behind the schedule are excluded: the arbitration
    /// bound this maximum is audited against covers contender-caused
    /// delay only.
    max_wait: [[u64; CoreId::COUNT]; SriTarget::COUNT],
}

impl AttributionMatrix {
    /// Counts one grant of `victim` at slave slot `target`: bumps the
    /// per-class grant count and folds `cross_wait` — the grant's wait
    /// share charged to **other** cores — into the per-grant maximum.
    /// (The wait cycles themselves are added via [`charge`], split by
    /// aggressor.)
    ///
    /// [`charge`]: AttributionMatrix::charge
    pub fn note_grant(
        &mut self,
        target: usize,
        victim: usize,
        class: AccessClass,
        cross_wait: u64,
    ) {
        self.grants_by_class[target][victim][class_idx(class)] += 1;
        let m = &mut self.max_wait[target][victim];
        *m = (*m).max(cross_wait);
    }

    /// Adds `cycles` wait cycles of `victim` at slave slot `target` to
    /// aggressor column `aggressor` (a core index, or [`SCHED_COL`]).
    pub fn charge(
        &mut self,
        target: usize,
        victim: usize,
        aggressor: usize,
        class: AccessClass,
        cycles: u64,
    ) {
        self.wait[target][victim][aggressor][class_idx(class)] += cycles;
    }

    /// One raw ledger cell: wait cycles of `victim` at `target` on
    /// grants of `class`, charged to aggressor column `col` (a core
    /// index, or [`SCHED_COL`]). The serialization-level accessor.
    pub fn cell(&self, target: SriTarget, victim: CoreId, col: usize, class: AccessClass) -> u64 {
        self.wait[target.index()][victim.index()][col][class_idx(class)]
    }

    /// Wait cycles of `victim` at `target` caused by `aggressor`'s
    /// transactions occupying the slave.
    pub fn wait_cycles(&self, target: SriTarget, victim: CoreId, aggressor: CoreId) -> u64 {
        self.wait[target.index()][victim.index()][aggressor.index()]
            .iter()
            .sum()
    }

    /// Wait cycles of `victim` at `target` not covered by any core's
    /// transaction (TDMA slot alignment / fitting gaps).
    pub fn schedule_wait(&self, target: SriTarget, victim: CoreId) -> u64 {
        self.wait[target.index()][victim.index()][SCHED_COL]
            .iter()
            .sum()
    }

    /// One full aggressor row (`CoreId::COUNT` cores then the schedule
    /// column), summed over classes, for rendering and serialization.
    pub fn row(&self, target: SriTarget, victim: CoreId) -> [u64; AGGRESSOR_COLS] {
        let mut out = [0u64; AGGRESSOR_COLS];
        for (col, slot) in out.iter_mut().enumerate() {
            *slot = self.wait[target.index()][victim.index()][col].iter().sum();
        }
        out
    }

    /// Total wait of `victim` at `target`, over all aggressor columns.
    pub fn victim_wait(&self, target: SriTarget, victim: CoreId) -> u64 {
        self.row(target, victim).iter().sum()
    }

    /// Total attributed cycles at `target`; conservation makes this
    /// exactly the slave's `queue_delay` when recording was on for the
    /// whole run.
    pub fn slave_wait(&self, target: SriTarget) -> u64 {
        CoreId::all()
            .iter()
            .map(|&v| self.victim_wait(target, v))
            .sum()
    }

    /// Total attributed cycles over every slave.
    pub fn total_wait(&self) -> u64 {
        SriTarget::all().iter().map(|&t| self.slave_wait(t)).sum()
    }

    /// Wait cycles of `victim` at `target` on grants of `class`, over
    /// all aggressor columns.
    pub fn class_wait(&self, target: SriTarget, victim: CoreId, class: AccessClass) -> u64 {
        (0..AGGRESSOR_COLS)
            .map(|col| self.cell(target, victim, col, class))
            .sum()
    }

    /// Wait cycles of `victim` on grants of `class`, over all slaves.
    pub fn class_wait_total(&self, victim: CoreId, class: AccessClass) -> u64 {
        SriTarget::all()
            .iter()
            .map(|&t| self.class_wait(t, victim, class))
            .sum()
    }

    /// *Interference*: wait cycles of `victim` at `target` on grants of
    /// `class` charged to **other cores** — the schedule column and the
    /// self column excluded. (The self column is not always zero: a
    /// core's PMI fetch and DMI access can queue behind each other at a
    /// shared slave, a delay that exists in isolation too.) This is the
    /// observation the bound-tightness audit compares against the
    /// model's per-contender budget: schedule alignment and self-delay
    /// are part of the isolation WCET, not of `Δcont`.
    pub fn interference(&self, target: SriTarget, victim: CoreId, class: AccessClass) -> u64 {
        (0..CoreId::COUNT)
            .filter(|&a| a != victim.index())
            .map(|a| self.cell(target, victim, a, class))
            .sum()
    }

    /// Interference of `victim` on grants of `class`, over all slaves.
    pub fn interference_total(&self, victim: CoreId, class: AccessClass) -> u64 {
        SriTarget::all()
            .iter()
            .map(|&t| self.interference(t, victim, class))
            .sum()
    }

    /// Grants of `victim` at `target` of `class`.
    pub fn class_grants(&self, target: SriTarget, victim: CoreId, class: AccessClass) -> u64 {
        self.grants_by_class[target.index()][victim.index()][class_idx(class)]
    }

    /// Grants of `victim` of `class`, over all slaves.
    pub fn class_grants_total(&self, victim: CoreId, class: AccessClass) -> u64 {
        SriTarget::all()
            .iter()
            .map(|&t| self.class_grants(t, victim, class))
            .sum()
    }

    /// Largest cross-core wait a single grant of `victim` suffered at
    /// `target` (self- and schedule-charged cycles excluded — see
    /// [`AttributionMatrix::note_grant`]).
    pub fn max_wait(&self, target: SriTarget, victim: CoreId) -> u64 {
        self.max_wait[target.index()][victim.index()]
    }

    /// `true` iff nothing was ever recorded (also the snapshot an
    /// attribution-off run reports).
    pub fn is_zero(&self) -> bool {
        *self == AttributionMatrix::default()
    }

    /// Folds `other` into `self`: waits, class splits and grant counts
    /// add; per-grant maxima take the max. Commutative and associative,
    /// so any fold order over per-job matrices converges — campaigns
    /// fold in job-key order to also fix the intermediate states.
    pub fn merge(&mut self, other: &AttributionMatrix) {
        for t in 0..SriTarget::COUNT {
            for v in 0..CoreId::COUNT {
                for a in 0..AGGRESSOR_COLS {
                    for c in 0..CLASSES {
                        self.wait[t][v][a][c] += other.wait[t][v][a][c];
                    }
                }
                for c in 0..CLASSES {
                    self.grants_by_class[t][v][c] += other.grants_by_class[t][v][c];
                }
                self.max_wait[t][v] = self.max_wait[t][v].max(other.max_wait[t][v]);
            }
        }
    }
}

/// One completed (or in-flight) service interval at a slave: the owner
/// core occupied the slave for `[start, end)`.
#[derive(Clone, Copy, Debug)]
struct Service {
    core: usize,
    start: u64,
    end: u64,
}

/// The opt-in recorder the crossbar carries: recent service intervals
/// per slave (pruned once no waiter can overlap them) plus the ledger.
#[derive(Clone, Debug, Default)]
pub(crate) struct Attribution {
    history: [Vec<Service>; SriTarget::COUNT],
    matrix: AttributionMatrix,
}

impl Attribution {
    /// Charges the wait window `[granted.posted_at, granted_at)` of the
    /// grant just issued: overlap with each recorded service interval
    /// goes to that interval's owner, the uncovered remainder to
    /// [`SCHED_COL`]. `remaining` is the slave's queue after the grant
    /// was removed — its oldest posting cycle bounds how far back future
    /// wait windows can reach, which is the history pruning horizon.
    pub(crate) fn on_grant(
        &mut self,
        target: usize,
        granted: &Pending,
        granted_at: u64,
        complete_at: u64,
        remaining: &[Pending],
    ) {
        let victim = granted.core.index();
        let class = granted.class;
        let posted_at = granted.posted_at;
        let wait = granted_at - posted_at;
        let mut covered = 0;
        let mut cross = 0;
        for s in &self.history[target] {
            // Every recorded interval ended by `granted_at` (the slave
            // was free to grant), so the overlap is `[max(start,
            // posted_at), end)` clipped to the wait window.
            let lo = s.start.max(posted_at);
            let hi = s.end.min(granted_at);
            if lo < hi {
                self.matrix.charge(target, victim, s.core, class, hi - lo);
                covered += hi - lo;
                // The victim's own other-master transaction (PMI vs
                // DMI) is not contention; only other cores' cycles
                // count toward the audited per-grant maximum.
                if s.core != victim {
                    cross += hi - lo;
                }
            }
        }
        debug_assert!(covered <= wait, "intervals are disjoint within a slave");
        self.matrix.note_grant(target, victim, class, cross);
        if covered < wait {
            self.matrix
                .charge(target, victim, SCHED_COL, class, wait - covered);
        }
        self.history[target].push(Service {
            core: victim,
            start: granted_at,
            end: complete_at,
        });
        let horizon = remaining
            .iter()
            .map(|p| p.posted_at)
            .min()
            .unwrap_or(granted_at);
        self.history[target].retain(|s| s.end > horizon);
    }

    pub(crate) fn matrix(&self) -> &AttributionMatrix {
        &self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test shorthand: a [`Pending`] for `core`/`class` posted at
    /// `posted_at`.
    fn pend(core: u8, class: AccessClass, posted_at: u64) -> Pending {
        Pending {
            core: CoreId(core),
            service: 16,
            posted_at,
            class,
        }
    }

    #[test]
    fn merge_is_additive_and_maxing() {
        let mut a = AttributionMatrix::default();
        let mut b = AttributionMatrix::default();
        a.charge(3, 1, 2, AccessClass::Data, 10);
        a.note_grant(3, 1, AccessClass::Data, 10);
        b.charge(3, 1, 2, AccessClass::Data, 5);
        b.charge(3, 1, SCHED_COL, AccessClass::Data, 2);
        b.note_grant(3, 1, AccessClass::Data, 7);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        let (t, v) = (SriTarget::Lmu, CoreId(1));
        assert_eq!(ab.wait_cycles(t, v, CoreId(2)), 15);
        assert_eq!(ab.schedule_wait(t, v), 2);
        assert_eq!(ab.victim_wait(t, v), 17);
        assert_eq!(ab.slave_wait(t), 17);
        assert_eq!(ab.total_wait(), 17);
        assert_eq!(ab.class_wait(t, v, AccessClass::Data), 17);
        assert_eq!(ab.cell(t, v, 2, AccessClass::Data), 15);
        assert_eq!(
            ab.interference(t, v, AccessClass::Data),
            15,
            "interference counts other-core columns only"
        );
        assert_eq!(ab.interference_total(v, AccessClass::Data), 15);
        assert_eq!(ab.class_grants_total(v, AccessClass::Data), 2);
        assert_eq!(ab.class_grants_total(v, AccessClass::Code), 0);
        assert_eq!(ab.max_wait(t, v), 10);
        assert!(!ab.is_zero());
        assert!(AttributionMatrix::default().is_zero());
    }

    #[test]
    fn wait_window_splits_between_aggressor_and_schedule() {
        let mut attr = Attribution::default();
        // Aggressor core 2 occupied slave 0 for [0, 16).
        attr.on_grant(0, &pend(2, AccessClass::Code, 0), 0, 16, &[]);
        // Victim core 1 posted at 4, granted at 20: 12 cycles overlap
        // core 2's service, 4 cycles (16..20) were a schedule gap.
        attr.on_grant(0, &pend(1, AccessClass::Code, 4), 20, 36, &[]);
        let m = attr.matrix();
        let t = SriTarget::Pf0;
        assert_eq!(m.wait_cycles(t, CoreId(1), CoreId(2)), 12);
        assert_eq!(m.schedule_wait(t, CoreId(1)), 4);
        assert_eq!(m.victim_wait(t, CoreId(1)), 16);
        assert_eq!(m.victim_wait(t, CoreId(2)), 0, "zero wait charges nothing");
        assert_eq!(
            m.max_wait(t, CoreId(1)),
            12,
            "per-grant max counts the cross-core share only"
        );
        assert_eq!(m.row(t, CoreId(1))[SCHED_COL], 4);
    }

    #[test]
    fn self_overlap_charges_the_diagonal_but_not_the_grant_maximum() {
        let mut attr = Attribution::default();
        // Core 1's PMI fetch occupied slave 0 for [0, 16); its own DMI
        // access posted at 2 and was granted at 16: all 14 wait cycles
        // overlap the core's own service.
        attr.on_grant(0, &pend(1, AccessClass::Code, 0), 0, 16, &[]);
        attr.on_grant(0, &pend(1, AccessClass::Data, 2), 16, 27, &[]);
        let m = attr.matrix();
        let t = SriTarget::Pf0;
        assert_eq!(m.wait_cycles(t, CoreId(1), CoreId(1)), 14);
        assert_eq!(m.victim_wait(t, CoreId(1)), 14);
        assert_eq!(
            m.interference(t, CoreId(1), AccessClass::Data),
            0,
            "self-delay is not interference"
        );
        assert_eq!(
            m.max_wait(t, CoreId(1)),
            0,
            "self-delay must not trip the grant-wait audit"
        );
    }

    #[test]
    fn history_is_pruned_to_the_oldest_waiter() {
        let mut attr = Attribution::default();
        for k in 0..100u64 {
            // Back-to-back services, no waiter left behind: history
            // must not grow without bound.
            attr.on_grant(
                1,
                &pend(0, AccessClass::Code, k * 16),
                k * 16,
                (k + 1) * 16,
                &[],
            );
            assert!(attr.history[1].len() <= 2, "at {k}: {:?}", attr.history[1]);
        }
        // A waiter posted long ago keeps the overlapping tail alive.
        let waiter = Pending {
            core: CoreId(2),
            service: 16,
            posted_at: 90 * 16,
            class: AccessClass::Code,
        };
        attr.on_grant(
            1,
            &pend(0, AccessClass::Code, 100 * 16),
            100 * 16,
            101 * 16,
            &[waiter],
        );
        assert!(attr.history[1].iter().all(|s| s.end > 90 * 16));
        assert!(attr.history[1].len() >= 2);
    }
}
