//! Simulator configuration: slave service times, stall hiding and cache
//! geometries.
//!
//! The reference values ([`SimConfig::tc277_reference`]) are chosen so
//! that calibration on the simulator recovers exactly Table 2 of the
//! paper: maximum latencies of 16 (pf), 11/21 (lmu), 43 (dfl) cycles and
//! best-case stall cycles of 6 (pf code), 11 (pf data / lmu code),
//! 10 (lmu data) and 42 (dfl data).

use crate::addr::{CoreId, SriTarget};
use crate::cache::CacheGeometry;
use crate::engine::Engine;
use crate::layout::AccessClass;
use platform::{Arbitration, PlatformDesc};

// The platform crate's capacity constants and the simulator's dense
// array sizes must agree; a description with fewer cores/slaves marks
// the surplus inactive/absent.
const _: () = assert!(CoreId::COUNT == platform::MAX_CORES);
const _: () = assert!(SriTarget::COUNT == platform::SLAVE_SLOTS);

/// Service and hiding parameters of one SRI slave.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SlaveTiming {
    /// Slave occupancy for a request that hits the sequential prefetch
    /// stream (program-flash prefetch buffer); equals `service` for
    /// slaves without a prefetcher.
    pub service_sequential: u32,
    /// Slave occupancy for any other request.
    pub service: u32,
    /// Occupancy of a cache-line write-back burst to this slave.
    pub writeback_service: u32,
}

/// Full simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Per-target slave timing, indexed by [`SriTarget::index`].
    pub slaves: [SlaveTiming; SriTarget::COUNT],
    /// Which slave slots exist on this platform; placements into an
    /// absent slot are rejected at load time.
    pub slave_present: [bool; SriTarget::COUNT],
    /// Which slaves have a sequential prefetcher (whose hits are served
    /// in `service_sequential` and hide `fetch_prefetch_hide` cycles).
    pub slave_prefetch: [bool; SriTarget::COUNT],
    /// Arbitration policy per slave port.
    pub arbitration: [Arbitration; SriTarget::COUNT],
    /// Number of active cores (`1..=CoreId::COUNT`); loading a task on
    /// a core at or past this index is rejected, and the TDMA schedule
    /// has one slot per active core.
    pub active_cores: usize,
    /// Pipeline cycles a *sequential, prefetched* code fetch from program
    /// flash can hide (run-ahead of the fetch engine).
    pub fetch_prefetch_hide: u32,
    /// Pipeline cycles any data access can hide (posted address phase).
    pub data_hide: u32,
    /// Instruction-cache geometry of the TriCore 1.6P cores.
    pub icache_p: CacheGeometry,
    /// Instruction-cache geometry of the TriCore 1.6E core.
    pub icache_e: CacheGeometry,
    /// Data-cache geometry of the TriCore 1.6P cores.
    pub dcache_p: CacheGeometry,
    /// Data read buffer of the TriCore 1.6E core (single line).
    pub drb_e: CacheGeometry,
    /// Hard cap on simulated cycles per run (guards against runaway
    /// workloads).
    pub max_cycles: u64,
    /// SRI priority class per core (higher wins; ties arbitrate
    /// round-robin). All-equal by default — the same-class case the
    /// paper analyses as the most stressing one.
    pub master_priority: [u8; CoreId::COUNT],
    /// Per-core trace buffer capacity in events; 0 (default) disables
    /// tracing entirely.
    pub trace_capacity: usize,
    /// Per-core SRI transaction quota — the runtime capacity
    /// enforcement of Nowotsch et al. (reference \[16\] of the paper): a
    /// core that exhausts its quota is suspended for the rest of the
    /// run, so its interference can never exceed the budgeted amount.
    /// `None` (default) disables enforcement for the core.
    pub sri_quota: [Option<u64>; CoreId::COUNT],
    /// Which timing kernel drives the run: the event-driven kernel
    /// (default) or the per-cycle reference stepper. Bit-identical
    /// outcomes either way; see [`crate::engine`].
    pub engine: Engine,
    /// Basic-block timing memoization inside the event kernel (see
    /// [`crate::memo`]): stall-free instruction runs are fingerprinted
    /// and replayed in one kernel delta. On by default; has no effect
    /// under the reference stepper. Results are bit-identical either
    /// way — this knob exists for differential testing and debugging.
    pub block_memo: bool,
    /// Slots in the per-core block-memo table (direct-mapped). Each slot
    /// holds one recorded block; colliding fingerprints evict. The
    /// default (1024) is deliberately modest: warp coverage comes from
    /// interpret-and-record as much as from replay hits, so a larger
    /// table mostly buys allocation cost on short runs.
    pub block_memo_capacity: usize,
    /// Contention attribution ([`crate::attribution`]): charge every
    /// SRI wait cycle to its `(victim, aggressor, slave)` triple at
    /// grant time. Off by default — the recorder is opt-in and
    /// zero-cost when disabled; the recorded matrix is byte-identical
    /// across engines, memo settings and worker counts.
    pub attribution: bool,
}

impl SimConfig {
    /// The TC277 reference configuration (matches Figure 1 and Table 2
    /// of the paper). Exactly [`SimConfig::from_platform`] applied to
    /// the default platform description — the Table 2 numbers live in
    /// one place, [`platform::PlatformDesc::tc27x`], and flow from
    /// there.
    pub fn tc277_reference() -> Self {
        SimConfig::from_platform(platform::default_platform())
    }

    /// Derives a configuration from a platform description: slave
    /// timings, presence, prefetchers, arbitration, hide cycles, cache
    /// geometries, priorities and the active core count all come from
    /// the description; engine/memo/trace/quota knobs get their
    /// defaults (set them with the builders). For the default TC27x
    /// description this is [`SimConfig::tc277_reference`].
    pub fn from_platform(desc: &PlatformDesc) -> Self {
        let geom = |c: platform::CacheShape| CacheGeometry::new(c.size_bytes, c.ways);
        SimConfig {
            slaves: std::array::from_fn(|i| {
                let s = desc.slave(i);
                SlaveTiming {
                    service_sequential: s.service_sequential,
                    service: s.service,
                    writeback_service: s.writeback_service,
                }
            }),
            slave_present: std::array::from_fn(|i| desc.slave(i).present),
            slave_prefetch: std::array::from_fn(|i| desc.slave(i).prefetch),
            arbitration: std::array::from_fn(|i| desc.slave(i).arbitration),
            active_cores: desc.cores.min(CoreId::COUNT),
            fetch_prefetch_hide: desc.fetch_prefetch_hide,
            data_hide: desc.data_hide,
            icache_p: geom(desc.icache_p),
            icache_e: geom(desc.icache_e),
            dcache_p: geom(desc.dcache_p),
            drb_e: geom(desc.drb_e),
            max_cycles: 500_000_000,
            master_priority: desc.master_priority,
            trace_capacity: 0,
            sri_quota: [None; CoreId::COUNT],
            engine: Engine::default(),
            block_memo: true,
            block_memo_capacity: 1024,
            attribution: false,
        }
    }

    /// Variant driven by an explicit timing kernel (builder style).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Variant with an SRI transaction quota on one core (builder
    /// style).
    #[must_use]
    pub fn with_sri_quota(mut self, core: CoreId, quota: u64) -> Self {
        self.sri_quota[core.index()] = Some(quota);
        self
    }

    /// Variant with per-core execution tracing enabled (builder style).
    #[must_use]
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Variant with an explicit per-run cycle budget (builder style):
    /// the run aborts with [`crate::SimError::CycleLimit`] once `limit`
    /// simulated cycles have elapsed. Campaign runners use this as a
    /// deterministic per-job guard underneath their wall-clock
    /// watchdogs — a livelocked job terminates at a simulated-cycle
    /// bound instead of burning host CPU until the default half-billion
    /// cycle cap.
    #[must_use]
    pub fn with_max_cycles(mut self, limit: u64) -> Self {
        self.max_cycles = limit;
        self
    }

    /// Variant with explicit SRI master priorities (builder style).
    #[must_use]
    pub fn with_master_priority(mut self, priority: [u8; CoreId::COUNT]) -> Self {
        self.master_priority = priority;
        self
    }

    /// Variant with block-memoization toggled (builder style). Memo on
    /// and off produce bit-identical runs; off trades speed for a
    /// simpler kernel, which the differential suites exploit.
    #[must_use]
    pub fn with_block_memo(mut self, enabled: bool) -> Self {
        self.block_memo = enabled;
        self
    }

    /// Variant with an explicit block-memo table capacity in slots
    /// (builder style). A capacity of zero disables memoization.
    #[must_use]
    pub fn with_block_memo_capacity(mut self, slots: usize) -> Self {
        self.block_memo_capacity = slots;
        self
    }

    /// Variant with contention attribution toggled (builder style): the
    /// crossbar charges every wait cycle to its `(victim, aggressor,
    /// slave)` triple and [`crate::System::stats`] carries the matrix.
    /// Recording never changes timing — outcomes are bit-identical with
    /// it on or off.
    #[must_use]
    pub fn with_attribution(mut self, enabled: bool) -> Self {
        self.attribution = enabled;
        self
    }

    /// Timing of one slave.
    pub fn slave(&self, target: SriTarget) -> SlaveTiming {
        self.slaves[target.index()]
    }

    /// Cycles a request can hide, given its class and whether the flash
    /// prefetcher predicted it.
    pub fn hide_cycles(&self, class: AccessClass, target: SriTarget, sequential: bool) -> u32 {
        match class {
            AccessClass::Code if sequential && self.slave_prefetch[target.index()] => {
                self.fetch_prefetch_hide
            }
            AccessClass::Code => 0,
            AccessClass::Data => self.data_hide,
        }
    }

    /// Instruction-cache geometry for a core.
    pub fn icache_for(&self, core: CoreId) -> CacheGeometry {
        if core.is_efficiency() {
            self.icache_e
        } else {
            self.icache_p
        }
    }

    /// Data-cache (or DRB) geometry for a core.
    pub fn dcache_for(&self, core: CoreId) -> CacheGeometry {
        if core.is_efficiency() {
            self.drb_e
        } else {
            self.dcache_p
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::tc277_reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_table2_service_times() {
        let c = SimConfig::tc277_reference();
        assert_eq!(c.slave(SriTarget::Pf0).service, 16);
        assert_eq!(c.slave(SriTarget::Pf0).service_sequential, 12);
        assert_eq!(c.slave(SriTarget::Pf1).service, 16);
        assert_eq!(c.slave(SriTarget::Dfl).service, 43);
        assert_eq!(c.slave(SriTarget::Lmu).service, 11);
        assert_eq!(c.slave(SriTarget::Lmu).writeback_service, 10);
    }

    #[test]
    fn hiding_rules() {
        let c = SimConfig::tc277_reference();
        use AccessClass::{Code, Data};
        // Sequential code fetch from pflash hides the prefetch lead.
        assert_eq!(c.hide_cycles(Code, SriTarget::Pf0, true), 6);
        // Non-sequential fetch hides nothing.
        assert_eq!(c.hide_cycles(Code, SriTarget::Pf0, false), 0);
        // The LMU has no prefetcher.
        assert_eq!(c.hide_cycles(Code, SriTarget::Lmu, true), 0);
        // Data always hides the posted address phase.
        assert_eq!(c.hide_cycles(Data, SriTarget::Lmu, false), 1);
        assert_eq!(c.hide_cycles(Data, SriTarget::Dfl, true), 1);
    }

    #[test]
    fn best_case_stalls_match_table2() {
        // stall = service(best) - hide: the Table 2 cs row.
        let c = SimConfig::tc277_reference();
        use AccessClass::{Code, Data};
        let cs = |t: SriTarget, class: AccessClass| {
            let s = if t.is_pflash() {
                c.slave(t).service_sequential
            } else {
                c.slave(t).service
            };
            s - c.hide_cycles(class, t, true)
        };
        assert_eq!(cs(SriTarget::Pf0, Code), 6);
        assert_eq!(cs(SriTarget::Pf0, Data), 11);
        assert_eq!(cs(SriTarget::Lmu, Code), 11);
        assert_eq!(cs(SriTarget::Lmu, Data), 10);
        assert_eq!(cs(SriTarget::Dfl, Data), 42);
    }

    #[test]
    fn max_cycles_builder_overrides_the_default() {
        let c = SimConfig::tc277_reference().with_max_cycles(1_000);
        assert_eq!(c.max_cycles, 1_000);
        assert_eq!(SimConfig::tc277_reference().max_cycles, 500_000_000);
    }

    #[test]
    fn engine_defaults_to_event_and_builds() {
        assert_eq!(SimConfig::tc277_reference().engine, Engine::Event);
        let c = SimConfig::tc277_reference().with_engine(Engine::Tick);
        assert_eq!(c.engine, Engine::Tick);
    }

    #[test]
    fn block_memo_defaults_on_and_builds() {
        let c = SimConfig::tc277_reference();
        assert!(c.block_memo);
        assert!(c.block_memo_capacity > 0);
        let c = c.with_block_memo(false).with_block_memo_capacity(16);
        assert!(!c.block_memo);
        assert_eq!(c.block_memo_capacity, 16);
    }

    #[test]
    fn default_platform_derivation_is_bit_identical_to_the_reference() {
        let derived = SimConfig::from_platform(platform::default_platform());
        let reference = SimConfig::tc277_reference();
        assert_eq!(format!("{derived:?}"), format!("{reference:?}"));
    }

    #[test]
    fn non_default_platforms_derive_their_own_shape() {
        let tdma = SimConfig::from_platform(&platform::PlatformDesc::tc27x_tdma());
        assert!(matches!(
            tdma.arbitration[0],
            Arbitration::Tdma { slot_len: 16 }
        ));
        assert_eq!(tdma.active_cores, 3);
        let ahb = SimConfig::from_platform(&platform::PlatformDesc::ahb2());
        assert_eq!(ahb.active_cores, 2);
        assert_eq!(
            ahb.slave_present,
            [true, false, false, true],
            "pf1/dfl slots are absent on ahb2"
        );
        assert_eq!(ahb.slave_prefetch, [false; SriTarget::COUNT]);
        assert_eq!(ahb.slave(SriTarget::Pf0).service, 8);
        assert_eq!(ahb.slave(SriTarget::Lmu).service, 2);
        assert!(matches!(ahb.arbitration[0], Arbitration::FixedPriority));
        // No prefetcher anywhere: sequential code fetches hide nothing.
        assert_eq!(ahb.hide_cycles(AccessClass::Code, SriTarget::Pf0, true), 0);
    }

    #[test]
    fn core_kind_cache_selection() {
        let c = SimConfig::tc277_reference();
        assert_eq!(c.icache_for(CoreId(0)).size_bytes, 8 << 10);
        assert_eq!(c.icache_for(CoreId(1)).size_bytes, 16 << 10);
        assert_eq!(c.dcache_for(CoreId(0)).lines(), 1);
        assert_eq!(c.dcache_for(CoreId(2)).size_bytes, 8 << 10);
    }
}
