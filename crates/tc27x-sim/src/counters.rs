//! DSU debug counters and simulator-only ground truth.
//!
//! [`DebugCounters`] mirrors exactly what the AURIX Debug Support Unit
//! exposes and is the *only* information the contention models may
//! consume. [`GroundTruth`] records the per-target access counts the real
//! hardware cannot report — the simulator keeps them for the ideal model
//! (Eq. 1 assumes full PTAC knowledge) and for validating the counter
//! semantics in tests.

use crate::addr::SriTarget;
use crate::attribution::AttributionMatrix;
use crate::layout::AccessClass;
use obs::Hist;
use std::fmt;
use std::ops::{Index, IndexMut};

/// The TC27x debug counters used by the paper (Table 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct DebugCounters {
    /// On-chip cycle counter: cycles from task start to completion.
    pub ccnt: u64,
    /// Cycles the pipeline stalled on the program memory interface.
    pub pmem_stall: u64,
    /// Cycles the pipeline stalled on the data memory interface.
    pub dmem_stall: u64,
    /// Instruction-cache misses (cacheable fetches only).
    pub pcache_miss: u64,
    /// Data-cache misses that evicted no dirty line.
    pub dcache_miss_clean: u64,
    /// Data-cache misses that evicted a dirty line (write-back issued).
    pub dcache_miss_dirty: u64,
}

impl DebugCounters {
    /// Total data-cache misses.
    pub fn dcache_miss_total(&self) -> u64 {
        self.dcache_miss_clean + self.dcache_miss_dirty
    }

    /// Delta accounting for the event kernel: charges `cycles` cycles of
    /// busy/waiting time to `CCNT` in one bulk update, equivalent to
    /// `cycles` consecutive per-tick `ccnt += 1` increments. Stall
    /// counters are *not* touched — stalls are attributed at grant time
    /// from the transaction's end-to-end latency, never per tick.
    pub fn charge_busy(&mut self, cycles: u64) {
        self.ccnt += cycles;
    }
}

impl fmt::Display for DebugCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CCNT={} PMEM_STALL={} DMEM_STALL={} P$_MISS={} D$_MISS_CLEAN={} D$_MISS_DIRTY={}",
            self.ccnt,
            self.pmem_stall,
            self.dmem_stall,
            self.pcache_miss,
            self.dcache_miss_clean,
            self.dcache_miss_dirty
        )
    }
}

/// Timing-kernel statistics — how the event kernel spent the run, for
/// the telemetry layer. These are *non-deterministic* telemetry in the
/// layer's sense: the reference stepper never fast-forwards, so the
/// numbers legitimately differ between the bit-identical engines and
/// must never enter a deterministic record.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct KernelStats {
    /// Quiescent-gap fast-forwards taken by the event kernel.
    pub ff_jumps: u64,
    /// Distribution of fast-forward gap sizes, in cycles.
    pub gap_hist: Hist,
    /// Distribution of the claims-queue depth (live claims) at each
    /// executed cycle.
    pub depth_hist: Hist,
    /// Block-memo replays: a fingerprinted stall-free block was
    /// fast-forwarded in one kernel delta (see [`crate::memo`]).
    pub memo_hits: u64,
    /// Block-memo recordings: a block was interpreted live and its
    /// timing captured for future replay.
    pub memo_records: u64,
    /// Block-memo invalidations: a fingerprint matched but a guard
    /// (loop/cursor/RNG state, cache residency, remaining activations)
    /// differed, so the entry could not be replayed at this visit.
    pub memo_invalidations: u64,
    /// Block-memo evictions: a recording displaced a different block
    /// from its direct-mapped slot.
    pub memo_evictions: u64,
    /// Cycles skipped by block-memo replays (sum of replayed deltas).
    pub memo_warp_cycles: u64,
}

/// Per-slave SRI statistics for the telemetry layer. Unlike
/// [`KernelStats`] these are *deterministic*: grants — and therefore
/// queueing delays — are bit-identical across engines and worker
/// counts.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SlaveStats {
    /// Transactions served.
    pub served: u64,
    /// Total queueing delay imposed on granted requests, in cycles.
    pub queue_delay: u64,
    /// Distribution of per-grant queueing delays.
    pub delay_hist: Hist,
}

/// A post-run statistics snapshot of a [`crate::System`], assembled by
/// [`crate::System::stats`]. Kept off [`crate::system::RunOutcome`] on
/// purpose: outcomes are compared bit-for-bit across engines, while
/// `kernel` is engine-dependent by nature.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SimStats {
    /// Per-slave SRI statistics, indexed like [`SriTarget::all`].
    pub slaves: [SlaveStats; SriTarget::COUNT],
    /// Event-kernel statistics (all zero under the reference stepper).
    pub kernel: KernelStats,
    /// Contention attribution ledger — all-zero unless the run enabled
    /// [`crate::config::SimConfig::with_attribution`]. Deterministic:
    /// recorded at the shared grant site, so byte-identical across
    /// engines, memo settings and worker counts.
    pub attribution: AttributionMatrix,
}

impl SimStats {
    /// The statistics of one slave.
    pub fn slave(&self, target: SriTarget) -> &SlaveStats {
        &self.slaves[target.index()]
    }
}

/// Per-(target, class) access counts — simulator ground truth that the
/// real DSU cannot provide (§3.3: "AURIX TC27x lacks SRI access counters
/// on a per-resource basis").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct GroundTruth {
    counts: [[u64; 2]; SriTarget::COUNT],
    /// Of which: write transactions (stores and write-backs).
    writes: [u64; SriTarget::COUNT],
    /// Maximum end-to-end latency observed for a single transaction,
    /// per target (queueing + service).
    max_latency: [u64; SriTarget::COUNT],
}

fn class_idx(class: AccessClass) -> usize {
    match class {
        AccessClass::Code => 0,
        AccessClass::Data => 1,
    }
}

impl GroundTruth {
    /// Records one SRI transaction (counted at issue time).
    pub fn record(&mut self, target: SriTarget, class: AccessClass, write: bool, latency: u64) {
        self.counts[target.index()][class_idx(class)] += 1;
        if write {
            self.writes[target.index()] += 1;
        }
        self.note_latency(target, latency);
    }

    /// Updates the per-target maximum end-to-end latency (known only once
    /// the transaction is granted).
    pub fn note_latency(&mut self, target: SriTarget, latency: u64) {
        let m = &mut self.max_latency[target.index()];
        *m = (*m).max(latency);
    }

    /// Access count for a (target, class) pair — the paper's `n_x^{t,o}`.
    pub fn accesses(&self, target: SriTarget, class: AccessClass) -> u64 {
        self.counts[target.index()][class_idx(class)]
    }

    /// Total SRI accesses of a class across all targets.
    pub fn class_total(&self, class: AccessClass) -> u64 {
        SriTarget::all()
            .iter()
            .map(|t| self.accesses(*t, class))
            .sum()
    }

    /// Total SRI accesses.
    pub fn total(&self) -> u64 {
        self.class_total(AccessClass::Code) + self.class_total(AccessClass::Data)
    }

    /// Write transactions to a target.
    pub fn writes(&self, target: SriTarget) -> u64 {
        self.writes[target.index()]
    }

    /// Largest observed end-to-end latency at a target.
    pub fn max_latency(&self, target: SriTarget) -> u64 {
        self.max_latency[target.index()]
    }
}

impl Index<(SriTarget, AccessClass)> for GroundTruth {
    type Output = u64;
    fn index(&self, (t, c): (SriTarget, AccessClass)) -> &u64 {
        &self.counts[t.index()][class_idx(c)]
    }
}

impl IndexMut<(SriTarget, AccessClass)> for GroundTruth {
    fn index_mut(&mut self, (t, c): (SriTarget, AccessClass)) -> &mut u64 {
        &mut self.counts[t.index()][class_idx(c)]
    }
}

impl fmt::Display for GroundTruth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in SriTarget::all() {
            write!(
                f,
                "{}: co={} da={}  ",
                t,
                self.accesses(t, AccessClass::Code),
                self.accesses(t, AccessClass::Data)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let mut g = GroundTruth::default();
        g.record(SriTarget::Pf0, AccessClass::Code, false, 16);
        g.record(SriTarget::Pf0, AccessClass::Code, false, 12);
        g.record(SriTarget::Lmu, AccessClass::Data, true, 11);
        assert_eq!(g.accesses(SriTarget::Pf0, AccessClass::Code), 2);
        assert_eq!(g.accesses(SriTarget::Lmu, AccessClass::Data), 1);
        assert_eq!(g.class_total(AccessClass::Code), 2);
        assert_eq!(g.total(), 3);
        assert_eq!(g.writes(SriTarget::Lmu), 1);
        assert_eq!(g.writes(SriTarget::Pf0), 0);
        assert_eq!(g.max_latency(SriTarget::Pf0), 16);
    }

    #[test]
    fn index_operators() {
        let mut g = GroundTruth::default();
        g[(SriTarget::Dfl, AccessClass::Data)] = 7;
        assert_eq!(g[(SriTarget::Dfl, AccessClass::Data)], 7);
    }

    #[test]
    fn counters_display_contains_all_fields() {
        let c = DebugCounters {
            ccnt: 1,
            pmem_stall: 2,
            dmem_stall: 3,
            pcache_miss: 4,
            dcache_miss_clean: 5,
            dcache_miss_dirty: 6,
        };
        let s = c.to_string();
        for needle in ["CCNT=1", "PMEM_STALL=2", "DMEM_STALL=3", "P$_MISS=4"] {
            assert!(s.contains(needle), "{s}");
        }
        assert_eq!(c.dcache_miss_total(), 11);
    }

    #[test]
    fn charge_busy_matches_repeated_increments() {
        let mut bulk = DebugCounters::default();
        let mut ticked = DebugCounters::default();
        bulk.charge_busy(137);
        for _ in 0..137 {
            ticked.ccnt += 1;
        }
        assert_eq!(bulk, ticked);
        bulk.charge_busy(0);
        assert_eq!(bulk.ccnt, 137, "a zero delta charges nothing");
    }
}
