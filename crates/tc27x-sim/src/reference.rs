//! The reference cycle stepper: the original per-cycle tick loop,
//! preserved verbatim as the differential oracle for the event kernel
//! ([`crate::engine`]).
//!
//! Every component is polled every cycle, in a fixed order: all cores
//! (index order), then one SRI arbitration step, then grants applied
//! (index order), then `now` advances by one. This is deliberately the
//! *only* place in the crate allowed to tick cycle by cycle — `ci.sh`
//! greps for per-tick loops elsewhere — so the event kernel can never
//! quietly regress into a stepper, and the stepper stays available via
//! [`crate::engine::Engine::Tick`] to re-verify bit-identity at any
//! time.

use crate::core_pipeline::CorePipeline;
use crate::system::{SimError, System};

/// Runs `sys` to the predicate on the per-cycle reference stepper.
pub(crate) fn run_tick(
    sys: &mut System,
    keep_going: &dyn Fn(&[Option<CorePipeline>]) -> bool,
) -> Result<(), SimError> {
    while keep_going(&sys.cores) {
        if sys.now >= sys.config.max_cycles {
            return Err(SimError::CycleLimit {
                limit: sys.config.max_cycles,
            });
        }
        for core in sys.cores.iter_mut().flatten() {
            core.step(sys.now, &mut sys.sri, &sys.config, &sys.map);
        }
        let grants = sys.sri.step(sys.now);
        for (i, grant) in grants.iter().enumerate() {
            // Grants only go to loaded cores; an unloaded slot simply
            // has no grant to apply.
            if let (Some(g), Some(core)) = (grant, sys.cores[i].as_mut()) {
                core.apply_grant(sys.now, *g);
            }
        }
        sys.now += 1;
    }
    Ok(())
}
