//! Set-associative caches with true-LRU replacement and dirty tracking.
//!
//! Used for both the per-core instruction caches (read-only) and the
//! TriCore 1.6P data caches (write-back, write-allocate). The TriCore
//! 1.6E's 32-byte data read buffer (DRB) is the degenerate 1-set/1-way
//! instance.
//!
//! # Examples
//!
//! ```
//! use tc27x_sim::cache::{Cache, CacheGeometry, Lookup};
//!
//! let mut c = Cache::new(CacheGeometry::new(1024, 2));
//! let line = 0x8000_0000u32 / 32;
//! assert!(matches!(c.access(line, false), Lookup::Miss { .. }));
//! assert!(matches!(c.access(line, false), Lookup::Hit));
//! ```

use crate::addr::LINE_BYTES;
use std::fmt;

/// Geometry of a cache: total size and associativity (32-byte lines).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Number of ways per set.
    pub ways: u32,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes` is a positive multiple of
    /// `ways * LINE_BYTES` and the resulting set count is a power of two.
    pub fn new(size_bytes: u32, ways: u32) -> Self {
        assert!(ways > 0, "cache needs at least one way");
        assert!(
            size_bytes > 0 && size_bytes.is_multiple_of(ways * LINE_BYTES),
            "size must be a multiple of ways×line"
        );
        let sets = size_bytes / (ways * LINE_BYTES);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheGeometry { size_bytes, ways }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.ways * LINE_BYTES)
    }

    /// Number of lines the cache can hold.
    pub fn lines(&self) -> u32 {
        self.size_bytes / LINE_BYTES
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B/{}-way", self.size_bytes, self.ways)
    }
}

/// Result of a cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Lookup {
    /// The line was present.
    Hit,
    /// The line was absent and has been allocated.
    Miss {
        /// If a dirty line was evicted to make room, its line index: the
        /// caller must issue a write-back transaction for it.
        evicted_dirty: Option<u32>,
    },
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: u32,
    valid: bool,
    dirty: bool,
    /// Larger = more recently used.
    lru: u64,
}

/// A set-associative, true-LRU, write-back write-allocate cache model.
///
/// The cache stores no data — only tags — because the simulator tracks
/// timing, not values.
#[derive(Clone, Debug)]
pub struct Cache {
    geometry: CacheGeometry,
    ways: Vec<Way>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(geometry: CacheGeometry) -> Self {
        Cache {
            geometry,
            ways: vec![Way::default(); (geometry.sets() * geometry.ways) as usize],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn set_range(&self, line: u32) -> std::ops::Range<usize> {
        let set = (line % self.geometry.sets()) as usize;
        let w = self.geometry.ways as usize;
        set * w..(set + 1) * w
    }

    /// Accesses the given line; `write` marks the line dirty on hit or
    /// allocation.
    ///
    /// Returns whether it hit and, on a miss, whether a dirty victim was
    /// evicted (the victim's line index is reconstructed so the caller
    /// can route the write-back to the right SRI slave).
    pub fn access(&mut self, line: u32, write: bool) -> Lookup {
        self.tick += 1;
        let tick = self.tick;
        let sets = self.geometry.sets();
        let range = self.set_range(line);
        let tag = line / sets;
        let set = (line % sets) as usize;

        // Hit path.
        if let Some(w) = self.ways[range.clone()]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
        {
            w.lru = tick;
            if write {
                w.dirty = true;
            }
            self.hits += 1;
            return Lookup::Hit;
        }

        self.misses += 1;
        // Choose victim: invalid way first, else LRU.
        let ways = &mut self.ways[range];
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { (1, w.lru) } else { (0, 0) })
            .unwrap_or_else(|| unreachable!("sets are never empty"));
        let evicted_dirty = (victim.valid && victim.dirty).then(|| victim.tag * sets + set as u32);
        victim.tag = tag;
        victim.valid = true;
        victim.dirty = write;
        victim.lru = tick;
        Lookup::Miss { evicted_dirty }
    }

    /// Replays a recorded access that is known to hit: identical to
    /// [`Cache::access`] (LRU, dirty bit and hit statistics all move),
    /// with a debug assertion that the line really is resident. The
    /// block memo only records hit accesses, and replay guards verify
    /// residency of every recorded line before committing.
    pub(crate) fn replay_hit(&mut self, line: u32, write: bool) {
        let looked_up = self.access(line, write);
        debug_assert_eq!(looked_up, Lookup::Hit, "memo replayed a non-resident line");
    }

    /// Returns `true` if the line is currently resident (no LRU update).
    pub fn probe(&self, line: u32) -> bool {
        let sets = self.geometry.sets();
        let tag = line / sets;
        self.ways[self.set_range(line)]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates everything (keeps statistics).
    pub fn flush(&mut self) {
        for w in &mut self.ways {
            w.valid = false;
            w.dirty = false;
        }
    }
}

impl crate::engine::EventSource for Cache {
    /// Caches are combinational in this model: they only change state
    /// inside the owning core's step (`access`), never on their own
    /// clock, so they are permanently passive to the event kernel.
    fn next_event(&self, _now: u64) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_of(addr: u32) -> u32 {
        addr / LINE_BYTES
    }

    #[test]
    fn geometry_arithmetic() {
        let g = CacheGeometry::new(16 << 10, 2);
        assert_eq!(g.sets(), 256);
        assert_eq!(g.lines(), 512);
        assert_eq!(g.to_string(), "16384B/2-way");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_non_power_of_two_sets() {
        let _ = CacheGeometry::new(96, 1);
    }

    #[test]
    fn basic_hit_miss() {
        let mut c = Cache::new(CacheGeometry::new(64, 1)); // 2 sets, direct-mapped
        let a = line_of(0);
        assert_eq!(
            c.access(a, false),
            Lookup::Miss {
                evicted_dirty: None
            }
        );
        assert_eq!(c.access(a, false), Lookup::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn conflict_eviction_direct_mapped() {
        let mut c = Cache::new(CacheGeometry::new(64, 1)); // 2 sets
        let a = 0u32; // set 0
        let b = 2u32; // set 0 too (2 % 2 == 0)
        c.access(a, false);
        c.access(b, false); // evicts a (clean)
        assert_eq!(
            c.access(a, false),
            Lookup::Miss {
                evicted_dirty: None
            }
        );
    }

    #[test]
    fn dirty_eviction_reports_victim_line() {
        let mut c = Cache::new(CacheGeometry::new(64, 1)); // 2 sets
        let a = 4u32; // set 0 (4 % 2 == 0)
        let b = 6u32; // set 0
        c.access(a, true); // dirty
        match c.access(b, false) {
            Lookup::Miss { evicted_dirty } => assert_eq!(evicted_dirty, Some(a)),
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn lru_keeps_most_recent() {
        let mut c = Cache::new(CacheGeometry::new(64, 2)); // 1 set, 2 ways
        let (a, b, d) = (0u32, 1, 2);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a most recent
        c.access(d, false); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn write_hit_marks_dirty_for_later_eviction() {
        let mut c = Cache::new(CacheGeometry::new(32, 1)); // 1 set
        let a = 0u32;
        c.access(a, false); // clean allocation
        c.access(a, true); // dirty via write hit
        match c.access(1, false) {
            Lookup::Miss { evicted_dirty } => assert_eq!(evicted_dirty, Some(a)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flush_invalidates() {
        let mut c = Cache::new(CacheGeometry::new(64, 2));
        c.access(0, true);
        c.flush();
        assert!(!c.probe(0));
        // Dirty state cleared: refilling then evicting reports no write-back.
        c.access(0, false);
        c.access(1, false);
        match c.access(2, false) {
            Lookup::Miss { evicted_dirty } => assert_eq!(evicted_dirty, None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn drb_as_single_line_cache() {
        // TriCore 1.6E data read buffer: 32 bytes, one way.
        let mut drb = Cache::new(CacheGeometry::new(32, 1));
        assert_eq!(drb.geometry().lines(), 1);
        drb.access(10, false);
        assert!(matches!(drb.access(10, false), Lookup::Hit));
        assert!(matches!(drb.access(11, false), Lookup::Miss { .. }));
        assert!(!drb.probe(10));
    }
}
