//! A small deterministic PRNG — the only randomness source of the
//! simulator and its test suites.
//!
//! The workspace builds hermetically offline, so instead of an external
//! crate the simulator carries a SplitMix64 generator (Steele, Lea &
//! Flood, OOPSLA'14): a 64-bit counter passed through a finalising
//! mixer. It is fast, has a guaranteed period of 2⁶⁴, passes BigCrush
//! when used as intended, and — most importantly here — its sequence is
//! a pure function of the seed, so simulation results are reproducible
//! bit for bit across platforms and thread counts.
//!
//! # Examples
//!
//! ```
//! use tc27x_sim::rng::SplitMix64;
//!
//! let mut a = SplitMix64::new(42);
//! let mut b = SplitMix64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! let x = a.below(10);
//! assert!(x < 10);
//! ```

/// A SplitMix64 pseudo-random number generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)` via the widening-multiply range
    /// reduction (Lemire). The residual bias is below `bound / 2⁶⁴` —
    /// immaterial for the object sizes involved here.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// A uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "range_i64 requires lo <= hi");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// A uniform `u32` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below_u32(&mut self, bound: u32) -> u32 {
        self.below(bound as u64) as u32
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Jumps the stream forward by `draws` outputs without computing
    /// them. SplitMix64's state is a plain counter (the mixer is applied
    /// on output only), so skipping n draws is one multiply — the block
    /// memo uses this to replay a recorded run of random accesses in
    /// O(1) while landing on exactly the state n live draws would reach.
    pub fn advance(&mut self, draws: u64) {
        self.state = self
            .state
            .wrapping_add(draws.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(SplitMix64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn known_first_output() {
        // Reference value of SplitMix64 seeded with 0 (Vigna's test
        // vectors): locks the stream against accidental re-mixing.
        assert_eq!(SplitMix64::new(0).next_u64(), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn below_stays_in_range_and_covers_it() {
        let mut r = SplitMix64::new(123);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all residues reached");
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = SplitMix64::new(5);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn advance_equals_n_draws() {
        for n in [0u64, 1, 2, 7, 100] {
            let mut stepped = SplitMix64::new(0xfeed);
            for _ in 0..n {
                stepped.next_u64();
            }
            let mut jumped = SplitMix64::new(0xfeed);
            jumped.advance(n);
            assert_eq!(stepped, jumped, "advance({n})");
            // And the streams continue identically afterwards.
            assert_eq!(stepped.next_u64(), jumped.next_u64());
        }
    }

    #[test]
    fn flip_is_balanced_enough() {
        let mut r = SplitMix64::new(99);
        let heads = (0..1000).filter(|_| r.flip()).count();
        assert!((350..=650).contains(&heads), "{heads}");
    }
}
