//! Task programs: the simulator's ISA-lite.
//!
//! Contention on the TC27x depends on the *number, type and target* of
//! SRI requests, not on instruction semantics (§2 of the paper). Programs
//! are therefore streams of abstract operations — compute bursts, loads
//! and stores against named data objects — structured with loops so that
//! realistic instruction-fetch behaviour (repeating code addresses,
//! i-cache reuse, sequential prefetch) emerges naturally.
//!
//! # Examples
//!
//! ```
//! use tc27x_sim::program::{Pattern, Program};
//!
//! // acquire → compute → update, 100 iterations
//! let prog = Program::build(|b| {
//!     b.repeat(100, |b| {
//!         b.load("sensors", Pattern::Sequential);
//!         b.compute(8);
//!         b.store("state", Pattern::Sequential);
//!     });
//! });
//! assert_eq!(prog.static_op_count(), 4); // 3 body ops + loop branch
//! assert_eq!(prog.dynamic_op_count(), 100 * 4);
//! ```

use std::fmt;

/// Bytes of code occupied by every operation (fixed-width encoding).
pub const OP_BYTES: u32 = 4;

/// How successive accesses of one [`DataRef`] walk through its object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Pattern {
    /// Word-by-word sequential walk (wraps at the object end). One cache
    /// miss per line for cacheable objects.
    Sequential,
    /// Fixed stride in bytes (wraps at the object end). A stride of one
    /// line defeats spatial locality entirely.
    Stride(u32),
    /// Uniformly random word within the object (task-seeded RNG).
    Random,
    /// Always the same word (after the first access, hits for cacheable
    /// objects).
    Fixed(u32),
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Sequential => write!(f, "seq"),
            Pattern::Stride(s) => write!(f, "stride{s}"),
            Pattern::Random => write!(f, "rand"),
            Pattern::Fixed(o) => write!(f, "fixed@{o}"),
        }
    }
}

/// A reference to a named data object with an access pattern.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DataRef {
    /// Name of the data object (declared in the task spec).
    pub object: String,
    /// Walk pattern across accesses.
    pub pattern: Pattern,
}

/// One abstract operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// Pipeline-only work for the given number of cycles; generates
    /// instruction fetches but no data traffic.
    Compute(u32),
    /// A data read through the DMI.
    Load(DataRef),
    /// A data write through the DMI.
    Store(DataRef),
    /// A counted loop over a body; costs one branch op per iteration.
    Loop {
        /// Number of iterations (0 skips the body entirely).
        count: u32,
        /// Loop body.
        body: Vec<Op>,
    },
}

impl Op {
    /// Number of static code slots (addresses) this op occupies,
    /// including nested bodies and the loop branch slot.
    pub fn static_slots(&self) -> u32 {
        match self {
            Op::Compute(_) | Op::Load(_) | Op::Store(_) => 1,
            Op::Loop { body, .. } => 1 + body.iter().map(Op::static_slots).sum::<u32>(),
        }
    }

    /// Number of dynamic operations executed (loop bodies multiplied
    /// out; the loop branch executes once per iteration).
    pub fn dynamic_count(&self) -> u64 {
        match self {
            Op::Compute(_) | Op::Load(_) | Op::Store(_) => 1,
            Op::Loop { count, body } => {
                let body_n: u64 = body.iter().map(Op::dynamic_count).sum();
                (*count as u64) * (body_n + 1)
            }
        }
    }
}

/// A complete task program (top-level op sequence).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Builds a program with the fluent [`ProgramBuilder`].
    pub fn build(f: impl FnOnce(&mut ProgramBuilder)) -> Program {
        let mut b = ProgramBuilder::new();
        f(&mut b);
        b.finish()
    }

    /// The top-level operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Total static code slots (each slot is [`OP_BYTES`] of code).
    pub fn static_op_count(&self) -> u32 {
        self.ops.iter().map(Op::static_slots).sum()
    }

    /// Code footprint in bytes.
    pub fn code_bytes(&self) -> u32 {
        self.static_op_count() * OP_BYTES
    }

    /// Total dynamic operations executed by one activation.
    pub fn dynamic_op_count(&self) -> u64 {
        self.ops.iter().map(Op::dynamic_count).sum()
    }

    /// Names of all data objects the program references.
    pub fn referenced_objects(&self) -> Vec<&str> {
        fn walk<'a>(ops: &'a [Op], out: &mut Vec<&'a str>) {
            for op in ops {
                match op {
                    Op::Load(r) | Op::Store(r) => {
                        if !out.contains(&r.object.as_str()) {
                            out.push(&r.object);
                        }
                    }
                    Op::Loop { body, .. } => walk(body, out),
                    Op::Compute(_) => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.ops, &mut out);
        out
    }
}

impl FromIterator<Op> for Program {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        Program {
            ops: iter.into_iter().collect(),
        }
    }
}

impl Extend<Op> for Program {
    fn extend<I: IntoIterator<Item = Op>>(&mut self, iter: I) {
        self.ops.extend(iter);
    }
}

/// Fluent builder for [`Program`]s; obtained via [`Program::build`].
///
/// # Examples
///
/// ```
/// use tc27x_sim::program::{Pattern, Program};
/// let p = Program::build(|b| {
///     b.compute(10);
///     b.repeat(4, |b| {
///         b.load("table", Pattern::Random);
///     });
/// });
/// assert_eq!(p.dynamic_op_count(), 1 + 4 * 2);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Appends a compute burst of `cycles` pipeline cycles.
    pub fn compute(&mut self, cycles: u32) -> &mut Self {
        self.ops.push(Op::Compute(cycles));
        self
    }

    /// Appends a load from `object` with the given pattern.
    pub fn load(&mut self, object: impl Into<String>, pattern: Pattern) -> &mut Self {
        self.ops.push(Op::Load(DataRef {
            object: object.into(),
            pattern,
        }));
        self
    }

    /// Appends a store to `object` with the given pattern.
    pub fn store(&mut self, object: impl Into<String>, pattern: Pattern) -> &mut Self {
        self.ops.push(Op::Store(DataRef {
            object: object.into(),
            pattern,
        }));
        self
    }

    /// Appends a counted loop whose body is built by `f`.
    pub fn repeat(&mut self, count: u32, f: impl FnOnce(&mut ProgramBuilder)) -> &mut Self {
        let mut inner = ProgramBuilder::new();
        f(&mut inner);
        self.ops.push(Op::Loop {
            count,
            body: inner.ops,
        });
        self
    }

    /// Appends a raw op.
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Finalises the program.
    pub fn finish(self) -> Program {
        Program { ops: self.ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_slots_count_loop_branch() {
        let p = Program::build(|b| {
            b.repeat(10, |b| {
                b.compute(1);
                b.compute(2);
            });
        });
        // two body ops + one branch slot
        assert_eq!(p.static_op_count(), 3);
        assert_eq!(p.code_bytes(), 12);
    }

    #[test]
    fn dynamic_count_multiplies_iterations() {
        let p = Program::build(|b| {
            b.compute(5);
            b.repeat(3, |b| {
                b.load("x", Pattern::Sequential);
                b.repeat(2, |b| {
                    b.store("y", Pattern::Sequential);
                });
            });
        });
        // 1 + 3*(1 + 2*(1+1) + 1) = 1 + 3*6 = 19
        assert_eq!(p.dynamic_op_count(), 19);
    }

    #[test]
    fn zero_iteration_loop_only_counts_nothing() {
        let p = Program::build(|b| {
            b.repeat(0, |b| {
                b.compute(1);
            });
        });
        assert_eq!(p.dynamic_op_count(), 0);
        assert_eq!(p.static_op_count(), 2);
    }

    #[test]
    fn referenced_objects_deduplicates() {
        let p = Program::build(|b| {
            b.load("a", Pattern::Sequential);
            b.repeat(2, |b| {
                b.store("a", Pattern::Random);
                b.load("b", Pattern::Fixed(0));
            });
        });
        assert_eq!(p.referenced_objects(), vec!["a", "b"]);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut p: Program = vec![Op::Compute(1)].into_iter().collect();
        p.extend([Op::Compute(2)]);
        assert_eq!(p.ops().len(), 2);
    }

    #[test]
    fn pattern_display() {
        assert_eq!(Pattern::Sequential.to_string(), "seq");
        assert_eq!(Pattern::Stride(64).to_string(), "stride64");
        assert_eq!(Pattern::Random.to_string(), "rand");
        assert_eq!(Pattern::Fixed(8).to_string(), "fixed@8");
    }
}
