//! The event-driven timing kernel and the engine selector.
//!
//! The reference stepper ([`crate::reference`]) polls every component
//! every cycle. That is wasteful precisely in the windows the paper is
//! about: while all three cores sit out a multi-cycle PFLASH/DFLASH/LMU
//! transaction, nothing can change except the cycle counters. The event
//! kernel exploits this: every component *names* the next cycle at
//! which stepping it could do anything beyond bulk cycle accounting
//! ([`EventSource::next_event`]), the kernel keeps those claims in a
//! deterministic binary-heap queue keyed by `(cycle, source rank)`, and
//! fast-forwards `now` across the provably quiescent gap up to the
//! earliest claim, charging the skipped cycles to the busy cores in one
//! delta ([`crate::counters::DebugCounters::charge_busy`]).
//!
//! At every *interesting* cycle the kernel then executes exactly one
//! iteration of the reference tick loop — all cores stepped in index
//! order, one SRI arbitration step, grants applied in index order — so
//! counters, traces, [`crate::system::RunOutcome`] and `max_cycles`
//! behaviour are bit-identical to the stepper by construction. The
//! randomized differential suite in `tests/engine_equivalence.rs` and
//! the quiescence argument in `DESIGN.md` §4d keep that claim honest.

use crate::addr::CoreId;
use crate::core_pipeline::{CorePipeline, State};
use crate::memo::BlockMemo;
use crate::system::{SimError, System};
use std::fmt;
use std::str::FromStr;

/// Which timing kernel drives a [`System`] run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum Engine {
    /// The reference cycle stepper: every component is polled every
    /// cycle. Kept as the differential oracle for the event kernel.
    Tick,
    /// The event-driven kernel: components schedule their next
    /// interesting cycle and quiescent gaps are skipped. Bit-identical
    /// to [`Engine::Tick`], and the default.
    #[default]
    Event,
}

impl Engine {
    /// Both engines, reference first.
    pub fn all() -> [Engine; 2] {
        [Engine::Tick, Engine::Event]
    }

    /// The CLI spelling of this engine.
    pub fn as_str(&self) -> &'static str {
        match self {
            Engine::Tick => "tick",
            Engine::Event => "event",
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error for an unrecognized engine name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseEngineError(String);

impl fmt::Display for ParseEngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown engine `{}` (expected tick or event)", self.0)
    }
}

impl std::error::Error for ParseEngineError {}

impl FromStr for Engine {
    type Err = ParseEngineError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tick" | "reference" => Ok(Engine::Tick),
            "event" => Ok(Engine::Event),
            other => Err(ParseEngineError(other.to_string())),
        }
    }
}

/// A component the event kernel can ask for its next interesting cycle.
///
/// The contract, for a source queried at cycle `now`:
///
/// * `Some(e)` with `e >= now` means stepping the component at any
///   cycle in `now..e` does nothing beyond bulk cycle accounting, and
///   the component must be stepped at `e`;
/// * `None` means the component is passive: it will not act on its own
///   at any future cycle (it is done, or it is waiting on another
///   source — e.g. a core awaiting an SRI grant, which the SRI's own
///   claim covers).
///
/// The kernel re-queries every source after every executed cycle, so a
/// claim only needs to be valid until the next state change.
pub trait EventSource {
    /// The earliest cycle `>= now` at which this component must be
    /// stepped, or `None` when it is passive.
    fn next_event(&self, now: u64) -> Option<u64>;
}

/// Number of claim slots: one per core, plus the SRI arbiter.
const RANKS: usize = CoreId::COUNT + 1;

/// The SRI arbiter's rank — after the cores, mirroring the tick loop's
/// cores-then-SRI order within a cycle.
pub(crate) const SRI_RANK: u8 = CoreId::COUNT as u8;

/// A deterministic event queue: a per-rank claim table scanned for its
/// minimum. With only [`RANKS`] sources (three cores plus the SRI), a
/// four-slot array scan beats any heap — no allocation, no stale
/// entries, and the result is a pure function of the claims (ties
/// resolve to the same cycle whichever rank holds them), independent of
/// update order.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    scheduled: [Option<u64>; RANKS],
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue::default()
    }

    /// Records `rank`'s current claim, replacing any previous one.
    #[inline]
    pub(crate) fn claim(&mut self, rank: u8, at: Option<u64>) {
        self.scheduled[rank as usize] = at;
    }

    /// The earliest currently-valid claim.
    #[inline]
    pub(crate) fn earliest(&self) -> Option<u64> {
        self.scheduled.iter().flatten().copied().min()
    }
}

/// Bulk-accounts `delta` provably quiescent cycles: every unfinished
/// core charges them to CCNT exactly as `delta` per-cycle steps would
/// have, without touching any other state.
fn advance_idle(sys: &mut System, delta: u64) {
    if delta == 0 {
        return;
    }
    for core in sys.cores.iter_mut().flatten() {
        core.advance(delta);
    }
}

/// Runs `sys` to the predicate on the event kernel. Mirrors
/// [`crate::reference::run_tick`] decision for decision; see the module
/// docs for why the two are bit-identical.
pub(crate) fn run_event(
    sys: &mut System,
    keep_going: impl Fn(&[Option<CorePipeline>]) -> bool,
) -> Result<(), SimError> {
    let limit = sys.config.max_cycles;
    let mut queue = EventQueue::new();
    // Per-core block-memo tables, private to this run. The reference
    // stepper never constructs them, so memo statistics stay zero under
    // `Engine::Tick` — they are kernel-dependent telemetry like
    // `ff_jumps`.
    let mut memos: Vec<BlockMemo> = if sys.config.block_memo && sys.config.block_memo_capacity > 0 {
        (0..CoreId::COUNT)
            .map(|_| BlockMemo::new(sys.config.block_memo_capacity))
            .collect()
    } else {
        Vec::new()
    };
    loop {
        if !keep_going(&sys.cores) {
            return Ok(());
        }
        if sys.now >= limit {
            return Err(SimError::CycleLimit { limit });
        }
        // Refresh every claim against the current state. Cores rank
        // 0..COUNT, the SRI last — the same order the tick loop polls.
        for (rank, slot) in sys.cores.iter().enumerate() {
            queue.claim(
                rank as u8,
                slot.as_ref().and_then(|c| c.next_event(sys.now)),
            );
        }
        queue.claim(SRI_RANK, sys.sri.next_event(sys.now));

        let Some(at) = queue.earliest() else {
            // Fully quiescent: every core is done and the SRI holds no
            // queued work (a core awaiting a grant always implies a
            // queued request, so it cannot be reached here). State can
            // never change again, but the predicate still wants cycles —
            // the stepper would idle to the limit; do so in one jump.
            debug_assert!(
                sys.cores.iter().flatten().all(CorePipeline::is_done),
                "an unfinished core must always hold or imply a claim"
            );
            let gap = limit - sys.now;
            if gap > 0 {
                sys.kernel.ff_jumps += 1;
                sys.kernel.gap_hist.observe(gap);
            }
            advance_idle(sys, gap);
            sys.now = limit;
            continue;
        };

        // Fast-forward across the quiescent gap, clamped to the cycle
        // limit so the loop head raises CycleLimit exactly where the
        // stepper would. A claim at or beyond the limit also bounces
        // back to the head: the stepper checks the limit *before*
        // executing a cycle, so cycle `limit` itself never runs.
        if at > sys.now {
            let target = at.min(limit);
            let gap = target - sys.now;
            sys.kernel.ff_jumps += 1;
            sys.kernel.gap_hist.observe(gap);
            advance_idle(sys, gap);
            sys.now = target;
            if target < at || target >= limit {
                continue;
            }
        }

        // Before paying for a full cycle, offer every core that is
        // about to process an instruction to the block memo: a core at
        // the head of a stall-free block is warped across the whole
        // block in one delta — left `Blocked` at the block's exit with
        // CCNT accounted lazily, exactly like any other multi-cycle
        // window — and the loop re-plans from the head, since the warp
        // may have opened a quiescent gap worth fast-forwarding. The
        // attempt must run *here*, after the fast-forward, so it always
        // sees the core exactly at a block head; cores that decline
        // (the next instruction is an SRI boundary) run live below.
        if !memos.is_empty() {
            let now = sys.now;
            let mut warped = false;
            for (i, slot) in sys.cores.iter_mut().enumerate() {
                let Some(core) = slot.as_mut() else { continue };
                let about_to_process = matches!(core.state, State::Ready)
                    || matches!(core.state, State::Blocked { until } if until <= now);
                if about_to_process {
                    debug_assert!(
                        !sys.sri.has_pending(core.id()),
                        "a core with an in-flight SRI request is never Ready/expired-Blocked"
                    );
                    if memos[i].attempt(core, now, &mut sys.kernel) {
                        warped = true;
                    }
                }
            }
            if warped {
                continue;
            }
        }

        // Execute one interesting cycle exactly like a tick iteration:
        // cores in index order, one arbitration step, grants in index
        // order.
        sys.kernel
            .depth_hist
            .observe(queue.scheduled.iter().flatten().count() as u64);
        let now = sys.now;
        for core in sys.cores.iter_mut().flatten() {
            core.step(now, &mut sys.sri, &sys.config, &sys.map);
        }
        let grants = sys.sri.step(now);
        for (i, grant) in grants.iter().enumerate() {
            if let (Some(g), Some(core)) = (grant, sys.cores[i].as_mut()) {
                core.apply_grant(now, *g);
            }
        }
        sys.now = now + 1; // tick-loop-ok: the one-cycle execute step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_parses_and_prints() {
        assert_eq!("tick".parse::<Engine>().unwrap(), Engine::Tick);
        assert_eq!("reference".parse::<Engine>().unwrap(), Engine::Tick);
        assert_eq!("event".parse::<Engine>().unwrap(), Engine::Event);
        assert_eq!(Engine::Tick.to_string(), "tick");
        assert_eq!(Engine::Event.to_string(), "event");
        let err = "warp".parse::<Engine>().unwrap_err();
        assert!(err.to_string().contains("warp"));
        assert_eq!(Engine::default(), Engine::Event);
        assert_eq!(Engine::all(), [Engine::Tick, Engine::Event]);
    }

    #[test]
    fn queue_orders_by_cycle_then_rank() {
        let mut q = EventQueue::new();
        q.claim(2, Some(10));
        q.claim(0, Some(10));
        q.claim(1, Some(5));
        assert_eq!(q.earliest(), Some(5));
        // Rank 1 reschedules past the tie; ranks 0 and 2 tie at 10 and
        // the earliest claim is unchanged by their insertion order.
        q.claim(1, Some(20));
        assert_eq!(q.earliest(), Some(10));
    }

    #[test]
    fn queue_discards_stale_claims() {
        let mut q = EventQueue::new();
        q.claim(0, Some(3));
        q.claim(0, Some(7));
        q.claim(1, None);
        assert_eq!(q.earliest(), Some(7), "the cycle-3 entry is stale");
        q.claim(0, None);
        assert_eq!(q.earliest(), None);
    }

    #[test]
    fn queue_ignores_reclaim_of_same_cycle() {
        let mut q = EventQueue::new();
        q.claim(3, Some(42));
        for _ in 0..100 {
            q.claim(3, Some(42));
        }
        assert_eq!(q.earliest(), Some(42));
    }
}
