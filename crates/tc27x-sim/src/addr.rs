//! Physical addressing and the TC27x memory map.
//!
//! The simulator uses a simplified but structurally faithful version of
//! the AURIX TC27x address space: per-core program/data scratchpads
//! (PSPR/DSPR, reachable without SRI traffic), the two program-flash
//! banks (PFLASH0/PFLASH1), the data flash (DFLASH) and the LMU SRAM —
//! the four shared SRI slaves of the paper. Shared memories are visible
//! through two segment aliases, a *cacheable* view and a *non-cacheable*
//! view, mirroring the TriCore segment-based cacheability scheme.
//!
//! # Examples
//!
//! ```
//! use tc27x_sim::addr::{Addr, MemMap, Region, SriTarget};
//!
//! let map = MemMap::tc277();
//! let a = map.region_base(Region::Pflash0, true); // cacheable view
//! let loc = map.decode(a).unwrap();
//! assert_eq!(loc.region, Region::Pflash0);
//! assert!(loc.cacheable);
//! assert_eq!(loc.region.sri_target(), Some(SriTarget::Pf0));
//! ```

use std::fmt;

/// Cache-line size of all caches and fetch buffers, in bytes.
pub const LINE_BYTES: u32 = 32;

/// A 32-bit physical address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Addr(pub u32);

impl Addr {
    /// The cache line index this address falls into (global).
    pub fn line(self) -> u32 {
        self.0 / LINE_BYTES
    }

    /// Byte offset within the cache line.
    pub fn line_offset(self) -> u32 {
        self.0 % LINE_BYTES
    }

    /// Adds a byte offset.
    #[must_use]
    pub fn offset(self, bytes: u32) -> Addr {
        Addr(self.0.wrapping_add(bytes))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u32> for Addr {
    fn from(v: u32) -> Self {
        Addr(v)
    }
}

/// Identifier of a core on the TC277 (0 = TriCore 1.6E, 1 and 2 =
/// TriCore 1.6P).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CoreId(pub u8);

impl CoreId {
    /// Number of cores on the TC277.
    pub const COUNT: usize = 3;

    /// All core ids, in order.
    pub fn all() -> [CoreId; Self::COUNT] {
        [CoreId(0), CoreId(1), CoreId(2)]
    }

    /// Index usable for array addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` for the low-power TriCore 1.6E core (core 0).
    pub fn is_efficiency(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A physical memory region of the TC27x.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Region {
    /// Program scratchpad of a core (no SRI traffic).
    Pspr(CoreId),
    /// Data scratchpad of a core (no SRI traffic).
    Dspr(CoreId),
    /// Program flash bank 0 (SRI slave `pf0`).
    Pflash0,
    /// Program flash bank 1 (SRI slave `pf1`).
    Pflash1,
    /// Data flash (SRI slave `dfl`).
    Dflash,
    /// Local Memory Unit SRAM (SRI slave `lmu`).
    Lmu,
}

impl Region {
    /// The SRI slave this region is served by, if it is shared.
    pub fn sri_target(self) -> Option<SriTarget> {
        match self {
            Region::Pflash0 => Some(SriTarget::Pf0),
            Region::Pflash1 => Some(SriTarget::Pf1),
            Region::Dflash => Some(SriTarget::Dfl),
            Region::Lmu => Some(SriTarget::Lmu),
            Region::Pspr(_) | Region::Dspr(_) => None,
        }
    }

    /// Returns `true` if the region is core-local (scratchpad).
    pub fn is_local(self) -> bool {
        matches!(self, Region::Pspr(_) | Region::Dspr(_))
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Pspr(c) => write!(f, "pspr[{}]", c.0),
            Region::Dspr(c) => write!(f, "dspr[{}]", c.0),
            Region::Pflash0 => write!(f, "pf0"),
            Region::Pflash1 => write!(f, "pf1"),
            Region::Dflash => write!(f, "dfl"),
            Region::Lmu => write!(f, "lmu"),
        }
    }
}

/// One of the four shared SRI slave interfaces of the paper
/// (`T = {dfl, pf0, pf1, lmu}`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SriTarget {
    /// Program flash bank 0.
    Pf0,
    /// Program flash bank 1.
    Pf1,
    /// Data flash.
    Dfl,
    /// LMU SRAM.
    Lmu,
}

impl SriTarget {
    /// Number of SRI targets.
    pub const COUNT: usize = 4;

    /// All targets in a fixed order (pf0, pf1, dfl, lmu).
    pub fn all() -> [SriTarget; Self::COUNT] {
        [
            SriTarget::Pf0,
            SriTarget::Pf1,
            SriTarget::Dfl,
            SriTarget::Lmu,
        ]
    }

    /// Index usable for array addressing.
    pub fn index(self) -> usize {
        match self {
            SriTarget::Pf0 => 0,
            SriTarget::Pf1 => 1,
            SriTarget::Dfl => 2,
            SriTarget::Lmu => 3,
        }
    }

    /// Returns `true` for the flash banks served by the PMU prefetcher.
    pub fn is_pflash(self) -> bool {
        matches!(self, SriTarget::Pf0 | SriTarget::Pf1)
    }
}

impl fmt::Display for SriTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SriTarget::Pf0 => write!(f, "pf0"),
            SriTarget::Pf1 => write!(f, "pf1"),
            SriTarget::Dfl => write!(f, "dfl"),
            SriTarget::Lmu => write!(f, "lmu"),
        }
    }
}

/// A decoded address: region, offset within the region and the
/// cacheability of the view it was accessed through.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Location {
    /// The physical region.
    pub region: Region,
    /// Byte offset from the region base.
    pub offset: u32,
    /// Whether the access goes through the cacheable segment alias.
    pub cacheable: bool,
}

/// The memory map: region bases, sizes and segment aliases.
///
/// Shared regions get two views: the base in the cacheable segment and a
/// mirror in the non-cacheable segment (TriCore style). Scratchpads are
/// always non-cacheable (they are as fast as a cache already).
#[derive(Clone, Debug)]
pub struct MemMap {
    entries: Vec<MapEntry>,
}

#[derive(Clone, Debug)]
struct MapEntry {
    region: Region,
    base: u32,
    size: u32,
    cacheable: bool,
}

impl MemMap {
    /// The TC277 reference map used throughout this workspace.
    ///
    /// Sizes follow Figure 1 of the paper: 24/32 KiB PSPR, 112/120 KiB
    /// DSPR, 2 × 1 MiB PFLASH, 384 KiB DFLASH, 32 KiB LMU RAM.
    pub fn tc277() -> Self {
        let mut entries = Vec::new();
        for c in CoreId::all() {
            let pspr_size = if c.is_efficiency() {
                24 << 10
            } else {
                32 << 10
            };
            let dspr_size = if c.is_efficiency() {
                112 << 10
            } else {
                120 << 10
            };
            entries.push(MapEntry {
                region: Region::Pspr(c),
                base: 0x1000_0000 + (c.0 as u32) * 0x0010_0000,
                size: pspr_size,
                cacheable: false,
            });
            entries.push(MapEntry {
                region: Region::Dspr(c),
                base: 0x2000_0000 + (c.0 as u32) * 0x0010_0000,
                size: dspr_size,
                cacheable: false,
            });
        }
        for (region, c_base, n_base, size) in [
            (Region::Pflash0, 0x8000_0000u32, 0xA000_0000u32, 1 << 20),
            (Region::Pflash1, 0x8800_0000, 0xA800_0000, 1 << 20),
            (Region::Lmu, 0x9000_0000, 0xB000_0000, 32 << 10),
        ] {
            entries.push(MapEntry {
                region,
                base: c_base,
                size,
                cacheable: true,
            });
            entries.push(MapEntry {
                region,
                base: n_base,
                size,
                cacheable: false,
            });
        }
        // DFLASH is only reachable non-cacheable (Table 3: data n$ only).
        entries.push(MapEntry {
            region: Region::Dflash,
            base: 0xAF00_0000,
            size: 384 << 10,
            cacheable: false,
        });
        MemMap { entries }
    }

    /// Decodes an address into its region/offset/cacheability, or `None`
    /// for unmapped addresses.
    pub fn decode(&self, addr: Addr) -> Option<Location> {
        self.entries.iter().find_map(|e| {
            let off = addr.0.wrapping_sub(e.base);
            (off < e.size).then_some(Location {
                region: e.region,
                offset: off,
                cacheable: e.cacheable,
            })
        })
    }

    /// Base address of a region through the requested view.
    ///
    /// # Panics
    ///
    /// Panics if the region has no view with the requested cacheability
    /// (e.g. a cacheable view of DFLASH or of a scratchpad).
    pub fn region_base(&self, region: Region, cacheable: bool) -> Addr {
        self.entries
            .iter()
            .find(|e| e.region == region && e.cacheable == cacheable)
            .map(|e| Addr(e.base))
            .unwrap_or_else(|| panic!("region {region} has no cacheable={cacheable} view"))
    }

    /// Whether the region offers a view with the given cacheability.
    pub fn has_view(&self, region: Region, cacheable: bool) -> bool {
        self.entries
            .iter()
            .any(|e| e.region == region && e.cacheable == cacheable)
    }

    /// The size of a region in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the region is not in the map.
    pub fn region_size(&self, region: Region) -> u32 {
        self.entries
            .iter()
            .find(|e| e.region == region)
            .map(|e| e.size)
            .unwrap_or_else(|| unreachable!("region not mapped"))
    }
}

impl Default for MemMap {
    fn default() -> Self {
        MemMap::tc277()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_roundtrips_all_views() {
        let map = MemMap::tc277();
        for region in [Region::Pflash0, Region::Pflash1, Region::Lmu] {
            for cacheable in [true, false] {
                let base = map.region_base(region, cacheable);
                let loc = map.decode(base.offset(64)).unwrap();
                assert_eq!(loc.region, region);
                assert_eq!(loc.offset, 64);
                assert_eq!(loc.cacheable, cacheable);
            }
        }
    }

    #[test]
    fn dflash_has_no_cacheable_view() {
        let map = MemMap::tc277();
        assert!(!map.has_view(Region::Dflash, true));
        assert!(map.has_view(Region::Dflash, false));
    }

    #[test]
    fn scratchpads_are_local_and_noncacheable() {
        let map = MemMap::tc277();
        for c in CoreId::all() {
            for r in [Region::Pspr(c), Region::Dspr(c)] {
                assert!(r.is_local());
                assert!(r.sri_target().is_none());
                assert!(!map.has_view(r, true));
            }
        }
    }

    #[test]
    fn efficiency_core_has_smaller_scratchpads() {
        let map = MemMap::tc277();
        assert_eq!(map.region_size(Region::Pspr(CoreId(0))), 24 << 10);
        assert_eq!(map.region_size(Region::Pspr(CoreId(1))), 32 << 10);
        assert_eq!(map.region_size(Region::Dspr(CoreId(0))), 112 << 10);
        assert_eq!(map.region_size(Region::Dspr(CoreId(2))), 120 << 10);
    }

    #[test]
    fn out_of_range_decodes_to_none() {
        let map = MemMap::tc277();
        assert!(map.decode(Addr(0x0000_0000)).is_none());
        assert!(map.decode(Addr(0xFFFF_FFF0)).is_none());
        // One past the end of the LMU.
        let lmu_end = map.region_base(Region::Lmu, true).offset(32 << 10);
        assert!(map.decode(lmu_end).is_none());
    }

    #[test]
    fn line_arithmetic() {
        let a = Addr(0x8000_0040);
        assert_eq!(a.line(), 0x8000_0040 / 32);
        assert_eq!(a.line_offset(), 0);
        assert_eq!(a.offset(33).line(), a.line() + 1);
        assert_eq!(a.offset(33).line_offset(), 1);
    }

    #[test]
    fn sri_target_indices_are_dense() {
        let mut seen = [false; SriTarget::COUNT];
        for t in SriTarget::all() {
            seen[t.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr(0x9000_0000).to_string(), "0x90000000");
        assert_eq!(SriTarget::Pf0.to_string(), "pf0");
        assert_eq!(Region::Pspr(CoreId(2)).to_string(), "pspr[2]");
        assert_eq!(CoreId(1).to_string(), "core1");
    }
}
