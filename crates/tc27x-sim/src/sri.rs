//! The Shared Resource Interconnect: a crossbar with pluggable
//! per-slave arbitration ([`Arbiter`]).
//!
//! The SRI lets transactions to *distinct* slaves proceed in parallel;
//! contention arises only between requests to the same slave (§2 of the
//! paper). Each slave serves one transaction at a time; which waiting
//! request a free slave grants is the arbiter's decision. Three policies
//! exist, selected per slave by the platform description
//! ([`platform::Arbitration`]):
//!
//! * [`PriorityRoundRobin`] — the TC27x default: masters carry a
//!   priority class, the highest class present wins, ties within a
//!   class are broken round-robin over cores. With all masters in one
//!   class (the paper's "most stressing" case) this degenerates to
//!   plain round-robin.
//! * [`FixedPriority`] — strict: the highest class always wins, ties
//!   broken by the lower core index; in-flight transactions are never
//!   preempted (so a low-priority request can block for at most one
//!   service).
//! * [`Tdma`] — time-division: the schedule cycles through one slot per
//!   active core; a request is granted only inside its own slot and
//!   only if its service fits the slot remainder, so transactions never
//!   spill into foreign slots and contenders cannot delay a grant.
//!
//! Every arbiter must also *predict* its next grant cycle exactly
//! ([`Arbiter::next_grant`]) — that prediction is the event kernel's
//! claim, and any error would break the bit-identity between the event
//! kernel and the per-cycle reference stepper.

use crate::addr::{CoreId, SriTarget};
use crate::attribution::{Attribution, AttributionMatrix};
use crate::layout::AccessClass;
use platform::Arbitration;

/// A request posted by a core's PMI or DMI.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SriRequest {
    /// Requesting core.
    pub core: CoreId,
    /// Destination slave.
    pub target: SriTarget,
    /// Code fetch or data access (the paper's `O = {co, da}`).
    pub class: AccessClass,
    /// Write transaction (store or cache write-back).
    pub write: bool,
    /// Slave occupancy in cycles.
    pub service: u32,
}

/// A queued request as the arbiters see it.
#[derive(Clone, Copy, Debug)]
pub struct Pending {
    /// Requesting core.
    pub core: CoreId,
    /// Slave occupancy in cycles.
    pub service: u32,
    /// Cycle the request was posted — grant time minus this is the
    /// exact queueing delay the crossbar imposed on the requester.
    pub posted_at: u64,
    /// Code fetch or data access; arbiters ignore it, the attribution
    /// ledger splits victim waits by it.
    pub class: AccessClass,
}

/// Per-slave arbitration policy: picks which queued request a free
/// slave grants, and predicts the next cycle any grant could be issued
/// (the event kernel's claim for this slave).
pub trait Arbiter {
    /// Index into `queue` of the request granted at `now` on a *free*
    /// slave, or `None` if no queued request may start this cycle.
    /// `last_grant` is the slave's round-robin pointer (core index of
    /// the most recent grant); policies that do not rotate ignore it.
    fn pick(
        &self,
        now: u64,
        queue: &[Pending],
        last_grant: usize,
        priority: &[u8; CoreId::COUNT],
    ) -> Option<usize>;

    /// The earliest cycle `≥ now` at which [`Arbiter::pick`] succeeds,
    /// given the slave frees at `busy_until` and the queue stays as it
    /// is. `None` iff the queue is empty (a passive slave claims
    /// nothing). Exactness is load-bearing: the event kernel steps the
    /// crossbar only at claimed cycles.
    fn next_grant(
        &self,
        now: u64,
        busy_until: u64,
        queue: &[Pending],
        priority: &[u8; CoreId::COUNT],
    ) -> Option<u64>;
}

/// Priority classes, round-robin within the winning class (the TC27x
/// SRI policy).
#[derive(Clone, Copy, Debug, Default)]
pub struct PriorityRoundRobin;

impl Arbiter for PriorityRoundRobin {
    fn pick(
        &self,
        _now: u64,
        queue: &[Pending],
        last_grant: usize,
        priority: &[u8; CoreId::COUNT],
    ) -> Option<usize> {
        // Highest priority class present wins; round-robin within the
        // class (first queued core strictly after `last_grant` in
        // circular core order).
        let best_class = queue.iter().map(|p| priority[p.core.index()]).max()?;
        (1..=CoreId::COUNT)
            .map(|d| (last_grant + d) % CoreId::COUNT)
            .filter(|&c| priority[c] == best_class)
            .find_map(|c| queue.iter().position(|p| p.core.index() == c))
    }

    fn next_grant(
        &self,
        now: u64,
        busy_until: u64,
        queue: &[Pending],
        _priority: &[u8; CoreId::COUNT],
    ) -> Option<u64> {
        // A free slave with any waiter grants immediately.
        (!queue.is_empty()).then(|| busy_until.max(now))
    }
}

/// Strict fixed priority: highest class wins, ties broken by the lower
/// core index; never rotates.
#[derive(Clone, Copy, Debug, Default)]
pub struct FixedPriority;

impl Arbiter for FixedPriority {
    fn pick(
        &self,
        _now: u64,
        queue: &[Pending],
        _last_grant: usize,
        priority: &[u8; CoreId::COUNT],
    ) -> Option<usize> {
        queue
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| (priority[p.core.index()], std::cmp::Reverse(p.core.index())))
            .map(|(i, _)| i)
    }

    fn next_grant(
        &self,
        now: u64,
        busy_until: u64,
        queue: &[Pending],
        _priority: &[u8; CoreId::COUNT],
    ) -> Option<u64> {
        (!queue.is_empty()).then(|| busy_until.max(now))
    }
}

/// Time-division multiplexing over the active cores: slot `i` of every
/// `cores × slot_len` period belongs to core `i`, and a grant must fit
/// the remainder of its own slot.
#[derive(Clone, Copy, Debug)]
pub struct Tdma {
    slot_len: u64,
    cores: u64,
}

impl Tdma {
    /// Creates the schedule; `slot_len` must cover every service this
    /// slave can be asked for (the platform validator enforces this for
    /// described platforms).
    pub fn new(slot_len: u32, cores: usize) -> Self {
        assert!(slot_len > 0 && cores > 0, "degenerate TDMA schedule");
        Tdma {
            slot_len: u64::from(slot_len),
            cores: cores as u64,
        }
    }

    /// The earliest cycle `≥ from` at which `p` can start: inside its
    /// own slot with `service` cycles of the slot remaining.
    fn next_start(&self, from: u64, p: &Pending) -> u64 {
        let (l, n) = (self.slot_len, self.cores);
        let s = u64::from(p.service);
        debug_assert!(s <= l, "TDMA slot {l} cannot fit a service of {s}");
        let slot = from / l;
        let core = p.core.index() as u64 % n;
        if slot % n == core && (from % l) + s <= l {
            return from;
        }
        // Jump to the start of the core's next slot (a full period
        // ahead when we are late in our own slot).
        let mut delta = (core + n - slot % n) % n;
        if delta == 0 {
            delta = n;
        }
        (slot + delta) * l
    }
}

impl Arbiter for Tdma {
    fn pick(
        &self,
        now: u64,
        queue: &[Pending],
        _last_grant: usize,
        _priority: &[u8; CoreId::COUNT],
    ) -> Option<usize> {
        let owner = (now / self.slot_len) % self.cores;
        let remaining = self.slot_len - (now % self.slot_len);
        queue.iter().position(|p| {
            p.core.index() as u64 % self.cores == owner && u64::from(p.service) <= remaining
        })
    }

    fn next_grant(
        &self,
        now: u64,
        busy_until: u64,
        queue: &[Pending],
        _priority: &[u8; CoreId::COUNT],
    ) -> Option<u64> {
        let from = busy_until.max(now);
        queue.iter().map(|p| self.next_start(from, p)).min()
    }
}

/// The arbiter of one slave port, dispatching to the concrete policy
/// (an enum so [`Sri`] stays `Clone + Debug`).
#[derive(Clone, Copy, Debug)]
enum SlaveArbiter {
    Prr(PriorityRoundRobin),
    Fp(FixedPriority),
    Tdma(Tdma),
}

impl SlaveArbiter {
    fn from_policy(policy: Arbitration, cores: usize) -> Self {
        match policy {
            Arbitration::PriorityRoundRobin => SlaveArbiter::Prr(PriorityRoundRobin),
            Arbitration::FixedPriority => SlaveArbiter::Fp(FixedPriority),
            Arbitration::Tdma { slot_len } => SlaveArbiter::Tdma(Tdma::new(slot_len, cores)),
        }
    }

    fn as_arbiter(&self) -> &dyn Arbiter {
        match self {
            SlaveArbiter::Prr(a) => a,
            SlaveArbiter::Fp(a) => a,
            SlaveArbiter::Tdma(a) => a,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct Slave {
    /// Cycle at which the slave becomes free again.
    busy_until: u64,
    /// Waiting requests, at most one per core.
    queue: Vec<Pending>,
    /// Core index granted most recently (round-robin pointer).
    last_grant: usize,
    /// Total transactions served.
    served: u64,
    /// Total cycles of queueing delay imposed on requesters.
    queue_delay: u64,
    /// Distribution of per-grant queueing delays, for telemetry.
    delay_hist: obs::Hist,
}

/// Completion notice the SRI hands back to a core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Grant {
    /// Cycle at which the transaction's data is available.
    pub complete_at: u64,
}

/// The SRI crossbar.
///
/// # Examples
///
/// ```
/// use tc27x_sim::addr::{CoreId, SriTarget};
/// use tc27x_sim::layout::AccessClass;
/// use tc27x_sim::sri::{Sri, SriRequest};
///
/// let mut sri = Sri::new();
/// sri.post(0, SriRequest {
///     core: CoreId(1),
///     target: SriTarget::Lmu,
///     class: AccessClass::Data,
///     write: false,
///     service: 11,
/// });
/// let grants = sri.step(0);
/// assert_eq!(grants[CoreId(1).index()].unwrap().complete_at, 11);
/// ```
#[derive(Clone, Debug)]
pub struct Sri {
    slaves: [Slave; SriTarget::COUNT],
    /// Arbitration policy per slave port.
    arbiters: [SlaveArbiter; SriTarget::COUNT],
    /// Priority class per core (higher wins); all-equal by default.
    priority: [u8; CoreId::COUNT],
    /// Opt-in contention attribution ledger ([`crate::attribution`]);
    /// `None` (the default) records nothing and costs nothing.
    attribution: Option<Box<Attribution>>,
}

impl Sri {
    /// Creates an idle crossbar with all masters in the same priority
    /// class (round-robin arbitration).
    pub fn new() -> Self {
        Sri::with_priorities([0; CoreId::COUNT])
    }

    /// Creates a crossbar with explicit per-core priority classes
    /// (higher value = higher priority) and the default
    /// priority-then-round-robin policy on every slave.
    pub fn with_priorities(priority: [u8; CoreId::COUNT]) -> Self {
        Sri::with_arbitration(
            priority,
            [Arbitration::PriorityRoundRobin; SriTarget::COUNT],
            CoreId::COUNT,
        )
    }

    /// Creates a crossbar with an explicit arbitration policy per slave
    /// port; `cores` is the number of active cores (the TDMA schedule
    /// has one slot per active core).
    pub fn with_arbitration(
        priority: [u8; CoreId::COUNT],
        arbitration: [Arbitration; SriTarget::COUNT],
        cores: usize,
    ) -> Self {
        Sri {
            slaves: Default::default(),
            arbiters: std::array::from_fn(|i| SlaveArbiter::from_policy(arbitration[i], cores)),
            priority,
            attribution: None,
        }
    }

    /// Turns on the contention attribution ledger (idempotent; normally
    /// driven by [`crate::config::SimConfig::with_attribution`]). Must
    /// be enabled before the run for conservation to hold — the ledger
    /// only sees grants issued while it exists.
    pub fn enable_attribution(&mut self) {
        if self.attribution.is_none() {
            self.attribution = Some(Box::default());
        }
    }

    /// The attribution ledger, if recording is enabled.
    pub fn attribution(&self) -> Option<&AttributionMatrix> {
        self.attribution.as_ref().map(|a| a.matrix())
    }

    /// Snapshot of the attribution ledger; the all-zero matrix when
    /// recording is off.
    pub fn attribution_matrix(&self) -> AttributionMatrix {
        self.attribution().copied().unwrap_or_default()
    }

    /// The priority class of a core.
    pub fn priority(&self, core: CoreId) -> u8 {
        self.priority[core.index()]
    }

    /// Posts a request at cycle `now`; the posting cycle is recorded so
    /// the grant can attribute the exact queueing delay to the slave
    /// (see [`Sri::queue_delay`]). The grant arrives through a later
    /// (possibly same-cycle) [`Sri::step`].
    ///
    /// # Panics
    ///
    /// Panics if the core already has a request queued at this slave —
    /// cores have at most one outstanding transaction.
    pub fn post(&mut self, now: u64, req: SriRequest) {
        let slave = &mut self.slaves[req.target.index()];
        assert!(
            slave.queue.iter().all(|p| p.core != req.core),
            "{} already has a pending request at {}",
            req.core,
            req.target
        );
        slave.queue.push(Pending {
            core: req.core,
            service: req.service,
            posted_at: now,
            class: req.class,
        });
    }

    /// Advances arbitration at cycle `now`; returns, per core index, the
    /// grant issued this cycle (if any).
    pub fn step(&mut self, now: u64) -> [Option<Grant>; CoreId::COUNT] {
        let mut grants = [None; CoreId::COUNT];
        let priority = self.priority;
        for (idx, (slave, arbiter)) in self.slaves.iter_mut().zip(&self.arbiters).enumerate() {
            if slave.busy_until > now || slave.queue.is_empty() {
                continue;
            }
            let Some(pos) =
                arbiter
                    .as_arbiter()
                    .pick(now, &slave.queue, slave.last_grant, &priority)
            else {
                continue;
            };
            let p = slave.queue.remove(pos);
            let core_idx = p.core.index();
            slave.last_grant = core_idx;
            slave.busy_until = now + p.service as u64;
            slave.served += 1;
            // Exact queueing delay of the granted request, from its
            // recorded posting cycle (not the per-tick waiter count the
            // stepper used to approximate this with).
            slave.queue_delay += now - p.posted_at;
            slave.delay_hist.observe(now - p.posted_at);
            if let Some(attr) = self.attribution.as_deref_mut() {
                // Same grant, same cycle, same inputs on every kernel —
                // the ledger inherits the grant sequence's bit-identity.
                attr.on_grant(idx, &p, now, slave.busy_until, &slave.queue);
            }
            grants[core_idx] = Some(Grant {
                complete_at: slave.busy_until,
            });
        }
        grants
    }

    /// Transactions served by a slave so far.
    pub fn served(&self, target: SriTarget) -> u64 {
        self.slaves[target.index()].served
    }

    /// Total cycles of queueing delay a slave has imposed on granted
    /// requests (grant cycle minus posting cycle, summed).
    pub fn queue_delay(&self, target: SriTarget) -> u64 {
        self.slaves[target.index()].queue_delay
    }

    /// Per-slave statistics snapshot (served count, total and per-grant
    /// queueing delay) for the telemetry layer. Grants are bit-identical
    /// across engines and worker counts, so these are deterministic
    /// telemetry inputs.
    pub fn slave_stats(&self, target: SriTarget) -> crate::counters::SlaveStats {
        let s = &self.slaves[target.index()];
        crate::counters::SlaveStats {
            served: s.served,
            queue_delay: s.queue_delay,
            delay_hist: s.delay_hist.clone(),
        }
    }

    /// Returns `true` if `core` has a request queued at any slave. The
    /// event kernel's memo path asserts the negation before warping a
    /// core: a core in `Ready`/`Blocked` state never has SRI work in
    /// flight (only `WaitGrant` does), so a memoized block can never
    /// race a grant.
    pub(crate) fn has_pending(&self, core: CoreId) -> bool {
        self.slaves
            .iter()
            .any(|s| s.queue.iter().any(|p| p.core == core))
    }

    /// Returns `true` if no slave has queued or in-flight work at `now`.
    /// This is the event kernel's quiescence source of truth:
    /// `is_idle(now)` implies [`Sri::next_event`] returns `None`.
    pub fn is_idle(&self, now: u64) -> bool {
        self.slaves
            .iter()
            .all(|s| s.queue.is_empty() && s.busy_until <= now)
    }

    /// Delegates to the [`crate::engine::EventSource`] impl without
    /// needing the trait in scope.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        crate::engine::EventSource::next_event(self, now)
    }
}

impl crate::engine::EventSource for Sri {
    /// The next cycle at which [`Sri::step`] can issue a grant: the
    /// minimum of each slave arbiter's [`Arbiter::next_grant`] claim.
    /// Under round-robin and fixed priority that is the earliest
    /// `busy_until` (clamped to `now`) over slaves with a non-empty
    /// queue; under TDMA it is the next feasible slot start for any
    /// queued request. A busy slave with an *empty* queue needs no
    /// claim — stepping it is a no-op until someone posts, and the
    /// poster's own step precedes arbitration within that cycle. With no
    /// queued work anywhere the arbiter is passive ([`Sri::is_idle`] is
    /// the stronger, kernel-facing form of this).
    fn next_event(&self, now: u64) -> Option<u64> {
        self.slaves
            .iter()
            .zip(&self.arbiters)
            .filter_map(|(s, a)| {
                a.as_arbiter()
                    .next_grant(now, s.busy_until, &s.queue, &self.priority)
            })
            .min()
    }
}

impl Default for Sri {
    fn default() -> Self {
        Sri::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(core: u8, target: SriTarget, service: u32) -> SriRequest {
        SriRequest {
            core: CoreId(core),
            target,
            class: AccessClass::Data,
            write: false,
            service,
        }
    }

    #[test]
    fn single_request_served_immediately() {
        let mut sri = Sri::new();
        sri.post(5, req(0, SriTarget::Dfl, 43));
        let g = sri.step(5);
        assert_eq!(g[0].unwrap().complete_at, 48);
        assert!(g[1].is_none() && g[2].is_none());
        assert_eq!(sri.served(SriTarget::Dfl), 1);
    }

    #[test]
    fn same_slave_serializes() {
        let mut sri = Sri::new();
        sri.post(0, req(1, SriTarget::Lmu, 11));
        sri.post(0, req(2, SriTarget::Lmu, 11));
        let g0 = sri.step(0);
        // Exactly one granted at cycle 0.
        assert_eq!(g0.iter().flatten().count(), 1);
        // Nothing new until the slave frees up.
        for t in 1..11 {
            assert_eq!(sri.step(t).iter().flatten().count(), 0);
        }
        let g11 = sri.step(11);
        assert_eq!(g11.iter().flatten().count(), 1);
        assert_eq!(g11.iter().flatten().next().unwrap().complete_at, 22);
    }

    #[test]
    fn distinct_slaves_run_in_parallel() {
        let mut sri = Sri::new();
        sri.post(0, req(1, SriTarget::Pf0, 16));
        sri.post(0, req(2, SriTarget::Pf1, 16));
        let g = sri.step(0);
        assert_eq!(g[1].unwrap().complete_at, 16);
        assert_eq!(g[2].unwrap().complete_at, 16);
    }

    #[test]
    fn round_robin_alternates_under_saturation() {
        let mut sri = Sri::new();
        let mut order = Vec::new();
        let mut t = 0u64;
        // Both cores keep a request pending for 6 grant rounds.
        sri.post(t, req(1, SriTarget::Lmu, 11));
        sri.post(t, req(2, SriTarget::Lmu, 11));
        for _ in 0..6 {
            loop {
                let g = sri.step(t);
                if let Some(c) = (0..3).find(|&c| g[c].is_some()) {
                    order.push(c);
                    t = g[c].unwrap().complete_at;
                    // Immediately repost for the granted core.
                    sri.post(t, req(c as u8, SriTarget::Lmu, 11));
                    break;
                }
                t += 1;
            }
        }
        // Strict alternation 1,2,1,2,... or 2,1,2,1,...
        for w in order.windows(2) {
            assert_ne!(w[0], w[1], "round robin must alternate: {order:?}");
        }
    }

    #[test]
    fn three_core_round_robin_is_fair() {
        let mut sri = Sri::new();
        let mut served = [0u32; 3];
        let mut t = 0u64;
        for c in 0..3 {
            sri.post(t, req(c, SriTarget::Pf0, 16));
        }
        for _ in 0..9 {
            loop {
                let g = sri.step(t);
                if let Some(c) = (0..3).find(|&c| g[c].is_some()) {
                    served[c] += 1;
                    t = g[c].unwrap().complete_at;
                    sri.post(t, req(c as u8, SriTarget::Pf0, 16));
                    break;
                }
                t += 1;
            }
        }
        assert_eq!(served, [3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "pending request")]
    fn double_post_same_slave_panics() {
        let mut sri = Sri::new();
        sri.post(0, req(1, SriTarget::Lmu, 11));
        sri.post(0, req(1, SriTarget::Lmu, 11));
    }

    #[test]
    fn priority_class_preempts_round_robin_order() {
        // Core 1 is high priority; it always wins grants over core 2.
        let mut sri = Sri::with_priorities([0, 1, 0]);
        assert_eq!(sri.priority(CoreId(1)), 1);
        let mut wins = [0u32; 3];
        let mut t = 0u64;
        sri.post(t, req(1, SriTarget::Lmu, 11));
        sri.post(t, req(2, SriTarget::Lmu, 11));
        for _ in 0..8 {
            loop {
                let g = sri.step(t);
                if let Some(c) = (0..3).find(|&c| g[c].is_some()) {
                    wins[c] += 1;
                    t = g[c].unwrap().complete_at;
                    sri.post(t, req(c as u8, SriTarget::Lmu, 11));
                    break;
                }
                t += 1;
            }
        }
        // Core 2 gets through only while core 1's repost arrives at the
        // same cycle the slave frees (never strictly first): with this
        // repost pattern core 1 must win at least 7 of 8 grants.
        assert!(
            wins[1] >= 7,
            "high priority starves the low class: {wins:?}"
        );
    }

    #[test]
    fn equal_priorities_remain_fair() {
        let mut sri = Sri::with_priorities([3, 3, 3]);
        let mut served = [0u32; 3];
        let mut t = 0u64;
        for c in 0..3 {
            sri.post(t, req(c, SriTarget::Dfl, 43));
        }
        for _ in 0..6 {
            loop {
                let g = sri.step(t);
                if let Some(c) = (0..3).find(|&c| g[c].is_some()) {
                    served[c] += 1;
                    t = g[c].unwrap().complete_at;
                    sri.post(t, req(c as u8, SriTarget::Dfl, 43));
                    break;
                }
                t += 1;
            }
        }
        assert_eq!(served, [2, 2, 2]);
    }

    #[test]
    fn idle_detection() {
        let mut sri = Sri::new();
        assert!(sri.is_idle(0));
        sri.post(0, req(0, SriTarget::Lmu, 11));
        assert!(!sri.is_idle(0));
        sri.step(0);
        assert!(!sri.is_idle(5));
        assert!(sri.is_idle(11));
    }

    #[test]
    fn idle_implies_no_claim() {
        let mut sri = Sri::new();
        // Fresh crossbar: idle, passive.
        assert!(sri.is_idle(0));
        assert_eq!(sri.next_event(0), None);
        // Queued request on a free slave: claim fires immediately.
        sri.post(3, req(1, SriTarget::Lmu, 11));
        assert_eq!(sri.next_event(3), Some(3));
        sri.step(3);
        // Busy slave, empty queue: no claim, yet not idle — stepping it
        // is a no-op until someone posts.
        assert!(!sri.is_idle(7));
        assert_eq!(sri.next_event(7), None);
        // Busy slave with a waiter: claim at the freeing cycle.
        sri.post(7, req(2, SriTarget::Lmu, 11));
        assert_eq!(sri.next_event(7), Some(14));
        // Whenever the crossbar is idle, it must also be passive.
        for t in [14, 25, 1000] {
            sri.step(t);
            assert!(sri.is_idle(t + 11));
            assert_eq!(sri.next_event(t + 11), None);
        }
    }

    fn tdma_sri(slot_len: u32, cores: usize) -> Sri {
        Sri::with_arbitration(
            [0; CoreId::COUNT],
            [Arbitration::Tdma { slot_len }; SriTarget::COUNT],
            cores,
        )
    }

    #[test]
    fn fixed_priority_always_prefers_the_higher_class() {
        let mut sri = Sri::with_arbitration(
            [0, 2, 1],
            [Arbitration::FixedPriority; SriTarget::COUNT],
            CoreId::COUNT,
        );
        // All three queued on a free slave: core 1 (class 2) wins, then
        // core 2 (class 1), then core 0 — never round-robin rotation.
        for c in 0..3 {
            sri.post(0, req(c, SriTarget::Lmu, 11));
        }
        let g = sri.step(0);
        assert!(g[1].is_some() && g[0].is_none() && g[2].is_none());
        let g = sri.step(11);
        assert!(g[2].is_some() && g[0].is_none());
        let g = sri.step(22);
        assert!(g[0].is_some());
    }

    #[test]
    fn fixed_priority_breaks_ties_by_core_index() {
        let mut sri = Sri::with_arbitration(
            [1, 1, 0],
            [Arbitration::FixedPriority; SriTarget::COUNT],
            CoreId::COUNT,
        );
        sri.post(0, req(1, SriTarget::Lmu, 11));
        sri.post(0, req(0, SriTarget::Lmu, 11));
        let g = sri.step(0);
        assert!(g[0].is_some() && g[1].is_none(), "lower index wins ties");
    }

    #[test]
    fn tdma_grants_only_in_the_owners_slot() {
        // Slots of 16: [0,16) core0, [16,32) core1, [32,48) core2.
        let mut sri = tdma_sri(16, 3);
        sri.post(0, req(1, SriTarget::Pf0, 16));
        // Core 1's slot starts at 16 — nothing before that.
        for t in 0..16 {
            assert_eq!(sri.step(t).iter().flatten().count(), 0, "t={t}");
        }
        assert_eq!(sri.next_event(0), Some(16));
        let g = sri.step(16);
        assert_eq!(g[1].unwrap().complete_at, 32);
    }

    #[test]
    fn tdma_grant_must_fit_the_slot_remainder() {
        let mut sri = tdma_sri(16, 3);
        // Posted 10 cycles into core 0's own slot: a 16-cycle service no
        // longer fits (6 cycles remain), so it waits a full period.
        sri.post(10, req(0, SriTarget::Pf0, 16));
        assert_eq!(sri.next_event(10), Some(48));
        for t in 10..48 {
            assert_eq!(sri.step(t).iter().flatten().count(), 0, "t={t}");
        }
        let g = sri.step(48);
        assert_eq!(g[0].unwrap().complete_at, 64);
        // A shorter service fits the same remainder immediately.
        let mut sri = tdma_sri(16, 3);
        sri.post(10, req(0, SriTarget::Pf0, 6));
        assert_eq!(sri.next_event(10), Some(10));
        assert_eq!(sri.step(10)[0].unwrap().complete_at, 16);
    }

    #[test]
    fn tdma_contenders_cannot_delay_a_grant() {
        // Core 1 posts at its slot start; core 0 and 2 flooding the
        // same slave never move core 1's grant cycle.
        let grant_cycle = |with_contenders: bool| {
            let mut sri = tdma_sri(16, 3);
            if with_contenders {
                sri.post(0, req(0, SriTarget::Pf0, 16));
                sri.post(0, req(2, SriTarget::Pf0, 16));
            }
            sri.post(5, req(1, SriTarget::Pf0, 16));
            let mut t = 5;
            loop {
                if let Some(g) = sri.step(t)[1] {
                    return (t, g.complete_at);
                }
                t += 1;
            }
        };
        assert_eq!(grant_cycle(false), grant_cycle(true));
    }

    #[test]
    fn tdma_claims_are_exact() {
        // Whatever the posting phase, the claimed cycle is the first
        // cycle at which step() actually grants.
        for phase in 0..48u64 {
            let mut sri = tdma_sri(16, 3);
            sri.post(phase, req(2, SriTarget::Lmu, 11));
            let claim = sri.next_event(phase).unwrap();
            for t in phase..claim {
                assert_eq!(sri.step(t).iter().flatten().count(), 0, "phase={phase}");
            }
            assert!(
                sri.step(claim)[2].is_some(),
                "claim {claim} must grant (phase {phase})"
            );
        }
    }

    #[test]
    fn queue_delay_is_grant_minus_post() {
        let mut sri = Sri::new();
        sri.post(0, req(1, SriTarget::Lmu, 11));
        sri.post(0, req(2, SriTarget::Lmu, 11));
        let g0 = sri.step(0);
        assert_eq!(g0.iter().flatten().count(), 1);
        // First grant came at its posting cycle: zero delay.
        assert_eq!(sri.queue_delay(SriTarget::Lmu), 0);
        // Second request waits out the 11-cycle service window.
        let g11 = sri.step(11);
        assert_eq!(g11.iter().flatten().count(), 1);
        assert_eq!(sri.queue_delay(SriTarget::Lmu), 11);
        // Other slaves were never touched.
        assert_eq!(sri.queue_delay(SriTarget::Pf0), 0);
        // The per-grant histogram agrees with the aggregate counters.
        let stats = sri.slave_stats(SriTarget::Lmu);
        assert_eq!(stats.served, 2);
        assert_eq!(stats.queue_delay, 11);
        assert_eq!(stats.delay_hist.count(), 2);
        assert_eq!(stats.delay_hist.sum(), 11);
        assert_eq!(stats.delay_hist.max(), Some(11));
        assert!(sri.slave_stats(SriTarget::Pf0).delay_hist.is_empty());
    }

    #[test]
    fn attribution_is_off_by_default_and_charges_the_occupant_when_on() {
        let mut sri = Sri::new();
        sri.post(0, req(1, SriTarget::Lmu, 11));
        sri.post(0, req(2, SriTarget::Lmu, 11));
        sri.step(0);
        sri.step(11);
        assert!(sri.attribution().is_none());
        assert!(sri.attribution_matrix().is_zero());

        let mut sri = Sri::new();
        sri.enable_attribution();
        sri.post(0, req(1, SriTarget::Lmu, 11));
        sri.post(0, req(2, SriTarget::Lmu, 11));
        sri.step(0);
        sri.step(11);
        let m = sri.attribution().unwrap();
        // Core 2 waited out core 1's full service; every wait cycle is
        // blamed on core 1, none on the schedule.
        assert_eq!(m.wait_cycles(SriTarget::Lmu, CoreId(2), CoreId(1)), 11);
        assert_eq!(m.schedule_wait(SriTarget::Lmu, CoreId(2)), 0);
        assert_eq!(
            m.slave_wait(SriTarget::Lmu),
            sri.queue_delay(SriTarget::Lmu),
            "attributed cycles must sum to the slave's queue_delay"
        );
        assert_eq!(m.max_wait(SriTarget::Lmu, CoreId(2)), 11);
        assert_eq!(
            m.class_wait(SriTarget::Lmu, CoreId(2), AccessClass::Data),
            11
        );
    }

    #[test]
    fn attribution_charges_tdma_alignment_to_the_schedule_column() {
        let mut sri = tdma_sri(16, 3);
        sri.enable_attribution();
        // Core 1 posts at cycle 0 into core 0's slot; its own slot
        // starts at 16. Nobody occupies the slave meanwhile.
        sri.post(0, req(1, SriTarget::Pf0, 16));
        for t in 0..=16 {
            sri.step(t);
        }
        let m = sri.attribution().unwrap();
        assert_eq!(m.schedule_wait(SriTarget::Pf0, CoreId(1)), 16);
        assert_eq!(m.wait_cycles(SriTarget::Pf0, CoreId(1), CoreId(0)), 0);
        assert_eq!(
            m.slave_wait(SriTarget::Pf0),
            sri.queue_delay(SriTarget::Pf0)
        );
    }
}
