//! The complete TC277 system: three cores, the SRI crossbar and the
//! shared memories, driven by a pluggable timing kernel.
//!
//! Two engines exist and are bit-identical ([`crate::config::SimConfig::engine`]):
//! the event-driven kernel ([`crate::engine`], the default) and the
//! per-cycle reference stepper ([`crate::reference`]).
//!
//! # Examples
//!
//! Run a small task in isolation and read its debug counters:
//!
//! ```
//! use tc27x_sim::addr::{CoreId, Region};
//! use tc27x_sim::layout::{DataObject, Placement, TaskSpec};
//! use tc27x_sim::program::{Pattern, Program};
//! use tc27x_sim::system::System;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prog = Program::build(|b| {
//!     b.repeat(100, |b| {
//!         b.load("shared", Pattern::Sequential);
//!         b.compute(3);
//!     });
//! });
//! let spec = TaskSpec::new("probe", prog, Placement::pspr(CoreId(1)))
//!     .with_object(DataObject::new("shared", 4096, Placement::new(Region::Lmu, false)));
//!
//! let mut sys = System::tc277();
//! sys.load(CoreId(1), &spec)?;
//! let outcome = sys.run()?;
//! let c = outcome.counters(CoreId(1));
//! assert_eq!(c.dmem_stall, 100 * 10); // cs^{lmu,da} = 10 per access
//! # Ok(())
//! # }
//! ```

use crate::addr::{CoreId, MemMap};
use crate::config::SimConfig;
use crate::core_pipeline::CorePipeline;
use crate::counters::{DebugCounters, GroundTruth, KernelStats, SimStats};
use crate::engine::Engine;
use crate::layout::{LayoutError, TaskSpec};
use crate::linker::Linker;
use crate::sri::Sri;
use std::error::Error;
use std::fmt;

/// Result of a completed simulation run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunOutcome {
    /// Cycles simulated.
    pub cycles: u64,
    per_core: Vec<Option<CoreResult>>,
}

/// Per-core results of a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoreResult {
    /// Debug counters at the end of the run.
    pub counters: DebugCounters,
    /// Simulator-only ground truth.
    pub ground_truth: GroundTruth,
    /// Cycle the task finished at, if it did.
    pub finish_cycle: Option<u64>,
    /// `true` if SRI capacity enforcement suspended the core.
    pub suspended: bool,
    /// Events the core's bounded trace dropped after its buffer filled
    /// (0 when tracing is disabled or nothing was lost). Surfaced here
    /// so callers rendering a trace can tell it is truncated without
    /// holding on to the [`System`].
    pub trace_dropped: u64,
}

impl RunOutcome {
    /// Debug counters of a core.
    ///
    /// # Panics
    ///
    /// Panics if no task was loaded on `core`.
    pub fn counters(&self, core: CoreId) -> DebugCounters {
        self.result(core).counters
    }

    /// Ground truth of a core.
    ///
    /// # Panics
    ///
    /// Panics if no task was loaded on `core`.
    pub fn ground_truth(&self, core: CoreId) -> GroundTruth {
        self.result(core).ground_truth
    }

    /// Full per-core result.
    ///
    /// # Panics
    ///
    /// Panics if no task was loaded on `core`.
    pub fn result(&self, core: CoreId) -> CoreResult {
        self.per_core[core.index()].unwrap_or_else(|| panic!("no task was loaded on {core}"))
    }

    /// Execution time (CCNT) of a core's task.
    ///
    /// # Panics
    ///
    /// Panics if no task was loaded on `core`.
    pub fn execution_time(&self, core: CoreId) -> u64 {
        self.counters(core).ccnt
    }

    /// Events dropped from a core's bounded trace (see
    /// [`CoreResult::trace_dropped`]).
    ///
    /// # Panics
    ///
    /// Panics if no task was loaded on `core`.
    pub fn trace_dropped(&self, core: CoreId) -> u64 {
        self.result(core).trace_dropped
    }
}

/// Errors from driving the system.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// Linking a task failed.
    Layout(LayoutError),
    /// The run exceeded [`SimConfig::max_cycles`].
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
    /// A core was loaded twice.
    CoreBusy {
        /// The core in question.
        core: CoreId,
    },
    /// A task was loaded on a core the platform does not have
    /// ([`SimConfig::active_cores`]).
    InactiveCore {
        /// The core in question.
        core: CoreId,
        /// Active cores on this platform.
        active: usize,
    },
    /// A task places code or data on a slave slot the platform does not
    /// have ([`SimConfig::slave_present`]).
    SlaveAbsent {
        /// The absent slave.
        target: crate::addr::SriTarget,
    },
    /// `run` was called with no tasks loaded.
    NothingLoaded,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Layout(e) => write!(f, "link error: {e}"),
            SimError::CycleLimit { limit } => {
                write!(f, "simulation exceeded the cycle limit of {limit}")
            }
            SimError::CoreBusy { core } => write!(f, "{core} already has a task loaded"),
            SimError::InactiveCore { core, active } => {
                write!(f, "{core} is not active (platform has {active} cores)")
            }
            SimError::SlaveAbsent { target } => {
                write!(f, "slave {target} does not exist on this platform")
            }
            SimError::NothingLoaded => write!(f, "no tasks loaded"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LayoutError> for SimError {
    fn from(e: LayoutError) -> Self {
        SimError::Layout(e)
    }
}

/// The simulated TC277 system.
pub struct System {
    pub(crate) config: SimConfig,
    pub(crate) map: MemMap,
    linker: Linker,
    pub(crate) sri: Sri,
    pub(crate) cores: Vec<Option<CorePipeline>>,
    pub(crate) now: u64,
    pub(crate) kernel: KernelStats,
}

impl System {
    /// Creates a system with the TC277 reference configuration.
    pub fn tc277() -> Self {
        System::with_config(SimConfig::tc277_reference())
    }

    /// Creates a system with a custom configuration.
    pub fn with_config(config: SimConfig) -> Self {
        let map = MemMap::tc277();
        let mut sri = Sri::with_arbitration(
            config.master_priority,
            config.arbitration,
            config.active_cores,
        );
        if config.attribution {
            sri.enable_attribution();
        }
        System {
            linker: Linker::new(map.clone()),
            map,
            config,
            sri,
            cores: (0..CoreId::COUNT).map(|_| None).collect(),
            now: 0,
            kernel: KernelStats::default(),
        }
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The execution trace of a core (empty unless tracing is enabled
    /// via [`SimConfig::trace_capacity`]). Available after `run`.
    ///
    /// # Panics
    ///
    /// Panics if no task was loaded on `core`.
    pub fn trace(&self, core: CoreId) -> &crate::trace::Trace {
        self.cores[core.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("no task was loaded on {core}"))
            .trace()
    }

    /// Links `spec` and loads it onto `core`.
    ///
    /// # Errors
    ///
    /// [`SimError::CoreBusy`] if the core already has a task, or any
    /// [`LayoutError`] from linking.
    pub fn load(&mut self, core: CoreId, spec: &TaskSpec) -> Result<(), SimError> {
        if core.index() >= self.config.active_cores {
            return Err(SimError::InactiveCore {
                core,
                active: self.config.active_cores,
            });
        }
        if self.cores[core.index()].is_some() {
            return Err(SimError::CoreBusy { core });
        }
        // Placements must land on slaves this platform actually has;
        // core-local scratchpads are always available.
        let placements = spec
            .segments
            .iter()
            .map(|s| s.placement)
            .chain(spec.data_objects.iter().map(|o| o.placement));
        for p in placements {
            if let Some(target) = p.region.sri_target() {
                if !self.config.slave_present[target.index()] {
                    return Err(SimError::SlaveAbsent { target });
                }
            }
        }
        let image = self.linker.link(core, spec)?;
        self.cores[core.index()] = Some(CorePipeline::new(core, image, &self.config));
        Ok(())
    }

    /// Runs until **all** loaded tasks finish.
    ///
    /// # Errors
    ///
    /// [`SimError::NothingLoaded`] with no tasks,
    /// [`SimError::CycleLimit`] if the run exceeds the configured cap.
    pub fn run(&mut self) -> Result<RunOutcome, SimError> {
        self.run_while(|cores| cores.iter().flatten().any(|c| !c.is_done()))
    }

    /// Runs until the task on `observed` finishes; other cores keep
    /// generating interference the whole time (the standard co-run
    /// measurement protocol).
    ///
    /// # Errors
    ///
    /// Same as [`System::run`], plus a panic-free error if `observed`
    /// has no task.
    pub fn run_until(&mut self, observed: CoreId) -> Result<RunOutcome, SimError> {
        if self.cores[observed.index()].is_none() {
            return Err(SimError::NothingLoaded);
        }
        self.run_while(move |cores| {
            cores[observed.index()]
                .as_ref()
                .is_some_and(|c| !c.is_done())
        })
    }

    fn run_while(
        &mut self,
        keep_going: impl Fn(&[Option<CorePipeline>]) -> bool,
    ) -> Result<RunOutcome, SimError> {
        if self.cores.iter().all(Option::is_none) {
            return Err(SimError::NothingLoaded);
        }
        match self.config.engine {
            Engine::Tick => crate::reference::run_tick(self, &keep_going)?,
            Engine::Event => crate::engine::run_event(self, &keep_going)?,
        }
        Ok(self.outcome())
    }

    /// Post-run statistics snapshot for the telemetry layer: per-slave
    /// SRI queueing-delay distributions (deterministic — grants are
    /// bit-identical across engines) and event-kernel fast-forward /
    /// claims-depth statistics (engine-dependent; all zero under the
    /// reference stepper). Deliberately *not* part of [`RunOutcome`],
    /// which the engine-equivalence suite compares bit-for-bit.
    pub fn stats(&self) -> SimStats {
        SimStats {
            slaves: std::array::from_fn(|i| self.sri.slave_stats(crate::addr::SriTarget::all()[i])),
            kernel: self.kernel.clone(),
            attribution: self.sri.attribution_matrix(),
        }
    }

    /// Snapshot of the per-core results, shared by both engines.
    fn outcome(&self) -> RunOutcome {
        RunOutcome {
            cycles: self.now,
            per_core: self
                .cores
                .iter()
                .map(|c| {
                    c.as_ref().map(|core| CoreResult {
                        counters: core.counters(),
                        ground_truth: core.ground_truth(),
                        finish_cycle: core.finish_cycle(),
                        suspended: core.is_suspended(),
                        trace_dropped: core.trace().dropped(),
                    })
                })
                .collect(),
        }
    }
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("now", &self.now)
            .field(
                "tasks",
                &self
                    .cores
                    .iter()
                    .flatten()
                    .map(|c| c.task_name().to_owned())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Region;
    use crate::layout::{DataObject, Placement};
    use crate::program::{Pattern, Program};

    fn lmu_nc() -> Placement {
        Placement::new(Region::Lmu, false)
    }

    fn spec_with_lmu_loads(n: u32, compute: u32) -> TaskSpec {
        let prog = Program::build(|b| {
            b.repeat(n, |b| {
                b.load("obj", Pattern::Sequential);
                if compute > 0 {
                    b.compute(compute);
                }
            });
        });
        TaskSpec::new("probe", prog, Placement::pspr(CoreId(1))).with_object(DataObject::new(
            "obj",
            8 << 10,
            lmu_nc(),
        ))
    }

    #[test]
    fn empty_system_refuses_to_run() {
        let mut sys = System::tc277();
        assert_eq!(sys.run().unwrap_err(), SimError::NothingLoaded);
    }

    #[test]
    fn double_load_rejected() {
        let mut sys = System::tc277();
        let spec = spec_with_lmu_loads(1, 0);
        sys.load(CoreId(1), &spec).unwrap();
        assert!(matches!(
            sys.load(CoreId(1), &spec),
            Err(SimError::CoreBusy { .. })
        ));
    }

    #[test]
    fn isolated_lmu_loads_stall_exactly_cs_lmu_da() {
        // Each uncached LMU load: service 11, hide 1 → 10 stall cycles.
        let mut sys = System::tc277();
        sys.load(CoreId(1), &spec_with_lmu_loads(50, 0)).unwrap();
        let out = sys.run().unwrap();
        let c = out.counters(CoreId(1));
        assert_eq!(c.dmem_stall, 50 * 10);
        assert_eq!(c.pmem_stall, 0, "PSPR code causes no PMI stalls");
        assert_eq!(c.pcache_miss, 0);
        let g = out.ground_truth(CoreId(1));
        assert_eq!(
            g.accesses(
                crate::addr::SriTarget::Lmu,
                crate::layout::AccessClass::Data
            ),
            50
        );
    }

    #[test]
    fn ccnt_equals_finish_cycle_when_started_at_zero() {
        let mut sys = System::tc277();
        sys.load(CoreId(1), &spec_with_lmu_loads(10, 5)).unwrap();
        let out = sys.run().unwrap();
        let r = out.result(CoreId(1));
        assert_eq!(r.counters.ccnt, r.finish_cycle.unwrap());
    }

    #[test]
    fn contention_inflates_observed_time_and_stalls() {
        // Two cores hammering the same LMU in lockstep.
        let mk = |core: CoreId| {
            let prog = Program::build(|b| {
                b.repeat(200, |b| {
                    b.load("obj", Pattern::Sequential);
                });
            });
            TaskSpec::new("hammer", prog, Placement::pspr(core)).with_object(DataObject::new(
                "obj",
                4 << 10,
                lmu_nc(),
            ))
        };
        // Isolation.
        let mut iso = System::tc277();
        iso.load(CoreId(1), &mk(CoreId(1))).unwrap();
        let iso_time = iso.run().unwrap().execution_time(CoreId(1));
        // Co-run.
        let mut pair = System::tc277();
        pair.load(CoreId(1), &mk(CoreId(1))).unwrap();
        pair.load(CoreId(2), &mk(CoreId(2))).unwrap();
        let co = pair.run_until(CoreId(1)).unwrap();
        let co_time = co.execution_time(CoreId(1));
        assert!(
            co_time > iso_time,
            "contention must slow the task: iso={iso_time} co={co_time}"
        );
        // Round-robin bounds the slowdown by one contender request per
        // own request: delta ≤ 200 × service(11).
        assert!(co_time - iso_time <= 200 * 11);
    }

    #[test]
    fn disjoint_slaves_do_not_interfere() {
        let code = |core: CoreId| Placement::pspr(core);
        let mk = |core: CoreId, obj_place: Placement| {
            let prog = Program::build(|b| {
                b.repeat(100, |b| {
                    b.load("obj", Pattern::Sequential);
                });
            });
            TaskSpec::new("t", prog, code(core)).with_object(DataObject::new(
                "obj",
                4 << 10,
                obj_place,
            ))
        };
        let mut iso = System::tc277();
        iso.load(CoreId(1), &mk(CoreId(1), lmu_nc())).unwrap();
        let iso_time = iso.run().unwrap().execution_time(CoreId(1));

        let mut pair = System::tc277();
        pair.load(CoreId(1), &mk(CoreId(1), lmu_nc())).unwrap();
        pair.load(
            CoreId(2),
            &mk(CoreId(2), Placement::new(Region::Dflash, false)),
        )
        .unwrap();
        let co_time = pair.run_until(CoreId(1)).unwrap().execution_time(CoreId(1));
        assert_eq!(
            iso_time, co_time,
            "SRI transactions to distinct slaves proceed in parallel"
        );
    }

    #[test]
    fn same_priority_class_is_the_most_stressing_case() {
        // §2: the paper analyses contenders in the same SRI priority
        // class as the worst case. Giving the analysed core a higher
        // class can only reduce its observed co-run time.
        let mk = |core: CoreId| {
            let prog = Program::build(|b| {
                b.repeat(300, |b| {
                    b.load("obj", Pattern::Sequential);
                });
            });
            TaskSpec::new("hammer", prog, Placement::pspr(core)).with_object(DataObject::new(
                "obj",
                4 << 10,
                lmu_nc(),
            ))
        };
        let run = |priority: [u8; 3]| {
            let cfg = SimConfig::tc277_reference().with_master_priority(priority);
            let mut sys = System::with_config(cfg);
            sys.load(CoreId(0), &mk(CoreId(0))).unwrap();
            sys.load(CoreId(1), &mk(CoreId(1))).unwrap();
            sys.load(CoreId(2), &mk(CoreId(2))).unwrap();
            sys.run_until(CoreId(1)).unwrap().execution_time(CoreId(1))
        };
        let same_class = run([0, 0, 0]);
        let app_high = run([0, 1, 0]);
        assert!(
            app_high <= same_class,
            "priority must not slow the favoured core: {app_high} vs {same_class}"
        );
        // Against two saturating contenders the favoured core skips the
        // round-robin queueing entirely and is strictly faster.
        assert!(app_high < same_class, "{app_high} vs {same_class}");
    }

    #[test]
    fn trace_is_consistent_with_counters() {
        let cfg = SimConfig::tc277_reference().with_trace_capacity(10_000);
        let mut sys = System::with_config(cfg);
        sys.load(CoreId(1), &spec_with_lmu_loads(25, 2)).unwrap();
        let out = sys.run().unwrap();
        let trace = sys.trace(CoreId(1));
        use crate::trace::TraceKind;
        let posts = trace
            .filter(|k| matches!(k, TraceKind::SriPost { .. }))
            .count() as u64;
        assert_eq!(posts, out.ground_truth(CoreId(1)).total());
        let stall_sum: u64 = trace
            .filter(|k| matches!(k, TraceKind::SriComplete { .. }))
            .map(|r| match r.kind {
                TraceKind::SriComplete { stall, .. } => stall,
                _ => unreachable!(),
            })
            .sum();
        let k = out.counters(CoreId(1));
        assert_eq!(stall_sum, k.pmem_stall + k.dmem_stall);
        assert_eq!(
            trace
                .filter(|k| matches!(k, TraceKind::TaskComplete))
                .count(),
            1
        );
    }

    #[test]
    fn sri_quota_suspends_the_offender_only() {
        let mk = |core: CoreId, n: u32| {
            let prog = Program::build(|b| {
                b.repeat(n, |b| {
                    b.load("obj", Pattern::Sequential);
                });
            });
            TaskSpec::new("t", prog, Placement::pspr(core)).with_object(DataObject::new(
                "obj",
                4 << 10,
                lmu_nc(),
            ))
        };
        let cfg = SimConfig::tc277_reference().with_sri_quota(CoreId(2), 40);
        let mut sys = System::with_config(cfg);
        sys.load(CoreId(1), &mk(CoreId(1), 200)).unwrap();
        sys.load(CoreId(2), &mk(CoreId(2), 200)).unwrap();
        let out = sys.run_until(CoreId(1)).unwrap();
        let offender = out.result(CoreId(2));
        assert!(offender.suspended);
        assert_eq!(offender.ground_truth.total(), 40, "hard cap on SRI traffic");
        assert!(!out.result(CoreId(1)).suspended);
        // The protected core suffers interference only while the
        // offender was alive: at most 40 collisions × 11 cycles.
        let iso = {
            let mut s = System::tc277();
            s.load(CoreId(1), &mk(CoreId(1), 200)).unwrap();
            s.run().unwrap().execution_time(CoreId(1))
        };
        let co = out.execution_time(CoreId(1));
        assert!(
            co - iso <= 40 * 11,
            "delta {} exceeds the quota bound",
            co - iso
        );
    }

    #[test]
    fn quota_never_triggers_below_the_budget() {
        let prog = Program::build(|b| {
            b.repeat(30, |b| {
                b.load("obj", Pattern::Sequential);
            });
        });
        let spec = TaskSpec::new("t", prog, Placement::pspr(CoreId(1)))
            .with_object(DataObject::new("obj", 4 << 10, lmu_nc()));
        let cfg = SimConfig::tc277_reference().with_sri_quota(CoreId(1), 30);
        let mut sys = System::with_config(cfg);
        sys.load(CoreId(1), &spec).unwrap();
        let out = sys.run().unwrap();
        assert!(!out.result(CoreId(1)).suspended);
        assert_eq!(out.ground_truth(CoreId(1)).total(), 30);
        assert!(out.result(CoreId(1)).finish_cycle.is_some());
    }

    #[test]
    fn cycle_limit_guards_runaway() {
        let mut cfg = SimConfig::tc277_reference();
        cfg.max_cycles = 100;
        let mut sys = System::with_config(cfg);
        sys.load(CoreId(1), &spec_with_lmu_loads(10_000, 0))
            .unwrap();
        assert!(matches!(
            sys.run(),
            Err(SimError::CycleLimit { limit: 100 })
        ));
    }

    /// Runs one config on both engines and asserts the outcomes are
    /// bit-identical, including traces.
    fn assert_engines_agree(cfg: SimConfig, tasks: &[(CoreId, TaskSpec)]) {
        use crate::engine::Engine;
        let run = |engine: Engine| {
            let mut sys = System::with_config(cfg.clone().with_engine(engine));
            for (core, spec) in tasks {
                sys.load(*core, spec).unwrap();
            }
            let out = sys.run();
            let traces: Vec<_> = tasks
                .iter()
                .map(|(core, _)| sys.trace(*core).records().to_vec())
                .collect();
            (out, traces)
        };
        let (tick, tick_traces) = run(Engine::Tick);
        let (event, event_traces) = run(Engine::Event);
        match (&tick, &event) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.cycles, b.cycles);
                for (core, _) in tasks {
                    let (ra, rb) = (a.result(*core), b.result(*core));
                    assert_eq!(ra.counters, rb.counters, "{core}");
                    assert_eq!(ra.ground_truth, rb.ground_truth, "{core}");
                    assert_eq!(ra.finish_cycle, rb.finish_cycle, "{core}");
                    assert_eq!(ra.suspended, rb.suspended, "{core}");
                    assert_eq!(ra.trace_dropped, rb.trace_dropped, "{core}");
                }
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("engines disagree on success: tick={a:?} event={b:?}"),
        }
        assert_eq!(tick_traces, event_traces);
    }

    #[test]
    fn engines_agree_on_an_isolated_run() {
        assert_engines_agree(
            SimConfig::tc277_reference().with_trace_capacity(10_000),
            &[(CoreId(1), spec_with_lmu_loads(50, 3))],
        );
    }

    #[test]
    fn engines_agree_under_contention_with_quota() {
        let mk = |core: CoreId| {
            let prog = Program::build(|b| {
                b.repeat(120, |b| {
                    b.load("obj", Pattern::Sequential);
                });
            });
            TaskSpec::new("hammer", prog, Placement::pspr(core)).with_object(DataObject::new(
                "obj",
                4 << 10,
                lmu_nc(),
            ))
        };
        let cfg = SimConfig::tc277_reference()
            .with_sri_quota(CoreId(2), 40)
            .with_trace_capacity(4_000);
        assert_engines_agree(
            cfg,
            &[
                (CoreId(0), mk(CoreId(0))),
                (CoreId(1), mk(CoreId(1))),
                (CoreId(2), mk(CoreId(2))),
            ],
        );
    }

    #[test]
    fn engines_agree_on_cycle_limit_truncation() {
        for limit in [1, 7, 100, 1_000] {
            assert_engines_agree(
                SimConfig::tc277_reference().with_max_cycles(limit),
                &[(CoreId(1), spec_with_lmu_loads(10_000, 0))],
            );
        }
    }

    #[test]
    fn stats_split_deterministic_from_kernel_dependent() {
        use crate::addr::SriTarget;
        let run = |engine: crate::engine::Engine| {
            let cfg = SimConfig::tc277_reference().with_engine(engine);
            let mut sys = System::with_config(cfg);
            sys.load(CoreId(1), &spec_with_lmu_loads(50, 3)).unwrap();
            sys.run().unwrap();
            sys.stats()
        };
        let tick = run(crate::engine::Engine::Tick);
        let event = run(crate::engine::Engine::Event);
        // SRI statistics are deterministic: identical across engines.
        for t in SriTarget::all() {
            assert_eq!(tick.slave(t).served, event.slave(t).served, "{t}");
            assert_eq!(tick.slave(t), event.slave(t), "{t}");
        }
        assert_eq!(event.slave(SriTarget::Lmu).served, 50);
        assert_eq!(
            event.slave(SriTarget::Lmu).delay_hist.count(),
            50,
            "one delay observation per grant"
        );
        // Kernel statistics are engine-dependent: the stepper never
        // fast-forwards, the event kernel must have (compute gaps).
        assert_eq!(tick.kernel, crate::counters::KernelStats::default());
        assert!(event.kernel.ff_jumps > 0);
        assert_eq!(event.kernel.ff_jumps, event.kernel.gap_hist.count());
        assert!(event.kernel.depth_hist.count() > 0);
    }

    #[test]
    fn event_engine_is_the_default() {
        assert_eq!(
            System::tc277().config().engine,
            crate::engine::Engine::Event
        );
    }

    #[test]
    fn outcome_surfaces_trace_truncation() {
        let cfg = SimConfig::tc277_reference().with_trace_capacity(4);
        let mut sys = System::with_config(cfg);
        sys.load(CoreId(1), &spec_with_lmu_loads(25, 0)).unwrap();
        let out = sys.run().unwrap();
        assert!(out.trace_dropped(CoreId(1)) > 0);
        assert_eq!(out.trace_dropped(CoreId(1)), sys.trace(CoreId(1)).dropped());
        // An untraced run drops nothing.
        let mut plain = System::tc277();
        plain.load(CoreId(1), &spec_with_lmu_loads(5, 0)).unwrap();
        assert_eq!(plain.run().unwrap().trace_dropped(CoreId(1)), 0);
    }
}
