//! # `tc27x-sim` — a cycle-level AURIX TC27x platform simulator
//!
//! This crate stands in for the TC277 silicon used by the DAC'18 paper
//! *Modelling Multicore Contention on the AURIX TC27x*. It models the
//! pieces of the platform the contention analysis depends on:
//!
//! * three TriCore cores (one 1.6E, two 1.6P) with per-core
//!   program/data scratchpads, instruction caches and — on the 1.6P —
//!   write-back data caches ([`core_pipeline`], [`cache`]);
//! * the SRI crossbar with per-slave round-robin arbitration and
//!   parallel transactions to distinct slaves ([`sri`]);
//! * the four shared SRI slaves (PFLASH0/PFLASH1/DFLASH/LMU) with the
//!   latencies of Table 2, including the program-flash prefetch buffer
//!   ([`config`]);
//! * segment-based cacheability and the Table 3 deployment constraints
//!   ([`addr`], [`layout`], [`linker`]);
//! * the DSU debug counters the models consume: CCNT, PMEM_STALL,
//!   DMEM_STALL, PCACHE_MISS, DCACHE_MISS_CLEAN/DIRTY ([`counters`]).
//!
//! Tasks are written in an ISA-lite of compute bursts, loads and stores
//! ([`program`]) — sufficient because TC27x contention depends only on
//! the number, type and target of SRI requests (§2 of the paper).
//!
//! # Examples
//!
//! Measure a task in isolation:
//!
//! ```
//! use tc27x_sim::addr::{CoreId, Region};
//! use tc27x_sim::layout::{DataObject, Placement, TaskSpec};
//! use tc27x_sim::program::{Pattern, Program};
//! use tc27x_sim::System;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Program::build(|b| {
//!     b.repeat(1000, |b| {
//!         b.load("signal", Pattern::Sequential);
//!         b.compute(4);
//!         b.store("state", Pattern::Sequential);
//!     });
//! });
//! let task = TaskSpec::new("loop", program, Placement::new(Region::Pflash0, true))
//!     .with_object(DataObject::new("signal", 2048, Placement::new(Region::Lmu, false)))
//!     .with_object(DataObject::new("state", 2048, Placement::dspr(CoreId(1))));
//!
//! let mut system = System::tc277();
//! system.load(CoreId(1), &task)?;
//! let outcome = system.run()?;
//! println!("{}", outcome.counters(CoreId(1)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod addr;
pub mod attribution;
pub mod cache;
pub mod config;
pub mod core_pipeline;
pub mod counters;
pub mod engine;
pub mod faults;
pub mod layout;
pub mod linker;
pub mod memo;
pub mod program;
pub mod reference;
pub mod rng;
pub mod sri;
pub mod system;
pub mod trace;

pub use addr::{Addr, CoreId, MemMap, Region, SriTarget};
pub use attribution::AttributionMatrix;
pub use config::SimConfig;
pub use counters::{DebugCounters, GroundTruth, KernelStats, SimStats, SlaveStats};
pub use engine::{Engine, EventSource, ParseEngineError};
pub use faults::{CounterId, FaultInjector, FaultKind, FaultRecord};
pub use layout::{
    AccessClass, CodeSegment, DataObject, DeploymentScenario, LayoutError, Placement, TaskSpec,
};
pub use linker::{Linker, TaskImage};
pub use program::{Op, Pattern, Program, ProgramBuilder};
pub use sri::{Arbiter, FixedPriority, PriorityRoundRobin, Sri, SriRequest, Tdma};
pub use system::{RunOutcome, SimError, System};
pub use trace::{Trace, TraceKind, TraceRecord};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<crate::System>();
        assert_ss::<crate::TaskSpec>();
        assert_ss::<crate::DebugCounters>();
        assert_ss::<crate::SimError>();
    }
}
