//! Adversarial cases for block-memo fast-forwarding: co-runner SRI
//! traffic landing *while* another core is mid-warp.
//!
//! A block warp parks the core in a multi-cycle `Blocked` window. If a
//! co-runner posts to a shared slave inside that window, arbitration,
//! queueing delays and grant timing on the *co-runner's* side must come
//! out exactly as if the warped core had been stepped cycle by cycle —
//! and the warped core's own later SRI requests must see exactly the
//! contention the per-cycle execution would have produced. These cases
//! are built so that scratchpad-heavy blocks (long warps) on one core
//! overlap dense shared-slave traffic from the others, then compare
//! tick vs event vs event-without-memo bit for bit, traces included.

use tc27x_sim::trace::TraceRecord;
use tc27x_sim::{
    CoreId, DataObject, Engine, Pattern, Placement, Program, Region, RunOutcome, SimConfig,
    SimError, System, TaskSpec,
};

/// Everything observable about one run.
#[derive(PartialEq, Debug)]
struct Observed {
    outcome: Result<RunOutcome, SimError>,
    traces: Vec<Vec<TraceRecord>>,
}

fn run(tasks: &[(CoreId, TaskSpec)], config: &SimConfig, observe: Option<CoreId>) -> Observed {
    let mut sys = System::with_config(config.clone());
    for (core, spec) in tasks {
        sys.load(*core, spec).expect("layout must link");
    }
    let outcome = match observe {
        Some(core) => sys.run_until(core),
        None => sys.run(),
    };
    let traces = tasks
        .iter()
        .map(|(core, _)| sys.trace(*core).records().to_vec())
        .collect();
    Observed { outcome, traces }
}

/// Runs tick, event, and event-without-memo, asserting bit-identity.
fn assert_three_way(label: &str, tasks: &[(CoreId, TaskSpec)], observe: Option<CoreId>) {
    let base = SimConfig::tc277_reference()
        .with_max_cycles(2_000_000)
        .with_trace_capacity(256);
    let tick = run(tasks, &base.clone().with_engine(Engine::Tick), observe);
    let event = run(tasks, &base.clone().with_engine(Engine::Event), observe);
    let nomemo = run(
        tasks,
        &base.with_engine(Engine::Event).with_block_memo(false),
        observe,
    );
    assert_eq!(tick, event, "{label}: tick vs event(memo)");
    assert_eq!(tick, nomemo, "{label}: tick vs event(no memo)");
}

/// A scratchpad-resident task: long stall-free blocks, punctuated by a
/// single LMU touch per outer iteration so the warped core itself meets
/// contention at block boundaries.
fn warping_task(core: CoreId, seed: u64) -> TaskSpec {
    let prog = Program::build(|b| {
        b.repeat(200, |b| {
            b.repeat(8, |b| {
                b.compute(3);
                b.load("local", Pattern::Sequential);
                b.store("local", Pattern::Stride(12));
            });
            b.load("shared", Pattern::Random);
        });
    });
    let mut spec = TaskSpec::new("warper", prog, Placement::pspr(core))
        .with_object(DataObject::new("local", 2048, Placement::dspr(core)))
        .with_object(DataObject::new(
            "shared",
            4096,
            Placement::new(Region::Lmu, false),
        ));
    spec.seed = seed;
    spec
}

/// A contender hammering shared slaves with minimal local work: its
/// posts land at nearly every cycle, i.e. inside every warp window the
/// other core opens.
fn hammering_task(core: CoreId, region: Region, cacheable: bool, seed: u64) -> TaskSpec {
    let prog = Program::build(|b| {
        b.repeat(600, |b| {
            b.load("tgt", Pattern::Sequential);
            b.compute(1);
            b.store("tgt", Pattern::Sequential);
        });
    });
    let mut spec = TaskSpec::new("hammer", prog, Placement::pspr(core)).with_object(
        DataObject::new("tgt", 4096, Placement::new(region, cacheable)),
    );
    spec.seed = seed;
    spec
}

#[test]
fn corunner_lmu_posts_land_mid_warp() {
    let tasks = vec![
        (CoreId(1), warping_task(CoreId(1), 11)),
        (CoreId(2), hammering_task(CoreId(2), Region::Lmu, false, 22)),
    ];
    assert_three_way("lmu hammer vs warper", &tasks, None);
}

#[test]
fn corunner_dflash_posts_land_mid_warp() {
    let tasks = vec![
        (CoreId(1), warping_task(CoreId(1), 31)),
        (
            CoreId(0),
            hammering_task(CoreId(0), Region::Dflash, false, 32),
        ),
    ];
    assert_three_way("dflash hammer vs warper", &tasks, None);
}

#[test]
fn two_warpers_one_hammer_same_slave() {
    let tasks = vec![
        (CoreId(1), warping_task(CoreId(1), 41)),
        (CoreId(2), warping_task(CoreId(2), 42)),
        (CoreId(0), hammering_task(CoreId(0), Region::Lmu, false, 43)),
    ];
    assert_three_way("two warpers, shared LMU", &tasks, None);
}

#[test]
fn observed_core_run_until_cuts_corunner_warps() {
    // `run_until` stops the clock the cycle the observed core finishes,
    // with co-runners possibly mid-warp — their CCNT must still equal
    // the per-cycle accounting up to that exact cycle.
    let tasks = vec![
        (CoreId(1), hammering_task(CoreId(1), Region::Lmu, false, 51)),
        (CoreId(2), warping_task(CoreId(2), 52)),
    ];
    assert_three_way("observe hammer, cut warper", &tasks, Some(CoreId(1)));
}

#[test]
fn cacheable_contender_mixes_hits_and_misses() {
    // A cacheable LMU contender alternates d-cache hits (memoizable)
    // with misses (boundaries), so its own blocks are short and its
    // misses interleave with the other core's warps.
    let tasks = vec![
        (CoreId(1), warping_task(CoreId(1), 61)),
        (CoreId(2), hammering_task(CoreId(2), Region::Lmu, true, 62)),
    ];
    assert_three_way("cacheable contender", &tasks, None);
}

#[test]
fn memo_statistics_report_warps_only_under_event_engine() {
    let tasks = [(CoreId(1), warping_task(CoreId(1), 71))];
    let base = SimConfig::tc277_reference().with_max_cycles(2_000_000);

    let mut sys = System::with_config(base.clone().with_engine(Engine::Event));
    sys.load(CoreId(1), &tasks[0].1).expect("link");
    sys.run().expect("run");
    let stats = sys.stats();
    assert!(stats.kernel.memo_records > 0, "blocks must be recorded");
    assert!(stats.kernel.memo_hits > 0, "repeated blocks must replay");
    assert!(
        stats.kernel.memo_warp_cycles > 0,
        "warps must cover real cycles"
    );

    let mut tick = System::with_config(base.with_engine(Engine::Tick));
    tick.load(CoreId(1), &tasks[0].1).expect("link");
    tick.run().expect("run");
    let tstats = tick.stats();
    assert_eq!(tstats.kernel.memo_records, 0, "stepper never memoizes");
    assert_eq!(tstats.kernel.memo_hits, 0);
}
