//! Property-style tests of the simulator's internals: the cache against
//! a reference model, SRI arbitration guarantees, linker invariants and
//! counter semantics on random workloads.
//!
//! Cases are generated with the simulator's own seeded
//! [`SplitMix64`] — each case index maps to one deterministic
//! reproducer, so failures print the case number to re-run.

use tc27x_sim::cache::{Cache, CacheGeometry, Lookup};
use tc27x_sim::rng::SplitMix64;
use tc27x_sim::sri::{Sri, SriRequest};
use tc27x_sim::{
    AccessClass, CoreId, DataObject, Linker, MemMap, Pattern, Placement, Program, Region,
    SriTarget, System, TaskSpec,
};

// ---------------------------------------------------------------------
// Cache vs. a simple reference model
// ---------------------------------------------------------------------

/// Reference LRU model: per-set vectors, most recent at the back.
struct RefCache {
    sets: u32,
    ways: usize,
    content: Vec<Vec<(u32, bool)>>, // (tag, dirty)
}

impl RefCache {
    fn new(geometry: CacheGeometry) -> Self {
        RefCache {
            sets: geometry.sets(),
            ways: geometry.ways as usize,
            content: vec![Vec::new(); geometry.sets() as usize],
        }
    }

    fn access(&mut self, line: u32, write: bool) -> (bool, Option<u32>) {
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let entries = &mut self.content[set];
        if let Some(pos) = entries.iter().position(|(t, _)| *t == tag) {
            let (t, d) = entries.remove(pos);
            entries.push((t, d || write));
            return (true, None);
        }
        let mut evicted_dirty = None;
        if entries.len() == self.ways {
            let (vt, vd) = entries.remove(0);
            if vd {
                evicted_dirty = Some(vt * self.sets + set as u32);
            }
        }
        entries.push((tag, write));
        (false, evicted_dirty)
    }
}

/// The production cache agrees with the reference model on every access
/// of a random trace (hit/miss, dirty evictions, victims).
#[test]
fn cache_matches_reference_model() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(0xcac4_e000 + case);
        let ways = 1 + rng.below_u32(3);
        let sets = 1u32 << rng.below_u32(4);
        let len = 1 + rng.below(199) as usize;
        let trace: Vec<(u32, bool)> = (0..len).map(|_| (rng.below_u32(64), rng.flip())).collect();
        let geometry = CacheGeometry::new(sets * ways * 32, ways);
        let mut real = Cache::new(geometry);
        let mut reference = RefCache::new(geometry);
        for (line, write) in trace {
            let (ref_hit, ref_evict) = reference.access(line, write);
            match real.access(line, write) {
                Lookup::Hit => {
                    assert!(ref_hit, "case {case}: real hit, reference miss on {line}")
                }
                Lookup::Miss { evicted_dirty } => {
                    assert!(!ref_hit, "case {case}: real miss, reference hit on {line}");
                    assert_eq!(
                        evicted_dirty, ref_evict,
                        "case {case}: victim mismatch on {line}"
                    );
                }
            }
        }
    }
}

/// hits + misses equals the number of accesses; probe agrees with a
/// subsequent access.
#[test]
fn cache_bookkeeping() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(0xb00c_0000 + case);
        let len = 1 + rng.below(99) as usize;
        let trace: Vec<u32> = (0..len).map(|_| rng.below_u32(32)).collect();
        let mut c = Cache::new(CacheGeometry::new(512, 2));
        for &line in &trace {
            let probed = c.probe(line);
            match c.access(line, false) {
                Lookup::Hit => assert!(probed, "case {case}"),
                Lookup::Miss { .. } => assert!(!probed, "case {case}"),
            }
        }
        assert_eq!(c.hits() + c.misses(), trace.len() as u64, "case {case}");
    }
}

// ---------------------------------------------------------------------
// SRI arbitration guarantees
// ---------------------------------------------------------------------

/// Work conservation and bounded waiting: with three cores posting
/// simultaneously, every request is granted within
/// (cores-1) × service of the slave becoming free, and grants never
/// overlap at one slave.
#[test]
fn sri_bounded_waiting() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0x5317_0000 + case);
        let service = 1 + rng.below_u32(49);
        let mut sri = Sri::new();
        let t0 = 0u64;
        for c in 0..3u8 {
            sri.post(
                t0,
                SriRequest {
                    core: CoreId(c),
                    target: SriTarget::Lmu,
                    class: AccessClass::Data,
                    write: false,
                    service,
                },
            );
        }
        let mut completions = Vec::new();
        let mut t = t0;
        while completions.len() < 3 {
            let g = sri.step(t);
            for gr in g.iter().flatten() {
                completions.push(gr.complete_at);
            }
            t += 1;
            assert!(t < t0 + 4 * service as u64 + 4, "case {case}: starvation");
        }
        completions.sort_unstable();
        // Back-to-back service, no overlap, no idle gaps.
        for (i, c) in completions.iter().enumerate() {
            assert_eq!(*c, t0 + (i as u64 + 1) * service as u64, "case {case}");
        }
    }
}

// ---------------------------------------------------------------------
// Linker invariants
// ---------------------------------------------------------------------

/// Linked objects never overlap, land inside their region, and are
/// line-aligned — across multiple tasks sharing one linker.
#[test]
fn linker_allocations_are_disjoint() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0x11c0_0000 + case);
        let n = 1 + rng.below(7) as usize;
        let sizes: Vec<u32> = (0..n).map(|_| 1 + rng.below_u32(2047)).collect();
        let map = MemMap::tc277();
        let mut linker = Linker::new(map.clone());
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        for (i, size) in sizes.iter().enumerate() {
            let spec = TaskSpec::empty(format!("t{i}")).with_object(DataObject::new(
                "x",
                *size,
                Placement::new(Region::Lmu, false),
            ));
            match linker.link(CoreId(1), &spec) {
                Ok(img) => {
                    let o = &img.objects[0];
                    assert_eq!(o.base.0 % 32, 0, "case {case}: line alignment");
                    let loc = map.decode(o.base).expect("mapped");
                    assert_eq!(loc.region, Region::Lmu, "case {case}");
                    assert!(
                        loc.offset + o.size <= map.region_size(Region::Lmu),
                        "case {case}"
                    );
                    for (s, e) in &ranges {
                        assert!(
                            o.base.0 + o.size <= *s || *e <= o.base.0,
                            "case {case}: overlap with [{s:#x},{e:#x})"
                        );
                    }
                    ranges.push((o.base.0, o.base.0 + o.size));
                }
                Err(tc27x_sim::LayoutError::RegionOverflow { .. }) => {
                    // Legitimate once the 32 KiB LMU fills up.
                }
                Err(e) => panic!("case {case}: unexpected error {e}"),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Counter semantics on random workloads
// ---------------------------------------------------------------------

/// Eq. 4 soundness against ground truth: the stall-derived access
/// bounds dominate the true SRI access counts, for random tasks.
#[test]
fn stall_bounds_dominate_true_counts() {
    for case in 0..16u64 {
        let mut rng = SplitMix64::new(0x50fa_0000 + case);
        let iters = 1 + rng.below_u32(29);
        let loads = rng.below_u32(10);
        let compute = rng.below_u32(20);
        let lmu_code = rng.flip();
        let core = CoreId(1);
        let code_region = if lmu_code {
            Region::Lmu
        } else {
            Region::Pflash0
        };
        let prog = Program::build(|b| {
            b.repeat(iters, |b| {
                for _ in 0..loads {
                    b.load("obj", Pattern::Sequential);
                }
                if compute > 0 {
                    b.compute(compute);
                }
            });
        });
        let spec = TaskSpec::new("t", prog, Placement::new(code_region, true)).with_object(
            DataObject::new("obj", 2 << 10, Placement::new(Region::Dflash, false)),
        );
        let mut sys = System::tc277();
        sys.load(core, &spec).unwrap();
        let out = sys.run().unwrap();
        let k = out.counters(core);
        let g = out.ground_truth(core);

        // n̂ = ⌈stall / cs_min⌉ with cs_co_min = 6, cs_da_min = 10.
        let n_code_bound = k.pmem_stall.div_ceil(6);
        let n_data_bound = k.dmem_stall.div_ceil(10);
        let true_code = g.class_total(AccessClass::Code);
        let true_data = g.class_total(AccessClass::Data);
        assert!(
            n_code_bound >= true_code,
            "case {case}: code bound {n_code_bound} < truth {true_code}"
        );
        assert!(
            n_data_bound >= true_data,
            "case {case}: data bound {n_data_bound} < truth {true_data}"
        );

        // CCNT decomposes into at least its stall components.
        assert!(k.ccnt >= k.pmem_stall + k.dmem_stall, "case {case}");
    }
}
