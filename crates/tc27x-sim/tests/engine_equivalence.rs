//! Randomized differential suite: the event-driven kernel against the
//! per-cycle reference stepper.
//!
//! Each case index maps through [`SplitMix64`] to one deterministic
//! reproducer — a random program mix, core placement, config (traces,
//! SRI quotas, master priorities) and fault seed — which is then run on
//! **both** engines and compared bit for bit: link/run errors, total
//! cycles, every core's counters, ground truth, finish cycle,
//! suspension flag, trace records and drop counts, and the
//! fault-perturbed counter readings. Successful runs are additionally
//! re-run truncated at adversarial `max_cycles` cutoffs (1, C−1, C,
//! C+1 and a random interior point) where the engines must raise — or
//! not raise — `CycleLimit` identically.
//!
//! Every comparison runs the event kernel **twice** — with block-memo
//! fast-forwarding enabled (the default) and disabled — so the suite
//! simultaneously proves the kernel identical to the stepper and the
//! memo layer identical to the memo-free kernel, truncation cutoffs
//! included (a cutoff can land mid-warp, which is exactly where a memo
//! accounting bug would show).

use tc27x_sim::faults::FaultInjector;
use tc27x_sim::rng::SplitMix64;
use tc27x_sim::trace::TraceRecord;
use tc27x_sim::{
    CoreId, DataObject, Engine, Pattern, Placement, Program, Region, RunOutcome, SimConfig,
    SimError, System, TaskSpec,
};

const CASES: u64 = 500;
const BASE_SEED: u64 = 0xe0e0_4d1f_5eed_0000;

/// One generated workload: tasks pinned to cores, a config, and how to
/// drive the run.
#[derive(Clone)]
struct Case {
    tasks: Vec<(CoreId, TaskSpec)>,
    config: SimConfig,
    /// `Some(core)` uses `run_until(core)`, `None` uses `run()`.
    observe: Option<CoreId>,
}

/// Everything observable about one run, for exact comparison.
#[derive(PartialEq, Debug)]
struct Observed {
    outcome: Result<RunOutcome, SimError>,
    traces: Vec<Vec<TraceRecord>>,
}

fn random_pattern(rng: &mut SplitMix64) -> Pattern {
    match rng.below(4) {
        0 => Pattern::Sequential,
        1 => Pattern::Stride(4 * (1 + rng.below_u32(8))),
        2 => Pattern::Random,
        _ => Pattern::Fixed(rng.below_u32(1 << 10)),
    }
}

fn random_code_placement(rng: &mut SplitMix64, core: CoreId) -> Placement {
    match rng.below(5) {
        0 => Placement::new(Region::Pflash0, true),
        1 => Placement::new(Region::Pflash0, false),
        2 => Placement::new(Region::Pflash1, true),
        3 => Placement::new(Region::Lmu, false),
        _ => Placement::pspr(core),
    }
}

fn random_data_placement(rng: &mut SplitMix64, core: CoreId) -> Placement {
    match rng.below(5) {
        0 => Placement::new(Region::Lmu, false),
        1 => Placement::new(Region::Lmu, true),
        2 => Placement::new(Region::Dflash, false),
        3 => Placement::new(Region::Dflash, true),
        _ => Placement::dspr(core),
    }
}

/// A pre-generated program shape (generated ahead of the builder run so
/// the RNG draws happen in one deterministic sequence).
enum PlanOp {
    Compute(u32),
    Mem {
        obj: usize,
        pattern: Pattern,
        write: bool,
    },
    Loop {
        count: u32,
        body: Vec<PlanOp>,
    },
}

fn random_plan(rng: &mut SplitMix64, objects: usize, depth: u32) -> Vec<PlanOp> {
    let len = 2 + rng.below(6) as usize;
    (0..len)
        .map(|_| match rng.below(if depth > 0 { 4 } else { 3 }) {
            0 => PlanOp::Compute(1 + rng.below_u32(16)),
            1 | 2 => PlanOp::Mem {
                obj: rng.below(objects as u64) as usize,
                pattern: random_pattern(rng),
                write: rng.flip(),
            },
            _ => PlanOp::Loop {
                count: 2 + rng.below_u32(6),
                body: random_plan(rng, objects, depth - 1),
            },
        })
        .collect()
}

fn build_plan(b: &mut tc27x_sim::ProgramBuilder, plan: &[PlanOp]) {
    for op in plan {
        match op {
            PlanOp::Compute(n) => {
                b.compute(*n);
            }
            PlanOp::Mem {
                obj,
                pattern,
                write,
            } => {
                let name = format!("obj{obj}");
                if *write {
                    b.store(name, *pattern);
                } else {
                    b.load(name, *pattern);
                }
            }
            PlanOp::Loop { count, body } => {
                b.repeat(*count, |b| build_plan(b, body));
            }
        }
    }
}

fn random_task(rng: &mut SplitMix64, case: u64, core: CoreId) -> TaskSpec {
    let objects = 1 + rng.below(3) as usize;
    let plan = random_plan(rng, objects, 1);
    let prog = Program::build(|b| build_plan(b, &plan));
    let mut spec = TaskSpec::new(
        format!("rand-{case}-{core}"),
        prog,
        random_code_placement(rng, core),
    );
    for o in 0..objects {
        spec = spec.with_object(DataObject::new(
            format!("obj{o}"),
            64 + rng.below_u32(4000),
            random_data_placement(rng, core),
        ));
    }
    spec.seed = rng.next_u64();
    spec
}

fn random_case(rng: &mut SplitMix64, case: u64) -> Case {
    let mut cores: Vec<CoreId> = vec![CoreId(0), CoreId(1), CoreId(2)];
    let keep = 1 + rng.below(3) as usize;
    while cores.len() > keep {
        let drop = rng.below(cores.len() as u64) as usize;
        cores.remove(drop);
    }
    let tasks: Vec<(CoreId, TaskSpec)> = cores
        .iter()
        .map(|&c| (c, random_task(rng, case, c)))
        .collect();

    let mut config = SimConfig::tc277_reference().with_max_cycles(100_000);
    if rng.flip() {
        config = config.with_trace_capacity(1 + rng.below(64) as usize);
    }
    if rng.below(4) == 0 {
        config = config.with_sri_quota(CoreId(rng.below(3) as u8), rng.below(40));
    }
    if rng.below(4) == 0 {
        config = config.with_master_priority([
            rng.below(2) as u8,
            rng.below(2) as u8,
            rng.below(2) as u8,
        ]);
    }
    let observe = if tasks.len() > 1 && rng.flip() {
        Some(tasks[rng.below(tasks.len() as u64) as usize].0)
    } else {
        None
    };
    Case {
        tasks,
        config,
        observe,
    }
}

/// Runs the case on one engine and captures everything observable.
fn observe(case: &Case, engine: Engine, max_cycles: Option<u64>) -> Observed {
    observe_memo(case, engine, max_cycles, true)
}

/// Like [`observe`], with explicit control over block memoization.
fn observe_memo(case: &Case, engine: Engine, max_cycles: Option<u64>, memo: bool) -> Observed {
    let mut config = case
        .config
        .clone()
        .with_engine(engine)
        .with_block_memo(memo);
    if let Some(limit) = max_cycles {
        config = config.with_max_cycles(limit);
    }
    let mut sys = System::with_config(config);
    for (core, spec) in &case.tasks {
        if let Err(e) = sys.load(*core, spec) {
            // A link rejection happens before any engine runs; record it
            // and compare it across engines all the same.
            return Observed {
                outcome: Err(e),
                traces: Vec::new(),
            };
        }
    }
    let outcome = match case.observe {
        Some(core) => sys.run_until(core),
        None => sys.run(),
    };
    let traces = case
        .tasks
        .iter()
        .map(|(core, _)| sys.trace(*core).records().to_vec())
        .collect();
    Observed { outcome, traces }
}

/// Asserts bit-identity of two observations, with per-core detail in
/// the failure message.
fn assert_identical(case_no: u64, label: &str, case: &Case, tick: &Observed, event: &Observed) {
    if let (Ok(a), Ok(b)) = (&tick.outcome, &event.outcome) {
        assert_eq!(a.cycles, b.cycles, "case {case_no} ({label}): total cycles");
        for (core, _) in &case.tasks {
            assert_eq!(
                a.result(*core),
                b.result(*core),
                "case {case_no} ({label}): result for {core}"
            );
        }
    }
    assert_eq!(
        tick, event,
        "case {case_no} ({label}): engines must be bit-identical"
    );
}

#[test]
fn engines_are_bit_identical_on_random_workloads() {
    let mut compared = 0u64;
    let mut truncations = 0u64;
    for case_no in 0..CASES {
        let mut rng = SplitMix64::new(BASE_SEED.wrapping_add(case_no));
        let case = random_case(&mut rng, case_no);

        let tick = observe(&case, Engine::Tick, None);
        let event = observe(&case, Engine::Event, None);
        assert_identical(case_no, "full run", &case, &tick, &event);
        let event_nomemo = observe_memo(&case, Engine::Event, None, false);
        assert_identical(case_no, "full run, memo off", &case, &tick, &event_nomemo);
        compared += 1;

        let Ok(outcome) = &tick.outcome else {
            continue;
        };

        // Fault plans: seeded perturbation of the final counter readings
        // must agree bit for bit (faults are a pure post-run function of
        // the counters, so identical counters force identical faults —
        // this locks that property in).
        let eo = event
            .outcome
            .as_ref()
            .unwrap_or_else(|_| unreachable!("checked identical above"));
        for (core, _) in &case.tasks {
            let fault_seed = BASE_SEED ^ case_no ^ (core.0 as u64);
            let a = FaultInjector::new(fault_seed).perturb(&outcome.counters(*core));
            let b = FaultInjector::new(fault_seed).perturb(&eo.counters(*core));
            assert_eq!(a, b, "case {case_no}: faulted readings for {core}");
        }

        // Adversarial truncation: cut the run at the boundary cycles
        // around its natural length plus a random interior point.
        let natural = outcome.cycles;
        let mut cuts = vec![1, natural.saturating_sub(1).max(1), natural, natural + 1];
        if natural > 2 {
            cuts.push(1 + rng.below(natural - 1));
        }
        cuts.sort_unstable();
        cuts.dedup();
        for cut in cuts {
            let t = observe(&case, Engine::Tick, Some(cut));
            let e = observe(&case, Engine::Event, Some(cut));
            assert_identical(case_no, &format!("cut at {cut}"), &case, &t, &e);
            let en = observe_memo(&case, Engine::Event, Some(cut), false);
            assert_identical(case_no, &format!("cut at {cut}, memo off"), &case, &t, &en);
            truncations += 1;
        }
    }
    assert!(compared >= 500, "suite must cover at least 500 cases");
    assert!(truncations > 500, "truncation cutoffs must be exercised");
}
