//! Property suite for the contention attribution ledger: conservation
//! against `queue_delay`, byte-identity across timing kernels and memo
//! settings, timing invariance, and the zero-matrix-off guarantee.
//!
//! Cases are generated with the simulator's own seeded [`SplitMix64`] —
//! each case index is one deterministic reproducer.

use platform::PlatformDesc;
use tc27x_sim::rng::SplitMix64;
use tc27x_sim::{
    AccessClass, AttributionMatrix, CoreId, DataObject, Engine, Pattern, Placement, Program,
    Region, SimConfig, SimStats, SriTarget, System, TaskSpec,
};

/// A random co-run workload: every active core hammers a mix of shared
/// slaves with interleaved compute, seeded per (case, core).
fn random_spec(rng: &mut SplitMix64) -> TaskSpec {
    let iters = 1 + rng.below_u32(30);
    // A quarter of the seeds runs uncached PFLASH0 code whose loop body
    // is exactly one 32-byte line of 1-cycle computes, so the LoopEnd
    // is the first instruction of the next line: the sequential fetch
    // of that line hides the prefetch lead, the core resumes inside
    // its own fetch's service window, and the backward-jump refetch
    // queues behind the core's own PMI transaction — the only way a
    // core delays itself, and the ledger's self column.
    if rng.below(4) == 0 {
        let prog = Program::build(|b| {
            b.repeat(iters, |b| {
                for _ in 0..8 {
                    b.compute(1);
                }
            });
        });
        return TaskSpec::new("t", prog, Placement::new(Region::Pflash0, false));
    }
    let loads = 1 + rng.below_u32(6);
    let stores = rng.below_u32(3);
    let compute = rng.below_u32(12);
    let prog = Program::build(|b| {
        b.repeat(iters, |b| {
            for _ in 0..loads {
                b.load("obj", Pattern::Sequential);
            }
            // Stores cover the write service path and the prefetch
            // stream invalidation on writes.
            for _ in 0..stores {
                b.store("obj", Pattern::Sequential);
            }
            if compute > 0 {
                b.compute(compute);
            }
        });
    });
    TaskSpec::new("t", prog, Placement::new(Region::Pflash0, true)).with_object(DataObject::new(
        "obj",
        2 << 10,
        Placement::new(Region::Lmu, false),
    ))
}

fn run_corun(cfg: SimConfig, case: u64) -> (SimStats, u64) {
    let active = cfg.active_cores;
    let mut sys = System::with_config(cfg);
    for c in 0..active {
        let mut rng = SplitMix64::new(0xa77_0000 + case * 8 + c as u64);
        sys.load(CoreId(c as u8), &random_spec(&mut rng)).unwrap();
    }
    let out = sys.run().unwrap();
    (sys.stats(), out.execution_time(CoreId(0)))
}

fn builtin_descs() -> Vec<PlatformDesc> {
    PlatformDesc::names()
        .into_iter()
        .map(|n| PlatformDesc::builtin(n).unwrap())
        .collect()
}

/// Conservation: per slave, the attributed cycles (all victims, all
/// aggressor columns including the schedule) sum exactly to the slave's
/// `queue_delay`, on every builtin platform.
#[test]
fn attributed_cycles_sum_to_queue_delay_per_slave() {
    for desc in builtin_descs() {
        for case in 0..12u64 {
            let cfg = SimConfig::from_platform(&desc).with_attribution(true);
            let (stats, _) = run_corun(cfg, case);
            for t in SriTarget::all() {
                assert_eq!(
                    stats.attribution.slave_wait(t),
                    stats.slave(t).queue_delay,
                    "platform {} case {case} slave {t}",
                    desc.name
                );
            }
        }
    }
}

/// The per-victim class split is a partition of the same cycles: code
/// wait + data wait equals the victim's aggressor-row total.
#[test]
fn class_split_partitions_the_victim_wait() {
    let mut self_wait_seen = 0u64;
    for desc in builtin_descs() {
        for case in 0..8u64 {
            let cfg = SimConfig::from_platform(&desc).with_attribution(true);
            let (stats, _) = run_corun(cfg, case);
            let m = &stats.attribution;
            for t in SriTarget::all() {
                for v in CoreId::all() {
                    assert_eq!(
                        m.class_wait(t, v, AccessClass::Code)
                            + m.class_wait(t, v, AccessClass::Data),
                        m.victim_wait(t, v),
                        "platform {} case {case} {t} {v}",
                        desc.name
                    );
                    assert!(
                        u128::from(m.max_wait(t, v)) <= u128::from(m.victim_wait(t, v)),
                        "a single grant cannot wait more than the victim's total"
                    );
                    // Interference (other cores) + self-delay (the
                    // core's own PMI/DMI queueing behind each other) +
                    // schedule alignment partition each class's wait.
                    self_wait_seen += m.wait_cycles(t, v, v);
                    for class in [AccessClass::Code, AccessClass::Data] {
                        assert_eq!(
                            m.interference(t, v, class)
                                + m.cell(t, v, v.index(), class)
                                + m.cell(t, v, tc27x_sim::attribution::SCHED_COL, class),
                            m.class_wait(t, v, class),
                            "platform {} case {case} {t} {v}",
                            desc.name
                        );
                    }
                }
            }
        }
    }
    // The generator places data in PFLASH0 for a quarter of the seeds,
    // so the self column must actually fire somewhere in the sweep —
    // otherwise the partition above is vacuous on the diagonal.
    assert!(self_wait_seen > 0, "no case exercised PMI/DMI self-delay");
}

/// Byte-identity: the matrix is identical across the per-cycle stepper,
/// the event kernel, and the event kernel with block-memo disabled.
#[test]
fn matrix_is_identical_across_kernels_and_memo() {
    for desc in builtin_descs() {
        for case in 0..8u64 {
            let base = SimConfig::from_platform(&desc).with_attribution(true);
            let variants: Vec<AttributionMatrix> = [
                base.clone().with_engine(Engine::Tick),
                base.clone().with_engine(Engine::Event),
                base.clone()
                    .with_engine(Engine::Event)
                    .with_block_memo(false),
            ]
            .into_iter()
            .map(|cfg| run_corun(cfg, case).0.attribution)
            .collect();
            assert_eq!(
                variants[0], variants[1],
                "platform {} case {case}: tick vs event",
                desc.name
            );
            assert_eq!(
                variants[1], variants[2],
                "platform {} case {case}: memo on vs off",
                desc.name
            );
        }
    }
}

/// Recording never changes timing: execution times and slave stats are
/// bit-identical with attribution on and off, and an attribution-off
/// run reports the all-zero matrix.
#[test]
fn attribution_is_observation_only_and_zero_when_off() {
    for desc in builtin_descs() {
        for case in 0..8u64 {
            let on = run_corun(SimConfig::from_platform(&desc).with_attribution(true), case);
            let off = run_corun(SimConfig::from_platform(&desc), case);
            assert_eq!(on.1, off.1, "platform {} case {case}: timing", desc.name);
            for t in SriTarget::all() {
                assert_eq!(
                    on.0.slave(t),
                    off.0.slave(t),
                    "platform {} case {case} {t}",
                    desc.name
                );
            }
            assert!(off.0.attribution.is_zero(), "zero matrix when off");
            // A contended co-run must actually attribute something on
            // the default platform (all three cores share the LMU).
            if desc.is_default() && on.0.slave(SriTarget::Lmu).queue_delay > 0 {
                assert!(!on.0.attribution.is_zero());
            }
        }
    }
}

/// Under TDMA no wait cycle is ever blamed on a core whose transaction
/// was not occupying the slave: alignment waits land in the schedule
/// column, and aggressor charges never exceed the slave's total.
#[test]
fn tdma_blames_alignment_on_the_schedule() {
    let desc = PlatformDesc::builtin("tc27x-tdma").unwrap();
    for case in 0..8u64 {
        let cfg = SimConfig::from_platform(&desc).with_attribution(true);
        let (stats, _) = run_corun(cfg, case);
        let m = &stats.attribution;
        for t in SriTarget::all() {
            let sched: u64 = CoreId::all().iter().map(|&v| m.schedule_wait(t, v)).sum();
            assert!(sched <= stats.slave(t).queue_delay);
            assert_eq!(m.slave_wait(t), stats.slave(t).queue_delay);
        }
    }
}
