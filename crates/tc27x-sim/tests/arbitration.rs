//! Property suite for the pluggable SRI arbiters.
//!
//! Seeded [`SplitMix64`] request streams drive [`Sri::with_arbitration`]
//! directly, cycle by cycle, and the grant log is checked against the
//! defining property of each policy:
//!
//! * **TDMA** — slot conservation (every grant starts inside the
//!   granting core's own slot and its service fits the slot remainder)
//!   and the worst observed queueing delay never exceeds — and in a
//!   crafted worst case exactly equals — [`platform::tdma_worst_wait`].
//! * **Fixed priority** — a grant always goes to the highest priority
//!   class present (ties to the lowest core index), and the lowest
//!   class's wait obeys the accounting bound: at most one blocking
//!   service minus one, plus the services of every higher-class grant
//!   issued while it waited.
//! * **Priority round-robin** — with all masters in one class and every
//!   core continuously pending, no core waits more than `N − 1` foreign
//!   grants between two of its own (the fairness gap).
//!
//! A final system-level case runs TDMA and fixed-priority platforms
//! through both engines and demands bit-identical counters, extending
//! the tick/event equivalence guarantee beyond the default policy.

use platform::Arbitration;
use tc27x_sim::rng::SplitMix64;
use tc27x_sim::{
    AccessClass, CoreId, DataObject, Pattern, Placement, Program, Region, SimConfig, Sri,
    SriRequest, SriTarget, System, TaskSpec,
};

/// One entry of the grant log the harness keeps per run.
#[derive(Clone, Copy, Debug)]
struct GrantRec {
    core: usize,
    /// Grant cycle.
    at: u64,
    /// Cycle the granted request was posted.
    posted_at: u64,
    /// Slave occupancy of the granted request.
    service: u32,
}

/// Drives one slave of an [`Sri`] with seeded random request streams
/// from `cores` masters for `cycles` cycles and returns the grant log.
///
/// Each core keeps at most one outstanding transaction (posting again
/// only after the previous grant completes, like a real master), posts
/// with probability 1/`gap` per free cycle, and draws its service time
/// from `services`.
fn drive(
    sri: &mut Sri,
    cores: usize,
    cycles: u64,
    gap: u64,
    services: &[u32],
    rng: &mut SplitMix64,
) -> Vec<GrantRec> {
    let target = SriTarget::Lmu;
    // Per core: Some((posted_at, service)) while a request is queued or
    // in flight; cleared at its grant's `complete_at`.
    let mut outstanding: [Option<(u64, u32)>; CoreId::COUNT] = [None; CoreId::COUNT];
    let mut free_at = [0u64; CoreId::COUNT];
    let mut log = Vec::new();
    for now in 0..cycles {
        for core in 0..cores {
            if outstanding[core].is_none() && free_at[core] <= now && rng.below(gap) == 0 {
                let service = services[rng.below(services.len() as u64) as usize];
                outstanding[core] = Some((now, service));
                sri.post(
                    now,
                    SriRequest {
                        core: CoreId(core as u8),
                        target,
                        class: AccessClass::Data,
                        write: rng.flip(),
                        service,
                    },
                );
            }
        }
        let grants = sri.step(now);
        for (core, grant) in grants.iter().enumerate() {
            if let Some(g) = grant {
                let (posted_at, service) =
                    outstanding[core].expect("grant for a core with no outstanding request");
                log.push(GrantRec {
                    core,
                    at: now,
                    posted_at,
                    service,
                });
                outstanding[core] = None;
                free_at[core] = g.complete_at;
            }
        }
    }
    log
}

/// TDMA: every grant in a seeded random stream starts inside the
/// granting core's own slot, fits the slot remainder, and waits no
/// longer than the closed-form worst case.
#[test]
fn tdma_grants_stay_inside_the_owning_slot() {
    for (case, &(cores, slot_len)) in [(2usize, 8u32), (3, 16), (3, 21), (2, 43)]
        .iter()
        .enumerate()
    {
        let mut rng = SplitMix64::new(0x7d3a_0000 + case as u64);
        let mut sri = Sri::with_arbitration(
            [0; CoreId::COUNT],
            [Arbitration::Tdma { slot_len }; SriTarget::COUNT],
            cores,
        );
        // Service menu capped at the slot length: longer services can
        // never be granted (validate() forbids building such platforms).
        let services: Vec<u32> = [1, 2, slot_len / 2, slot_len.saturating_sub(1), slot_len]
            .iter()
            .copied()
            .filter(|&s| s >= 1 && s <= slot_len)
            .collect();
        let log = drive(&mut sri, cores, 6_000, 2, &services, &mut rng);
        assert!(log.len() > 100, "stream too idle to be meaningful");
        let l = u64::from(slot_len);
        for g in &log {
            let slot_owner = (g.at / l) % cores as u64;
            assert_eq!(
                slot_owner, g.core as u64,
                "grant at {} went to core {} outside its slot",
                g.at, g.core
            );
            assert!(
                (g.at % l) + u64::from(g.service) <= l,
                "grant at {} (service {}) spills into the next slot",
                g.at,
                g.service
            );
            let bound = platform::tdma_worst_wait(cores, slot_len, g.service);
            assert!(
                g.at - g.posted_at <= bound,
                "wait {} exceeds tdma_worst_wait {} (cores {cores}, slot {slot_len}, service {})",
                g.at - g.posted_at,
                bound,
                g.service
            );
        }
    }
}

/// The TDMA worst case is *exact*: a request posted one cycle into its
/// own slot with a full-slot service just misses the remainder and
/// waits the entire closed-form bound.
#[test]
fn tdma_worst_case_wait_is_attained_exactly() {
    for cores in [1usize, 2, 3] {
        let slot_len = 16u32;
        let service = slot_len; // needs the whole slot; 1 cycle in, it no longer fits
        let mut sri = Sri::with_arbitration(
            [0; CoreId::COUNT],
            [Arbitration::Tdma { slot_len }; SriTarget::COUNT],
            cores,
        );
        sri.post(
            1,
            SriRequest {
                core: CoreId(0),
                target: SriTarget::Lmu,
                class: AccessClass::Data,
                write: false,
                service,
            },
        );
        let bound = platform::tdma_worst_wait(cores, slot_len, service);
        let mut granted_at = None;
        for now in 1..=(1 + bound + 1) {
            if sri.step(now)[0].is_some() {
                granted_at = Some(now);
                break;
            }
        }
        assert_eq!(
            granted_at,
            Some(1 + bound),
            "cores {cores}: worst-case wait should be exactly tdma_worst_wait = {bound}"
        );
        // The crossbar's own delay accounting agrees.
        assert_eq!(sri.queue_delay(SriTarget::Lmu), bound);
    }
}

/// Fixed priority: in a seeded saturated stream a grant always goes to
/// the highest class pending at that cycle (ties to the lowest core
/// index), and every wait of the lowest class obeys the accounting
/// bound `(max service − 1) + Σ services of higher-class grants issued
/// while it waited` — i.e. starvation is exactly "higher classes kept
/// the slave busy", never arbiter overhead.
#[test]
fn fixed_priority_never_bypasses_a_higher_class() {
    let priority = [0u8, 1, 2]; // core 0 is the lowest class
    let services = [3u32, 5, 7, 11];
    let max_service = 11u64;
    for seed in 0..8u64 {
        let mut rng = SplitMix64::new(0xf1f0_9000 + seed);
        let mut sri = Sri::with_arbitration(
            priority,
            [Arbitration::FixedPriority; SriTarget::COUNT],
            CoreId::COUNT,
        );
        // Mirror of the queue the harness maintains to judge each grant.
        let target = SriTarget::Lmu;
        let mut outstanding: [Option<(u64, u32)>; CoreId::COUNT] = [None; CoreId::COUNT];
        let mut in_flight: [bool; CoreId::COUNT] = [false; CoreId::COUNT];
        let mut log: Vec<GrantRec> = Vec::new();
        for now in 0..4_000u64 {
            for core in 0..CoreId::COUNT {
                if outstanding[core].is_none() && rng.below(3) == 0 {
                    let service = services[rng.below(services.len() as u64) as usize];
                    outstanding[core] = Some((now, service));
                    in_flight[core] = false;
                    sri.post(
                        now,
                        SriRequest {
                            core: CoreId(core as u8),
                            target,
                            class: AccessClass::Data,
                            write: false,
                            service,
                        },
                    );
                }
            }
            // Queued = outstanding but not yet granted.
            let queued: Vec<usize> = (0..CoreId::COUNT)
                .filter(|&c| outstanding[c].is_some() && !in_flight[c])
                .collect();
            let grants = sri.step(now);
            for (core, grant) in grants.iter().enumerate() {
                if let Some(g) = grant {
                    let best = queued
                        .iter()
                        .copied()
                        .max_by_key(|&c| (priority[c], std::cmp::Reverse(c)))
                        .expect("grant with an empty queue mirror");
                    assert_eq!(
                        core, best,
                        "cycle {now}: granted core {core}, but the highest class pending was {best}"
                    );
                    let (posted_at, service) = outstanding[core].expect("grant without a post");
                    log.push(GrantRec {
                        core,
                        at: now,
                        posted_at,
                        service,
                    });
                    in_flight[core] = true;
                    let complete = g.complete_at;
                    // Clear at completion by remembering when to free.
                    outstanding[core] = Some((complete, service));
                }
            }
            for core in 0..CoreId::COUNT {
                if in_flight[core] {
                    if let Some((complete_at, _)) = outstanding[core] {
                        if complete_at <= now + 1 {
                            outstanding[core] = None;
                            in_flight[core] = false;
                        }
                    }
                }
            }
        }
        // Starvation bound for the lowest class.
        for g in log.iter().filter(|g| g.core == 0) {
            let higher: u64 = log
                .iter()
                .filter(|h| h.core != 0 && h.at >= g.posted_at && h.at < g.at)
                .map(|h| u64::from(h.service))
                .sum();
            assert!(
                g.at - g.posted_at <= (max_service - 1) + higher,
                "lowest-class wait {} exceeds blocking ({}) + higher-class work ({higher})",
                g.at - g.posted_at,
                max_service - 1
            );
        }
    }
}

/// Deterministic fixed-priority starvation: with both higher classes
/// issuing two back-to-back requests each, the lowest class waits for
/// exactly the sum of their services — no more, no less.
#[test]
fn fixed_priority_lowest_class_waits_exactly_the_higher_work() {
    let mut sri = Sri::with_arbitration(
        [0, 1, 2],
        [Arbitration::FixedPriority; SriTarget::COUNT],
        CoreId::COUNT,
    );
    let post = |sri: &mut Sri, now: u64, core: u8, service: u32| {
        sri.post(
            now,
            SriRequest {
                core: CoreId(core),
                target: SriTarget::Lmu,
                class: AccessClass::Data,
                write: false,
                service,
            },
        );
    };
    post(&mut sri, 0, 0, 5);
    post(&mut sri, 0, 1, 7);
    post(&mut sri, 0, 2, 7);
    let mut reposted = [false; CoreId::COUNT];
    let mut granted_core0 = None;
    for now in 0..100u64 {
        let grants = sri.step(now);
        for core in 1..CoreId::COUNT {
            if grants[core].is_some() && !reposted[core] {
                // One immediate re-post each: 4 higher-class services
                // of 7 cycles in total before core 0 can win.
                reposted[core] = true;
                post(&mut sri, now, core as u8, 7);
            }
        }
        if grants[0].is_some() {
            granted_core0 = Some(now);
            break;
        }
    }
    assert_eq!(granted_core0, Some(28), "4 × 7 higher-class cycles first");
}

/// Round-robin fairness: with all masters in one class and every core
/// re-posting as soon as it is dequeued, no core ever sees more than
/// `N − 1` foreign grants between two of its own.
#[test]
fn round_robin_grant_gap_is_bounded_under_saturation() {
    for seed in 0..8u64 {
        let mut rng = SplitMix64::new(0x20b1_3000 + seed);
        let mut sri = Sri::new(); // all-equal classes, priority round-robin
        let target = SriTarget::Lmu;
        let mut queued = [false; CoreId::COUNT];
        let mut grant_seq: Vec<usize> = Vec::new();
        for now in 0..4_000u64 {
            for (core, q) in queued.iter_mut().enumerate() {
                if !*q {
                    *q = true;
                    sri.post(
                        now,
                        SriRequest {
                            core: CoreId(core as u8),
                            target,
                            class: AccessClass::Data,
                            write: false,
                            service: 1 + rng.below_u32(9),
                        },
                    );
                }
            }
            let grants = sri.step(now);
            for (core, grant) in grants.iter().enumerate() {
                if grant.is_some() {
                    grant_seq.push(core);
                    queued[core] = false;
                }
            }
        }
        assert!(grant_seq.len() > 300, "stream too idle to be meaningful");
        for core in 0..CoreId::COUNT {
            let positions: Vec<usize> = grant_seq
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c == core)
                .map(|(i, _)| i)
                .collect();
            for pair in positions.windows(2) {
                assert!(
                    pair[1] - pair[0] <= CoreId::COUNT,
                    "core {core} waited {} foreign grants (max {})",
                    pair[1] - pair[0] - 1,
                    CoreId::COUNT - 1
                );
            }
        }
    }
}

/// The tick/event bit-identity guarantee extends to the non-default
/// arbitration policies: the TDMA platform and the fixed-priority
/// dual-core AHB platform produce identical counters under both
/// engines.
#[test]
fn tdma_and_fixed_priority_systems_match_across_engines() {
    let contender = || {
        let prog = Program::build(|b| {
            b.repeat(40, |b| {
                b.load("buf", Pattern::Stride(64));
                b.compute(3);
            });
        });
        TaskSpec::new("load", prog, Placement::new(Region::Pflash0, true)).with_object(
            DataObject::new("buf", 1 << 12, Placement::new(Region::Lmu, false)),
        )
    };
    for desc in [
        platform::PlatformDesc::tc27x_tdma(),
        platform::PlatformDesc::ahb2(),
    ] {
        let cores: Vec<CoreId> = (0..desc.cores).map(|c| CoreId(c as u8)).collect();
        let mut outcomes = Vec::new();
        for engine in [tc27x_sim::Engine::Tick, tc27x_sim::Engine::Event] {
            let cfg = SimConfig::from_platform(&desc).with_engine(engine);
            let mut sys = System::with_config(cfg);
            for &core in &cores {
                sys.load(core, &contender()).unwrap();
            }
            let out = sys.run().unwrap();
            let per_core: Vec<_> = cores
                .iter()
                .map(|&c| (out.counters(c), out.ground_truth(c)))
                .collect();
            outcomes.push((out.cycles, per_core));
        }
        assert_eq!(
            outcomes[0], outcomes[1],
            "engine divergence on platform {}",
            desc.name
        );
    }
}
