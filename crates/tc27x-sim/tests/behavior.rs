//! Behavioural integration tests of the simulator: cache warm-up across
//! activations, per-core-kind differences, write traffic and the
//! interaction of code and data streams.

use tc27x_sim::{
    AccessClass, CoreId, DataObject, Pattern, Placement, Program, Region, SimConfig, SriTarget,
    System, TaskSpec,
};

fn run(core: CoreId, spec: &TaskSpec) -> tc27x_sim::RunOutcome {
    let mut sys = System::tc277();
    sys.load(core, spec).unwrap();
    sys.run().unwrap()
}

/// A loop that fits in the i-cache only misses on its first activation;
/// multi-activation tasks therefore fetch far less than `activations ×
/// first-run` misses.
#[test]
fn icache_warmup_across_activations() {
    let mk = |activations: u32| {
        let prog = Program::build(|b| {
            b.repeat(4, |b| {
                for _ in 0..256 {
                    b.compute(1);
                }
            });
        });
        TaskSpec::new("warm", prog, Placement::new(Region::Pflash0, true))
            .with_activations(activations)
    };
    let one = run(CoreId(1), &mk(1)).counters(CoreId(1));
    let four = run(CoreId(1), &mk(4)).counters(CoreId(1));
    // ~33 lines of code, well inside the 16 KiB i-cache: activations
    // 2..4 hit everywhere.
    assert_eq!(one.pcache_miss, four.pcache_miss);
    assert!(four.ccnt > 3 * one.ccnt);
}

/// The efficiency core's single-line DRB thrashes where the P-cores'
/// 8 KiB data cache holds the working set.
#[test]
fn efficiency_core_data_buffer_thrashes() {
    let mk = |core: CoreId| {
        let prog = Program::build(|b| {
            b.repeat(50, |b| {
                // Two alternating lines defeat a single-line buffer.
                b.load("buf", Pattern::Stride(32));
            });
        });
        TaskSpec::new("drb", prog, Placement::pspr(core)).with_object(DataObject::new(
            "buf",
            64,
            Placement::new(Region::Lmu, true),
        ))
    };
    let e = run(CoreId(0), &mk(CoreId(0))).counters(CoreId(0));
    let p = run(CoreId(1), &mk(CoreId(1))).counters(CoreId(1));
    // P-core: both lines stay resident after the cold misses.
    assert_eq!(p.dcache_miss_total(), 2);
    // E-core: every alternation misses.
    assert_eq!(e.dcache_miss_total(), 50);
    assert!(e.dmem_stall > p.dmem_stall);
}

/// Uncacheable stores generate one write transaction each, visible in
/// the ground truth.
#[test]
fn uncached_stores_are_write_transactions() {
    let prog = Program::build(|b| {
        b.repeat(30, |b| {
            b.store("out", Pattern::Sequential);
        });
    });
    let spec = TaskSpec::new("writer", prog, Placement::pspr(CoreId(2))).with_object(
        DataObject::new("out", 1 << 10, Placement::new(Region::Dflash, false)),
    );
    let out = run(CoreId(2), &spec);
    let g = out.ground_truth(CoreId(2));
    assert_eq!(g.accesses(SriTarget::Dfl, AccessClass::Data), 30);
    assert_eq!(g.writes(SriTarget::Dfl), 30);
    // Writes are not hidden less than reads here: 43 - 1 per store.
    assert_eq!(out.counters(CoreId(2)).dmem_stall, 30 * 42);
}

/// Non-cacheable LMU code: every line transition refetches, and none of
/// it counts as an i-cache miss.
#[test]
fn uncacheable_lmu_code_refetches_every_line() {
    let prog = Program::build(|b| {
        for _ in 0..64 {
            b.compute(1);
        }
    });
    let spec = TaskSpec::new("lmu-code", prog, Placement::new(Region::Lmu, false));
    let out = run(CoreId(1), &spec);
    let k = out.counters(CoreId(1));
    assert_eq!(k.pcache_miss, 0);
    // 64 ops = 8 lines, 11 stall cycles each (no prefetcher on the LMU).
    assert_eq!(k.pmem_stall, 8 * 11);
    assert_eq!(
        out.ground_truth(CoreId(1))
            .accesses(SriTarget::Lmu, AccessClass::Code),
        8
    );
}

/// Code and data streams to the *same* flash bank interleave: the
/// prefetch stream breaks and fetches pay the non-sequential price.
#[test]
fn data_traffic_disrupts_the_code_prefetch_stream() {
    // Pure code stream for reference.
    let code_only = {
        let prog = Program::build(|b| {
            for _ in 0..512 {
                b.compute(1);
            }
        });
        TaskSpec::new("co", prog, Placement::new(Region::Pflash0, true))
    };
    // Same code with a pf0 data read per line.
    let mixed = {
        let prog = Program::build(|b| {
            for i in 0..512 {
                if i % 8 == 0 {
                    b.load("tbl", Pattern::Stride(32));
                } else {
                    b.compute(1);
                }
            }
        });
        TaskSpec::new("mix", prog, Placement::new(Region::Pflash0, true)).with_object(
            DataObject::new("tbl", 64 << 10, Placement::new(Region::Pflash0, true)),
        )
    };
    let a = run(CoreId(1), &code_only).counters(CoreId(1));
    let b = run(CoreId(1), &mixed).counters(CoreId(1));
    assert_eq!(a.pcache_miss, b.pcache_miss, "same code footprint");
    assert!(
        b.pmem_stall > a.pmem_stall,
        "interleaved data reads break fetch sequentiality: {} vs {}",
        b.pmem_stall,
        a.pmem_stall
    );
}

/// Tracing has zero effect on timing.
#[test]
fn tracing_does_not_perturb_timing() {
    let prog = Program::build(|b| {
        b.repeat(100, |b| {
            b.load("x", Pattern::Random);
            b.compute(3);
        });
    });
    let spec = TaskSpec::new("t", prog, Placement::new(Region::Pflash1, true)).with_object(
        DataObject::new("x", 8 << 10, Placement::new(Region::Lmu, false)),
    );
    let plain = run(CoreId(1), &spec).counters(CoreId(1));
    let mut sys = System::with_config(SimConfig::tc277_reference().with_trace_capacity(1 << 16));
    sys.load(CoreId(1), &spec).unwrap();
    let traced = sys.run().unwrap().counters(CoreId(1));
    assert_eq!(plain, traced);
}

/// Segments in different banks produce traffic on both; the per-bank
/// split is visible in ground truth.
#[test]
fn multi_bank_code_splits_traffic() {
    let seg = || {
        Program::build(|b| {
            for _ in 0..128 {
                b.compute(1);
            }
        })
    };
    let spec = TaskSpec::empty("split")
        .with_segment(seg(), Placement::new(Region::Pflash0, true))
        .with_segment(seg(), Placement::new(Region::Pflash1, true));
    let out = run(CoreId(1), &spec);
    let g = out.ground_truth(CoreId(1));
    assert_eq!(g.accesses(SriTarget::Pf0, AccessClass::Code), 16);
    assert_eq!(g.accesses(SriTarget::Pf1, AccessClass::Code), 16);
}
