//! Shard-level fault injection against an undisturbed oracle.
//!
//! Each test wires a seeded [`dse::ShardChaos`] plan into the worker
//! processes and checks the supervisor either recovers to the oracle's
//! exact curve bytes, or — when a shard is made permanently hostile —
//! degrades loudly: partial status, explicit coverage manifest, and a
//! distinct exit code from the supervisor binary.

use dse::{supervise, DseConfig, ShardChaos, SupervisorConfig};
use mbta::Backoff;
use std::path::PathBuf;
use std::process::Command;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dse_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_cfg() -> DseConfig {
    DseConfig {
        seed: 7,
        utils: 5,
        sets: 6,
        tasks: 3,
        ..Default::default()
    }
}

fn sup(cfg: DseConfig, dir: PathBuf, shards: u32) -> SupervisorConfig {
    let mut sup = SupervisorConfig::new(cfg, dir, PathBuf::from(env!("CARGO_BIN_EXE_dse-worker")));
    sup.shards = shards;
    sup.jobs = shards;
    // Retries should not dawdle in tests.
    sup.backoff = Backoff {
        base_millis: 0,
        ..Default::default()
    };
    sup
}

fn oracle_curves(cfg: &DseConfig, shards: u32) -> String {
    let report = supervise(&sup(cfg.clone(), scratch("oracle"), shards)).unwrap();
    assert!(report.coverage.is_complete());
    report.curves_text
}

#[test]
fn seeded_kills_and_torn_tails_recover_to_oracle_bytes() {
    let cfg = small_cfg();
    let oracle = oracle_curves(&cfg, 2);

    let mut sup = sup(cfg, scratch("kill"), 2);
    sup.retry.max_attempts = 10;
    sup.chaos = Some(ShardChaos {
        seed: 11,
        kill_permille: 60,
        stall_permille: 0,
        tear_permille: 700,
        only_shard: None,
    });
    let report = supervise(&sup).unwrap();
    assert!(report.coverage.is_complete(), "{}", report.manifest_text);
    assert_eq!(report.curves_text, oracle);
    let total_attempts: u32 = report.outcomes.iter().map(|o| o.attempts).sum();
    assert!(
        total_attempts > 2,
        "chaos plan drew no kills (attempts {total_attempts}); pick a livelier seed"
    );
}

#[test]
fn stalled_worker_trips_watchdog_and_recovers() {
    let cfg = small_cfg();
    let oracle = oracle_curves(&cfg, 2);

    let mut sup = sup(cfg, scratch("stall"), 2);
    sup.retry.max_attempts = 10;
    sup.watchdog_millis = 700;
    sup.chaos = Some(ShardChaos {
        seed: 1,
        kill_permille: 0,
        stall_permille: 40,
        tear_permille: 0,
        only_shard: None,
    });
    let report = supervise(&sup).unwrap();
    assert!(report.coverage.is_complete(), "{}", report.manifest_text);
    assert_eq!(report.curves_text, oracle);
    let total_attempts: u32 = report.outcomes.iter().map(|o| o.attempts).sum();
    assert!(
        total_attempts > 2,
        "chaos plan drew no stalls (attempts {total_attempts}); pick a livelier seed"
    );
}

#[test]
fn exhausted_shard_degrades_to_loud_partial() {
    let cfg = small_cfg();
    let mut sup = sup(cfg, scratch("exhaust"), 2);
    sup.retry.max_attempts = 2;
    sup.chaos = Some(ShardChaos {
        seed: 1,
        kill_permille: 1000,
        stall_permille: 0,
        tear_permille: 0,
        only_shard: Some(1),
    });
    let report = supervise(&sup).unwrap();
    assert!(report.partial);
    assert_eq!(report.coverage.failed, vec![1]);
    assert_eq!(report.coverage.completed, vec![0]);
    assert!(report.coverage.fraction() < 1.0);
    assert!(
        report
            .manifest_text
            .contains("shard 0001 FAILED attempts 2"),
        "{}",
        report.manifest_text
    );
    assert!(report.manifest_text.contains("# status partial"));
    // Uncovered levels must render as "-", never as fake zeros.
    assert!(report.curves_text.contains('-') || report.coverage.covered_points > 0);
}

#[test]
fn supervisor_binary_exits_3_on_partial_coverage() {
    let dir = scratch("exit3");
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_dse-supervisor"))
        .args(["--state-dir", dir.to_str().unwrap()])
        .args(["--shards", "2", "--jobs", "2"])
        .args(["--seed", "7", "--utils", "5", "--sets", "6", "--tasks", "3"])
        .args(["--max-attempts", "2", "--backoff-ms", "0"])
        .args([
            "--chaos-seed",
            "1",
            "--chaos-kill",
            "1000",
            "--chaos-shard",
            "1",
        ])
        .args(["--worker-bin", env!("CARGO_BIN_EXE_dse-worker")])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    // The progress summary rides on stderr, never on the artifact
    // stream: deterministic rows first, wall-clock timing after.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("run summary (deterministic)"), "{err}");
    assert!(err.contains("shard 0001:"), "{err}");
    assert!(err.contains("FAILED"), "{err}");
    assert!(err.contains("coverage:"), "{err}");
    assert!(err.contains("retries:"), "{err}");
    assert!(err.contains("points/s"), "{err}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("points/s"),
        "wall rate on stdout: {stdout}"
    );
    let manifest = std::fs::read_to_string(dir.join("manifest.txt")).unwrap();
    assert!(manifest.contains("# status partial"), "{manifest}");
    assert!(manifest.contains("FAILED"), "{manifest}");
    assert!(dir.join("curves.txt").exists());
}

#[test]
fn duplicate_and_stale_records_do_not_change_the_merge() {
    let cfg = small_cfg();
    let oracle = oracle_curves(&cfg, 2);

    let dir = scratch("dup");
    let report = supervise(&sup(cfg.clone(), dir.clone(), 2)).unwrap();
    assert_eq!(report.curves_text, oracle);

    // Simulate a worker that died after re-emitting an old record:
    // duplicate the last journal line of shard 0 and drop its done
    // marker so the resume path has to re-validate the shard.
    let store = dir.join("shard-0000.store");
    let text = std::fs::read_to_string(&store).unwrap();
    let last = text.lines().last().unwrap().to_string();
    std::fs::write(&store, format!("{text}{last}\n")).unwrap();
    std::fs::remove_file(dir.join("shard-0000.done")).unwrap();

    let mut resumed = sup(cfg, dir, 2);
    resumed.resume = true;
    let report = supervise(&resumed).unwrap();
    assert!(report.coverage.is_complete(), "{}", report.manifest_text);
    assert_eq!(
        report.curves_text, oracle,
        "a duplicated (stale) record must not perturb the merge"
    );
}
