//! Partition- and crash-invariance of merged campaign curves.
//!
//! The headline guarantee of `dse`: for a fixed seed, the merged
//! curves are byte-identical at any `--shards`/`--jobs` split, and a
//! campaign that loses workers *and* its supervisor to `kill -9`
//! reproduces the undisturbed bytes after `--resume`.

use dse::{supervise, DseConfig, SupervisorConfig};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dse_determinism_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_cfg() -> DseConfig {
    DseConfig {
        seed: 7,
        utils: 5,
        sets: 6,
        tasks: 3,
        ..Default::default()
    }
}

fn sup(cfg: DseConfig, dir: PathBuf, shards: u32, jobs: u32) -> SupervisorConfig {
    let mut sup = SupervisorConfig::new(cfg, dir, PathBuf::from(env!("CARGO_BIN_EXE_dse-worker")));
    sup.shards = shards;
    sup.jobs = jobs;
    sup
}

fn kill9(pid: &str) {
    let _ = Command::new("kill").args(["-9", pid]).status();
}

/// Kills every worker whose pid file is still live in `dir`.
fn kill_workers(dir: &Path, shards: u32) {
    for shard in 0..shards {
        let pid_file = dir.join(format!("shard-{shard:04}.pid"));
        if let Ok(pid) = std::fs::read_to_string(&pid_file) {
            kill9(pid.trim());
        }
    }
}

#[test]
fn curves_are_invariant_under_partition_and_parallelism() {
    let cfg = small_cfg();
    let a = supervise(&sup(cfg.clone(), scratch("serial"), 1, 1)).unwrap();
    let b = supervise(&sup(cfg.clone(), scratch("wide"), 4, 3)).unwrap();
    assert!(!a.partial && !b.partial);
    assert!(a.coverage.is_complete() && b.coverage.is_complete());
    assert_eq!(
        a.curves_text, b.curves_text,
        "1x1 and 4x3 partitions must merge to identical bytes"
    );
    // The manifests differ (shard counts), but both must say complete.
    assert!(a.manifest_text.contains("# status complete"));
    assert!(b.manifest_text.contains("# status complete"));
}

#[test]
fn resume_after_kill9_of_worker_and_supervisor_matches_oracle() {
    let cfg = small_cfg();
    let oracle = supervise(&sup(cfg.clone(), scratch("oracle"), 2, 2)).unwrap();
    assert!(oracle.coverage.is_complete());

    // Launch a slow campaign out of process so we can kill -9 freely.
    let dir = scratch("victim");
    std::fs::create_dir_all(&dir).unwrap();
    let mut child = Command::new(env!("CARGO_BIN_EXE_dse-supervisor"))
        .args(["--state-dir", dir.to_str().unwrap()])
        .args(["--shards", "2", "--jobs", "2"])
        .args(["--seed", "7", "--utils", "5", "--sets", "6", "--tasks", "3"])
        .args(["--point-delay-ms", "60"])
        .args(["--worker-bin", env!("CARGO_BIN_EXE_dse-worker")])
        .spawn()
        .unwrap();

    // Wait until at least one worker has published a pid and made
    // progress (its heartbeat file exists), then kill it mid-shard.
    let deadline = Instant::now() + Duration::from_secs(30);
    let worker_pid = loop {
        assert!(Instant::now() < deadline, "no worker progress before kill");
        let hb = dir.join("shard-0000.hb");
        let pid_file = dir.join("shard-0000.pid");
        if hb.exists() {
            if let Ok(pid) = std::fs::read_to_string(&pid_file) {
                break pid.trim().to_string();
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    kill9(&worker_pid);
    // Let the supervisor notice and respawn, then take the supervisor
    // itself down hard, orphaning whatever workers remain.
    std::thread::sleep(Duration::from_millis(300));
    kill9(&child.id().to_string());
    let _ = child.wait();
    kill_workers(&dir, 2);

    // Resume in-process: must converge to the oracle's exact bytes.
    let mut resumed = sup(cfg, dir, 2, 2);
    resumed.resume = true;
    let report = supervise(&resumed).unwrap();
    assert!(report.coverage.is_complete(), "{}", report.manifest_text);
    assert_eq!(
        report.curves_text, oracle.curves_text,
        "resumed curves must be byte-identical to the undisturbed run"
    );
}
