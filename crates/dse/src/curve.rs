//! Merged curves and the coverage manifest.
//!
//! Two artifacts come out of a campaign:
//!
//! * **curves** — schedulable fraction per utilization level per model,
//!   computed over the *covered* points only. The text depends only on
//!   the campaign config and the set of merged point records, so a
//!   fully covered run renders byte-identical curves at any shard or
//!   worker split, and a resumed run reproduces the undisturbed bytes.
//! * **manifest** — the explicit coverage statement: which shards
//!   completed, which exhausted their retries, and what fraction of the
//!   design space the curves actually describe. A failed shard is loud
//!   here, never silently absorbed into the curves.

use crate::config::DseConfig;
use crate::error::DseError;
use crate::eval::decode_verdict;
use std::collections::BTreeMap;

/// Aggregated verdicts for one utilization level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CurveRow {
    /// Total utilization of the level, ppm.
    pub util_ppm: u64,
    /// Points of this level present in the merged results.
    pub covered: u32,
    /// Replicates drawn at this level (`covered` ≤ this).
    pub total: u32,
    /// Schedulable count under the ideal model.
    pub ideal: u32,
    /// Schedulable count under fTC.
    pub ftc: u32,
    /// Schedulable count under ILP-PTAC.
    pub ilp: u32,
}

/// Aggregates merged point records into per-level curve rows.
///
/// # Errors
///
/// [`DseError::Config`] when a record is malformed or claims a point
/// that does not match its key — corrupt state must never be averaged
/// into a curve silently.
pub fn curves(cfg: &DseConfig, merged: &BTreeMap<u64, String>) -> Result<Vec<CurveRow>, DseError> {
    let mut rows: Vec<CurveRow> = (0..cfg.utils)
        .map(|u_idx| CurveRow {
            util_ppm: cfg.util_ppm(u_idx),
            covered: 0,
            total: cfg.sets,
            ideal: 0,
            ftc: 0,
            ilp: 0,
        })
        .collect();
    for point in cfg.points() {
        let Some(value) = merged.get(&point.key(cfg)) else {
            continue;
        };
        let (recorded, verdict) = decode_verdict(value)
            .map_err(|e| DseError::Config(format!("shard record for {point:?}: {e}")))?;
        if recorded != point {
            return Err(DseError::Config(format!(
                "shard record keyed for {point:?} claims {recorded:?}"
            )));
        }
        let row = &mut rows[point.u_idx as usize];
        row.covered += 1;
        row.ideal += u32::from(verdict.ideal);
        row.ftc += u32::from(verdict.ftc);
        row.ilp += u32::from(verdict.ilp);
    }
    Ok(rows)
}

fn frac(count: u32, covered: u32) -> String {
    if covered == 0 {
        "     -".to_string()
    } else {
        format!("{:.4}", f64::from(count) / f64::from(covered))
    }
}

/// Renders the curves artifact. Deliberately free of shard, worker,
/// retry or chaos details: equal config + equal merged records ⇒ equal
/// bytes.
pub fn render_curves(cfg: &DseConfig, rows: &[CurveRow]) -> String {
    use crate::config::scenario_tag;
    let mut out = String::new();
    out.push_str("# dse-curves v1\n");
    out.push_str(&format!(
        "# config {:016x} scenario {} seed {} utils {} sets {} tasks {}\n",
        cfg.fingerprint(),
        scenario_tag(cfg.scenario),
        cfg.seed,
        cfg.utils,
        cfg.sets,
        cfg.tasks
    ));
    out.push_str("# columns: util_ppm covered/total sched_ideal sched_ftc sched_ilp\n");
    for row in rows {
        out.push_str(&format!(
            "{:>7} {:>4}/{:<4} {} {} {}\n",
            row.util_ppm,
            row.covered,
            row.total,
            frac(row.ideal, row.covered),
            frac(row.ftc, row.covered),
            frac(row.ilp, row.covered),
        ));
    }
    out
}

/// Renders the curves as a GitHub-flavoured markdown table (the
/// supervisor's `--report md`): the same rows as [`render_curves`],
/// headed by the platform and its per-slave arbitration so
/// cross-platform reports are self-describing. A test holds the two
/// artifacts cell-for-cell equal, and the bytes are stable under the
/// same conditions as the text artifact.
pub fn render_curves_md(cfg: &DseConfig, rows: &[CurveRow]) -> String {
    use crate::config::scenario_tag;
    use std::fmt::Write as _;
    let arbitration: Vec<String> = cfg
        .platform
        .slaves
        .iter()
        .filter(|s| s.present)
        .map(|s| format!("{}:{}", s.name, s.arbitration))
        .collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Schedulability curves — platform `{}` ({}), scenario `{}`",
        cfg.platform.name,
        arbitration.join(" "),
        scenario_tag(cfg.scenario)
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Config `{:016x}`: seed {}, {} levels × {} sets × {} tasks.",
        cfg.fingerprint(),
        cfg.seed,
        cfg.utils,
        cfg.sets,
        cfg.tasks
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| util_ppm | covered | sched_ideal | sched_ftc | sched_ilp |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|");
    for row in rows {
        let _ = writeln!(
            out,
            "| {} | {}/{} | {} | {} | {} |",
            row.util_ppm,
            row.covered,
            row.total,
            frac(row.ideal, row.covered).trim(),
            frac(row.ftc, row.covered).trim(),
            frac(row.ilp, row.covered).trim(),
        );
    }
    out
}

/// What the merged results actually cover.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coverage {
    /// Shard count of the run.
    pub shards: u32,
    /// Shards whose done marker validated.
    pub completed: Vec<u32>,
    /// Shards that exhausted their retries.
    pub failed: Vec<u32>,
    /// Point records present after the merge.
    pub covered_points: u64,
    /// Points in the design space.
    pub total_points: u64,
}

impl Coverage {
    /// Covered fraction of the design space in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.total_points == 0 {
            return 1.0;
        }
        self.covered_points as f64 / self.total_points as f64
    }

    /// `true` when every shard completed.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty() && self.completed.len() as u32 == self.shards
    }
}

/// Renders the coverage manifest, including per-shard attempt counts
/// (`attempts` = times a worker was spawned for the shard).
pub fn render_manifest(cfg: &DseConfig, coverage: &Coverage, attempts: &[(u32, u32)]) -> String {
    let mut out = String::new();
    out.push_str("# dse-manifest v1\n");
    out.push_str(&format!(
        "# config {:016x} shards {}\n",
        cfg.fingerprint(),
        coverage.shards
    ));
    out.push_str(&format!(
        "# coverage {}/{} = {:.4}\n",
        coverage.covered_points,
        coverage.total_points,
        coverage.fraction()
    ));
    out.push_str(&format!(
        "# status {}\n",
        if coverage.is_complete() {
            "complete"
        } else {
            "partial"
        }
    ));
    for &(shard, tries) in attempts {
        let state = if coverage.failed.contains(&shard) {
            "FAILED"
        } else {
            "completed"
        };
        out.push_str(&format!("shard {shard:04} {state} attempts {tries}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{encode_verdict, PointVerdict};

    fn small_cfg() -> DseConfig {
        DseConfig {
            utils: 3,
            sets: 4,
            ..Default::default()
        }
    }

    fn full_merge(cfg: &DseConfig, verdict: PointVerdict) -> BTreeMap<u64, String> {
        cfg.points()
            .map(|p| (p.key(cfg), encode_verdict(p, verdict)))
            .collect()
    }

    #[test]
    fn curves_count_per_level() {
        let cfg = small_cfg();
        let all_good = PointVerdict {
            ideal: true,
            ftc: true,
            ilp: true,
        };
        let rows = curves(&cfg, &full_merge(&cfg, all_good)).unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.covered, 4);
            assert_eq!((row.ideal, row.ftc, row.ilp), (4, 4, 4));
        }
    }

    #[test]
    fn rendering_is_stable_and_marks_uncovered_levels() {
        let cfg = small_cfg();
        let verdict = PointVerdict {
            ideal: true,
            ftc: false,
            ilp: true,
        };
        let mut merged = full_merge(&cfg, verdict);
        // Drop every record of level 1: its row must show "-" not 0.
        for p in cfg.points().filter(|p| p.u_idx == 1) {
            merged.remove(&p.key(&cfg));
        }
        let text = render_curves(&cfg, &curves(&cfg, &merged).unwrap());
        assert_eq!(text, render_curves(&cfg, &curves(&cfg, &merged).unwrap()));
        assert!(text.contains("0/4"), "{text}");
        assert!(text.contains("-"), "{text}");
        assert!(text.contains("1.0000"), "{text}");
        assert!(text.contains("0.0000"), "{text}");
    }

    #[test]
    fn markdown_report_matches_the_text_artifact_cell_for_cell() {
        let cfg = small_cfg();
        let verdict = PointVerdict {
            ideal: true,
            ftc: false,
            ilp: true,
        };
        let mut merged = full_merge(&cfg, verdict);
        // Leave level 1 uncovered so the "-" cells are exercised too.
        for p in cfg.points().filter(|p| p.u_idx == 1) {
            merged.remove(&p.key(&cfg));
        }
        let rows = curves(&cfg, &merged).unwrap();
        let txt = render_curves(&cfg, &rows);
        let md = render_curves_md(&cfg, &rows);
        assert_eq!(md, render_curves_md(&cfg, &rows), "md must be byte-stable");
        assert!(
            md.contains(&format!("platform `{}`", cfg.platform.name)),
            "{md}"
        );
        assert!(md.contains("prr"), "arbitration must be named: {md}");
        // Every data row of curves.txt appears, cell for cell, in the
        // markdown table.
        let txt_rows: Vec<Vec<String>> = txt
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| {
                l.replace('/', " ")
                    .split_whitespace()
                    .map(str::to_string)
                    .collect()
            })
            .collect();
        let md_rows: Vec<Vec<String>> = md
            .lines()
            .filter(|l| l.starts_with("| ") && !l.contains("util_ppm"))
            .map(|l| {
                l.trim_matches('|')
                    .replace('/', " ")
                    .split_whitespace()
                    .filter(|c| *c != "|")
                    .map(str::to_string)
                    .collect()
            })
            .collect();
        assert_eq!(txt_rows, md_rows, "txt:\n{txt}\nmd:\n{md}");
    }

    #[test]
    fn corrupt_records_are_rejected_not_averaged() {
        let cfg = small_cfg();
        let verdict = PointVerdict {
            ideal: true,
            ftc: true,
            ilp: true,
        };
        let mut merged = full_merge(&cfg, verdict);
        let first = cfg.points().next().unwrap();
        merged.insert(first.key(&cfg), "pt 9 9 111".to_string());
        assert!(curves(&cfg, &merged).is_err(), "mismatched point accepted");
        merged.insert(first.key(&cfg), "garbage".to_string());
        assert!(curves(&cfg, &merged).is_err(), "garbage record accepted");
    }

    #[test]
    fn manifest_states_partial_coverage_loudly() {
        let cfg = small_cfg();
        let cov = Coverage {
            shards: 3,
            completed: vec![0, 2],
            failed: vec![1],
            covered_points: 8,
            total_points: 12,
        };
        assert!(!cov.is_complete());
        let text = render_manifest(&cfg, &cov, &[(0, 1), (1, 3), (2, 2)]);
        assert!(text.contains("# status partial"), "{text}");
        assert!(text.contains("shard 0001 FAILED attempts 3"), "{text}");
        assert!(text.contains("# coverage 8/12 = 0.6667"), "{text}");
        let complete = Coverage {
            shards: 1,
            completed: vec![0],
            failed: vec![],
            covered_points: 12,
            total_points: 12,
        };
        let text = render_manifest(&cfg, &complete, &[(0, 1)]);
        assert!(text.contains("# status complete"), "{text}");
    }
}
