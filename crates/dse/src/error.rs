//! The crate-wide error type.

use std::error::Error;
use std::fmt;

/// Errors from design-space campaigns.
#[derive(Debug)]
#[non_exhaustive]
pub enum DseError {
    /// A batched simulation job failed while deriving model ratios.
    Job(mbta::JobError),
    /// A contention model rejected its inputs.
    Model(contention::ModelError),
    /// A shard store could not be opened or replayed.
    Journal(mbta::JournalError),
    /// Filesystem or process-management failure.
    Io(std::io::Error),
    /// Invalid campaign configuration or corrupt on-disk state.
    Config(String),
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::Job(e) => write!(f, "profile job failed: {e}"),
            DseError::Model(e) => write!(f, "model failed: {e}"),
            DseError::Journal(e) => write!(f, "shard store: {e}"),
            DseError::Io(e) => write!(f, "i/o: {e}"),
            DseError::Config(msg) => write!(f, "config: {msg}"),
        }
    }
}

impl Error for DseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DseError::Job(e) => Some(e),
            DseError::Model(e) => Some(e),
            DseError::Journal(e) => Some(e),
            DseError::Io(e) => Some(e),
            DseError::Config(_) => None,
        }
    }
}

impl From<mbta::JobError> for DseError {
    fn from(e: mbta::JobError) -> Self {
        DseError::Job(e)
    }
}

impl From<contention::ModelError> for DseError {
    fn from(e: contention::ModelError) -> Self {
        DseError::Model(e)
    }
}

impl From<mbta::JournalError> for DseError {
    fn from(e: mbta::JournalError) -> Self {
        DseError::Journal(e)
    }
}

impl From<std::io::Error> for DseError {
    fn from(e: std::io::Error) -> Self {
        DseError::Io(e)
    }
}
