//! The multi-process shard supervisor.
//!
//! Spawns one `dse-worker` subprocess per shard (at most `jobs` at a
//! time), and keeps the campaign alive through every failure mode the
//! chaos plan can produce:
//!
//! * **crashes** — a worker that exits abnormally (or exits zero
//!   without a valid done marker) is restarted under the deterministic
//!   [`mbta::retry`] discipline: bounded attempts, capped exponential
//!   backoff with SplitMix64 jitter keyed by the shard;
//! * **hangs** — each worker bumps a heartbeat file per point; a shard
//!   whose heartbeat goes stale past the watchdog is killed and treated
//!   as crashed;
//! * **stale orphans** — a predecessor supervisor that was kill -9'd
//!   leaves workers running; before spawning, the supervisor reads the
//!   shard's pid file and reaps any live `dse-worker` still writing to
//!   this state dir, so two writers never share a store;
//! * **exhaustion** — a shard that fails `max_attempts` times is marked
//!   FAILED and *excluded* from the curves but *included* in the
//!   coverage manifest; the run completes with a partial verdict
//!   instead of dropping data silently.
//!
//! The merge walks completed shards in shard order; since every point
//! record is a pure function of the campaign config and point keys
//! never cross shards, the merged map — and therefore the curves text —
//! is byte-identical at any `--shards`/`--jobs` split and across any
//! kill/resume history.

use crate::config::DseConfig;
use crate::curve::{curves, render_curves, render_curves_md, render_manifest, Coverage};
use crate::error::DseError;
use crate::shard::{
    done_marker, done_path, heartbeat_path, pid_path, shard_fingerprint, store_path, ShardChaos,
};
use contention::StableHasher;
use mbta::{Backoff, RetryPolicy, Store};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Everything the supervisor needs for one campaign run.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// The campaign.
    pub cfg: DseConfig,
    /// Shard count the space is partitioned into.
    pub shards: u32,
    /// Maximum concurrently running workers.
    pub jobs: u32,
    /// Directory for shard stores, heartbeats, markers and logs.
    pub state_dir: PathBuf,
    /// Path of the `dse-worker` binary.
    pub worker_bin: PathBuf,
    /// Heartbeat staleness threshold before a worker is killed.
    pub watchdog_millis: u64,
    /// Bounded-retry policy per shard.
    pub retry: RetryPolicy,
    /// Backoff between restarts of the same shard.
    pub backoff: Backoff,
    /// Allow a non-empty state dir and continue from its stores.
    pub resume: bool,
    /// Seeded process-level fault plan forwarded to workers.
    pub chaos: Option<ShardChaos>,
    /// Per-point delay forwarded to workers (CI kill-window widener).
    pub point_delay_millis: u64,
}

impl SupervisorConfig {
    /// A conservative default around `cfg`: caller still sets
    /// `state_dir` and `worker_bin`.
    pub fn new(cfg: DseConfig, state_dir: PathBuf, worker_bin: PathBuf) -> Self {
        SupervisorConfig {
            cfg,
            shards: 4,
            jobs: 2,
            state_dir,
            worker_bin,
            watchdog_millis: 5_000,
            retry: RetryPolicy::default(),
            backoff: Backoff::default(),
            resume: false,
            chaos: None,
            point_delay_millis: 0,
        }
    }
}

/// How one shard ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardOutcome {
    /// Shard index.
    pub shard: u32,
    /// Times a worker was spawned for it.
    pub attempts: u32,
    /// Whether its done marker validated.
    pub completed: bool,
    /// Last failure observed, empty when none.
    pub note: String,
}

/// The merged result of a supervised campaign.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-shard outcomes, shard order.
    pub outcomes: Vec<ShardOutcome>,
    /// Coverage of the merged results.
    pub coverage: Coverage,
    /// The curves artifact (byte-stable for a fixed config).
    pub curves_text: String,
    /// The curves as a markdown table (`--report md`) — the same rows
    /// as `curves_text`, headed by the platform/arbitration variant.
    pub curves_md_text: String,
    /// The coverage manifest.
    pub manifest_text: String,
    /// `true` when any shard was dropped after exhausting retries.
    pub partial: bool,
    /// Point records each shard contributed to the merge, shard order
    /// (failed shards contribute zero).
    pub shard_points: Vec<(u32, u64)>,
    /// Wall-clock seconds from the first spawn decision to the end of
    /// the merge — host-dependent, reported only in the timing section
    /// of [`RunReport::render_summary`].
    pub wall_seconds: f64,
}

impl RunReport {
    /// End-of-run progress summary. The first section is a pure
    /// function of the shard journals and retry history — byte-stable
    /// for a fixed campaign outcome — while the trailing timing section
    /// carries the wall-clock throughput and is labelled
    /// nondeterministic so golden diffs know to strip it.
    pub fn render_summary(&self) -> String {
        let mut out = String::from("run summary (deterministic)\n");
        for o in &self.outcomes {
            let points = self
                .shard_points
                .iter()
                .find(|(s, _)| *s == o.shard)
                .map_or(0, |(_, p)| *p);
            let state = if o.completed { "done" } else { "FAILED" };
            out.push_str(&format!(
                "  shard {:04}: {points} point(s), {} attempt(s), {state}",
                o.shard, o.attempts
            ));
            if !o.note.is_empty() && !o.completed {
                out.push_str(&format!(" — {}", o.note));
            }
            out.push('\n');
        }
        let retries: u32 = self
            .outcomes
            .iter()
            .map(|o| o.attempts.saturating_sub(1))
            .sum();
        out.push_str(&format!(
            "  coverage: {}/{} points ({:.2}%), {}/{} shard(s) complete, {} failed\n",
            self.coverage.covered_points,
            self.coverage.total_points,
            self.coverage.fraction() * 100.0,
            self.coverage.completed.len(),
            self.coverage.shards,
            self.coverage.failed.len(),
        ));
        out.push_str(&format!("  retries: {retries}\n"));
        out.push_str("run timing (wall-clock, nondeterministic)\n");
        let rate = |points: u64| {
            if self.wall_seconds > 0.0 {
                points as f64 / self.wall_seconds
            } else {
                0.0
            }
        };
        out.push_str(&format!(
            "  wall {:.2}s, overall {:.1} points/s\n",
            self.wall_seconds,
            rate(self.coverage.covered_points)
        ));
        for (shard, points) in &self.shard_points {
            out.push_str(&format!(
                "  shard {shard:04}: {:.1} points/s\n",
                rate(*points)
            ));
        }
        out
    }
}

/// The backoff key of a shard — a distinct hash domain so shard delays
/// never correlate with point draws.
fn shard_backoff_key(cfg: &DseConfig, shard: u32) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("dse/shard-backoff");
    h.write_u64(cfg.fingerprint());
    h.write_u64(u64::from(shard));
    h.finish()
}

enum ShardState {
    Pending {
        not_before: Option<Instant>,
    },
    Running {
        child: Child,
        hb: String,
        hb_seen: Instant,
    },
    Done,
    Failed,
}

struct ShardSlot {
    state: ShardState,
    attempts: u32,
    note: String,
}

fn read_to_string_opt(path: &PathBuf) -> Option<String> {
    std::fs::read_to_string(path).ok()
}

/// `true` if `pid` is a live `dse-worker` operating on `state_dir`.
fn is_live_worker(pid: u64, state_dir: &std::path::Path) -> bool {
    let Ok(cmdline) = std::fs::read(format!("/proc/{pid}/cmdline")) else {
        return false;
    };
    let cmdline = String::from_utf8_lossy(&cmdline);
    cmdline.contains("dse-worker") && cmdline.contains(&state_dir.to_string_lossy().into_owned())
}

/// Kills any orphaned worker a kill -9'd predecessor supervisor left
/// holding this shard's store, then waits for it to disappear.
fn reap_stale_worker(sup: &SupervisorConfig, shard: u32) -> Result<(), DseError> {
    let pid_file = pid_path(&sup.state_dir, shard);
    let Some(text) = read_to_string_opt(&pid_file) else {
        return Ok(());
    };
    let Ok(pid) = text.trim().parse::<u64>() else {
        return Ok(());
    };
    if pid == u64::from(std::process::id()) || !is_live_worker(pid, &sup.state_dir) {
        return Ok(());
    }
    // Not our child, so SIGKILL via the system kill(1).
    let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
    let deadline = Instant::now() + Duration::from_secs(10);
    while is_live_worker(pid, &sup.state_dir) {
        if Instant::now() > deadline {
            return Err(DseError::Config(format!(
                "stale worker pid {pid} for shard {shard} would not die"
            )));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    Ok(())
}

fn done_marker_valid(sup: &SupervisorConfig, shard: u32) -> bool {
    let expected = done_marker(
        &sup.cfg,
        sup.shards,
        shard,
        sup.cfg.shard_points(sup.shards, shard).len(),
    );
    read_to_string_opt(&done_path(&sup.state_dir, shard)).is_some_and(|got| got == expected)
}

fn spawn_worker(sup: &SupervisorConfig, shard: u32, attempt: u32) -> Result<Child, DseError> {
    reap_stale_worker(sup, shard)?;
    // A fresh attempt must not inherit the previous attempt's marker.
    let _ = std::fs::remove_file(done_path(&sup.state_dir, shard));
    let log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(sup.state_dir.join(format!("shard-{shard:04}.log")))?;
    let log_err = log.try_clone()?;
    let mut cmd = Command::new(&sup.worker_bin);
    cmd.arg("--state-dir")
        .arg(&sup.state_dir)
        .args(["--shard", &shard.to_string()])
        .args(["--shards", &sup.shards.to_string()])
        .args(["--seed", &sup.cfg.seed.to_string()])
        .args(["--scenario", crate::config::scenario_tag(sup.cfg.scenario)])
        .args(["--utils", &sup.cfg.utils.to_string()])
        .args(["--util-min-ppm", &sup.cfg.util_min_ppm.to_string()])
        .args(["--util-max-ppm", &sup.cfg.util_max_ppm.to_string()])
        .args(["--sets", &sup.cfg.sets.to_string()])
        .args(["--tasks", &sup.cfg.tasks.to_string()])
        .args(["--attempt", &attempt.to_string()])
        .args(["--point-delay-ms", &sup.point_delay_millis.to_string()]);
    // Default-platform invocations stay byte-identical to older
    // supervisors; a non-default platform is forwarded by registry name
    // (the config fingerprint already binds its full description).
    if !sup.cfg.platform.is_default() {
        cmd.args(["--platform", sup.cfg.platform.name]);
    }
    cmd.stdin(Stdio::null()).stdout(log).stderr(log_err);
    if let Some(chaos) = &sup.chaos {
        cmd.args(["--chaos-seed", &chaos.seed.to_string()])
            .args(["--chaos-kill", &chaos.kill_permille.to_string()])
            .args(["--chaos-stall", &chaos.stall_permille.to_string()])
            .args(["--chaos-tear", &chaos.tear_permille.to_string()]);
        if let Some(only) = chaos.only_shard {
            cmd.args(["--chaos-shard", &only.to_string()]);
        }
    }
    Ok(cmd.spawn()?)
}

/// Runs a campaign under supervision and merges the result.
///
/// # Errors
///
/// [`DseError::Config`] for an invalid grid, a non-empty state dir
/// without `resume`, or corrupt merged records; I/O and journal errors
/// from the filesystem. A shard exhausting its retries is *not* an
/// error — it degrades the report to `partial`.
pub fn supervise(sup: &SupervisorConfig) -> Result<RunReport, DseError> {
    sup.cfg.validate()?;
    if sup.shards == 0 || sup.jobs == 0 {
        return Err(DseError::Config(
            "shards and jobs must be at least 1".to_string(),
        ));
    }
    if !sup.resume
        && sup
            .state_dir
            .read_dir()
            .map(|mut d| d.next().is_some())
            .unwrap_or(false)
    {
        return Err(DseError::Config(format!(
            "state dir {} is not empty; pass --resume to continue it",
            sup.state_dir.display()
        )));
    }
    std::fs::create_dir_all(&sup.state_dir)?;

    let started = Instant::now();
    let max_attempts = sup.retry.max_attempts.max(1);
    let mut slots: Vec<ShardSlot> = (0..sup.shards)
        .map(|shard| ShardSlot {
            state: if done_marker_valid(sup, shard) {
                ShardState::Done
            } else {
                ShardState::Pending { not_before: None }
            },
            attempts: 0,
            note: String::new(),
        })
        .collect();

    enum Transition {
        Stay,
        Complete,
        Crash(String),
    }

    loop {
        let mut running = 0u32;
        let mut unfinished = false;
        for shard in 0..sup.shards {
            let slot = &mut slots[shard as usize];
            let transition = match &mut slot.state {
                ShardState::Done | ShardState::Failed => Transition::Stay,
                ShardState::Pending { .. } => {
                    unfinished = true;
                    Transition::Stay
                }
                ShardState::Running { child, hb, hb_seen } => {
                    unfinished = true;
                    running += 1;
                    match child.try_wait()? {
                        Some(status) if status.success() && done_marker_valid(sup, shard) => {
                            Transition::Complete
                        }
                        Some(status) if status.success() => {
                            Transition::Crash("exited 0 without a valid done marker".to_string())
                        }
                        Some(status) => Transition::Crash(format!("worker died: {status}")),
                        None => {
                            let now = read_to_string_opt(&heartbeat_path(&sup.state_dir, shard))
                                .unwrap_or_default();
                            if now != *hb {
                                *hb = now;
                                *hb_seen = Instant::now();
                                Transition::Stay
                            } else if hb_seen.elapsed() > Duration::from_millis(sup.watchdog_millis)
                            {
                                // Hung: kill and reap, then treat as a crash.
                                let _ = child.kill();
                                let _ = child.wait();
                                Transition::Crash(format!(
                                    "hung: no heartbeat for {}ms",
                                    sup.watchdog_millis
                                ))
                            } else {
                                Transition::Stay
                            }
                        }
                    }
                }
            };
            match transition {
                Transition::Stay => {}
                Transition::Complete => {
                    slot.state = ShardState::Done;
                    running -= 1;
                }
                Transition::Crash(note) => {
                    running -= 1;
                    slot.note = note;
                    if slot.attempts >= max_attempts {
                        slot.state = ShardState::Failed;
                    } else {
                        let delay = sup
                            .backoff
                            .delay_millis(shard_backoff_key(&sup.cfg, shard), slot.attempts);
                        slot.state = ShardState::Pending {
                            not_before: Some(Instant::now() + Duration::from_millis(delay)),
                        };
                    }
                }
            }
        }
        if !unfinished {
            break;
        }
        for shard in 0..sup.shards {
            if running >= sup.jobs {
                break;
            }
            let slot = &mut slots[shard as usize];
            let not_before = match &slot.state {
                ShardState::Pending { not_before } => *not_before,
                _ => continue,
            };
            if not_before.is_some_and(|t| Instant::now() < t) {
                continue;
            }
            let child = spawn_worker(sup, shard, slot.attempts)?;
            slot.attempts += 1;
            slot.state = ShardState::Running {
                child,
                hb: String::new(),
                hb_seen: Instant::now(),
            };
            running += 1;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Merge completed shards in shard order. Keys never collide across
    // shards (`key % shards` is the owner), so insertion order cannot
    // change the map — the curves depend only on the config.
    let mut merged: BTreeMap<u64, String> = BTreeMap::new();
    let mut completed = Vec::new();
    let mut failed = Vec::new();
    let mut shard_points = Vec::new();
    for (shard, slot) in slots.iter().enumerate() {
        let shard = shard as u32;
        match slot.state {
            ShardState::Done => {
                let fp = shard_fingerprint(&sup.cfg, sup.shards, shard);
                let (_store, entries, _recovery) =
                    Store::open(&store_path(&sup.state_dir, shard), "dse-shard", fp)?;
                shard_points.push((shard, entries.len() as u64));
                merged.extend(entries);
                completed.push(shard);
            }
            ShardState::Failed => {
                shard_points.push((shard, 0));
                failed.push(shard);
            }
            _ => {
                return Err(DseError::Config(format!(
                    "shard {shard} left non-terminal — supervisor bug"
                )))
            }
        }
    }

    let coverage = Coverage {
        shards: sup.shards,
        completed,
        failed: failed.clone(),
        covered_points: merged.len() as u64,
        total_points: sup.cfg.total_points(),
    };
    let rows = curves(&sup.cfg, &merged)?;
    let curves_text = render_curves(&sup.cfg, &rows);
    let curves_md_text = render_curves_md(&sup.cfg, &rows);
    let attempts: Vec<(u32, u32)> = slots
        .iter()
        .enumerate()
        .map(|(s, slot)| (s as u32, slot.attempts))
        .collect();
    let manifest_text = render_manifest(&sup.cfg, &coverage, &attempts);
    let outcomes = slots
        .iter()
        .enumerate()
        .map(|(s, slot)| ShardOutcome {
            shard: s as u32,
            attempts: slot.attempts,
            completed: matches!(slot.state, ShardState::Done),
            note: slot.note.clone(),
        })
        .collect();
    Ok(RunReport {
        outcomes,
        coverage,
        curves_text,
        curves_md_text,
        manifest_text,
        partial: !failed.is_empty(),
        shard_points,
        wall_seconds: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::Coverage;

    #[test]
    fn run_summary_separates_deterministic_rows_from_wall_timing() {
        let report = RunReport {
            outcomes: vec![
                ShardOutcome {
                    shard: 0,
                    attempts: 1,
                    completed: true,
                    note: String::new(),
                },
                ShardOutcome {
                    shard: 1,
                    attempts: 3,
                    completed: false,
                    note: "worker died: signal 9".to_string(),
                },
            ],
            coverage: Coverage {
                shards: 2,
                completed: vec![0],
                failed: vec![1],
                covered_points: 12,
                total_points: 24,
            },
            curves_text: String::new(),
            curves_md_text: String::new(),
            manifest_text: String::new(),
            partial: true,
            shard_points: vec![(0, 12), (1, 0)],
            wall_seconds: 2.0,
        };
        let s = report.render_summary();
        let det: String = s
            .lines()
            .take_while(|l| !l.starts_with("run timing"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(det.contains("shard 0000: 12 point(s), 1 attempt(s), done"));
        assert!(det.contains("shard 0001: 0 point(s), 3 attempt(s), FAILED — worker died"));
        assert!(det.contains("coverage: 12/24 points (50.00%), 1/2 shard(s) complete, 1 failed"));
        assert!(det.contains("retries: 2"), "{det}");
        assert!(
            !det.contains("points/s"),
            "wall rate leaked into det: {det}"
        );
        assert!(s.contains("wall 2.00s, overall 6.0 points/s"), "{s}");
        assert!(s.contains("shard 0000: 6.0 points/s"), "{s}");
    }
}
