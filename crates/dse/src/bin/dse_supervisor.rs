//! `dse-supervisor` — crash-tolerant sharded design-space campaigns.
//!
//! ```text
//! dse-supervisor --state-dir DIR [--shards N] [--jobs M]
//!                [--seed S] [--scenario sc1|sc2|low] [--platform NAME]
//!                [--report txt|md]
//!                [--utils U] [--util-min-ppm P] [--util-max-ppm P]
//!                [--sets K] [--tasks T]
//!                [--watchdog-ms W] [--max-attempts A] [--backoff-ms B]
//!                [--resume] [--worker-bin PATH] [--point-delay-ms D]
//!                [--chaos-seed C --chaos-kill P --chaos-stall P
//!                 --chaos-tear P [--chaos-shard I]]
//! ```
//!
//! Writes `curves.txt` and `manifest.txt` into the state dir and prints
//! both to stdout. With `--report md` the merged curves are also
//! rendered as a markdown table (written to `curves.md` and printed in
//! place of the plain text) — same rows, headed by the
//! platform/arbitration variant. A per-shard progress summary (points
//! merged, attempts, retries, coverage %, then wall-clock points/s)
//! goes to stderr so stdout stays byte-stable. Exit status: 0 on full
//! coverage, 3 when any shard exhausted its retries (partial coverage
//! — the manifest says which), 1 on error, 2 on usage.
//!
//! The curves are byte-identical for a fixed seed at any
//! `--shards`/`--jobs` split, across kill -9s of workers or of this
//! supervisor itself, and under `--resume`.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use dse::{parse_scenario, supervise, DseConfig, ShardChaos, SupervisorConfig};
use mbta::{Backoff, RetryPolicy};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: dse-supervisor --state-dir DIR [options]";

fn default_worker_bin() -> PathBuf {
    // Installed next to this binary by cargo; overridable for tests.
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("dse-worker")))
        .unwrap_or_else(|| PathBuf::from("dse-worker"))
}

struct Args {
    sup: SupervisorConfig,
    report_md: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = DseConfig::default();
    let mut state_dir: Option<PathBuf> = None;
    let mut worker_bin = default_worker_bin();
    let (mut shards, mut jobs) = (4u32, 2u32);
    let mut watchdog_ms = 5_000u64;
    let mut max_attempts = RetryPolicy::default().max_attempts;
    let mut backoff_ms = 50u64;
    let mut resume = false;
    let mut report_md = false;
    let mut point_delay_ms = 0u64;
    let (mut chaos_seed, mut kill, mut stall, mut tear, mut only) =
        (None::<u64>, 0u32, 0u32, 0u32, None::<u32>);

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--resume" => {
                resume = true;
                continue;
            }
            _ => {}
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag `{flag}` needs a value"))?;
        let num = |v: &str| -> Result<u64, String> {
            v.parse().map_err(|_| format!("bad number for {flag}: {v}"))
        };
        match flag.as_str() {
            "--state-dir" => state_dir = Some(PathBuf::from(&value)),
            "--worker-bin" => worker_bin = PathBuf::from(&value),
            "--shards" => shards = num(&value)? as u32,
            "--jobs" => jobs = num(&value)? as u32,
            "--seed" => cfg.seed = num(&value)?,
            "--scenario" => {
                cfg.scenario =
                    parse_scenario(&value).ok_or_else(|| format!("unknown scenario {value}"))?;
            }
            "--platform" => {
                cfg.platform = platform::PlatformDesc::builtin(&value).ok_or_else(|| {
                    format!(
                        "unknown platform `{value}` (known platforms: {})",
                        platform::PlatformDesc::names().join(", ")
                    )
                })?;
            }
            "--report" => {
                report_md = match value.as_str() {
                    "md" | "markdown" => true,
                    "txt" | "text" => false,
                    other => return Err(format!("unknown report format `{other}` (txt or md)")),
                };
            }
            "--utils" => cfg.utils = num(&value)? as u32,
            "--util-min-ppm" => cfg.util_min_ppm = num(&value)?,
            "--util-max-ppm" => cfg.util_max_ppm = num(&value)?,
            "--sets" => cfg.sets = num(&value)? as u32,
            "--tasks" => cfg.tasks = num(&value)? as u32,
            "--watchdog-ms" => watchdog_ms = num(&value)?,
            "--max-attempts" => max_attempts = num(&value)? as u32,
            "--backoff-ms" => backoff_ms = num(&value)?,
            "--point-delay-ms" => point_delay_ms = num(&value)?,
            "--chaos-seed" => chaos_seed = Some(num(&value)?),
            "--chaos-kill" => kill = num(&value)? as u32,
            "--chaos-stall" => stall = num(&value)? as u32,
            "--chaos-tear" => tear = num(&value)? as u32,
            "--chaos-shard" => only = Some(num(&value)? as u32),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let state_dir = state_dir.ok_or("--state-dir is required")?;
    let chaos = chaos_seed.map(|seed| ShardChaos {
        seed,
        kill_permille: kill,
        stall_permille: stall,
        tear_permille: tear,
        only_shard: only,
    });
    Ok(Args {
        sup: SupervisorConfig {
            cfg,
            shards,
            jobs,
            state_dir,
            worker_bin,
            watchdog_millis: watchdog_ms,
            retry: RetryPolicy { max_attempts },
            backoff: Backoff {
                base_millis: backoff_ms,
                ..Default::default()
            },
            resume,
            chaos,
            point_delay_millis: point_delay_ms,
        },
        report_md,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("dse-supervisor: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let sup = &args.sup;
    let report = match supervise(sup) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("dse-supervisor: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut artifacts = vec![
        ("curves.txt", &report.curves_text),
        ("manifest.txt", &report.manifest_text),
    ];
    if args.report_md {
        artifacts.push(("curves.md", &report.curves_md_text));
    }
    for (name, text) in artifacts {
        if let Err(e) = std::fs::write(sup.state_dir.join(name), text) {
            eprintln!("dse-supervisor: writing {name}: {e}");
            return ExitCode::FAILURE;
        }
    }
    print!("{}", report.manifest_text);
    if args.report_md {
        print!("{}", report.curves_md_text);
    } else {
        print!("{}", report.curves_text);
    }
    // Progress summary on stderr: stdout stays the byte-stable
    // artifacts; the summary's timing section is wall-clock.
    eprint!("{}", report.render_summary());
    if report.partial {
        eprintln!(
            "dse-supervisor: PARTIAL coverage {:.4} — see manifest.txt",
            report.coverage.fraction()
        );
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}
