//! `dse-worker` — one shard of a design-space campaign.
//!
//! Spawned by `dse-supervisor`; runnable by hand for debugging:
//!
//! ```text
//! dse-worker --state-dir DIR --shard I --shards N
//!            [--seed S] [--scenario sc1|sc2|low] [--platform NAME]
//!            [--utils U] [--util-min-ppm P] [--util-max-ppm P]
//!            [--sets K] [--tasks T] [--attempt A] [--point-delay-ms D]
//!            [--chaos-seed C --chaos-kill P --chaos-stall P
//!             --chaos-tear P [--chaos-shard I]]
//! ```
//!
//! Exit status: 0 when the shard's done marker is written, 1 on error,
//! 2 on usage. A chaos kill aborts (SIGABRT) — deliberately
//! indistinguishable from an external `kill -9` to the supervisor.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use dse::{model_ratios_on, parse_scenario, run_shard, DseConfig, ShardChaos};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: dse-worker --state-dir DIR --shard I --shards N [options]";

struct Args {
    cfg: DseConfig,
    state_dir: PathBuf,
    shard: u32,
    shards: u32,
    attempt: u32,
    point_delay_ms: u64,
    chaos: Option<ShardChaos>,
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = DseConfig::default();
    let mut state_dir: Option<PathBuf> = None;
    let (mut shard, mut shards, mut attempt) = (None::<u32>, None::<u32>, 0u32);
    let mut point_delay_ms = 0u64;
    let (mut chaos_seed, mut kill, mut stall, mut tear, mut only) =
        (None::<u64>, 0u32, 0u32, 0u32, None::<u32>);

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag `{flag}` needs a value"))?;
        let num = |v: &str| -> Result<u64, String> {
            v.parse().map_err(|_| format!("bad number for {flag}: {v}"))
        };
        match flag.as_str() {
            "--state-dir" => state_dir = Some(PathBuf::from(&value)),
            "--shard" => shard = Some(num(&value)? as u32),
            "--shards" => shards = Some(num(&value)? as u32),
            "--seed" => cfg.seed = num(&value)?,
            "--scenario" => {
                cfg.scenario =
                    parse_scenario(&value).ok_or_else(|| format!("unknown scenario {value}"))?;
            }
            "--platform" => {
                cfg.platform = platform::PlatformDesc::builtin(&value).ok_or_else(|| {
                    format!(
                        "unknown platform `{value}` (known platforms: {})",
                        platform::PlatformDesc::names().join(", ")
                    )
                })?;
            }
            "--utils" => cfg.utils = num(&value)? as u32,
            "--util-min-ppm" => cfg.util_min_ppm = num(&value)?,
            "--util-max-ppm" => cfg.util_max_ppm = num(&value)?,
            "--sets" => cfg.sets = num(&value)? as u32,
            "--tasks" => cfg.tasks = num(&value)? as u32,
            "--attempt" => attempt = num(&value)? as u32,
            "--point-delay-ms" => point_delay_ms = num(&value)?,
            "--chaos-seed" => chaos_seed = Some(num(&value)?),
            "--chaos-kill" => kill = num(&value)? as u32,
            "--chaos-stall" => stall = num(&value)? as u32,
            "--chaos-tear" => tear = num(&value)? as u32,
            "--chaos-shard" => only = Some(num(&value)? as u32),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let state_dir = state_dir.ok_or("--state-dir is required")?;
    let shard = shard.ok_or("--shard is required")?;
    let shards = shards.ok_or("--shards is required")?;
    let chaos = chaos_seed.map(|seed| ShardChaos {
        seed,
        kill_permille: kill,
        stall_permille: stall,
        tear_permille: tear,
        only_shard: only,
    });
    Ok(Args {
        cfg,
        state_dir,
        shard,
        shards,
        attempt,
        point_delay_ms,
        chaos,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("dse-worker: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let ratios = match model_ratios_on(&args.cfg.platform, args.cfg.scenario, args.cfg.seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dse-worker: deriving model ratios: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_shard(
        &args.cfg,
        args.shards,
        args.shard,
        &args.state_dir,
        &ratios,
        args.attempt,
        args.chaos.as_ref(),
        args.point_delay_ms,
    ) {
        Ok(stats) => {
            println!(
                "dse-worker: shard {} attempt {}: {} computed, {} resumed{}",
                args.shard,
                args.attempt,
                stats.computed,
                stats.resumed,
                if stats.truncated_bytes > 0 {
                    format!(", torn tail truncated ({} bytes)", stats.truncated_bytes)
                } else {
                    String::new()
                }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dse-worker: shard {}: {e}", args.shard);
            ExitCode::FAILURE
        }
    }
}
