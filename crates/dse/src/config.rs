//! Campaign configuration and the design-space point grid.
//!
//! A campaign is a grid of `utils × sets` points: `utils` utilization
//! levels linearly spaced in `[util_min_ppm, util_max_ppm]`, each
//! sampled with `sets` independently seeded task sets. Every point has
//! a stable FNV identity ([`PointId::key`]) that is a pure function of
//! the campaign seed and the point coordinates — the key both
//! content-addresses the point's record in its shard store and decides
//! which shard owns it (`key % shards`), so re-partitioning the space
//! never changes what any point computes.

use crate::error::DseError;
use contention::StableHasher;
use tc27x_sim::DeploymentScenario;

/// Utilization is carried in parts-per-million throughout the crate.
pub const PPM: u64 = 1_000_000;

/// The full description of a design-space campaign. Two processes with
/// equal configs compute byte-identical shard records; the
/// [`DseConfig::fingerprint`] gates every shard store against replaying
/// foreign state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DseConfig {
    /// Master seed: task-set draws and point keys derive from it.
    pub seed: u64,
    /// Platform description the model ratios are derived on. The
    /// default (paper TC27x) leaves every fingerprint unchanged; any
    /// other description is folded in, so two campaigns over different
    /// machines never share shard state.
    pub platform: platform::PlatformDesc,
    /// Deployment scenario the model ratios are derived under.
    pub scenario: DeploymentScenario,
    /// Number of utilization grid points.
    pub utils: u32,
    /// Lowest total utilization, ppm.
    pub util_min_ppm: u64,
    /// Highest total utilization, ppm (may exceed 1.0 to show the
    /// saturated tail of the curve).
    pub util_max_ppm: u64,
    /// Task sets drawn per utilization point.
    pub sets: u32,
    /// Tasks per set.
    pub tasks: u32,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            seed: 42,
            platform: platform::default_platform().clone(),
            scenario: DeploymentScenario::Scenario1,
            utils: 10,
            util_min_ppm: 100_000,
            util_max_ppm: 1_000_000,
            sets: 16,
            tasks: 4,
        }
    }
}

/// The stable CLI tag of a scenario (`sc1` / `sc2` / `low`).
pub fn scenario_tag(scenario: DeploymentScenario) -> &'static str {
    match scenario {
        DeploymentScenario::Scenario1 => "sc1",
        DeploymentScenario::Scenario2 => "sc2",
        DeploymentScenario::LowTraffic => "low",
    }
}

/// Parses a [`scenario_tag`] spelling back into a scenario.
pub fn parse_scenario(tag: &str) -> Option<DeploymentScenario> {
    match tag {
        "sc1" | "scenario1" => Some(DeploymentScenario::Scenario1),
        "sc2" | "scenario2" => Some(DeploymentScenario::Scenario2),
        "low" => Some(DeploymentScenario::LowTraffic),
        _ => None,
    }
}

impl DseConfig {
    /// Validates the grid shape.
    ///
    /// # Errors
    ///
    /// [`DseError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), DseError> {
        if self.utils == 0 || self.sets == 0 || self.tasks == 0 {
            return Err(DseError::Config(
                "utils, sets and tasks must all be at least 1".to_string(),
            ));
        }
        if self.util_min_ppm == 0 || self.util_min_ppm > self.util_max_ppm {
            return Err(DseError::Config(format!(
                "utilization range [{}, {}] ppm is empty or starts at zero",
                self.util_min_ppm, self.util_max_ppm
            )));
        }
        if self.util_max_ppm > 2 * PPM {
            return Err(DseError::Config(format!(
                "util_max_ppm {} exceeds the 2.0 sanity cap",
                self.util_max_ppm
            )));
        }
        self.platform
            .validate()
            .map_err(|e| DseError::Config(format!("platform `{}`: {e}", self.platform.name)))?;
        Ok(())
    }

    /// The campaign fingerprint: everything that changes what a point
    /// computes. Shard count, worker count, chaos plans, retry policy
    /// and watchdog are all *environmental* and deliberately excluded —
    /// a resumed campaign may change any of them.
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("dse-campaign/v1");
        if !self.platform.is_default() {
            h.write_str("platform");
            h.write_u64(self.platform.fingerprint());
        }
        h.write_u64(self.seed);
        h.write_str(scenario_tag(self.scenario));
        h.write_u64(u64::from(self.utils));
        h.write_u64(self.util_min_ppm);
        h.write_u64(self.util_max_ppm);
        h.write_u64(u64::from(self.sets));
        h.write_u64(u64::from(self.tasks));
        h.finish()
    }

    /// Total utilization (ppm) of grid point `u_idx`, linearly spaced.
    pub fn util_ppm(&self, u_idx: u32) -> u64 {
        if self.utils <= 1 {
            return self.util_max_ppm;
        }
        let span = self.util_max_ppm - self.util_min_ppm;
        self.util_min_ppm + span * u64::from(u_idx) / u64::from(self.utils - 1)
    }

    /// Number of points in the grid.
    pub fn total_points(&self) -> u64 {
        u64::from(self.utils) * u64::from(self.sets)
    }

    /// All points in canonical order (utilization-major).
    pub fn points(&self) -> impl Iterator<Item = PointId> + '_ {
        let sets = self.sets;
        (0..self.utils).flat_map(move |u_idx| (0..sets).map(move |rep| PointId { u_idx, rep }))
    }

    /// The points owned by `shard` out of `shards`, in canonical order.
    pub fn shard_points(&self, shards: u32, shard: u32) -> Vec<PointId> {
        self.points()
            .filter(|p| p.shard(self, shards) == shard)
            .collect()
    }
}

/// One point of the design space: a (utilization level, replicate)
/// coordinate pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PointId {
    /// Utilization grid index, `0..utils`.
    pub u_idx: u32,
    /// Replicate index within the level, `0..sets`.
    pub rep: u32,
}

impl PointId {
    /// The point's stable FNV identity under `cfg`. Store key and shard
    /// assignment both derive from this.
    pub fn key(&self, cfg: &DseConfig) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("dse/point");
        h.write_u64(cfg.seed);
        h.write_u64(u64::from(self.u_idx));
        h.write_u64(u64::from(self.rep));
        h.finish()
    }

    /// The seed the point's task set is drawn from — a separate hash
    /// domain from [`PointId::key`] so store keys and RNG streams never
    /// alias.
    pub fn taskset_seed(&self, cfg: &DseConfig) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("dse/taskset");
        h.write_u64(cfg.seed);
        h.write_u64(u64::from(self.u_idx));
        h.write_u64(u64::from(self.rep));
        h.finish()
    }

    /// Which shard owns this point under an `shards`-way split.
    pub fn shard(&self, cfg: &DseConfig, shards: u32) -> u32 {
        (self.key(cfg) % u64::from(shards.max(1))) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_tracks_semantic_fields_only() {
        let base = DseConfig::default();
        let mut seeded = base.clone();
        seeded.seed ^= 1;
        assert_ne!(base.fingerprint(), seeded.fingerprint());
        let mut wider = base.clone();
        wider.tasks += 1;
        assert_ne!(base.fingerprint(), wider.fingerprint());
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
    }

    #[test]
    fn fingerprint_binds_the_platform_but_default_is_stable() {
        let base = DseConfig::default();
        assert!(base.platform.is_default());
        let tdma = DseConfig {
            platform: platform::PlatformDesc::tc27x_tdma(),
            ..base.clone()
        };
        let ahb = DseConfig {
            platform: platform::PlatformDesc::ahb2(),
            ..base.clone()
        };
        assert_ne!(base.fingerprint(), tdma.fingerprint());
        assert_ne!(base.fingerprint(), ahb.fingerprint());
        assert_ne!(tdma.fingerprint(), ahb.fingerprint());
        // Spelling out the default explicitly keys identically.
        let explicit = DseConfig {
            platform: platform::PlatformDesc::tc27x(),
            ..base.clone()
        };
        assert_eq!(base.fingerprint(), explicit.fingerprint());
    }

    #[test]
    fn util_grid_spans_the_range_inclusively() {
        let cfg = DseConfig {
            utils: 5,
            util_min_ppm: 200_000,
            util_max_ppm: 1_000_000,
            ..Default::default()
        };
        assert_eq!(cfg.util_ppm(0), 200_000);
        assert_eq!(cfg.util_ppm(4), 1_000_000);
        assert_eq!(cfg.util_ppm(2), 600_000);
    }

    #[test]
    fn shards_partition_the_points_exactly() {
        let cfg = DseConfig {
            utils: 7,
            sets: 9,
            ..Default::default()
        };
        for shards in [1u32, 2, 5] {
            let total: usize = (0..shards).map(|s| cfg.shard_points(shards, s).len()).sum();
            assert_eq!(total as u64, cfg.total_points(), "shards={shards}");
            // No point in two shards.
            let mut seen = std::collections::BTreeSet::new();
            for s in 0..shards {
                for p in cfg.shard_points(shards, s) {
                    assert!(seen.insert(p.key(&cfg)), "duplicate point across shards");
                }
            }
        }
    }

    #[test]
    fn keys_and_seeds_live_in_separate_domains() {
        let cfg = DseConfig::default();
        let p = PointId { u_idx: 1, rep: 2 };
        assert_ne!(p.key(&cfg), p.taskset_seed(&cfg));
    }

    #[test]
    fn scenario_tags_round_trip() {
        for s in [
            DeploymentScenario::Scenario1,
            DeploymentScenario::Scenario2,
            DeploymentScenario::LowTraffic,
        ] {
            assert_eq!(parse_scenario(scenario_tag(s)), Some(s));
        }
        assert_eq!(parse_scenario("nope"), None);
    }

    #[test]
    fn validation_rejects_degenerate_grids() {
        let cfg = DseConfig {
            utils: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = DseConfig {
            util_min_ppm: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = DseConfig {
            util_max_ppm: 3 * PPM,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        assert!(DseConfig::default().validate().is_ok());
    }
}
