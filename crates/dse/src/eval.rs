//! Point evaluation: model-specific WCET inflation and RTA verdicts.
//!
//! The models in the paper bound how much a *measured* task inflates
//! under contention. The design-space campaign transfers that inflation
//! to *synthetic* task sets: one pair of isolation profiles (the
//! control-loop app vs the H-Load contender, the paper's worst-case
//! pairing) yields a per-model inflation ratio, kept as an exact
//! rational `(bound_cycles, isolation_cycles)` so applying it to a
//! generated WCET stays in integer arithmetic — bit-identical across
//! platforms, workers and shard splits.

use crate::config::{DseConfig, PointId};
use crate::error::DseError;
use crate::gen::task_set;
use contention::rta::{analyze, PeriodicTask};
use contention::{ContentionModel, FtcModel, IdealModel, IlpPtacModel, Platform};
use mbta::{constraints_for, ExecEngine, SimJob};
use tc27x_sim::{CoreId, DeploymentScenario};
use workloads::{contender_on, control_loop_on, LoadLevel};

/// An exact rational WCET inflation ratio.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Inflation {
    /// Denominator: cycles observed in isolation.
    pub isolation_cycles: u64,
    /// Numerator: isolation plus the model's contention bound.
    pub bound_cycles: u64,
}

impl Inflation {
    /// Inflates a WCET, rounding up (bounds stay sound) and clamping to
    /// one cycle (the RTA rejects zero-WCET tasks).
    pub fn apply(&self, wcet: u64) -> u64 {
        let num = u128::from(wcet) * u128::from(self.bound_cycles);
        let den = u128::from(self.isolation_cycles.max(1));
        (num.div_ceil(den) as u64).max(1)
    }

    /// The ratio as a float, for reports only.
    pub fn ratio(&self) -> f64 {
        self.bound_cycles as f64 / self.isolation_cycles.max(1) as f64
    }
}

/// The three models' inflation ratios for one scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelRatios {
    /// Ideal (full-PTAC, Eq. 1) — simulator-informed lower envelope.
    pub ideal: Inflation,
    /// fTC (Eqs. 6–8) — contender-independent, always sound.
    pub ftc: Inflation,
    /// ILP-PTAC (Eqs. 9–23) — scenario-tailored optimum.
    pub ilp: Inflation,
}

/// Derives the per-model inflation ratios for `scenario` on the
/// default (paper TC27x) platform. See [`model_ratios_on`].
///
/// # Errors
///
/// Simulation failures surface as [`DseError::Job`], model rejections
/// as [`DseError::Model`].
pub fn model_ratios(scenario: DeploymentScenario, seed: u64) -> Result<ModelRatios, DseError> {
    model_ratios_on(platform::default_platform(), scenario, seed)
}

/// Derives the per-model inflation ratios for `scenario` on `desc`:
/// profile the control-loop app and the H-Load contender in isolation
/// (on the description's application and load cores), then ask each
/// model — its tables re-derived from the same description — for its
/// WCET estimate. Pure in `(desc, scenario, seed)`.
///
/// # Errors
///
/// Simulation failures surface as [`DseError::Job`], model rejections
/// as [`DseError::Model`].
pub fn model_ratios_on(
    desc: &platform::PlatformDesc,
    scenario: DeploymentScenario,
    seed: u64,
) -> Result<ModelRatios, DseError> {
    let platform = Platform::from_desc(desc);
    let (app_core, load_core) = (CoreId(desc.app_core as u8), CoreId(desc.load_core as u8));
    let app_spec = control_loop_on(desc, scenario, app_core, seed);
    let load_spec = contender_on(desc, scenario, LoadLevel::High, load_core, seed ^ 0xbeef);
    let engine = ExecEngine::sequential().with_platform(desc.clone());
    let mut outcomes = engine
        .run_batch(&[
            SimJob::Isolation {
                spec: app_spec,
                core: app_core,
            },
            SimJob::Isolation {
                spec: load_spec,
                core: load_core,
            },
        ])?
        .into_iter();
    let (Some(app), Some(load)) = (outcomes.next(), outcomes.next()) else {
        return Err(DseError::Config(
            "profile batch returned fewer outcomes than jobs".to_string(),
        ));
    };
    let (app, load) = (app.into_profile(), load.into_profile());

    let ftc_model = match scenario {
        DeploymentScenario::Scenario2 => FtcModel::new(&platform).assume_dirty_lmu(),
        _ => FtcModel::new(&platform),
    };
    let ilp_model = IlpPtacModel::new(&platform, constraints_for(scenario));
    let ideal_model = IdealModel::new(&platform);

    let to_inflation = |est: contention::WcetEstimate| Inflation {
        isolation_cycles: est.isolation_cycles.max(1),
        bound_cycles: est.bound_cycles().max(1),
    };
    Ok(ModelRatios {
        ideal: to_inflation(ideal_model.wcet_estimate(&app, &[&load])?),
        ftc: to_inflation(ftc_model.wcet_estimate(&app, &[&load])?),
        ilp: to_inflation(ilp_model.wcet_estimate(&app, &[&load])?),
    })
}

/// Schedulability of one task set under the three models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PointVerdict {
    /// Schedulable under the ideal model's inflation.
    pub ideal: bool,
    /// Schedulable under the fTC inflation.
    pub ftc: bool,
    /// Schedulable under the ILP-PTAC inflation.
    pub ilp: bool,
}

fn schedulable_under(tasks: &[PeriodicTask], infl: Inflation) -> bool {
    let inflated: Vec<PeriodicTask> = tasks
        .iter()
        .map(|t| PeriodicTask::new(&t.name, t.period, infl.apply(t.wcet)))
        .collect();
    analyze(&inflated).is_schedulable()
}

/// Evaluates one design-space point: draw its task set, inflate under
/// each model, run response-time analysis. Pure in `(cfg, point,
/// ratios)`.
pub fn evaluate_point(cfg: &DseConfig, point: PointId, ratios: &ModelRatios) -> PointVerdict {
    let tasks = task_set(
        point.taskset_seed(cfg),
        cfg.tasks,
        cfg.util_ppm(point.u_idx),
    );
    PointVerdict {
        ideal: schedulable_under(&tasks, ratios.ideal),
        ftc: schedulable_under(&tasks, ratios.ftc),
        ilp: schedulable_under(&tasks, ratios.ilp),
    }
}

fn bit(b: bool) -> char {
    if b {
        '1'
    } else {
        '0'
    }
}

/// Renders a point result as its canonical store value.
pub fn encode_verdict(point: PointId, v: PointVerdict) -> String {
    format!(
        "pt {} {} {}{}{}",
        point.u_idx,
        point.rep,
        bit(v.ideal),
        bit(v.ftc),
        bit(v.ilp)
    )
}

/// Parses a store value written by [`encode_verdict`].
///
/// # Errors
///
/// A human-readable description of the malformation.
pub fn decode_verdict(value: &str) -> Result<(PointId, PointVerdict), String> {
    let fields: Vec<&str> = value.split(' ').collect();
    let ["pt", u_idx, rep, bits] = fields.as_slice() else {
        return Err(format!("not a point record: `{value}`"));
    };
    let u_idx: u32 = u_idx
        .parse()
        .map_err(|_| format!("bad u_idx in `{value}`"))?;
    let rep: u32 = rep.parse().map_err(|_| format!("bad rep in `{value}`"))?;
    let flags: Vec<bool> = bits
        .chars()
        .map(|c| match c {
            '1' => Ok(true),
            '0' => Ok(false),
            _ => Err(format!("bad verdict bit `{c}` in `{value}`")),
        })
        .collect::<Result<_, _>>()?;
    let [ideal, ftc, ilp] = flags.as_slice() else {
        return Err(format!("expected 3 verdict bits in `{value}`"));
    };
    Ok((
        PointId { u_idx, rep },
        PointVerdict {
            ideal: *ideal,
            ftc: *ftc,
            ilp: *ilp,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflation_rounds_up_and_never_deflates_to_zero() {
        let infl = Inflation {
            isolation_cycles: 3,
            bound_cycles: 4,
        };
        assert_eq!(infl.apply(3), 4);
        assert_eq!(infl.apply(1), 2); // ceil(4/3)
        assert_eq!(infl.apply(0), 1); // clamped for the RTA
        let identity = Inflation {
            isolation_cycles: 7,
            bound_cycles: 7,
        };
        assert_eq!(identity.apply(123), 123);
    }

    #[test]
    fn model_ratios_are_deterministic_and_ordered() {
        let a = model_ratios(DeploymentScenario::Scenario1, 42).unwrap();
        let b = model_ratios(DeploymentScenario::Scenario1, 42).unwrap();
        assert_eq!(a, b);
        // fTC is contender-independent and must dominate the tailored
        // ILP bound; every bound is at least the isolation time.
        assert!(a.ftc.ratio() >= a.ilp.ratio() - 1e-12, "{a:?}");
        assert!(a.ideal.ratio() >= 1.0 && a.ilp.ratio() >= 1.0, "{a:?}");
    }

    #[test]
    fn verdict_encoding_round_trips() {
        let p = PointId { u_idx: 3, rep: 11 };
        for v in [
            PointVerdict {
                ideal: true,
                ftc: false,
                ilp: true,
            },
            PointVerdict {
                ideal: false,
                ftc: false,
                ilp: false,
            },
        ] {
            let enc = encode_verdict(p, v);
            assert_eq!(decode_verdict(&enc), Ok((p, v)));
        }
        assert!(decode_verdict("pt x 1 101").is_err());
        assert!(decode_verdict("pt 1 1 10").is_err());
        assert!(decode_verdict("nope").is_err());
    }

    #[test]
    fn harsher_inflation_never_rescues_a_set() {
        // Monotonicity: if a set fails under the ideal ratio it must
        // fail under the (larger) fTC ratio too.
        let ratios = model_ratios(DeploymentScenario::Scenario1, 7).unwrap();
        let cfg = DseConfig {
            utils: 6,
            sets: 8,
            ..Default::default()
        };
        for point in cfg.points() {
            let v = evaluate_point(&cfg, point, &ratios);
            if !v.ideal {
                assert!(!v.ftc, "ftc passed where ideal failed at {point:?}");
            }
            if !v.ilp {
                assert!(!v.ftc, "ftc passed where ilp failed at {point:?}");
            }
        }
    }
}
