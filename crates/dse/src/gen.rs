//! Seeded task-set generation.
//!
//! The classic schedulability-experiment recipe: split a total
//! utilization among `n` tasks uniformly at random on the simplex, pick
//! periods from a menu, derive WCETs, order by rate-monotonic priority.
//! The simplex split uses the order-statistics method — draw `n − 1`
//! uniform cut points in `[0, U]`, sort, take consecutive differences —
//! which samples exactly the distribution UUniFast targets while
//! staying in integer arithmetic on the in-tree [`SplitMix64`]: no
//! `powf`, so every platform and compiler draws bit-identical sets.

use crate::config::PPM;
use contention::rta::PeriodicTask;
use tc27x_sim::rng::SplitMix64;

/// The period menu, in cycles. Spanning ~5 binary orders of magnitude
/// keeps response-time iteration cheap while still producing interesting
/// preemption patterns.
pub const PERIOD_MENU: [u64; 6] = [50_000, 100_000, 200_000, 400_000, 800_000, 1_600_000];

/// Splits `total_ppm` of utilization among `n` tasks, uniformly on the
/// discrete simplex (order statistics of `n − 1` uniform cuts).
/// Shares may be zero; the caller clamps WCETs to at least one cycle.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn split_utilization(total_ppm: u64, n: u32, rng: &mut SplitMix64) -> Vec<u64> {
    assert!(n > 0, "cannot split among zero tasks");
    let mut cuts: Vec<u64> = (1..n).map(|_| rng.below(total_ppm + 1)).collect();
    cuts.sort_unstable();
    let mut shares = Vec::with_capacity(n as usize);
    let mut prev = 0;
    for c in cuts {
        shares.push(c - prev);
        prev = c;
    }
    shares.push(total_ppm - prev);
    shares
}

/// Draws one task set: `n` implicit-deadline periodic tasks totalling
/// `total_util_ppm` of utilization, named `t0..` in rate-monotonic
/// (shortest-period-first) priority order. Pure in `seed`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn task_set(seed: u64, n: u32, total_util_ppm: u64) -> Vec<PeriodicTask> {
    let mut rng = SplitMix64::new(seed);
    let shares = split_utilization(total_util_ppm, n, &mut rng);
    let mut drawn: Vec<(u64, u64)> = shares
        .into_iter()
        .map(|share| {
            let period = PERIOD_MENU[rng.below(PERIOD_MENU.len() as u64) as usize];
            // wcet = share · period, both well inside u64 range.
            let wcet = (share * period / PPM).max(1);
            (period, wcet)
        })
        .collect();
    // Stable sort: ties keep draw order, so the set is deterministic.
    drawn.sort_by_key(|(period, _)| *period);
    drawn
        .into_iter()
        .enumerate()
        .map(|(i, (period, wcet))| PeriodicTask::new(format!("t{i}"), period, wcet))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_preserves_the_total_exactly() {
        let mut rng = SplitMix64::new(9);
        for n in [1u32, 2, 5, 16] {
            for total in [0u64, 1, 350_000, PPM] {
                let shares = split_utilization(total, n, &mut rng);
                assert_eq!(shares.len(), n as usize);
                assert_eq!(shares.iter().sum::<u64>(), total, "n={n} total={total}");
            }
        }
    }

    #[test]
    fn split_is_not_degenerate() {
        // With 4 tasks at util 0.8 the split should actually spread —
        // a fixed seed documents the distribution is live, not constant.
        let mut rng = SplitMix64::new(3);
        let shares = split_utilization(800_000, 4, &mut rng);
        let distinct: std::collections::BTreeSet<u64> = shares.iter().copied().collect();
        assert!(distinct.len() > 1, "{shares:?}");
    }

    #[test]
    fn task_set_is_a_pure_function_of_the_seed() {
        let a = task_set(1234, 5, 700_000);
        let b = task_set(1234, 5, 700_000);
        assert_eq!(a, b);
        let c = task_set(1235, 5, 700_000);
        assert_ne!(a, c, "a different seed must draw a different set");
    }

    #[test]
    fn tasks_are_rate_monotonic_and_rta_safe() {
        for seed in 0..50 {
            let tasks = task_set(seed, 6, 900_000);
            assert_eq!(tasks.len(), 6);
            for w in tasks.windows(2) {
                assert!(w[0].period <= w[1].period, "not RM ordered: {tasks:?}");
            }
            for t in &tasks {
                assert!(t.wcet >= 1, "zero WCET would panic the RTA: {t}");
                assert!(t.wcet <= t.period, "per-task util above 1: {t}");
                assert!(PERIOD_MENU.contains(&t.period));
            }
            // The clamp can only add utilization; it must stay close.
            let total: f64 = tasks.iter().map(PeriodicTask::utilization).sum();
            assert!(total <= 0.91, "requested 0.9, got {total}");
        }
    }

    #[test]
    fn low_utilization_sets_are_schedulable() {
        // At 10% total utilization, RTA should accept essentially
        // every draw — a sanity anchor for the curve's left edge.
        for seed in 0..30 {
            let tasks = task_set(seed, 4, 100_000);
            assert!(
                contention::rta::analyze(&tasks).is_schedulable(),
                "seed {seed}: {tasks:?}"
            );
        }
    }
}
