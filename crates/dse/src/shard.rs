//! The worker side of a sharded campaign.
//!
//! One worker process owns one shard: it opens (or resumes) the shard's
//! write-ahead [`mbta::store`] file, walks its points in canonical
//! order, skips everything the store already holds, evaluates and
//! journals the rest, bumps a heartbeat file after every point, and
//! finally writes a done marker naming the point count and config
//! fingerprint. Everything a worker computes is a pure function of the
//! campaign config, so being kill -9'd at *any* instant loses at most
//! the in-flight point — the next attempt replays the store and
//! continues.
//!
//! The module also carries the process-level chaos plan: the SplitMix64
//! fault-plan discipline of [`mbta::FaultPlan`], lifted from jobs to
//! processes. Draws are pure in `(seed, point key, attempt)`, so a
//! seeded chaos campaign is reproducible and a killed attempt's retry
//! re-draws — crashes do not repeat forever.

use crate::config::{DseConfig, PointId};
use crate::error::DseError;
use crate::eval::{encode_verdict, evaluate_point, ModelRatios};
use contention::StableHasher;
use mbta::Store;
use std::io::Write;
use std::path::{Path, PathBuf};
use tc27x_sim::rng::SplitMix64;

/// The store fingerprint of one shard: the campaign fingerprint plus
/// the shard split. A store written under a different split (or a
/// different campaign) is refused at open, not silently merged.
pub fn shard_fingerprint(cfg: &DseConfig, shards: u32, shard: u32) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("dse-shard/v1");
    h.write_u64(cfg.fingerprint());
    h.write_u64(u64::from(shards));
    h.write_u64(u64::from(shard));
    h.finish()
}

/// The shard's write-ahead result store.
pub fn store_path(state_dir: &Path, shard: u32) -> PathBuf {
    state_dir.join(format!("shard-{shard:04}.store"))
}

/// The shard's heartbeat file (rewritten after every point).
pub fn heartbeat_path(state_dir: &Path, shard: u32) -> PathBuf {
    state_dir.join(format!("shard-{shard:04}.hb"))
}

/// The shard's done marker.
pub fn done_path(state_dir: &Path, shard: u32) -> PathBuf {
    state_dir.join(format!("shard-{shard:04}.done"))
}

/// The worker's pid file, used by the supervisor to reap stale orphans
/// left behind when a previous supervisor was kill -9'd.
pub fn pid_path(state_dir: &Path, shard: u32) -> PathBuf {
    state_dir.join(format!("shard-{shard:04}.pid"))
}

/// The done marker's exact content — the supervisor validates it
/// byte-for-byte before trusting a shard.
pub fn done_marker(cfg: &DseConfig, shards: u32, shard: u32, points: usize) -> String {
    format!(
        "done {points} {:016x}\n",
        shard_fingerprint(cfg, shards, shard)
    )
}

/// A seeded process-level fault plan. Rates are per-point permille;
/// draws fold the attempt number, mirroring [`mbta::FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardChaos {
    /// Seed of the chaos stream.
    pub seed: u64,
    /// Permille chance a point aborts the worker (kill -9 semantics).
    pub kill_permille: u32,
    /// Permille chance a point stalls the worker until the watchdog
    /// kills it.
    pub stall_permille: u32,
    /// Given a kill: permille chance the store is left with a torn
    /// trailing record, as a crash mid-append would.
    pub tear_permille: u32,
    /// Restrict chaos to one shard (`None` = all shards).
    pub only_shard: Option<u32>,
}

/// What the chaos plan injects at one point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Proceed normally.
    None,
    /// Abort the process before the point is journaled.
    Kill {
        /// Also append a torn half-record to the store first.
        tear: bool,
    },
    /// Stop heartbeating and sleep until killed.
    Stall,
}

impl ShardChaos {
    /// The action for `point_key` on `attempt`, pure in all inputs.
    pub fn draw(&self, shard: u32, point_key: u64, attempt: u32) -> ChaosAction {
        if self.only_shard.is_some_and(|s| s != shard) {
            return ChaosAction::None;
        }
        let mut rng = SplitMix64::new(
            self.seed ^ point_key ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        if rng.below(1000) < u64::from(self.kill_permille) {
            return ChaosAction::Kill {
                tear: rng.below(1000) < u64::from(self.tear_permille),
            };
        }
        if rng.below(1000) < u64::from(self.stall_permille) {
            return ChaosAction::Stall;
        }
        ChaosAction::None
    }
}

/// What one worker attempt did.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ShardRunStats {
    /// Points replayed from the store (work a crash did not lose).
    pub resumed: usize,
    /// Points evaluated and journaled by this attempt.
    pub computed: usize,
    /// Bytes of torn trailing record truncated during store recovery.
    pub truncated_bytes: u64,
}

fn write_heartbeat(path: &Path, counter: u64) -> Result<(), DseError> {
    // Plain overwrite, no fsync: losing a heartbeat only makes the
    // watchdog conservative, never incorrect.
    std::fs::write(path, format!("hb {counter}\n"))?;
    Ok(())
}

fn write_durable(path: &Path, content: &str) -> Result<(), DseError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(content.as_bytes())?;
    f.sync_all()?;
    Ok(())
}

fn tear_store_tail(path: &Path) -> Result<(), DseError> {
    // Half a record, no newline: exactly what a crash mid-append leaves.
    let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
    f.write_all(b"dead")?;
    f.sync_all()?;
    Ok(())
}

/// Runs one shard to completion: resume the store, evaluate the missing
/// points, write the done marker. `attempt` is the supervisor's spawn
/// count for this shard; it only feeds chaos draws, never results.
/// `point_delay_millis` slows each computed point down (used by the CI
/// smoke to widen the kill window); it too never affects results.
///
/// Chaos kills abort the process (the real `kill -9` code path — no
/// destructors, no flushes); stalls stop heartbeating until the
/// supervisor's watchdog fires.
///
/// # Errors
///
/// Store and filesystem failures; [`DseError::Config`] for an invalid
/// grid or a foreign store fingerprint.
// One parameter per `dse-worker` CLI flag, deliberately: the worker
// binary is a transparent shim over this function.
#[allow(clippy::too_many_arguments)]
pub fn run_shard(
    cfg: &DseConfig,
    shards: u32,
    shard: u32,
    state_dir: &Path,
    ratios: &ModelRatios,
    attempt: u32,
    chaos: Option<&ShardChaos>,
    point_delay_millis: u64,
) -> Result<ShardRunStats, DseError> {
    cfg.validate()?;
    if shard >= shards {
        return Err(DseError::Config(format!(
            "shard {shard} out of range for {shards} shards"
        )));
    }
    std::fs::create_dir_all(state_dir)?;
    write_durable(
        &pid_path(state_dir, shard),
        &format!("{}\n", std::process::id()),
    )?;

    let fp = shard_fingerprint(cfg, shards, shard);
    let path = store_path(state_dir, shard);
    let (store, existing, recovery) = Store::open(&path, "dse-shard", fp)?;

    let points: Vec<PointId> = cfg.shard_points(shards, shard);
    let hb = heartbeat_path(state_dir, shard);
    let mut stats = ShardRunStats {
        truncated_bytes: recovery.truncated_bytes,
        ..Default::default()
    };
    write_heartbeat(&hb, 0)?;

    for (i, point) in points.iter().enumerate() {
        let key = point.key(cfg);
        if existing.contains_key(&key) {
            stats.resumed += 1;
            continue;
        }
        match chaos.map_or(ChaosAction::None, |c| c.draw(shard, key, attempt)) {
            ChaosAction::None => {}
            ChaosAction::Kill { tear } => {
                if tear {
                    tear_store_tail(&path)?;
                }
                // The real crash path: no unwinding, no flushing.
                std::process::abort();
            }
            ChaosAction::Stall => {
                // Heartbeats stop here; the watchdog must kill us. The
                // abort is a backstop for unsupervised runs.
                std::thread::sleep(std::time::Duration::from_secs(3_600));
                std::process::abort();
            }
        }
        if point_delay_millis > 0 {
            std::thread::sleep(std::time::Duration::from_millis(point_delay_millis));
        }
        let verdict = evaluate_point(cfg, *point, ratios);
        store.put(key, &encode_verdict(*point, verdict))?;
        stats.computed += 1;
        write_heartbeat(&hb, (i + 1) as u64)?;
    }

    write_durable(
        &done_path(state_dir, shard),
        &done_marker(cfg, shards, shard, points.len()),
    )?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::model_ratios;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dse-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_cfg() -> DseConfig {
        DseConfig {
            utils: 3,
            sets: 4,
            tasks: 3,
            ..Default::default()
        }
    }

    #[test]
    fn chaos_draws_are_pure_and_attempt_sensitive() {
        let chaos = ShardChaos {
            seed: 11,
            kill_permille: 500,
            stall_permille: 200,
            tear_permille: 500,
            only_shard: None,
        };
        let mut kinds = std::collections::BTreeSet::new();
        for key in 0..200u64 {
            let a = chaos.draw(0, key, 0);
            assert_eq!(a, chaos.draw(0, key, 0), "draw not pure at key {key}");
            kinds.insert(format!("{a:?}"));
        }
        assert!(kinds.len() >= 3, "plan never varied: {kinds:?}");
        // Folding the attempt must re-draw: some killed key survives
        // on a later attempt.
        let rescued = (0..200u64).any(|k| {
            matches!(chaos.draw(0, k, 0), ChaosAction::Kill { .. })
                && matches!(chaos.draw(0, k, 1), ChaosAction::None)
        });
        assert!(rescued, "no key was rescued by a retry");
    }

    #[test]
    fn chaos_respects_the_shard_restriction() {
        let chaos = ShardChaos {
            seed: 5,
            kill_permille: 1000,
            stall_permille: 0,
            tear_permille: 0,
            only_shard: Some(2),
        };
        assert_eq!(chaos.draw(1, 99, 0), ChaosAction::None);
        assert!(matches!(chaos.draw(2, 99, 0), ChaosAction::Kill { .. }));
    }

    #[test]
    fn a_clean_run_writes_store_heartbeat_and_done_marker() {
        let cfg = tiny_cfg();
        let dir = scratch("clean");
        let ratios = model_ratios(cfg.scenario, cfg.seed).unwrap();
        let stats = run_shard(&cfg, 2, 0, &dir, &ratios, 0, None, 0).unwrap();
        let expected = cfg.shard_points(2, 0).len();
        assert_eq!(stats.computed, expected);
        assert_eq!(stats.resumed, 0);
        let done = std::fs::read_to_string(done_path(&dir, 0)).unwrap();
        assert_eq!(done, done_marker(&cfg, 2, 0, expected));
        assert!(heartbeat_path(&dir, 0).exists());
        // A second attempt replays everything and recomputes nothing.
        let again = run_shard(&cfg, 2, 0, &dir, &ratios, 1, None, 0).unwrap();
        assert_eq!(again.resumed, expected);
        assert_eq!(again.computed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_torn_store_tail_is_truncated_on_resume() {
        let cfg = tiny_cfg();
        let dir = scratch("torn");
        let ratios = model_ratios(cfg.scenario, cfg.seed).unwrap();
        let _ = run_shard(&cfg, 1, 0, &dir, &ratios, 0, None, 0).unwrap();
        std::fs::remove_file(done_path(&dir, 0)).unwrap();
        tear_store_tail(&store_path(&dir, 0)).unwrap();
        let stats = run_shard(&cfg, 1, 0, &dir, &ratios, 1, None, 0).unwrap();
        assert!(stats.truncated_bytes > 0, "tear was not reported");
        assert_eq!(stats.resumed as u64, cfg.total_points());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_fingerprints_are_refused() {
        let cfg = tiny_cfg();
        let dir = scratch("foreign");
        let ratios = model_ratios(cfg.scenario, cfg.seed).unwrap();
        let _ = run_shard(&cfg, 2, 0, &dir, &ratios, 0, None, 0).unwrap();
        // Same store file, different split: must be refused, not merged.
        let mut other = cfg.clone();
        other.seed ^= 77;
        let err = run_shard(&other, 2, 0, &dir, &ratios, 0, None, 0).unwrap_err();
        assert!(
            matches!(err, DseError::Journal(_)),
            "expected a journal refusal, got {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
