//! # `dse` — crash-tolerant sharded design-space exploration
//!
//! The paper closes with the OEM-level question: given contention-aware
//! WCET bounds, which task sets still fit their time budgets? This
//! crate turns that question into a *campaign*: sweep task-set
//! utilization across a seeded design space, bound every set under the
//! fTC, ILP-PTAC and ideal models, run response-time analysis, and plot
//! schedulability-vs-utilization curves per model — the classic
//! weighted-schedulability experiment, run at a scale where single
//! processes crash, hang and lose partial work.
//!
//! The layers, bottom up:
//!
//! * [`gen`] — seeded task-set generation: utilization split by the
//!   order-statistics method (UUniFast's target distribution, done in
//!   integer arithmetic on the in-tree SplitMix64 so every platform
//!   draws the same sets), periods from a fixed menu, rate-monotonic
//!   priorities;
//! * [`eval`] — per-model WCET inflation ratios derived from real
//!   isolation profiles (app vs the H-Load contender), applied to the
//!   generated sets and fed to [`contention::rta`];
//! * [`shard`] — the worker side: the design space is partitioned into
//!   shards by point FNV key, each shard owned by one worker process
//!   with its own write-ahead [`mbta::store`] journal, heartbeat file,
//!   done marker — and a seeded process-level chaos plan (kill -9,
//!   stalls, torn journal tails) for the fault-injection suites;
//! * [`supervise`] — the supervisor: spawns workers, watches
//!   heartbeats, kills hung workers, restarts crashed ones under the
//!   deterministic [`mbta::retry`] policy, reaps stale orphans left by
//!   a killed predecessor, and merges completed shards into curves that
//!   are byte-identical for a fixed seed at any `--shards`/`--jobs`
//!   split, across any sequence of kill -9s, and under `--resume`;
//! * [`curve`] — the merged report: curves plus an explicit coverage
//!   manifest. A shard that exhausts its retries is never silently
//!   dropped — the manifest names it, the coverage fraction says what
//!   is missing, and the run exits with a distinct "partial" status.
//!
//! # Examples
//!
//! Generate one task set and check it under an inflated WCET:
//!
//! ```
//! use dse::eval::Inflation;
//! use dse::gen::task_set;
//!
//! let tasks = task_set(7, 4, 600_000); // 4 tasks, total util 0.6
//! assert_eq!(tasks.len(), 4);
//! let infl = Inflation { isolation_cycles: 10, bound_cycles: 13 };
//! let inflated: Vec<_> = tasks
//!     .iter()
//!     .map(|t| contention::rta::PeriodicTask::new(&t.name, t.period, infl.apply(t.wcet)))
//!     .collect();
//! let verdict = contention::rta::analyze(&inflated);
//! println!("schedulable under +30%: {}", verdict.is_schedulable());
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod config;
pub mod curve;
mod error;
pub mod eval;
pub mod gen;
pub mod shard;
pub mod supervise;

pub use config::{parse_scenario, scenario_tag, DseConfig, PointId};
pub use curve::{curves, render_curves, render_curves_md, render_manifest, Coverage, CurveRow};
pub use error::DseError;
pub use eval::{
    evaluate_point, model_ratios, model_ratios_on, Inflation, ModelRatios, PointVerdict,
};
pub use shard::{run_shard, ChaosAction, ShardChaos, ShardRunStats};
pub use supervise::{supervise, RunReport, ShardOutcome, SupervisorConfig};
