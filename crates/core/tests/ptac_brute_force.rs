//! Independent validation of the ILP-PTAC formulation: for small
//! counter values, enumerate *every* feasible combination of per-target
//! access counts and interference mappings by brute force and compare
//! the maximum against the ILP optimum. This checks the constraint
//! encoding (Eqs. 9–23 + Table 5) and the exact solver at once.

use contention::{
    DebugCounters, IlpPtacModel, IlpPtacOptions, IsolationProfile, Operation, Platform,
    ScenarioConstraints, Target,
};

/// Feasible (target, op) pairs in a fixed order:
/// pf0/co, pf1/co, lmu/co, pf0/da, pf1/da, lmu/da, dfl/da.
const PAIRS: [(Target, Operation); 7] = [
    (Target::Pf0, Operation::Code),
    (Target::Pf1, Operation::Code),
    (Target::Lmu, Operation::Code),
    (Target::Pf0, Operation::Data),
    (Target::Pf1, Operation::Data),
    (Target::Lmu, Operation::Data),
    (Target::Dfl, Operation::Data),
];

/// Enumerates all 7-vectors with entries `0..=max` (bounded search).
fn vectors(maxes: &[u64; 7]) -> Vec<[u64; 7]> {
    let mut out = vec![[0u64; 7]];
    for i in 0..7 {
        let mut next = Vec::new();
        for v in &out {
            for x in 0..=maxes[i] {
                let mut w = *v;
                w[i] = x;
                next.push(w);
            }
        }
        out = next;
    }
    out
}

/// Checks the stall-budget consistency of an access-count vector with
/// the observed counters (the Eqs. 20–23 budget form) and the scenario
/// constraints (Table 5).
fn feasible_counts(
    platform: &Platform,
    scenario: &ScenarioConstraints,
    n: &[u64; 7],
    c: &DebugCounters,
) -> bool {
    let stall = |i: usize| platform.stall(PAIRS[i].0, PAIRS[i].1);
    let code_stall: u64 = (0..3).map(|i| n[i] * stall(i)).sum();
    let data_stall: u64 = (3..7).map(|i| n[i] * stall(i)).sum();
    if data_stall > c.dmem_stall {
        return false;
    }
    for (i, (t, o)) in PAIRS.iter().enumerate() {
        if scenario.is_zeroed(*t, *o) && n[i] != 0 {
            return false;
        }
    }
    if scenario.exact_code_from_pcache() {
        if n[0] + n[1] + n[2] != c.pcache_miss {
            return false;
        }
    } else if code_stall > c.pmem_stall {
        return false;
    }
    if scenario.min_cacheable_data() && n[3] + n[4] + n[5] < c.dcache_miss_total() {
        return false;
    }
    true
}

/// Checks Eqs. 10–19 for an interference mapping against the two
/// access-count vectors.
fn feasible_interference(nba: &[u64; 7], na: &[u64; 7], nb: &[u64; 7]) -> bool {
    // Per-target index sets {code, data} into PAIRS.
    let groups: [(&[usize], usize); 4] = [
        (&[0, 3], 0), // pf0: code idx 0, data idx 3
        (&[1, 4], 1), // pf1
        (&[2, 5], 2), // lmu
        (&[6], 3),    // dfl (data only)
    ];
    for (idxs, _) in groups {
        let a_sum: u64 = idxs.iter().map(|&i| na[i]).sum();
        let mut ba_sum = 0;
        for &i in idxs {
            if nba[i] > nb[i] {
                return false;
            }
            if nba[i] > a_sum {
                return false;
            }
            ba_sum += nba[i];
        }
        if ba_sum > a_sum {
            return false;
        }
    }
    true
}

fn brute_force_optimum(
    platform: &Platform,
    scenario: &ScenarioConstraints,
    ca: &DebugCounters,
    cb: &DebugCounters,
) -> u64 {
    let stall = |i: usize| platform.stall(PAIRS[i].0, PAIRS[i].1).max(1);
    let bound_for = |c: &DebugCounters, i: usize| -> u64 {
        let (t, o) = PAIRS[i];
        if scenario.is_zeroed(t, o) {
            return 0;
        }
        let budget = match o {
            Operation::Code => {
                if scenario.exact_code_from_pcache() {
                    return c.pcache_miss;
                }
                c.pmem_stall
            }
            Operation::Data => c.dmem_stall,
        };
        budget.div_ceil(stall(i))
    };
    let maxes_a: [u64; 7] = std::array::from_fn(|i| bound_for(ca, i));
    let maxes_b: [u64; 7] = std::array::from_fn(|i| bound_for(cb, i));

    let latency = |i: usize| platform.latency(PAIRS[i].0, PAIRS[i].1);
    let mut best = 0u64;
    for na in vectors(&maxes_a) {
        if !feasible_counts(platform, scenario, &na, ca) {
            continue;
        }
        for nb in vectors(&maxes_b) {
            if !feasible_counts(platform, scenario, &nb, cb) {
                continue;
            }
            // Greedy per target is optimal for fixed (na, nb): per
            // target the interference budget is min(a_sum, nb-capped),
            // spent on the highest-latency op first.
            let mut total = 0u64;
            let groups: [&[usize]; 4] = [&[0, 3], &[1, 4], &[2, 5], &[6]];
            for idxs in groups {
                let a_sum: u64 = idxs.iter().map(|&i| na[i]).sum();
                let mut order: Vec<usize> = idxs.to_vec();
                order.sort_by_key(|&i| std::cmp::Reverse(latency(i)));
                let mut left = a_sum;
                for i in order {
                    let take = left.min(nb[i]);
                    total += take * latency(i);
                    left -= take;
                }
            }
            best = best.max(total);
        }
    }
    let _ = feasible_interference; // used by the witness test below
    best
}

fn profile(name: &str, ps: u64, ds: u64, pm: u64) -> IsolationProfile {
    IsolationProfile::new(
        name,
        DebugCounters {
            ccnt: 1_000,
            pmem_stall: ps,
            dmem_stall: ds,
            pcache_miss: pm,
            dcache_miss_clean: 0,
            dcache_miss_dirty: 0,
        },
    )
}

fn assert_ilp_matches_brute_force(
    scenario: ScenarioConstraints,
    a: &IsolationProfile,
    b: &IsolationProfile,
) {
    let platform = Platform::tc277_reference();
    let expected = brute_force_optimum(&platform, &scenario, a.counters(), b.counters());
    let model = IlpPtacModel::with_options(
        &platform,
        IlpPtacOptions {
            node_budget: 100_000,
            ..IlpPtacOptions::for_scenario(scenario)
        },
    );
    let sol = model.solve_detailed(a, b).unwrap();
    assert!(!sol.relaxed, "tiny instances must solve exactly");
    assert_eq!(
        sol.bound.delta_cycles, expected,
        "ILP vs brute force mismatch"
    );
    // The ILP witness itself must satisfy the enumerated constraints.
    let to_vec = |c: &contention::AccessCounts| -> [u64; 7] {
        std::array::from_fn(|i| c.get(PAIRS[i].0, PAIRS[i].1))
    };
    let na = to_vec(&sol.na);
    let nb = to_vec(sol.nb.as_ref().unwrap());
    let nba = to_vec(sol.bound.interference.as_ref().unwrap());
    assert!(feasible_interference(&nba, &na, &nb));
}

#[test]
fn unconstrained_tiny_profiles() {
    // Stall budgets small enough for full enumeration (bounds ≤ 2).
    let a = profile("a", 12, 20, 0);
    let b = profile("b", 12, 20, 0);
    assert_ilp_matches_brute_force(ScenarioConstraints::unconstrained(), &a, &b);
}

#[test]
fn unconstrained_asymmetric_profiles() {
    let a = profile("a", 12, 42, 0);
    let b = profile("b", 6, 11, 0);
    assert_ilp_matches_brute_force(ScenarioConstraints::unconstrained(), &a, &b);
}

#[test]
fn scenario1_tiny_profiles() {
    // PM pins the code counts exactly; data confined to the LMU.
    let a = profile("a", 12, 20, 2);
    let b = profile("b", 12, 10, 1);
    assert_ilp_matches_brute_force(ScenarioConstraints::scenario1(), &a, &b);
}

#[test]
fn scenario2_tiny_profiles() {
    let mut ca = DebugCounters {
        ccnt: 1_000,
        pmem_stall: 12,
        dmem_stall: 22,
        pcache_miss: 2,
        dcache_miss_clean: 1,
        dcache_miss_dirty: 0,
    };
    let a = IsolationProfile::new("a", ca);
    ca.pcache_miss = 1;
    ca.dmem_stall = 11;
    let b = IsolationProfile::new("b", ca);
    assert_ilp_matches_brute_force(ScenarioConstraints::scenario2(), &a, &b);
}

#[test]
fn zero_contender_brute_force() {
    let a = profile("a", 12, 20, 0);
    let b = profile("b", 0, 0, 0);
    assert_ilp_matches_brute_force(ScenarioConstraints::unconstrained(), &a, &b);
}
