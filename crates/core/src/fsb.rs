//! The front-side-bus (FSB) reduction of the cross-bar model (§4.3).
//!
//! Prior contention models ([7], [13], [16] in the paper) target
//! bus-based interconnects where *every* pair of requests conflicts.
//! The paper argues its cross-bar model subsumes them: "we consider the
//! FSB model to be a reduced case for the more generic cross-bar
//! model". This module makes that claim executable by collapsing the
//! four SRI slaves into a single shared bus:
//!
//! * every request of the analysed task can be delayed by any request
//!   of the contender (no per-target disjointness), and
//! * each interference event costs the *global* maximum latency.
//!
//! Comparing [`FsbModel`] against [`crate::IlpPtacModel`] quantifies
//! how much tightness the cross-bar awareness buys on the TC27x.

use crate::counts::AccessBounds;
use crate::error::ModelError;
use crate::platform::Platform;
use crate::profile::IsolationProfile;
use crate::wcet::{ContentionBound, ContentionModel};

/// A bus-style contention model: all targets collapsed into one shared
/// resource.
///
/// With `contender_aware` (the default), the number of interference
/// events is capped by the contender's own bounded request count —
/// the bus-level analogue of the ILP-PTAC model. Without it, every
/// request of the analysed task pays the worst delay — the bus-level
/// analogue of the fTC model.
///
/// # Examples
///
/// ```
/// use contention::{ContentionModel, DebugCounters, FsbModel, IlpPtacModel,
///                  IsolationProfile, Platform, ScenarioConstraints};
///
/// # fn main() -> Result<(), contention::ModelError> {
/// let platform = Platform::tc277_reference();
/// let a = IsolationProfile::new("a", DebugCounters {
///     ccnt: 100_000, pmem_stall: 600, dmem_stall: 1_000, ..Default::default()
/// });
/// let b = IsolationProfile::new("b", DebugCounters {
///     ccnt: 100_000, pmem_stall: 300, dmem_stall: 500, ..Default::default()
/// });
/// let fsb = FsbModel::new(&platform).pairwise_bound(&a, &b)?;
/// let xbar = IlpPtacModel::new(&platform, ScenarioConstraints::unconstrained())
///     .pairwise_bound(&a, &b)?;
/// assert!(xbar.delta_cycles <= fsb.delta_cycles, "cross-bar awareness tightens");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct FsbModel<'p> {
    platform: &'p Platform,
    contender_aware: bool,
}

impl<'p> FsbModel<'p> {
    /// Creates the contender-aware bus model.
    pub fn new(platform: &'p Platform) -> Self {
        FsbModel {
            platform,
            contender_aware: true,
        }
    }

    /// Disables contender awareness: the bus-level fTC analogue.
    #[must_use]
    pub fn fully_time_composable(mut self) -> Self {
        self.contender_aware = false;
        self
    }

    /// The worst per-request delay on the collapsed bus: the global
    /// maximum latency over all feasible (target, operation) pairs.
    pub fn l_bus_max(&self) -> u64 {
        self.platform
            .paths()
            .pairs()
            .into_iter()
            .map(|(t, o)| self.platform.latency(t, o))
            .max()
            .unwrap_or_else(|| unreachable!("some pair is always feasible"))
    }
}

impl ContentionModel for FsbModel<'_> {
    fn name(&self) -> &str {
        if self.contender_aware {
            "FSB-aware"
        } else {
            "FSB-fTC"
        }
    }

    fn pairwise_bound(
        &self,
        a: &IsolationProfile,
        b: &IsolationProfile,
    ) -> Result<ContentionBound, ModelError> {
        let na = AccessBounds::from_counters(self.platform, a.counters());
        let l = self.l_bus_max();
        let events = if self.contender_aware {
            let nb = AccessBounds::from_counters(self.platform, b.counters());
            na.total().min(nb.total())
        } else {
            na.total()
        };
        // On a bus there is no per-class separation; attribute the
        // delay proportionally for reporting.
        let total = events * l;
        let code_share = if na.total() == 0 {
            0
        } else {
            total * na.code / na.total()
        };
        Ok(ContentionBound::from_parts(code_share, total - code_share))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftc::FtcModel;
    use crate::ilp_ptac::IlpPtacModel;
    use crate::profile::DebugCounters;
    use crate::scenario::ScenarioConstraints;

    fn profile(name: &str, ps: u64, ds: u64) -> IsolationProfile {
        IsolationProfile::new(
            name,
            DebugCounters {
                ccnt: 1_000_000,
                pmem_stall: ps,
                dmem_stall: ds,
                ..Default::default()
            },
        )
    }

    #[test]
    fn bus_max_is_the_dflash_latency() {
        let p = Platform::tc277_reference();
        assert_eq!(FsbModel::new(&p).l_bus_max(), 43);
    }

    #[test]
    fn arithmetic_of_the_aware_bound() {
        let p = Platform::tc277_reference();
        let a = profile("a", 600, 1_000); // n̂ = 100 + 100 = 200
        let b = profile("b", 60, 100); // n̂ = 10 + 10 = 20
        let bound = FsbModel::new(&p).pairwise_bound(&a, &b).unwrap();
        assert_eq!(bound.delta_cycles, 20 * 43);
    }

    #[test]
    fn fsb_ftc_ignores_contender() {
        let p = Platform::tc277_reference();
        let m = FsbModel::new(&p).fully_time_composable();
        let a = profile("a", 600, 1_000);
        let b1 = profile("b", 6, 10);
        let b2 = profile("b", 600_000, 1_000_000);
        assert_eq!(
            m.pairwise_bound(&a, &b1).unwrap(),
            m.pairwise_bound(&a, &b2).unwrap()
        );
        assert_eq!(m.pairwise_bound(&a, &b1).unwrap().delta_cycles, 200 * 43);
    }

    #[test]
    fn crossbar_models_dominate_their_bus_reductions() {
        // The §4.3 claim, pairwise: the bus collapse can only lose
        // tightness relative to the per-slave models.
        let p = Platform::tc277_reference();
        let a = profile("a", 6_000, 10_000);
        let b = profile("b", 3_000, 4_000);
        let fsb_ftc = FsbModel::new(&p)
            .fully_time_composable()
            .pairwise_bound(&a, &b)
            .unwrap()
            .delta_cycles;
        let ftc = FtcModel::new(&p)
            .pairwise_bound(&a, &b)
            .unwrap()
            .delta_cycles;
        assert!(ftc <= fsb_ftc, "fTC {ftc} must be ≤ FSB-fTC {fsb_ftc}");

        let fsb = FsbModel::new(&p)
            .pairwise_bound(&a, &b)
            .unwrap()
            .delta_cycles;
        let ilp = IlpPtacModel::new(&p, ScenarioConstraints::unconstrained())
            .pairwise_bound(&a, &b)
            .unwrap()
            .delta_cycles;
        assert!(ilp <= fsb, "ILP {ilp} must be ≤ FSB-aware {fsb}");
    }

    #[test]
    fn names_distinguish_variants() {
        let p = Platform::tc277_reference();
        assert_eq!(FsbModel::new(&p).name(), "FSB-aware");
        assert_eq!(FsbModel::new(&p).fully_time_composable().name(), "FSB-fTC");
    }

    #[test]
    fn zero_traffic_zero_bound() {
        let p = Platform::tc277_reference();
        let a = profile("a", 0, 0);
        let b = profile("b", 100, 100);
        assert_eq!(
            FsbModel::new(&p)
                .pairwise_bound(&a, &b)
                .unwrap()
                .delta_cycles,
            0
        );
    }
}
