//! Sensitivity analysis: how a model's bound reacts to each counter.
//!
//! For budgeting discussions ("how much LMU traffic can we still add
//! before the WCET budget breaks?") it is useful to know the marginal
//! cost of each debug counter. [`SensitivityReport::analyze`] perturbs
//! one counter at a time by a configurable step and reports the bound
//! delta — a finite-difference sensitivity that works with any
//! [`ContentionModel`], including the ILP where no closed form exists.

use crate::error::ModelError;
use crate::profile::{DebugCounters, IsolationProfile};
use crate::wcet::ContentionModel;
use std::fmt;

/// The perturbable counters of a profile.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CounterKind {
    /// PMEM_STALL.
    PmemStall,
    /// DMEM_STALL.
    DmemStall,
    /// P$_MISS.
    PcacheMiss,
    /// D$_MISS_CLEAN.
    DcacheMissClean,
    /// D$_MISS_DIRTY.
    DcacheMissDirty,
}

impl CounterKind {
    /// All perturbable counters.
    pub fn all() -> [CounterKind; 5] {
        [
            CounterKind::PmemStall,
            CounterKind::DmemStall,
            CounterKind::PcacheMiss,
            CounterKind::DcacheMissClean,
            CounterKind::DcacheMissDirty,
        ]
    }

    fn bump(self, c: &DebugCounters, step: u64) -> DebugCounters {
        let mut c = *c;
        match self {
            CounterKind::PmemStall => c.pmem_stall += step,
            CounterKind::DmemStall => c.dmem_stall += step,
            CounterKind::PcacheMiss => c.pcache_miss += step,
            CounterKind::DcacheMissClean => c.dcache_miss_clean += step,
            CounterKind::DcacheMissDirty => c.dcache_miss_dirty += step,
        }
        c
    }
}

impl fmt::Display for CounterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterKind::PmemStall => write!(f, "PMEM_STALL"),
            CounterKind::DmemStall => write!(f, "DMEM_STALL"),
            CounterKind::PcacheMiss => write!(f, "P$_MISS"),
            CounterKind::DcacheMissClean => write!(f, "D$_MISS_CLEAN"),
            CounterKind::DcacheMissDirty => write!(f, "D$_MISS_DIRTY"),
        }
    }
}

/// Which side of the analysis a perturbation applies to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Side {
    /// Perturb the analysed task's profile.
    Analysed,
    /// Perturb the contender's profile.
    Contender,
}

/// One sensitivity entry: bound growth per unit of counter growth.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Sensitivity {
    /// The perturbed counter.
    pub counter: CounterKind,
    /// Which profile was perturbed.
    pub side: Side,
    /// Bound delta for the whole `step` perturbation (cycles).
    pub bound_delta: i64,
    /// The perturbation step used.
    pub step: u64,
}

impl Sensitivity {
    /// Marginal cost: bound cycles per counter unit.
    pub fn per_unit(&self) -> f64 {
        self.bound_delta as f64 / self.step as f64
    }
}

/// A full finite-difference sensitivity report.
#[derive(Clone, Debug)]
pub struct SensitivityReport {
    entries: Vec<Sensitivity>,
}

impl SensitivityReport {
    /// Perturbs each counter of the analysed task and of the contender
    /// by `step` and records the bound deltas under `model`.
    ///
    /// # Errors
    ///
    /// Propagates model evaluation errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use contention::{DebugCounters, FtcModel, IsolationProfile, Platform,
    ///                  SensitivityReport};
    ///
    /// # fn main() -> Result<(), contention::ModelError> {
    /// let platform = Platform::tc277_reference();
    /// let a = IsolationProfile::new("a", DebugCounters {
    ///     ccnt: 10_000, pmem_stall: 600, dmem_stall: 1_000, ..Default::default()
    /// });
    /// let b = IsolationProfile::new("b", DebugCounters::default());
    /// let report = SensitivityReport::analyze(&FtcModel::new(&platform), &a, &b, 60)?;
    /// // 60 extra PMEM_STALL cycles = 10 extra code requests × 16 cycles.
    /// let s = report.for_counter(contention::CounterKind::PmemStall,
    ///                            contention::Sensitivity::ANALYSED_SIDE);
    /// assert_eq!(s.unwrap().bound_delta, 160);
    /// # Ok(())
    /// # }
    /// ```
    pub fn analyze<M: ContentionModel>(
        model: &M,
        a: &IsolationProfile,
        b: &IsolationProfile,
        step: u64,
    ) -> Result<SensitivityReport, ModelError> {
        let base = model.pairwise_bound(a, b)?.delta_cycles as i64;
        let mut entries = Vec::new();
        for counter in CounterKind::all() {
            for side in [Side::Analysed, Side::Contender] {
                let (pa, pb) = match side {
                    Side::Analysed => (
                        IsolationProfile::new(a.name(), counter.bump(a.counters(), step)),
                        b.clone(),
                    ),
                    Side::Contender => (
                        a.clone(),
                        IsolationProfile::new(b.name(), counter.bump(b.counters(), step)),
                    ),
                };
                let bumped = model.pairwise_bound(&pa, &pb)?.delta_cycles as i64;
                entries.push(Sensitivity {
                    counter,
                    side,
                    bound_delta: bumped - base,
                    step,
                });
            }
        }
        Ok(SensitivityReport { entries })
    }

    /// All entries.
    pub fn entries(&self) -> &[Sensitivity] {
        &self.entries
    }

    /// Looks up one entry.
    pub fn for_counter(&self, counter: CounterKind, side: Side) -> Option<&Sensitivity> {
        self.entries
            .iter()
            .find(|s| s.counter == counter && s.side == side)
    }

    /// The counter with the largest marginal cost on the analysed side.
    pub fn dominant(&self) -> Option<&Sensitivity> {
        self.entries
            .iter()
            .filter(|s| s.side == Side::Analysed)
            .max_by_key(|s| s.bound_delta)
    }
}

impl Sensitivity {
    /// Convenience alias for [`Side::Analysed`] in doc examples.
    pub const ANALYSED_SIDE: Side = Side::Analysed;
    /// Convenience alias for [`Side::Contender`].
    pub const CONTENDER_SIDE: Side = Side::Contender;
}

impl fmt::Display for SensitivityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.entries {
            writeln!(
                f,
                "{:<14} ({:?}): {:+} cycles / {} units ({:+.2}/unit)",
                s.counter.to_string(),
                s.side,
                s.bound_delta,
                s.step,
                s.per_unit()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftc::FtcModel;
    use crate::ilp_ptac::IlpPtacModel;
    use crate::platform::Platform;
    use crate::scenario::ScenarioConstraints;

    fn profile(name: &str, ps: u64, ds: u64) -> IsolationProfile {
        IsolationProfile::new(
            name,
            DebugCounters {
                ccnt: 100_000,
                pmem_stall: ps,
                dmem_stall: ds,
                ..Default::default()
            },
        )
    }

    #[test]
    fn ftc_sensitivities_match_closed_form() {
        let p = Platform::tc277_reference();
        let a = profile("a", 600, 1_000);
        let b = profile("b", 0, 0);
        let r = SensitivityReport::analyze(&FtcModel::new(&p), &a, &b, 60).unwrap();
        // +60 PS = +10 code requests × lco_max(16) = +160.
        assert_eq!(
            r.for_counter(CounterKind::PmemStall, Side::Analysed)
                .unwrap()
                .bound_delta,
            160
        );
        // +60 DS = +6 data requests × lda_max(43) = +258.
        assert_eq!(
            r.for_counter(CounterKind::DmemStall, Side::Analysed)
                .unwrap()
                .bound_delta,
            258
        );
        // fTC ignores the contender entirely.
        for c in CounterKind::all() {
            assert_eq!(
                r.for_counter(c, Side::Contender).unwrap().bound_delta,
                0,
                "{c}"
            );
        }
    }

    #[test]
    fn ilp_contender_sensitivity_is_positive_when_binding() {
        let p = Platform::tc277_reference();
        // Contender lighter than the app: its counters bind the min().
        let a = profile("a", 6_000, 10_000);
        let b = profile("b", 600, 1_000);
        let model = IlpPtacModel::new(&p, ScenarioConstraints::unconstrained());
        let r = SensitivityReport::analyze(&model, &a, &b, 600).unwrap();
        let s = r
            .for_counter(CounterKind::DmemStall, Side::Contender)
            .unwrap();
        assert!(s.bound_delta > 0, "contender data traffic binds: {s:?}");
    }

    #[test]
    fn dominant_picks_largest_analysed_entry() {
        let p = Platform::tc277_reference();
        let a = profile("a", 600, 1_000);
        let b = profile("b", 0, 0);
        let r = SensitivityReport::analyze(&FtcModel::new(&p), &a, &b, 60).unwrap();
        // Data stalls cost 43/10 per cycle vs code's 16/6: data dominates.
        assert_eq!(r.dominant().unwrap().counter, CounterKind::DmemStall);
    }

    #[test]
    fn report_displays_all_entries() {
        let p = Platform::tc277_reference();
        let a = profile("a", 60, 100);
        let b = profile("b", 60, 100);
        let r = SensitivityReport::analyze(&FtcModel::new(&p), &a, &b, 10).unwrap();
        assert_eq!(r.entries().len(), 10);
        let text = r.to_string();
        assert!(text.contains("PMEM_STALL"));
        assert!(text.contains("D$_MISS_DIRTY"));
    }
}
