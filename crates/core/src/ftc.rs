//! The fully time-composable (fTC) model (§3.4, Eqs. 6–8).
//!
//! Uses only the analysed task's cumulative stall counters: every one of
//! its (bounded) requests is assumed to suffer the longest delay any
//! contender request could inflict on the interfaces that class of
//! request can address:
//!
//! ```text
//! l^{co}_max = max(l^{pf0,co}, l^{pf0,da}, l^{pf1,co}, l^{pf1,da}, l^{lmu,co}, l^{lmu,da})   (Eq. 6)
//! l^{da}_max = max(l^{co}_max, l^{dfl,da})                                                   (Eq. 7)
//! Δcont     = n̂^{co}_a · l^{co}_max + n̂^{da}_a · l^{da}_max                                  (Eq. 8)
//! ```
//!
//! The result is valid against *any* contender under *any* schedule —
//! and correspondingly pessimistic (Figure 4).

use crate::counts::AccessBounds;
use crate::error::ModelError;
use crate::platform::{Operation, Platform, Target};
use crate::profile::IsolationProfile;
use crate::wcet::{ContentionBound, ContentionModel};

/// The fTC model.
///
/// With [`FtcModel::assume_dirty_lmu`], cacheable-LMU interference is
/// charged at the dirty-miss latency (Table 2's bracketed 21 cycles) —
/// the pessimistic assumption §4.1 describes for Scenario 2, where
/// contender data in the LMU is cacheable and write-backs can occur.
///
/// # Examples
///
/// ```
/// use contention::{ContentionModel, DebugCounters, FtcModel, IsolationProfile, Platform};
///
/// # fn main() -> Result<(), contention::ModelError> {
/// let platform = Platform::tc277_reference();
/// let a = IsolationProfile::new("app", DebugCounters {
///     ccnt: 100_000, pmem_stall: 600, dmem_stall: 1000, ..Default::default()
/// });
/// let b = IsolationProfile::new("load", DebugCounters::default());
/// let bound = FtcModel::new(&platform).pairwise_bound(&a, &b)?;
/// // n̂co = 100, n̂da = 100: 100×16 + 100×43.
/// assert_eq!(bound.delta_cycles, 100 * 16 + 100 * 43);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct FtcModel<'p> {
    platform: &'p Platform,
    assume_dirty_lmu: bool,
}

impl<'p> FtcModel<'p> {
    /// Creates the model with plain Table 2 latencies.
    pub fn new(platform: &'p Platform) -> Self {
        FtcModel {
            platform,
            assume_dirty_lmu: false,
        }
    }

    /// Charges LMU interference at the dirty-miss latency (Scenario 2
    /// pessimism).
    #[must_use]
    pub fn assume_dirty_lmu(mut self) -> Self {
        self.assume_dirty_lmu = true;
        self
    }

    fn lmu_latency(&self, op: Operation) -> u64 {
        if self.assume_dirty_lmu && op == Operation::Data {
            self.platform.lmu_dirty_latency()
        } else {
            self.platform.latency(Target::Lmu, op)
        }
    }

    /// Eq. 6: the longest delay a code request of the analysed task can
    /// suffer.
    pub fn l_code_max(&self) -> u64 {
        self.platform
            .paths()
            .targets_for(Operation::Code)
            .into_iter()
            .flat_map(|t| {
                Operation::all().into_iter().filter_map(move |o| {
                    // Interfering requests of either type can occupy the
                    // interface, provided that type can address it.
                    self.platform.paths().is_feasible(t, o).then_some((t, o))
                })
            })
            .map(|(t, o)| {
                if t == Target::Lmu {
                    self.lmu_latency(o)
                } else {
                    self.platform.latency(t, o)
                }
            })
            .max()
            .unwrap_or_else(|| unreachable!("code can reach at least one target"))
    }

    /// Eq. 7: the longest delay a data request can suffer (adds the
    /// data-flash path).
    pub fn l_data_max(&self) -> u64 {
        self.l_code_max()
            .max(self.platform.latency(Target::Dfl, Operation::Data))
    }
}

impl ContentionModel for FtcModel<'_> {
    fn name(&self) -> &str {
        "fTC"
    }

    /// Eq. 8. The contender profile is deliberately ignored — full time
    /// composability means the bound holds whatever `b` does.
    fn pairwise_bound(
        &self,
        a: &IsolationProfile,
        _b: &IsolationProfile,
    ) -> Result<ContentionBound, ModelError> {
        let bounds = AccessBounds::from_counters(self.platform, a.counters());
        let code = bounds.code * self.l_code_max();
        let data = bounds.data * self.l_data_max();
        Ok(ContentionBound::from_parts(code, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DebugCounters;

    fn profile(ps: u64, ds: u64) -> IsolationProfile {
        IsolationProfile::new(
            "a",
            DebugCounters {
                ccnt: 1,
                pmem_stall: ps,
                dmem_stall: ds,
                ..Default::default()
            },
        )
    }

    #[test]
    fn reference_maxima() {
        let p = Platform::tc277_reference();
        let m = FtcModel::new(&p);
        // Eq. 6 over pf/lmu latencies: max(16,16,16,16,11,11) = 16.
        assert_eq!(m.l_code_max(), 16);
        // Eq. 7 adds dfl: max(16, 43) = 43.
        assert_eq!(m.l_data_max(), 43);
    }

    #[test]
    fn dirty_lmu_raises_code_max() {
        let p = Platform::tc277_reference();
        let m = FtcModel::new(&p).assume_dirty_lmu();
        // lmu data interference now costs 21, still below pf's 16? No:
        // max(16, 21) = 21.
        assert_eq!(m.l_code_max(), 21);
        assert_eq!(m.l_data_max(), 43);
    }

    #[test]
    fn bound_is_contender_independent() {
        let p = Platform::tc277_reference();
        let m = FtcModel::new(&p);
        let a = profile(600, 1000);
        let light = profile(1, 1);
        let heavy = profile(1_000_000, 1_000_000);
        let b1 = m.pairwise_bound(&a, &light).unwrap();
        let b2 = m.pairwise_bound(&a, &heavy).unwrap();
        assert_eq!(b1, b2, "fTC ignores the contender by construction");
    }

    #[test]
    fn eq8_arithmetic() {
        let p = Platform::tc277_reference();
        let m = FtcModel::new(&p);
        // n̂co = ceil(13/6) = 3, n̂da = ceil(25/10) = 3.
        let bound = m.pairwise_bound(&profile(13, 25), &profile(0, 0)).unwrap();
        assert_eq!(bound.code_delta, 3 * 16);
        assert_eq!(bound.data_delta, 3 * 43);
        assert!(bound.interference.is_none());
    }

    #[test]
    fn zero_traffic_zero_bound() {
        let p = Platform::tc277_reference();
        let m = FtcModel::new(&p);
        let bound = m.pairwise_bound(&profile(0, 0), &profile(9, 9)).unwrap();
        assert_eq!(bound.delta_cycles, 0);
    }
}
