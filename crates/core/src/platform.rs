//! The analysed platform: SRI targets, operation types, latency and
//! stall tables (Table 2) and the feasible access paths (Figure 2).
//!
//! This crate is deliberately independent of the simulator: it consumes
//! only numbers a Debug Support Unit (or a calibration campaign) can
//! produce, exactly like the paper's method.

use std::fmt;

/// An SRI target resource, `T = {dfl, pf0, pf1, lmu}` (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Target {
    /// Program flash bank 0.
    Pf0,
    /// Program flash bank 1.
    Pf1,
    /// Data flash.
    Dfl,
    /// LMU SRAM.
    Lmu,
}

impl Target {
    /// Number of targets.
    pub const COUNT: usize = 4;

    /// All targets, in a fixed order.
    pub fn all() -> [Target; Self::COUNT] {
        [Target::Pf0, Target::Pf1, Target::Dfl, Target::Lmu]
    }

    /// Dense index for array storage.
    pub fn index(self) -> usize {
        match self {
            Target::Pf0 => 0,
            Target::Pf1 => 1,
            Target::Dfl => 2,
            Target::Lmu => 3,
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Pf0 => write!(f, "pf0"),
            Target::Pf1 => write!(f, "pf1"),
            Target::Dfl => write!(f, "dfl"),
            Target::Lmu => write!(f, "lmu"),
        }
    }
}

/// An operation type, `O = {co, da}` (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Operation {
    /// Code (instruction fetch) requests.
    Code,
    /// Data (load/store) requests.
    Data,
}

impl Operation {
    /// Number of operation types.
    pub const COUNT: usize = 2;

    /// Both operation types.
    pub fn all() -> [Operation; Self::COUNT] {
        [Operation::Code, Operation::Data]
    }

    /// Dense index for array storage.
    pub fn index(self) -> usize {
        match self {
            Operation::Code => 0,
            Operation::Data => 1,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Code => write!(f, "co"),
            Operation::Data => write!(f, "da"),
        }
    }
}

/// A dense `(target, operation)`-indexed table of `u64` values, used for
/// latencies, stall cycles and access counts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct PerTargetOp {
    cells: [[u64; Operation::COUNT]; Target::COUNT],
}

impl PerTargetOp {
    /// All-zero table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a table from a function.
    pub fn from_fn(mut f: impl FnMut(Target, Operation) -> u64) -> Self {
        let mut t = Self::new();
        for target in Target::all() {
            for op in Operation::all() {
                t.set(target, op, f(target, op));
            }
        }
        t
    }

    /// Reads a cell.
    pub fn get(&self, target: Target, op: Operation) -> u64 {
        self.cells[target.index()][op.index()]
    }

    /// Writes a cell.
    pub fn set(&mut self, target: Target, op: Operation, value: u64) {
        self.cells[target.index()][op.index()] = value;
    }

    /// Iterates over `(target, op, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (Target, Operation, u64)> + '_ {
        Target::all().into_iter().flat_map(move |t| {
            Operation::all()
                .into_iter()
                .map(move |o| (t, o, self.get(t, o)))
        })
    }

    /// Sum across all cells.
    pub fn total(&self) -> u64 {
        self.iter().map(|(_, _, v)| v).sum()
    }

    /// Sum across targets for one operation type.
    pub fn op_total(&self, op: Operation) -> u64 {
        Target::all().iter().map(|t| self.get(*t, op)).sum()
    }
}

impl fmt::Display for PerTargetOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, o, v) in self.iter() {
            write!(f, "{t}/{o}={v} ")?;
        }
        Ok(())
    }
}

/// Which `(target, operation)` pairs are architecturally possible
/// (Figure 2): code can reach pf0/pf1/lmu; data can reach all four
/// targets.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct AccessPaths {
    feasible: [[bool; Operation::COUNT]; Target::COUNT],
}

impl AccessPaths {
    /// The TC27x paths of Figure 2.
    pub fn tc27x() -> Self {
        let mut feasible = [[false; Operation::COUNT]; Target::COUNT];
        for t in [Target::Pf0, Target::Pf1, Target::Lmu] {
            feasible[t.index()][Operation::Code.index()] = true;
        }
        for t in Target::all() {
            feasible[t.index()][Operation::Data.index()] = true;
        }
        AccessPaths { feasible }
    }

    /// The paths of a described platform: a `(target, op)` pair is
    /// feasible iff the slot exists and the slave accepts that class.
    /// [`Target`] slot `i` is the description's slave slot `i`.
    pub fn from_desc(desc: &::platform::PlatformDesc) -> Self {
        let mut feasible = [[false; Operation::COUNT]; Target::COUNT];
        for t in Target::all() {
            let s = desc.slave(t.index());
            if s.present {
                feasible[t.index()][Operation::Code.index()] = s.code;
                feasible[t.index()][Operation::Data.index()] = s.data;
            }
        }
        AccessPaths { feasible }
    }

    /// Returns `true` if `op` requests can address `target`.
    pub fn is_feasible(&self, target: Target, op: Operation) -> bool {
        self.feasible[target.index()][op.index()]
    }

    /// All feasible `(target, op)` pairs.
    pub fn pairs(&self) -> Vec<(Target, Operation)> {
        Target::all()
            .into_iter()
            .flat_map(|t| Operation::all().into_iter().map(move |o| (t, o)))
            .filter(|(t, o)| self.is_feasible(*t, *o))
            .collect()
    }

    /// Feasible targets for one operation type.
    pub fn targets_for(&self, op: Operation) -> Vec<Target> {
        Target::all()
            .into_iter()
            .filter(|t| self.is_feasible(*t, op))
            .collect()
    }
}

impl Default for AccessPaths {
    fn default() -> Self {
        AccessPaths::tc27x()
    }
}

/// The analysed platform: worst-case request latencies `l^{t,o}`,
/// best-case stall cycles `cs^{t,o}` and the feasible access paths.
///
/// # Examples
///
/// ```
/// use contention::{Operation, Platform, Target};
///
/// let p = Platform::tc277_reference();
/// assert_eq!(p.latency(Target::Dfl, Operation::Data), 43);
/// assert_eq!(p.stall(Target::Pf0, Operation::Code), 6);
/// assert_eq!(p.cs_code_min(), 6);  // Eq. 2
/// assert_eq!(p.cs_data_min(), 10); // Eq. 3
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Platform {
    latency: PerTargetOp,
    stall: PerTargetOp,
    paths: AccessPaths,
    /// End-to-end latency of an LMU dirty-miss (write-back + fill), the
    /// bracketed `(21)` of Table 2. Only the fTC model's pessimistic
    /// variant uses it.
    lmu_dirty_latency: u64,
}

impl Platform {
    /// The TC277 reference platform: the Table 2 values, derived from
    /// the default platform description (the constants themselves live
    /// only in `platform::PlatformDesc::tc27x`).
    pub fn tc277_reference() -> Self {
        Platform::from_desc(::platform::default_platform())
    }

    /// Derives the model tables from a platform description.
    ///
    /// * `l^{t,o}` (latency) — the per-access worst-case interference
    ///   charge the slot's arbitration policy admits
    ///   (`PlatformDesc::contention_charge`): one full contender
    ///   service under round-robin, rank-dependent service or blocking
    ///   under fixed priority, the exact worst slot-alignment wait
    ///   `(S−1)·slot_len + service − 1` under TDMA. Infeasible pairs
    ///   stay 0.
    /// * `cs^{t,o}` (stall) — the best-case stall of an own access:
    ///   sequential service minus the hidden pipeline cycles (prefetch
    ///   hide for code on prefetching slaves, the posted address phase
    ///   for data).
    /// * The dirty-miss charge is `PlatformDesc::dirty_charge` (the
    ///   TC27x's bracketed 21).
    pub fn from_desc(desc: &::platform::PlatformDesc) -> Self {
        let paths = AccessPaths::from_desc(desc);
        let latency = PerTargetOp::from_fn(|t, o| {
            if !paths.is_feasible(t, o) {
                return 0;
            }
            desc.contention_charge(t.index(), desc.slave(t.index()).service)
        });
        let stall = PerTargetOp::from_fn(|t, o| {
            if !paths.is_feasible(t, o) {
                return 0;
            }
            let s = desc.slave(t.index());
            let hide = match o {
                Operation::Code if s.prefetch => desc.fetch_prefetch_hide,
                Operation::Code => 0,
                Operation::Data => desc.data_hide,
            };
            u64::from(s.service_sequential.saturating_sub(hide))
        });
        Platform {
            latency,
            stall,
            paths,
            lmu_dirty_latency: desc.dirty_charge(Target::Lmu.index()),
        }
    }

    /// Builds a platform from calibrated tables (e.g. the output of the
    /// MBTA calibration campaign).
    pub fn from_tables(latency: PerTargetOp, stall: PerTargetOp, lmu_dirty_latency: u64) -> Self {
        Platform {
            latency,
            stall,
            paths: AccessPaths::tc27x(),
            lmu_dirty_latency,
        }
    }

    /// Worst-case latency `l^{t,o}` of an `op` request at `target`.
    pub fn latency(&self, target: Target, op: Operation) -> u64 {
        self.latency.get(target, op)
    }

    /// Best-case stall cycles `cs^{t,o}` of an `op` request at `target`.
    pub fn stall(&self, target: Target, op: Operation) -> u64 {
        self.stall.get(target, op)
    }

    /// The feasible access paths.
    pub fn paths(&self) -> &AccessPaths {
        &self.paths
    }

    /// The full latency table.
    pub fn latency_table(&self) -> &PerTargetOp {
        &self.latency
    }

    /// The full stall table.
    pub fn stall_table(&self) -> &PerTargetOp {
        &self.stall
    }

    /// LMU dirty-miss end-to-end latency (Table 2's bracketed value).
    pub fn lmu_dirty_latency(&self) -> u64 {
        self.lmu_dirty_latency
    }

    /// Eq. 2: the smallest stall a code request can incur, over the
    /// targets code can address.
    pub fn cs_code_min(&self) -> u64 {
        self.paths
            .targets_for(Operation::Code)
            .into_iter()
            .map(|t| self.stall(t, Operation::Code))
            .min()
            .unwrap_or_else(|| unreachable!("code can always reach some target"))
    }

    /// Eq. 3: the smallest stall a data request can incur.
    pub fn cs_data_min(&self) -> u64 {
        self.paths
            .targets_for(Operation::Data)
            .into_iter()
            .map(|t| self.stall(t, Operation::Data))
            .min()
            .unwrap_or_else(|| unreachable!("data can always reach some target"))
    }
}

impl Default for Platform {
    fn default() -> Self {
        Platform::tc277_reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reference_values() {
        let p = Platform::tc277_reference();
        use Operation::{Code, Data};
        use Target::{Dfl, Lmu, Pf0, Pf1};
        assert_eq!(p.latency(Pf0, Code), 16);
        assert_eq!(p.latency(Pf1, Data), 16);
        assert_eq!(p.latency(Lmu, Code), 11);
        assert_eq!(p.latency(Dfl, Data), 43);
        assert_eq!(p.stall(Pf0, Code), 6);
        assert_eq!(p.stall(Pf1, Data), 11);
        assert_eq!(p.stall(Lmu, Code), 11);
        assert_eq!(p.stall(Lmu, Data), 10);
        assert_eq!(p.stall(Dfl, Data), 42);
        assert_eq!(p.lmu_dirty_latency(), 21);
    }

    #[test]
    fn eq2_eq3_minimum_stalls() {
        let p = Platform::tc277_reference();
        // cs_co_min = min(6, 6, 11) = 6; cs_da_min = min(11, 11, 10, 42) = 10.
        assert_eq!(p.cs_code_min(), 6);
        assert_eq!(p.cs_data_min(), 10);
    }

    #[test]
    fn figure2_access_paths() {
        let paths = AccessPaths::tc27x();
        assert!(!paths.is_feasible(Target::Dfl, Operation::Code));
        assert!(paths.is_feasible(Target::Dfl, Operation::Data));
        assert_eq!(paths.targets_for(Operation::Code).len(), 3);
        assert_eq!(paths.targets_for(Operation::Data).len(), 4);
        assert_eq!(paths.pairs().len(), 7);
    }

    #[test]
    fn per_target_op_accessors() {
        let mut t = PerTargetOp::new();
        t.set(Target::Lmu, Operation::Data, 5);
        t.set(Target::Pf0, Operation::Code, 3);
        assert_eq!(t.get(Target::Lmu, Operation::Data), 5);
        assert_eq!(t.total(), 8);
        assert_eq!(t.op_total(Operation::Code), 3);
        assert_eq!(t.op_total(Operation::Data), 5);
        let built = PerTargetOp::from_fn(|t, o| {
            if t == Target::Pf1 && o == Operation::Code {
                9
            } else {
                0
            }
        });
        assert_eq!(built.get(Target::Pf1, Operation::Code), 9);
        assert_eq!(built.total(), 9);
    }

    #[test]
    fn custom_platform_from_tables() {
        let latency = PerTargetOp::from_fn(|_, _| 20);
        let stall = PerTargetOp::from_fn(|_, _| 5);
        let p = Platform::from_tables(latency, stall, 40);
        assert_eq!(p.latency(Target::Lmu, Operation::Code), 20);
        assert_eq!(p.cs_code_min(), 5);
        assert_eq!(p.lmu_dirty_latency(), 40);
    }

    #[test]
    fn reference_is_derived_from_the_default_description() {
        assert_eq!(
            Platform::tc277_reference(),
            Platform::from_desc(::platform::default_platform())
        );
    }

    #[test]
    fn tdma_description_yields_slot_wait_latencies() {
        let desc = ::platform::PlatformDesc::tc27x_tdma();
        let p = Platform::from_desc(&desc);
        use Operation::{Code, Data};
        // pf slot: (3−1)·16 + 16 − 1 = 47; lmu slot: 2·11 + 10 = 32;
        // dfl slot: 2·43 + 42 = 128. Stalls are isolation-side and
        // unchanged from the round-robin tables.
        assert_eq!(p.latency(Target::Pf0, Code), 47);
        assert_eq!(p.latency(Target::Lmu, Data), 32);
        assert_eq!(p.latency(Target::Dfl, Data), 128);
        assert_eq!(p.stall(Target::Pf0, Code), 6);
        assert_eq!(p.stall(Target::Lmu, Data), 10);
        // Dirty miss: two independent worst slot alignments.
        assert_eq!(
            p.lmu_dirty_latency(),
            ::platform::tdma_worst_wait(3, 11, 10) + ::platform::tdma_worst_wait(3, 11, 11)
        );
    }

    #[test]
    fn ahb2_description_shrinks_the_paths_and_tables() {
        let desc = ::platform::PlatformDesc::ahb2();
        let p = Platform::from_desc(&desc);
        use Operation::{Code, Data};
        // Only the flash (slot pf0) and sram (slot lmu) exist.
        assert!(p.paths().is_feasible(Target::Pf0, Code));
        assert!(!p.paths().is_feasible(Target::Pf1, Code));
        assert!(!p.paths().is_feasible(Target::Dfl, Data));
        assert_eq!(p.paths().pairs().len(), 4);
        // The analysed core holds the top fixed-priority class: one
        // access can only be blocked by an in-flight transaction
        // (service − 1).
        assert_eq!(p.latency(Target::Pf0, Code), 7);
        assert_eq!(p.latency(Target::Lmu, Data), 1);
        assert_eq!(p.latency(Target::Dfl, Data), 0);
        // No prefetcher: code stall is the full sequential service.
        assert_eq!(p.stall(Target::Pf0, Code), 8);
        assert_eq!(p.stall(Target::Lmu, Data), 1);
        // Code can also run from sram (stall 2), data from flash (7).
        assert_eq!(p.stall(Target::Lmu, Code), 2);
        assert_eq!(p.cs_code_min(), 2);
        assert_eq!(p.cs_data_min(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Target::Pf1.to_string(), "pf1");
        assert_eq!(Operation::Data.to_string(), "da");
        let mut t = PerTargetOp::new();
        t.set(Target::Pf0, Operation::Code, 1);
        assert!(t.to_string().contains("pf0/co=1"));
    }
}
