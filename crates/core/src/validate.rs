//! Profile validation: counter invariants checked before any model runs.
//!
//! Real TC27x DSU readings arrive noisy, saturated or mutually
//! inconsistent; feeding them to the models unchecked either panics the
//! pipeline or silently corrupts a bound that is supposed to be *sound*.
//! This module checks every [`IsolationProfile`] against the platform
//! invariants below and either repairs it (clamp-and-warn) or rejects it
//! with a machine-readable [`ModelError::InconsistentProfile`].
//!
//! ## Invariants
//!
//! With `cs_co` = [`Platform::cs_code_min`] (Eq. 2) and `cs_da` =
//! [`Platform::cs_data_min`] (Eq. 3):
//!
//! | id | invariant | rationale |
//! |----|-----------|-----------|
//! | `zero-run` | `CCNT = 0 ⇒` all counters `= 0` | a task that ran for zero cycles observed nothing |
//! | `stall-budget` | `PS + DS ≤ CCNT` | stall cycles are a subset of execution cycles (CCNT monotonicity) |
//! | `code-miss-stall` | `PM · cs_co ≤ PS` | every instruction-cache miss stalls at least `cs_co` cycles |
//! | `data-miss-stall` | `(DMC + DMD) · cs_da ≤ DS` | every data-cache miss stalls at least `cs_da` cycles |
//! | `ptac-path` | `n^{t,o} = 0` for infeasible `(t,o)` | Figure 2: e.g. code cannot address dflash |
//! | `ptac-code-stall` | `Σ_t n^{t,co} · cs^{t,co} ≤ PS` | PTAC must fit the cumulative code-stall counter |
//! | `ptac-data-stall` | `Σ_t n^{t,da} · cs^{t,da} ≤ DS` | PTAC must fit the cumulative data-stall counter |
//! | `ptac-code-cover` | `PM ≤ Σ_t n^{t,co}` | every cache miss is an SRI code request |
//!
//! All eight hold for every profile the in-tree simulator produces (and
//! must hold on silicon by construction of the DSU), so enforcing them
//! never perturbs a genuine measurement.
//!
//! ## Repair policy
//!
//! [`ValidationPolicy::Repair`] clamps counters downwards to the nearest
//! consistent value — downwards because every model treats the counters
//! as *budgets*, so shrinking them can only tighten, never unsound-en, a
//! bound derived from a contender profile, and the repaired analysed
//! task is flagged so the caller can decide whether to trust it. An
//! inconsistent PTAC attachment is dropped entirely (clamped to
//! "unknown") rather than guessed at. After repair the profile satisfies
//! every invariant; [`ValidationPolicy::Strict`] rejects instead.
//!
//! # Examples
//!
//! ```
//! use contention::validate::{ValidationPolicy, Validator};
//! use contention::{DebugCounters, IsolationProfile, Platform};
//!
//! let platform = Platform::tc277_reference();
//! // 100 misses × 6 cycles each cannot fit a 300-cycle stall counter.
//! let bad = IsolationProfile::new("app", DebugCounters {
//!     ccnt: 10_000, pmem_stall: 300, dmem_stall: 0, pcache_miss: 100,
//!     ..Default::default()
//! });
//!
//! let strict = Validator::new(&platform, ValidationPolicy::Strict);
//! assert!(strict.apply(&bad).is_err());
//!
//! let repair = Validator::new(&platform, ValidationPolicy::Repair);
//! let (fixed, report) = repair.apply(&bad).unwrap();
//! assert_eq!(fixed.counters().pcache_miss, 50); // 300 / 6
//! assert!(!report.is_clean());
//! assert!(repair.check(&fixed).is_clean());
//! ```

use crate::error::ModelError;
use crate::platform::{Operation, Platform};
use crate::profile::{AccessCounts, DebugCounters, IsolationProfile};
use std::fmt;

/// What to do with a profile that violates an invariant.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ValidationPolicy {
    /// Reject: [`Validator::apply`] returns
    /// [`ModelError::InconsistentProfile`] carrying every violated
    /// invariant.
    Strict,
    /// Clamp-and-warn: counters are clamped downwards to consistency, an
    /// inconsistent PTAC is dropped, and the report lists what changed.
    #[default]
    Repair,
}

/// The invariant a [`ValidationIssue`] refers to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[non_exhaustive]
pub enum Invariant {
    /// `CCNT = 0` but some other counter is non-zero.
    ZeroRun,
    /// `PMEM_STALL + DMEM_STALL > CCNT`.
    StallBudget,
    /// `P$_MISS · cs_co_min > PMEM_STALL`.
    CodeMissStall,
    /// `(D$_MISS_CLEAN + D$_MISS_DIRTY) · cs_da_min > DMEM_STALL`.
    DataMissStall,
    /// PTAC counts a request on an architecturally infeasible path.
    PtacPath,
    /// PTAC code requests outgrow the cumulative code-stall counter.
    PtacCodeStall,
    /// PTAC data requests outgrow the cumulative data-stall counter.
    PtacDataStall,
    /// PTAC code requests cannot cover the instruction-cache misses.
    PtacCodeCover,
}

impl Invariant {
    /// Stable machine-readable identifier.
    pub fn id(self) -> &'static str {
        match self {
            Invariant::ZeroRun => "zero-run",
            Invariant::StallBudget => "stall-budget",
            Invariant::CodeMissStall => "code-miss-stall",
            Invariant::DataMissStall => "data-miss-stall",
            Invariant::PtacPath => "ptac-path",
            Invariant::PtacCodeStall => "ptac-code-stall",
            Invariant::PtacDataStall => "ptac-data-stall",
            Invariant::PtacCodeCover => "ptac-code-cover",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One violated invariant, with the observed values and the repair the
/// [`ValidationPolicy::Repair`] policy applies (or would apply).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ValidationIssue {
    /// Which invariant was violated.
    pub invariant: Invariant,
    /// Machine-readable `key=value` description of the observation.
    pub detail: String,
    /// Machine-readable `key=value` description of the clamp.
    pub repair: String,
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant={} {} repair: {}",
            self.invariant, self.detail, self.repair
        )
    }
}

/// The outcome of validating one profile.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ValidationReport {
    /// Name of the validated task.
    pub task: String,
    /// Every violated invariant, in checking order.
    pub issues: Vec<ValidationIssue>,
    /// `true` when the returned profile differs from the input (repair
    /// policy only).
    pub repaired: bool,
}

impl ValidationReport {
    /// `true` when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Semicolon-joined machine-readable summary of every issue — the
    /// `detail` payload of [`ModelError::InconsistentProfile`].
    pub fn detail(&self) -> String {
        self.issues
            .iter()
            .map(|i| format!("invariant={} {}", i.invariant, i.detail))
            .collect::<Vec<_>>()
            .join("; ")
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "profile `{}` is consistent", self.task);
        }
        writeln!(
            f,
            "profile `{}`: {} invariant violation(s){}",
            self.task,
            self.issues.len(),
            if self.repaired { " (repaired)" } else { "" }
        )?;
        for issue in &self.issues {
            writeln!(f, "  {issue}")?;
        }
        Ok(())
    }
}

/// Validates [`IsolationProfile`]s against a [`Platform`]'s invariants.
#[derive(Clone, Copy, Debug)]
pub struct Validator<'p> {
    platform: &'p Platform,
    policy: ValidationPolicy,
}

impl<'p> Validator<'p> {
    /// Creates a validator for `platform` under `policy`.
    pub fn new(platform: &'p Platform, policy: ValidationPolicy) -> Self {
        Validator { platform, policy }
    }

    /// The policy in effect.
    pub fn policy(&self) -> ValidationPolicy {
        self.policy
    }

    /// Checks `profile` without modifying anything.
    pub fn check(&self, profile: &IsolationProfile) -> ValidationReport {
        let (_, _, report) = self.run(profile);
        report
    }

    /// Applies the policy: returns the (possibly repaired) profile and
    /// its report, or rejects under [`ValidationPolicy::Strict`].
    ///
    /// # Errors
    ///
    /// [`ModelError::InconsistentProfile`] when the policy is strict and
    /// at least one invariant is violated; the `detail` field carries
    /// every violation in `invariant=<id> key=value…` form.
    pub fn apply(
        &self,
        profile: &IsolationProfile,
    ) -> Result<(IsolationProfile, ValidationReport), ModelError> {
        let (counters, ptac, mut report) = self.run(profile);
        if report.is_clean() {
            return Ok((profile.clone(), report));
        }
        match self.policy {
            ValidationPolicy::Strict => Err(ModelError::InconsistentProfile {
                task: profile.name().to_string(),
                detail: report.detail(),
            }),
            ValidationPolicy::Repair => {
                report.repaired = true;
                let mut fixed = IsolationProfile::new(profile.name(), counters);
                if let Some(ptac) = ptac {
                    fixed = fixed.with_ptac(ptac);
                }
                Ok((fixed, report))
            }
        }
    }

    /// Checks every invariant in order, computing the repaired counters
    /// and PTAC along the way so later checks see earlier clamps (which
    /// is what makes the repaired profile consistent by construction).
    fn run(
        &self,
        profile: &IsolationProfile,
    ) -> (DebugCounters, Option<AccessCounts>, ValidationReport) {
        let mut c = *profile.counters();
        let mut issues = Vec::new();

        // zero-run: CCNT monotonicity at the origin.
        let others = [
            c.pmem_stall,
            c.dmem_stall,
            c.pcache_miss,
            c.dcache_miss_clean,
            c.dcache_miss_dirty,
        ];
        if c.ccnt == 0 && others.iter().any(|&v| v != 0) {
            issues.push(ValidationIssue {
                invariant: Invariant::ZeroRun,
                detail: format!(
                    "ccnt=0 pmem_stall={} dmem_stall={} pcache_miss={} dcache_miss_clean={} dcache_miss_dirty={}",
                    c.pmem_stall, c.dmem_stall, c.pcache_miss, c.dcache_miss_clean, c.dcache_miss_dirty
                ),
                repair: "all counters clamped to 0".into(),
            });
            c = DebugCounters::default();
        }

        // stall-budget: PS + DS ≤ CCNT.
        if c.pmem_stall.saturating_add(c.dmem_stall) > c.ccnt {
            let ps = c.pmem_stall.min(c.ccnt);
            let ds = c.dmem_stall.min(c.ccnt - ps);
            issues.push(ValidationIssue {
                invariant: Invariant::StallBudget,
                detail: format!(
                    "pmem_stall={} dmem_stall={} ccnt={}",
                    c.pmem_stall, c.dmem_stall, c.ccnt
                ),
                repair: format!("pmem_stall={ps} dmem_stall={ds}"),
            });
            c.pmem_stall = ps;
            c.dmem_stall = ds;
        }

        // code-miss-stall: PM · cs_co ≤ PS (division form avoids overflow
        // on saturated counter readings).
        let cs_co = self.platform.cs_code_min().max(1);
        if c.pcache_miss > c.pmem_stall / cs_co {
            let pm = c.pmem_stall / cs_co;
            issues.push(ValidationIssue {
                invariant: Invariant::CodeMissStall,
                detail: format!(
                    "pcache_miss={} cs_code_min={} pmem_stall={}",
                    c.pcache_miss, cs_co, c.pmem_stall
                ),
                repair: format!("pcache_miss={pm}"),
            });
            c.pcache_miss = pm;
        }

        // data-miss-stall: (DMC + DMD) · cs_da ≤ DS.
        let cs_da = self.platform.cs_data_min().max(1);
        let dm_total = c.dcache_miss_clean.saturating_add(c.dcache_miss_dirty);
        if dm_total > c.dmem_stall / cs_da {
            let cap = c.dmem_stall / cs_da;
            // Keep dirty misses first: they are the more expensive kind,
            // so preserving them keeps the repaired profile pessimistic.
            let dmd = c.dcache_miss_dirty.min(cap);
            let dmc = c.dcache_miss_clean.min(cap - dmd);
            issues.push(ValidationIssue {
                invariant: Invariant::DataMissStall,
                detail: format!(
                    "dcache_miss_clean={} dcache_miss_dirty={} cs_data_min={} dmem_stall={}",
                    c.dcache_miss_clean, c.dcache_miss_dirty, cs_da, c.dmem_stall
                ),
                repair: format!("dcache_miss_clean={dmc} dcache_miss_dirty={dmd}"),
            });
            c.dcache_miss_clean = dmc;
            c.dcache_miss_dirty = dmd;
        }

        // PTAC attachment: checked against the *repaired* counters; any
        // violation drops it (clamp to "unknown") rather than guessing a
        // per-target redistribution.
        let mut ptac = profile.ptac().copied();
        if let Some(counts) = ptac {
            if let Some(issue) = self.check_ptac(&counts, &c) {
                issues.push(issue);
                ptac = None;
            }
        }

        let report = ValidationReport {
            task: profile.name().to_string(),
            issues,
            repaired: false,
        };
        (c, ptac, report)
    }

    /// Returns the first PTAC violation against counters `c`, if any.
    fn check_ptac(&self, counts: &AccessCounts, c: &DebugCounters) -> Option<ValidationIssue> {
        let paths = self.platform.paths();
        for (t, o, v) in counts.iter() {
            if v > 0 && !paths.is_feasible(t, o) {
                return Some(ValidationIssue {
                    invariant: Invariant::PtacPath,
                    detail: format!("target={t} op={o} count={v}"),
                    repair: "ptac dropped".into(),
                });
            }
        }
        let stall_sum = |op: Operation| -> u64 {
            counts
                .iter()
                .filter(|&(t, o, _)| o == op && paths.is_feasible(t, o))
                .fold(0u64, |acc, (t, o, v)| {
                    acc.saturating_add(v.saturating_mul(self.platform.stall(t, o)))
                })
        };
        let code_stall = stall_sum(Operation::Code);
        if code_stall > c.pmem_stall {
            return Some(ValidationIssue {
                invariant: Invariant::PtacCodeStall,
                detail: format!(
                    "ptac_code_stall_min={code_stall} pmem_stall={}",
                    c.pmem_stall
                ),
                repair: "ptac dropped".into(),
            });
        }
        let data_stall = stall_sum(Operation::Data);
        if data_stall > c.dmem_stall {
            return Some(ValidationIssue {
                invariant: Invariant::PtacDataStall,
                detail: format!(
                    "ptac_data_stall_min={data_stall} dmem_stall={}",
                    c.dmem_stall
                ),
                repair: "ptac dropped".into(),
            });
        }
        let code_total = counts.op_total(Operation::Code);
        if c.pcache_miss > code_total {
            return Some(ValidationIssue {
                invariant: Invariant::PtacCodeCover,
                detail: format!("pcache_miss={} ptac_code_total={code_total}", c.pcache_miss),
                repair: "ptac dropped".into(),
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Target;

    fn platform() -> Platform {
        Platform::tc277_reference()
    }

    fn counters(ccnt: u64, ps: u64, ds: u64, pm: u64, dmc: u64, dmd: u64) -> DebugCounters {
        DebugCounters {
            ccnt,
            pmem_stall: ps,
            dmem_stall: ds,
            pcache_miss: pm,
            dcache_miss_clean: dmc,
            dcache_miss_dirty: dmd,
        }
    }

    #[test]
    fn clean_profile_passes_both_policies() {
        let p = platform();
        let profile = IsolationProfile::new("ok", counters(1_000_000, 6_000, 10_000, 800, 100, 50));
        for policy in [ValidationPolicy::Strict, ValidationPolicy::Repair] {
            let v = Validator::new(&p, policy);
            assert!(v.check(&profile).is_clean());
            let (out, report) = v.apply(&profile).unwrap();
            assert_eq!(out, profile);
            assert!(report.is_clean());
            assert!(!report.repaired);
        }
    }

    #[test]
    fn zero_run_clamps_everything() {
        let p = platform();
        let v = Validator::new(&p, ValidationPolicy::Repair);
        let profile = IsolationProfile::new("z", counters(0, 10, 20, 3, 1, 1));
        let (out, report) = v.apply(&profile).unwrap();
        assert_eq!(*out.counters(), DebugCounters::default());
        assert!(report
            .issues
            .iter()
            .any(|i| i.invariant == Invariant::ZeroRun));
        assert!(v.check(&out).is_clean());
    }

    #[test]
    fn stall_budget_clamp_prefers_code_stall() {
        let p = platform();
        let v = Validator::new(&p, ValidationPolicy::Repair);
        let profile = IsolationProfile::new("s", counters(100, 80, 80, 0, 0, 0));
        let (out, _) = v.apply(&profile).unwrap();
        assert_eq!(out.counters().pmem_stall, 80);
        assert_eq!(out.counters().dmem_stall, 20);
        assert!(v.check(&out).is_clean());
    }

    #[test]
    fn miss_clamps_use_platform_minima() {
        let p = platform();
        let v = Validator::new(&p, ValidationPolicy::Repair);
        let profile = IsolationProfile::new("m", counters(1_000_000, 60, 95, 100, 7, 4));
        let (out, report) = v.apply(&profile).unwrap();
        // 60 / 6 = 10 misses fit the code-stall budget.
        assert_eq!(out.counters().pcache_miss, 10);
        // 95 / 10 = 9 data misses; dirty kept first.
        assert_eq!(out.counters().dcache_miss_dirty, 4);
        assert_eq!(out.counters().dcache_miss_clean, 5);
        assert_eq!(report.issues.len(), 2);
        assert!(v.check(&out).is_clean());
    }

    #[test]
    fn strict_rejects_with_machine_readable_detail() {
        let p = platform();
        let v = Validator::new(&p, ValidationPolicy::Strict);
        let profile = IsolationProfile::new("bad", counters(5, 80, 80, 100, 0, 0));
        let err = v.apply(&profile).unwrap_err();
        match err {
            ModelError::InconsistentProfile { task, detail } => {
                assert_eq!(task, "bad");
                assert!(detail.contains("invariant=stall-budget"));
                assert!(detail.contains("invariant=code-miss-stall"));
                assert!(detail.contains("ccnt=5"));
            }
            other => panic!("expected InconsistentProfile, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_ptac_is_dropped() {
        let p = platform();
        let v = Validator::new(&p, ValidationPolicy::Repair);
        let mut ptac = AccessCounts::new();
        // Code on dflash is architecturally impossible.
        ptac.set(Target::Dfl, Operation::Code, 5);
        let profile = IsolationProfile::new("x", counters(1_000_000, 6_000, 10_000, 800, 0, 0))
            .with_ptac(ptac);
        let (out, report) = v.apply(&profile).unwrap();
        assert!(out.ptac().is_none());
        assert!(report
            .issues
            .iter()
            .any(|i| i.invariant == Invariant::PtacPath));
        assert!(v.check(&out).is_clean());
    }

    #[test]
    fn ptac_stall_and_cover_checks() {
        let p = platform();
        let v = Validator::new(&p, ValidationPolicy::Repair);
        // 2_000 pf0 code requests × 6 stall cycles > 6_000 stall budget.
        let mut heavy = AccessCounts::new();
        heavy.set(Target::Pf0, Operation::Code, 2_000);
        let profile = IsolationProfile::new("x", counters(1_000_000, 6_000, 10_000, 800, 0, 0))
            .with_ptac(heavy);
        let report = v.check(&profile);
        assert!(report
            .issues
            .iter()
            .any(|i| i.invariant == Invariant::PtacCodeStall));

        // 100 code requests cannot cover 800 cache misses.
        let mut thin = AccessCounts::new();
        thin.set(Target::Pf0, Operation::Code, 100);
        let profile = IsolationProfile::new("x", counters(1_000_000, 6_000, 10_000, 800, 0, 0))
            .with_ptac(thin);
        let report = v.check(&profile);
        assert!(report
            .issues
            .iter()
            .any(|i| i.invariant == Invariant::PtacCodeCover));
    }

    #[test]
    fn saturated_counters_do_not_overflow() {
        let p = platform();
        let v = Validator::new(&p, ValidationPolicy::Repair);
        let profile = IsolationProfile::new(
            "sat",
            counters(u64::MAX, u64::MAX, u64::MAX, u64::MAX, u64::MAX, u64::MAX),
        );
        let (out, _) = v.apply(&profile).unwrap();
        assert!(v.check(&out).is_clean());
    }

    #[test]
    fn report_display_lists_issues() {
        let p = platform();
        let v = Validator::new(&p, ValidationPolicy::Repair);
        let profile = IsolationProfile::new("noisy", counters(5, 80, 80, 100, 0, 0));
        let (_, report) = v.apply(&profile).unwrap();
        let text = report.to_string();
        assert!(text.contains("`noisy`"));
        assert!(text.contains("repaired"));
        assert!(text.contains("invariant=stall-budget"));
    }
}
