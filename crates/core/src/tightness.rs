//! Bound-tightness auditing: observed contention vs modelled budget.
//!
//! The simulator's attribution ledger reports, per access class, how
//! many wait cycles the analysed core actually lost to *other cores'*
//! transactions (interference — schedule alignment excluded, because it
//! exists in isolation too and is part of the isolation WCET, not of
//! `Δcont`). This module compares those observations against what the
//! models budgeted:
//!
//! * **class interference** vs the fTC budget `k · n̂_c · l_c^max`
//!   (Eq. 6–8 latency maxima times the Eq. 2–4 access bound, per
//!   contender) — how much of the modelled `Δcont` was really consumed;
//! * **class accesses** vs the access bound `n̂_c` itself (Eq. 2–4) —
//!   how much the stall-derived access count over-approximates;
//! * **per-grant wait** vs the arbitration-level single-access bound
//!   ([`per_grant_wait_bound`]) — the worst stall any one access
//!   suffered against the worst the arbiter admits.
//!
//! Every row carries `observed`, `bound` and their ratio; a row with
//! `observed > bound` is a *violation* — either the platform breaks a
//! model assumption (e.g. the analysed core is outprioritized, reported
//! as an unbounded row) or a model is unsound, which the CI tightness
//! stage treats as fatal. The crate stays simulator-independent:
//! observations arrive as plain numbers ([`ObservedContention`]).

use crate::counts::AccessBounds;
use crate::ftc::FtcModel;
use crate::platform::{Operation, Platform, Target};
use crate::profile::IsolationProfile;
use std::fmt;

/// What a co-run measurement observed about the analysed core, distilled
/// from an attribution ledger. Plain numbers on purpose: the model crate
/// never links the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ObservedContention {
    /// Co-running aggressor cores.
    pub contenders: usize,
    /// Per class (indexed by [`Operation::index`]): wait cycles of the
    /// analysed core charged to other cores.
    pub interference: [u64; Operation::COUNT],
    /// Per class: granted SRI accesses of the analysed core.
    pub grants: [u64; Operation::COUNT],
    /// Per slave slot (indexed like [`Target::index`]): the largest
    /// cross-core wait any single grant of the analysed core suffered.
    /// Self-delay (the core's own other master occupying the slave) and
    /// schedule alignment are excluded — both exist in isolation, so the
    /// arbitration-level bound only covers contender-caused cycles.
    pub max_wait: [u64; Target::COUNT],
}

/// What a [`TightnessRow`] audits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuditKind {
    /// Class interference vs the fTC contention budget.
    ClassWait,
    /// Class access count vs the Eq. 2–4 access bound.
    ClassAccesses,
    /// Worst single-grant wait vs the arbitration-level bound.
    GrantWait,
}

impl fmt::Display for AuditKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AuditKind::ClassWait => "class-wait",
            AuditKind::ClassAccesses => "accesses",
            AuditKind::GrantWait => "grant-wait",
        })
    }
}

/// One observed-vs-bound comparison.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TightnessRow {
    /// What is audited, e.g. `co` or `pf0`.
    pub label: String,
    /// Which audit produced the row.
    pub kind: AuditKind,
    /// The measured value.
    pub observed: u64,
    /// The modelled bound; `None` when the platform admits no finite
    /// bound for the analysed core (outprioritized under priority
    /// arbitration).
    pub bound: Option<u64>,
}

impl TightnessRow {
    /// `observed ≤ bound` (an unbounded row is vacuously sound).
    pub fn sound(&self) -> bool {
        self.bound.is_none_or(|b| self.observed <= b)
    }

    /// `observed / bound` in permille, `None` for unbounded or zero
    /// bounds. 1000 means the bound was met exactly.
    pub fn tightness_permille(&self) -> Option<u64> {
        match self.bound {
            Some(b) if b > 0 => Some(self.observed.saturating_mul(1000) / b),
            _ => None,
        }
    }
}

/// A per-scenario tightness audit: every class and every present slave,
/// rendered for reports and checked by CI.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TightnessReport {
    /// Platform the scenario ran on.
    pub platform: String,
    /// Scenario label (e.g. `sc1/core0`).
    pub scenario: String,
    /// The audit rows.
    pub rows: Vec<TightnessRow>,
}

/// `true` when some other core's strictly higher priority class lets it
/// starve the analysed core under priority-aware round-robin.
fn strictly_outprioritized(desc: &::platform::PlatformDesc) -> bool {
    let mine = desc.master_priority[desc.app_core];
    (0..desc.cores).any(|c| c != desc.app_core && desc.master_priority[c] > mine)
}

/// Worst wait the arbitration of slot `slot` admits for one analysed-core
/// access with `contenders` co-runners, in cycles. `None` when the
/// analysed core can be starved (outprioritized under round-robin, or
/// outranked under fixed priority, with at least one contender); absent
/// slaves bound at zero.
///
/// Round-robin: while a request waits, every other core in its priority
/// class is granted at most once before it (each grant advances the
/// rotation strictly circularly towards the waiter), so the wait is at
/// most `contenders` full occupancies. Fixed priority with the analysed
/// core on top: only the residual of one in-flight transaction. TDMA:
/// the schedule alone bounds the wait regardless of contenders.
pub fn per_grant_wait_bound(
    desc: &::platform::PlatformDesc,
    slot: usize,
    contenders: usize,
) -> Option<u64> {
    let slave = desc.slave(slot);
    if !slave.present {
        return Some(0);
    }
    let service = u64::from(slave.max_service());
    let k = contenders.min(desc.cores.saturating_sub(1)) as u64;
    match slave.arbitration {
        ::platform::Arbitration::PriorityRoundRobin => {
            if strictly_outprioritized(desc) && k > 0 {
                None
            } else {
                Some(k * service)
            }
        }
        ::platform::Arbitration::FixedPriority => {
            if desc.outranked(desc.app_core) && k > 0 {
                None
            } else {
                Some(service.saturating_sub(1).min(k.saturating_mul(service)))
            }
        }
        ::platform::Arbitration::Tdma { slot_len } => Some(::platform::tdma_worst_wait(
            desc.cores,
            slot_len,
            slave.max_service(),
        )),
    }
}

impl TightnessReport {
    /// Audits one co-run observation of `profile`'s task on `desc`
    /// against the fTC and access bounds derived from the isolation
    /// profile.
    pub fn audit(
        desc: &::platform::PlatformDesc,
        profile: &IsolationProfile,
        observed: &ObservedContention,
        scenario: impl Into<String>,
    ) -> Self {
        let model = Platform::from_desc(desc);
        let ftc = FtcModel::new(&model);
        let n_hat = AccessBounds::from_counters(&model, profile.counters());
        let k = observed.contenders as u64;
        // A class budget spans every slave its accesses can reach: it is
        // finite only if none of them can starve the analysed core.
        let class_bounded = |op: Operation| {
            model
                .paths()
                .targets_for(op)
                .iter()
                .all(|t| per_grant_wait_bound(desc, t.index(), observed.contenders).is_some())
        };
        let mut rows = Vec::new();
        for op in Operation::all() {
            let (l_max, n) = match op {
                Operation::Code => (ftc.l_code_max(), n_hat.code),
                Operation::Data => (ftc.l_data_max(), n_hat.data),
            };
            rows.push(TightnessRow {
                label: op.to_string(),
                kind: AuditKind::ClassWait,
                observed: observed.interference[op.index()],
                bound: class_bounded(op).then(|| k.saturating_mul(n).saturating_mul(l_max)),
            });
            rows.push(TightnessRow {
                label: op.to_string(),
                kind: AuditKind::ClassAccesses,
                observed: observed.grants[op.index()],
                bound: Some(n),
            });
        }
        for t in Target::all() {
            if !desc.slave(t.index()).present {
                continue;
            }
            rows.push(TightnessRow {
                label: t.to_string(),
                kind: AuditKind::GrantWait,
                observed: observed.max_wait[t.index()],
                bound: per_grant_wait_bound(desc, t.index(), observed.contenders),
            });
        }
        TightnessReport {
            platform: desc.name.to_string(),
            scenario: scenario.into(),
            rows,
        }
    }

    /// Rows whose observation exceeds a finite bound.
    pub fn violations(&self) -> usize {
        self.rows.iter().filter(|r| !r.sound()).count()
    }
}

impl fmt::Display for TightnessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "tightness {} {}", self.platform, self.scenario)?;
        writeln!(
            f,
            "  {:<10} {:>5} {:>12} {:>12} {:>8}  status",
            "audit", "what", "observed", "bound", "ratio"
        )?;
        for r in &self.rows {
            let bound = r
                .bound
                .map_or_else(|| "unbounded".into(), |b| b.to_string());
            let ratio = r
                .tightness_permille()
                .map_or_else(|| "-".into(), |p| format!("{}.{:03}", p / 1000, p % 1000));
            writeln!(
                f,
                "  {:<10} {:>5} {:>12} {:>12} {:>8}  {}",
                r.kind.to_string(),
                r.label,
                r.observed,
                bound,
                ratio,
                if r.sound() { "ok" } else { "VIOLATION" }
            )?;
        }
        write!(f, "  violations: {}", self.violations())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DebugCounters;

    fn profile() -> IsolationProfile {
        IsolationProfile::new(
            "t",
            DebugCounters {
                ccnt: 10_000,
                pmem_stall: 600,
                dmem_stall: 1_000,
                pcache_miss: 40,
                dcache_miss_clean: 0,
                dcache_miss_dirty: 0,
            },
        )
    }

    #[test]
    fn per_grant_bounds_match_the_arbitration() {
        let rr = ::platform::default_platform();
        // lmu slot 3: max_service 11, two contenders under round-robin.
        assert_eq!(per_grant_wait_bound(rr, 3, 2), Some(22));
        assert_eq!(per_grant_wait_bound(rr, 3, 0), Some(0));
        // pf1 slot 1: service 16.
        assert_eq!(per_grant_wait_bound(rr, 1, 2), Some(32));

        let ahb = ::platform::PlatformDesc::ahb2();
        // The analysed core holds the top priority: residual only.
        assert_eq!(per_grant_wait_bound(&ahb, 0, 1), Some(7));
        assert_eq!(per_grant_wait_bound(&ahb, 0, 0), Some(0));
        // pf1 is absent on the AHB platform.
        assert_eq!(per_grant_wait_bound(&ahb, 1, 1), Some(0));
        // Seen from the outranked contender, the wait is unbounded.
        let mut flipped = ahb.clone();
        flipped.app_core = 1;
        assert_eq!(per_grant_wait_bound(&flipped, 0, 1), None);
        assert_eq!(per_grant_wait_bound(&flipped, 0, 0), Some(0));

        let tdma = ::platform::PlatformDesc::tc27x_tdma();
        // The schedule bounds the wait even in isolation.
        assert_eq!(
            per_grant_wait_bound(&tdma, 0, 0),
            Some(::platform::tdma_worst_wait(3, 16, 16))
        );
        assert_eq!(
            per_grant_wait_bound(&tdma, 0, 2),
            per_grant_wait_bound(&tdma, 0, 0)
        );
    }

    #[test]
    fn audit_flags_only_exceeding_rows() {
        let desc = ::platform::default_platform();
        let mut obs = ObservedContention {
            contenders: 2,
            ..Default::default()
        };
        obs.interference[Operation::Code.index()] = 100;
        obs.grants[Operation::Code.index()] = 40;
        obs.grants[Operation::Data.index()] = 100;
        obs.max_wait[Target::Lmu.index()] = 21;
        let report = TightnessReport::audit(desc, &profile(), &obs, "sc1/core0");
        assert_eq!(report.violations(), 0, "{report}");
        // n̂_co = ceil(600/6) = 100, l_co_max = 16, k = 2.
        let wait_co = report
            .rows
            .iter()
            .find(|r| r.kind == AuditKind::ClassWait && r.label == "co")
            .unwrap();
        assert_eq!(wait_co.bound, Some(2 * 100 * 16));
        assert_eq!(wait_co.tightness_permille(), Some(100 * 1000 / 3200));
        // Pushing an observation past its bound turns into a violation.
        let mut worse = obs;
        worse.grants[Operation::Data.index()] = 101;
        let report = TightnessReport::audit(desc, &profile(), &worse, "sc1/core0");
        assert_eq!(report.violations(), 1);
        assert!(report.to_string().contains("VIOLATION"));
        assert!(report.to_string().ends_with("violations: 1"));
    }

    #[test]
    fn starvable_class_budgets_are_unbounded() {
        let mut desc = ::platform::PlatformDesc::ahb2().clone();
        desc.app_core = 1; // outranked by core 0
        let obs = ObservedContention {
            contenders: 1,
            ..Default::default()
        };
        let report = TightnessReport::audit(&desc, &profile(), &obs, "x");
        let unbounded = report.rows.iter().filter(|r| r.bound.is_none()).count();
        assert!(unbounded > 0, "{report}");
        assert_eq!(report.violations(), 0, "unbounded rows are vacuously sound");
        assert!(report.to_string().contains("unbounded"));
    }

    #[test]
    fn render_carries_the_grep_anchors() {
        let desc = ::platform::default_platform();
        let report =
            TightnessReport::audit(desc, &profile(), &ObservedContention::default(), "iso");
        let text = report.to_string();
        assert!(text.starts_with("tightness tc27x iso"));
        assert!(text.contains("grant-wait"));
        assert!(text.ends_with("violations: 0"));
    }
}
