//! Response-time analysis over contention-aware WCETs.
//!
//! The paper's introduction frames the industrial problem: "the OEM
//! provides SWPs with the time budgets within which all applications
//! must fit". This module closes that loop — it takes the
//! contention-aware WCET estimates produced by the models and answers
//! the OEM-level question with classic fixed-priority response-time
//! analysis (Joseph & Pandya):
//!
//! ```text
//! Rᵢ = Cᵢ + Σ_{j ∈ hp(i)} ⌈Rᵢ / Tⱼ⌉ · Cⱼ
//! ```
//!
//! where `Cᵢ` is the WCET *bound* (isolation + contention) of task i.

use crate::wcet::WcetEstimate;
use std::fmt;

/// A periodic task for schedulability analysis. Tasks are implicitly
/// prioritised by their position in the task set (index 0 = highest).
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct PeriodicTask {
    /// Task name.
    pub name: String,
    /// Activation period (= deadline; implicit-deadline model), cycles.
    pub period: u64,
    /// Contention-aware WCET bound, cycles.
    pub wcet: u64,
}

impl PeriodicTask {
    /// Creates a task from explicit numbers.
    pub fn new(name: impl Into<String>, period: u64, wcet: u64) -> Self {
        PeriodicTask {
            name: name.into(),
            period,
            wcet,
        }
    }

    /// Creates a task from a model's WCET estimate.
    pub fn from_estimate(name: impl Into<String>, period: u64, estimate: &WcetEstimate) -> Self {
        PeriodicTask::new(name, period, estimate.bound_cycles())
    }

    /// Utilisation of this task.
    pub fn utilization(&self) -> f64 {
        self.wcet as f64 / self.period as f64
    }
}

impl fmt::Display for PeriodicTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (C={}, T={})", self.name, self.wcet, self.period)
    }
}

/// Result of the analysis for one task.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ResponseTime {
    /// The analysed task.
    pub task: PeriodicTask,
    /// Worst-case response time, if the iteration converged within the
    /// deadline; `None` means the task is unschedulable.
    pub response: Option<u64>,
}

impl ResponseTime {
    /// Returns `true` if the task meets its deadline.
    pub fn is_schedulable(&self) -> bool {
        self.response.is_some()
    }

    /// Slack to the deadline (0 when unschedulable).
    pub fn slack(&self) -> u64 {
        match self.response {
            Some(r) => self.task.period.saturating_sub(r),
            None => 0,
        }
    }
}

/// The full schedulability verdict for a task set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schedulability {
    /// Per-task response times, in priority order.
    pub tasks: Vec<ResponseTime>,
}

impl Schedulability {
    /// Returns `true` if every task meets its deadline.
    pub fn is_schedulable(&self) -> bool {
        self.tasks.iter().all(ResponseTime::is_schedulable)
    }

    /// Total utilisation of the set.
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(|r| r.task.utilization()).sum()
    }

    /// The first task (in priority order) that misses its deadline.
    pub fn first_failure(&self) -> Option<&ResponseTime> {
        self.tasks.iter().find(|r| !r.is_schedulable())
    }
}

impl fmt::Display for Schedulability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.tasks {
            match r.response {
                Some(resp) => writeln!(
                    f,
                    "  {:<20} R = {:>10}  (slack {})",
                    r.task.to_string(),
                    resp,
                    r.slack()
                )?,
                None => writeln!(f, "  {:<20} UNSCHEDULABLE", r.task.to_string())?,
            }
        }
        Ok(())
    }
}

/// Runs fixed-priority response-time analysis on `tasks` (index 0 =
/// highest priority; deadlines equal periods).
///
/// # Panics
///
/// Panics if any period or WCET is zero.
///
/// # Examples
///
/// ```
/// use contention::rta::{analyze, PeriodicTask};
///
/// let set = vec![
///     PeriodicTask::new("sensor-fusion", 1_000, 250),
///     PeriodicTask::new("cruise-control", 4_000, 1_200),
/// ];
/// let verdict = analyze(&set);
/// assert!(verdict.is_schedulable());
/// // R₁ = 250; R₂ = 1200 + 2·250 = 1700 (one extra preemption at 1000).
/// assert_eq!(verdict.tasks[1].response, Some(1700));
/// ```
pub fn analyze(tasks: &[PeriodicTask]) -> Schedulability {
    for t in tasks {
        assert!(t.period > 0, "period of `{}` must be positive", t.name);
        assert!(t.wcet > 0, "wcet of `{}` must be positive", t.name);
    }
    let mut out = Vec::with_capacity(tasks.len());
    for (i, task) in tasks.iter().enumerate() {
        let mut r = task.wcet;
        let response = loop {
            let interference: u64 = tasks[..i]
                .iter()
                .map(|hp| r.div_ceil(hp.period) * hp.wcet)
                .sum();
            let next = task.wcet + interference;
            if next > task.period {
                break None;
            }
            if next == r {
                break Some(r);
            }
            r = next;
        };
        out.push(ResponseTime {
            task: task.clone(),
            response,
        });
    }
    Schedulability { tasks: out }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task_response_is_its_wcet() {
        let v = analyze(&[PeriodicTask::new("t", 100, 30)]);
        assert_eq!(v.tasks[0].response, Some(30));
        assert_eq!(v.tasks[0].slack(), 70);
        assert!(v.is_schedulable());
    }

    #[test]
    fn textbook_three_task_set() {
        // Classic example: T = (7,3), (12,3), (20,5) → R = 3, 6, 20.
        let v = analyze(&[
            PeriodicTask::new("t1", 7, 3),
            PeriodicTask::new("t2", 12, 3),
            PeriodicTask::new("t3", 20, 5),
        ]);
        assert_eq!(v.tasks[0].response, Some(3));
        assert_eq!(v.tasks[1].response, Some(6));
        assert_eq!(v.tasks[2].response, Some(20));
        assert!(v.is_schedulable());
    }

    #[test]
    fn overload_is_detected() {
        let v = analyze(&[
            PeriodicTask::new("hog", 10, 6),
            PeriodicTask::new("victim", 14, 5),
        ]);
        // victim: 5 + 6 = 11; 5 + 2*6 = 17 > 14 → unschedulable.
        assert!(!v.is_schedulable());
        assert_eq!(v.first_failure().unwrap().task.name, "victim");
        assert_eq!(v.tasks[0].response, Some(6));
    }

    #[test]
    fn utilization_sums() {
        let v = analyze(&[PeriodicTask::new("a", 10, 2), PeriodicTask::new("b", 20, 5)]);
        assert!((v.utilization() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn contention_can_break_schedulability() {
        // The integration story: a set schedulable on isolation WCETs
        // becomes unschedulable once the contention bound is added.
        use crate::wcet::WcetEstimate;
        let iso = WcetEstimate {
            isolation_cycles: 4_000,
            contention_cycles: 0,
        };
        let bounded = WcetEstimate {
            isolation_cycles: 4_000,
            contention_cycles: 3_500,
        };
        let high = PeriodicTask::new("ctrl", 10_000, 3_000);
        let with_iso = analyze(&[
            high.clone(),
            PeriodicTask::from_estimate("app", 12_000, &iso),
        ]);
        let with_bound = analyze(&[high, PeriodicTask::from_estimate("app", 12_000, &bounded)]);
        assert!(with_iso.is_schedulable());
        assert!(!with_bound.is_schedulable());
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_rejected() {
        let _ = analyze(&[PeriodicTask::new("t", 0, 1)]);
    }

    #[test]
    fn display_lists_tasks() {
        let v = analyze(&[PeriodicTask::new("t", 100, 120)]);
        let s = v.to_string();
        assert!(s.contains("UNSCHEDULABLE"), "{s}");
    }
}
