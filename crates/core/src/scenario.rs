//! Deployment-scenario tailoring of the ILP-PTAC model (§4.1, Table 5).
//!
//! Knowledge of the deployment configuration restricts the feasible
//! per-target access counts and lets the model read some PTAC off the
//! cache-miss counters. [`ScenarioConstraints`] encodes the extra ILP
//! constraints of Table 5 in a composable form; the two paper scenarios
//! are provided as constructors.

use crate::platform::{Operation, Target};
use std::fmt;

/// Extra per-task constraints on feasible access counts, derived from
/// the deployment configuration (Table 5). The same constraints are
/// applied to the analysed task and to contenders, matching the paper's
/// "deployment configurations equally apply" assumption.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ScenarioConstraints {
    name: String,
    /// `(target, op)` pairs with no traffic in this deployment.
    zeroed: Vec<(Target, Operation)>,
    /// If set, `n^{pf0,co} + n^{pf1,co} = PM` — the P$_MISS counter is
    /// exact because all SRI code requests are cacheable.
    exact_code_from_pcache: bool,
    /// If set, `n^{pf0,da} + n^{pf1,da} + n^{lmu,da} ≥ DMC + DMD` — the
    /// cacheable-data misses must land on some cacheable-data target,
    /// but which one is unknown (Scenario 2).
    min_cacheable_data: bool,
}

impl ScenarioConstraints {
    /// No tailoring: the generic ILP-PTAC model.
    pub fn unconstrained() -> Self {
        ScenarioConstraints {
            name: "generic".into(),
            ..Default::default()
        }
    }

    /// Scenario 1 (Figure 3-a, Table 5 left column): cacheable code in
    /// pf0/pf1, non-cacheable shared data in the LMU, nothing else on
    /// the SRI.
    pub fn scenario1() -> Self {
        ScenarioConstraints {
            name: "scenario1".into(),
            zeroed: vec![
                (Target::Dfl, Operation::Data),
                (Target::Lmu, Operation::Code),
                (Target::Pf0, Operation::Data),
                (Target::Pf1, Operation::Data),
            ],
            exact_code_from_pcache: true,
            min_cacheable_data: false,
        }
    }

    /// Scenario 2 (Figure 3-b, Table 5 right column): cacheable code in
    /// pf0/pf1, data in the LMU ($ and n$) and constant cacheable data
    /// in pf0/pf1.
    pub fn scenario2() -> Self {
        ScenarioConstraints {
            name: "scenario2".into(),
            zeroed: vec![
                (Target::Dfl, Operation::Data),
                (Target::Lmu, Operation::Code),
            ],
            exact_code_from_pcache: true,
            min_cacheable_data: true,
        }
    }

    /// Builder: forces `n^{t,o} = 0`.
    #[must_use]
    pub fn with_zero(mut self, target: Target, op: Operation) -> Self {
        if !self.zeroed.contains(&(target, op)) {
            self.zeroed.push((target, op));
        }
        self
    }

    /// Builder: names the constraint set.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Builder: enables the exact-code constraint
    /// (`Σ n^{pf,co} = P$_MISS`).
    #[must_use]
    pub fn with_exact_code_from_pcache(mut self) -> Self {
        self.exact_code_from_pcache = true;
        self
    }

    /// Builder: enables the cacheable-data lower bound
    /// (`Σ n^{·,da} ≥ DMC + DMD` over pf0/pf1/lmu).
    #[must_use]
    pub fn with_min_cacheable_data(mut self) -> Self {
        self.min_cacheable_data = true;
        self
    }

    /// Name of this scenario.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `(target, op)` pairs constrained to zero traffic.
    pub fn zeroed(&self) -> &[(Target, Operation)] {
        &self.zeroed
    }

    /// Whether code counts are pinned to the P$_MISS reading.
    pub fn exact_code_from_pcache(&self) -> bool {
        self.exact_code_from_pcache
    }

    /// Whether the cacheable-data lower bound applies.
    pub fn min_cacheable_data(&self) -> bool {
        self.min_cacheable_data
    }

    /// Returns `true` if `(target, op)` is forced to zero.
    pub fn is_zeroed(&self, target: Target, op: Operation) -> bool {
        self.zeroed.contains(&(target, op))
    }
}

impl fmt::Display for ScenarioConstraints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario1_matches_table5_left() {
        let s = ScenarioConstraints::scenario1();
        assert!(s.is_zeroed(Target::Dfl, Operation::Data));
        assert!(s.is_zeroed(Target::Lmu, Operation::Code));
        assert!(s.is_zeroed(Target::Pf0, Operation::Data));
        assert!(s.is_zeroed(Target::Pf1, Operation::Data));
        assert!(s.exact_code_from_pcache());
        assert!(!s.min_cacheable_data());
    }

    #[test]
    fn scenario2_matches_table5_right() {
        let s = ScenarioConstraints::scenario2();
        assert!(s.is_zeroed(Target::Dfl, Operation::Data));
        assert!(s.is_zeroed(Target::Lmu, Operation::Code));
        assert!(!s.is_zeroed(Target::Pf0, Operation::Data));
        assert!(!s.is_zeroed(Target::Lmu, Operation::Data));
        assert!(s.exact_code_from_pcache());
        assert!(s.min_cacheable_data());
    }

    #[test]
    fn unconstrained_is_empty() {
        let s = ScenarioConstraints::unconstrained();
        assert!(s.zeroed().is_empty());
        assert!(!s.exact_code_from_pcache());
        assert!(!s.min_cacheable_data());
    }

    #[test]
    fn builder_composition_and_dedup() {
        let s = ScenarioConstraints::unconstrained()
            .with_name("custom")
            .with_zero(Target::Dfl, Operation::Data)
            .with_zero(Target::Dfl, Operation::Data)
            .with_exact_code_from_pcache();
        assert_eq!(s.name(), "custom");
        assert_eq!(s.zeroed().len(), 1);
        assert!(s.exact_code_from_pcache());
        assert_eq!(s.to_string(), "custom");
    }
}
