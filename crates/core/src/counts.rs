//! Access-count bounding from stall counters (§3.3.2, Eqs. 2–4).
//!
//! The TC27x cannot count SRI accesses per resource, so the paper upper
//! bounds them: divide the cumulative stall cycles by the *minimum*
//! stall a single request can cause. Assuming every request was of the
//! cheapest kind can only over-count requests — which is the
//! conservative direction for a contention bound.

use crate::platform::Platform;
use crate::profile::DebugCounters;

/// Upper bounds on a task's SRI access counts derived from its stall
/// counters (Eq. 4: `n̂ = ⌈cs / cs_min⌉`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct AccessBounds {
    /// Upper bound on code requests, `n̂^{co}`.
    pub code: u64,
    /// Upper bound on data requests, `n̂^{da}`.
    pub data: u64,
}

impl AccessBounds {
    /// Derives the bounds for a task from its isolation counters.
    ///
    /// # Examples
    ///
    /// ```
    /// use contention::{AccessBounds, DebugCounters, Platform};
    ///
    /// let p = Platform::tc277_reference();
    /// let c = DebugCounters { pmem_stall: 61, dmem_stall: 100, ..Default::default() };
    /// let b = AccessBounds::from_counters(&p, &c);
    /// assert_eq!(b.code, 11); // ⌈61 / 6⌉
    /// assert_eq!(b.data, 10); // ⌈100 / 10⌉
    /// ```
    pub fn from_counters(platform: &Platform, counters: &DebugCounters) -> Self {
        AccessBounds {
            code: div_ceil(counters.pmem_stall, platform.cs_code_min()),
            data: div_ceil(counters.dmem_stall, platform.cs_data_min()),
        }
    }

    /// Total bound across both classes (Eq. 5's left-hand side).
    pub fn total(&self) -> u64 {
        self.code + self.data
    }
}

fn div_ceil(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0, "minimum stall cycles are positive");
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(ps: u64, ds: u64) -> DebugCounters {
        DebugCounters {
            pmem_stall: ps,
            dmem_stall: ds,
            ..Default::default()
        }
    }

    #[test]
    fn exact_division() {
        let p = Platform::tc277_reference();
        let b = AccessBounds::from_counters(&p, &counters(60, 100));
        assert_eq!(b.code, 10);
        assert_eq!(b.data, 10);
        assert_eq!(b.total(), 20);
    }

    #[test]
    fn rounding_up() {
        let p = Platform::tc277_reference();
        let b = AccessBounds::from_counters(&p, &counters(1, 1));
        assert_eq!(b.code, 1);
        assert_eq!(b.data, 1);
    }

    #[test]
    fn zero_stalls_zero_accesses() {
        let p = Platform::tc277_reference();
        let b = AccessBounds::from_counters(&p, &counters(0, 0));
        assert_eq!(b.code, 0);
        assert_eq!(b.data, 0);
        assert_eq!(b.total(), 0);
    }

    /// The bound must over-approximate any mix of real requests: for any
    /// (t,o) split, Σ n^{t,o} ≤ n̂^{o} when cs were produced honestly.
    #[test]
    fn bound_dominates_honest_mixes() {
        let p = Platform::tc277_reference();
        use crate::platform::{Operation, Target};
        // 30 pf0-code and 12 lmu-code requests at min stalls each.
        let ps =
            30 * p.stall(Target::Pf0, Operation::Code) + 12 * p.stall(Target::Lmu, Operation::Code);
        let b = AccessBounds::from_counters(&p, &counters(ps, 0));
        assert!(b.code >= 42, "n̂ = {} must cover 42 requests", b.code);
    }
}
