//! Error type for the contention models.

use std::error::Error;
use std::fmt;

/// Errors produced while evaluating a contention model.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// The ideal model needs exact PTAC, which the profile lacks.
    MissingPtac {
        /// Name of the profile missing PTAC.
        task: String,
    },
    /// The ILP formulation failed to solve.
    Ilp(ilp::SolveError),
    /// The profile's counters are inconsistent with the scenario
    /// constraints (e.g. exact code count exceeds the stall budget).
    InconsistentProfile {
        /// Name of the offending profile.
        task: String,
        /// What was inconsistent.
        detail: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::MissingPtac { task } => {
                write!(
                    f,
                    "profile `{task}` carries no exact per-target access counts"
                )
            }
            ModelError::Ilp(e) => write!(f, "ilp solve failed: {e}"),
            ModelError::InconsistentProfile { task, detail } => {
                write!(f, "profile `{task}` is inconsistent: {detail}")
            }
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Ilp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ilp::SolveError> for ModelError {
    fn from(e: ilp::SolveError) -> Self {
        ModelError::Ilp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ModelError::MissingPtac { task: "app".into() };
        assert!(e.to_string().contains("`app`"));
        assert!(e.source().is_none());
        let e = ModelError::from(ilp::SolveError::Infeasible);
        assert!(e.to_string().contains("infeasible"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync>() {}
        assert_traits::<ModelError>();
    }
}
