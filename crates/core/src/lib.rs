//! # `contention` — multicore contention models for the AURIX TC27x
//!
//! Implementation of the analytical contribution of *Modelling Multicore
//! Contention on the AURIX TC27x* (Díaz et al., DAC 2018): given debug
//! counter readings of tasks measured **in isolation**, bound the extra
//! execution time (Δcont) a task can suffer when contenders run on the
//! other cores — without ever co-running the tasks.
//!
//! Three models are provided, trading tightness against
//! time-composability:
//!
//! | Model | Input | Validity |
//! |-------|-------|----------|
//! | [`IdealModel`] (Eq. 1) | exact PTAC of both tasks | reference only (needs a simulator) |
//! | [`FtcModel`] (Eqs. 6–8) | τa's stall counters | any contender, any schedule |
//! | [`IlpPtacModel`] (Eqs. 9–23) | both tasks' counters + deployment scenario | contenders dominated by the profiled one |
//!
//! The ILP-PTAC model is tailored to deployment scenarios with
//! [`ScenarioConstraints`] (Table 5 of the paper).
//!
//! # Examples
//!
//! ```
//! use contention::{
//!     ContentionModel, DebugCounters, FtcModel, IlpPtacModel, IsolationProfile,
//!     Platform, ScenarioConstraints,
//! };
//!
//! # fn main() -> Result<(), contention::ModelError> {
//! let platform = Platform::tc277_reference();
//!
//! // Counter readings from isolation runs (e.g. Table 6 of the paper).
//! let app = IsolationProfile::new("app", DebugCounters {
//!     ccnt: 2_000_000, pmem_stall: 34_212, dmem_stall: 83_450,
//!     pcache_miss: 2_365, ..Default::default()
//! });
//! let load = IsolationProfile::new("h-load", DebugCounters {
//!     ccnt: 1_500_000, pmem_stall: 17_441, dmem_stall: 42_518,
//!     pcache_miss: 1_205, ..Default::default()
//! });
//!
//! let ftc = FtcModel::new(&platform).wcet_estimate(&app, &[&load])?;
//! let ilp = IlpPtacModel::new(&platform, ScenarioConstraints::scenario1())
//!     .wcet_estimate(&app, &[&load])?;
//!
//! assert!(ilp.bound_cycles() <= ftc.bound_cycles(), "ILP-PTAC is tighter");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

mod counts;
mod error;
pub mod evaluate;
mod fsb;
mod ftc;
mod ideal;
mod ilp_ptac;
mod platform;
mod profile;
pub mod rta;
mod scenario;
mod sensitivity;
mod signature;
mod tightness;
pub mod validate;
mod wcet;

pub use counts::AccessBounds;
pub use error::ModelError;
pub use evaluate::{BoundSource, EvalOptions, EvaluatedBound, Evaluator};
pub use fsb::FsbModel;
pub use ftc::FtcModel;
pub use ideal::IdealModel;
pub use ilp_ptac::{IlpPtacModel, IlpPtacOptions, IlpPtacSolution};
pub use platform::{AccessPaths, Operation, PerTargetOp, Platform, Target};
pub use profile::{AccessCounts, DebugCounters, IsolationProfile, ParseProfileError};
pub use scenario::ScenarioConstraints;
pub use sensitivity::{CounterKind, Sensitivity, SensitivityReport, Side};
pub use signature::{ContenderSignature, StableHasher};
pub use tightness::{
    per_grant_wait_bound, AuditKind, ObservedContention, TightnessReport, TightnessRow,
};
pub use validate::{ValidationIssue, ValidationPolicy, ValidationReport, Validator};
pub use wcet::{ContentionBound, ContentionModel, WcetEstimate};

/// Alias kept for readers coming from the paper: the latency table is a
/// [`PerTargetOp`].
pub type LatencyTable = PerTargetOp;
/// Alias kept for readers coming from the paper: the stall table is a
/// [`PerTargetOp`].
pub type StallTable = PerTargetOp;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<Platform>();
        assert_ss::<IsolationProfile>();
        assert_ss::<ScenarioConstraints>();
        assert_ss::<ModelError>();
        assert_ss::<WcetEstimate>();
    }

    /// Reproduces the paper's running example structure: the ILP bound
    /// adapts to contender load while fTC does not.
    #[test]
    fn headline_property() {
        let platform = Platform::tc277_reference();
        let mk = |ps, ds, pm| {
            IsolationProfile::new(
                "t",
                DebugCounters {
                    ccnt: 1_000_000,
                    pmem_stall: ps,
                    dmem_stall: ds,
                    pcache_miss: pm,
                    ..Default::default()
                },
            )
        };
        let app = mk(34_212, 83_450, 2_365);
        let h = mk(17_441, 42_518, 1_205);
        let l = mk(1_744, 4_251, 120);

        let ftc = FtcModel::new(&platform);
        let ilp = IlpPtacModel::new(&platform, ScenarioConstraints::scenario1());

        let ftc_h = ftc.pairwise_bound(&app, &h).unwrap().delta_cycles;
        let ftc_l = ftc.pairwise_bound(&app, &l).unwrap().delta_cycles;
        let ilp_h = ilp.pairwise_bound(&app, &h).unwrap().delta_cycles;
        let ilp_l = ilp.pairwise_bound(&app, &l).unwrap().delta_cycles;

        assert_eq!(ftc_h, ftc_l, "fTC cannot exploit contender info");
        assert!(ilp_l < ilp_h, "ILP adapts to the contender");
        assert!(ilp_h < ftc_h / 2, "paper: ILP below half of fTC");
    }
}
