//! Contention bounds, WCET estimates and the model interface.

use crate::error::ModelError;
use crate::profile::{AccessCounts, IsolationProfile};
use std::fmt;

/// The outcome of a contention model: an upper bound `Δcont_{b→a}` on
/// the extra cycles the analysed task can suffer.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ContentionBound {
    /// Total bound in cycles.
    pub delta_cycles: u64,
    /// Portion attributed to code-request interference (`Δcs^{co}`).
    pub code_delta: u64,
    /// Portion attributed to data-request interference (`Δcs^{da}`).
    pub data_delta: u64,
    /// The interfering request mapping `n_{b→a}^{t,o}` the bound is built
    /// from, when the model produces one (the ILP-PTAC and ideal models
    /// do; the fTC model does not).
    pub interference: Option<AccessCounts>,
}

impl ContentionBound {
    /// Creates a bound from its code/data parts.
    pub fn from_parts(code_delta: u64, data_delta: u64) -> Self {
        ContentionBound {
            delta_cycles: code_delta + data_delta,
            code_delta,
            data_delta,
            interference: None,
        }
    }

    /// Accumulates another contender's bound (multi-contender case).
    pub fn accumulate(&mut self, other: &ContentionBound) {
        self.delta_cycles += other.delta_cycles;
        self.code_delta += other.code_delta;
        self.data_delta += other.data_delta;
        // Mappings from different contenders are not comparable; keep none.
        self.interference = None;
    }
}

impl fmt::Display for ContentionBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Δcont = {} cycles (code {}, data {})",
            self.delta_cycles, self.code_delta, self.data_delta
        )
    }
}

/// A contention-aware WCET estimate: observed isolation time plus the
/// model's contention bound.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct WcetEstimate {
    /// Execution time observed in isolation (cycles).
    pub isolation_cycles: u64,
    /// Contention bound added on top (cycles).
    pub contention_cycles: u64,
}

impl WcetEstimate {
    /// The estimate itself: isolation + contention.
    pub fn bound_cycles(&self) -> u64 {
        self.isolation_cycles + self.contention_cycles
    }

    /// Predicted execution-time increase w.r.t. isolation — the metric
    /// Figure 4 plots (e.g. 1.49 means +49%).
    pub fn ratio(&self) -> f64 {
        if self.isolation_cycles == 0 {
            return 1.0;
        }
        self.bound_cycles() as f64 / self.isolation_cycles as f64
    }
}

impl fmt::Display for WcetEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} + {} = {} cycles ({:.2}x)",
            self.isolation_cycles,
            self.contention_cycles,
            self.bound_cycles(),
            self.ratio()
        )
    }
}

/// A multicore contention model in the sense of the paper: maps
/// isolation profiles to an upper bound on inter-core interference.
///
/// The primitive is the pairwise bound against one contender;
/// [`ContentionModel::contention_bound`] extends it to any number of
/// contenders by summation, which is sound under the SRI's round-robin
/// arbitration (each own request can wait for at most one in-flight
/// request per other core).
pub trait ContentionModel {
    /// Model name for reports.
    fn name(&self) -> &str;

    /// Bound on the interference a single contender `b` can inflict on
    /// the analysed task `a`.
    ///
    /// # Errors
    ///
    /// Model-specific; see [`ModelError`].
    fn pairwise_bound(
        &self,
        a: &IsolationProfile,
        b: &IsolationProfile,
    ) -> Result<ContentionBound, ModelError>;

    /// Bound against a set of contenders (sum of pairwise bounds).
    ///
    /// # Errors
    ///
    /// Propagates the first pairwise error.
    fn contention_bound(
        &self,
        a: &IsolationProfile,
        contenders: &[&IsolationProfile],
    ) -> Result<ContentionBound, ModelError> {
        let mut total = ContentionBound::default();
        let mut first = true;
        for b in contenders {
            let pb = self.pairwise_bound(a, b)?;
            if first {
                total = pb;
                first = false;
            } else {
                total.accumulate(&pb);
            }
        }
        Ok(total)
    }

    /// Contention-aware WCET estimate: isolation CCNT plus the bound.
    ///
    /// # Errors
    ///
    /// Propagates [`ContentionModel::contention_bound`] errors.
    fn wcet_estimate(
        &self,
        a: &IsolationProfile,
        contenders: &[&IsolationProfile],
    ) -> Result<WcetEstimate, ModelError> {
        let bound = self.contention_bound(a, contenders)?;
        Ok(WcetEstimate {
            isolation_cycles: a.counters().ccnt,
            contention_cycles: bound.delta_cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DebugCounters;

    struct Fixed(u64);
    impl ContentionModel for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn pairwise_bound(
            &self,
            _a: &IsolationProfile,
            _b: &IsolationProfile,
        ) -> Result<ContentionBound, ModelError> {
            Ok(ContentionBound::from_parts(self.0, 2 * self.0))
        }
    }

    fn profile(ccnt: u64) -> IsolationProfile {
        IsolationProfile::new(
            "p",
            DebugCounters {
                ccnt,
                ..Default::default()
            },
        )
    }

    #[test]
    fn multi_contender_sums_pairwise() {
        let m = Fixed(10);
        let a = profile(1000);
        let b = profile(0);
        let c = profile(0);
        let bound = m.contention_bound(&a, &[&b, &c]).unwrap();
        assert_eq!(bound.delta_cycles, 60);
        assert_eq!(bound.code_delta, 20);
        assert_eq!(bound.data_delta, 40);
    }

    #[test]
    fn no_contenders_no_contention() {
        let m = Fixed(10);
        let a = profile(1000);
        let bound = m.contention_bound(&a, &[]).unwrap();
        assert_eq!(bound.delta_cycles, 0);
    }

    #[test]
    fn wcet_estimate_combines_isolation_and_bound() {
        let m = Fixed(50);
        let a = profile(300);
        let b = profile(0);
        let est = m.wcet_estimate(&a, &[&b]).unwrap();
        assert_eq!(est.bound_cycles(), 450);
        assert!((est.ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ratio_of_zero_isolation_is_one() {
        let est = WcetEstimate {
            isolation_cycles: 0,
            contention_cycles: 5,
        };
        assert_eq!(est.ratio(), 1.0);
    }

    #[test]
    fn displays() {
        let b = ContentionBound::from_parts(3, 4);
        assert_eq!(b.to_string(), "Δcont = 7 cycles (code 3, data 4)");
        let e = WcetEstimate {
            isolation_cycles: 100,
            contention_cycles: 50,
        };
        assert!(e.to_string().contains("1.50x"));
    }
}
