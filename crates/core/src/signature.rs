//! Contender signatures: abstract resource-usage templates.
//!
//! In the integration workflow the paper motivates, a supplier often
//! must analyse its task against contenders that *do not exist yet* —
//! only their allowed SRI usage is specified contractually. Following
//! the "resource usage templates and signatures" idea the paper builds
//! on (Fernandez et al., DAC'15 — reference [10]), a
//! [`ContenderSignature`] captures a ceiling on a contender's request
//! counts and converts it into a synthetic [`IsolationProfile`] whose
//! counter readings encode exactly those ceilings.
//!
//! The key property (tested below and as a workspace property test):
//! a bound computed against a signature dominates the bound against
//! **any** real contender whose measured counters stay within the
//! signature.

use crate::platform::Platform;
use crate::profile::{DebugCounters, IsolationProfile};

/// A stable, platform-independent 64-bit hasher (FNV-1a).
///
/// `std::hash` offers no stability guarantee across releases or
/// processes, so anything that keys a persistent or cross-run cache —
/// like the experiment engine's isolation-profile memoizer — needs its
/// own hasher with a fixed algorithm. FNV-1a is tiny, has no seed, and
/// its output for a given byte stream never changes.
///
/// # Examples
///
/// ```
/// use contention::StableHasher;
///
/// let mut h = StableHasher::new();
/// h.write_str("task-a");
/// h.write_u64(3);
/// let a = h.finish();
///
/// let mut h2 = StableHasher::new();
/// h2.write_str("task-a");
/// h2.write_u64(3);
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher in its initial state.
    pub fn new() -> Self {
        StableHasher {
            state: Self::OFFSET_BASIS,
        }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Feeds a string, delimited so `"ab" + "c"` and `"a" + "bc"`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write(s.as_bytes());
        self.write(&[0xff])
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Feeds a `u8`.
    pub fn write_u8(&mut self, v: u8) -> &mut Self {
        self.write(&[v])
    }

    /// Returns the accumulated hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

/// A ceiling on a contender's SRI usage over the analysis window.
///
/// # Examples
///
/// ```
/// use contention::{ContenderSignature, ContentionModel, DebugCounters,
///                  FtcModel, IlpPtacModel, IsolationProfile, Platform,
///                  ScenarioConstraints};
///
/// # fn main() -> Result<(), contention::ModelError> {
/// let platform = Platform::tc277_reference();
/// let app = IsolationProfile::new("app", DebugCounters {
///     ccnt: 1_000_000, pmem_stall: 6_000, dmem_stall: 10_000,
///     pcache_miss: 800, ..Default::default()
/// });
///
/// // Contract: the co-runner may issue at most 500 code and 400 data
/// // SRI requests while the app runs.
/// let sig = ContenderSignature::new("partner-budget", 500, 400);
/// let model = IlpPtacModel::new(&platform, ScenarioConstraints::scenario1());
/// let worst = model.wcet_estimate(&app, &[&sig.to_profile(&platform)])?;
/// assert!(worst.contention_cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct ContenderSignature {
    name: String,
    /// Maximum code (fetch) requests on the SRI.
    pub code_requests: u64,
    /// Maximum data requests on the SRI.
    pub data_requests: u64,
}

impl ContenderSignature {
    /// Creates a signature from request ceilings.
    pub fn new(name: impl Into<String>, code_requests: u64, data_requests: u64) -> Self {
        ContenderSignature {
            name: name.into(),
            code_requests,
            data_requests,
        }
    }

    /// Derives the signature that covers a measured contender: the
    /// smallest ceilings whose synthetic profile dominates the measured
    /// counters under the platform's bounding equations (Eq. 4).
    pub fn covering(platform: &Platform, profile: &IsolationProfile) -> Self {
        let bounds = crate::counts::AccessBounds::from_counters(platform, profile.counters());
        ContenderSignature {
            name: format!("covers-{}", profile.name()),
            code_requests: bounds.code,
            data_requests: bounds.data,
        }
    }

    /// The signature's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Converts the ceilings into a synthetic isolation profile.
    ///
    /// The stall counters are set to `n × cs_min` so that the models'
    /// access-count bounding (Eq. 4) recovers exactly the declared
    /// ceilings; `P$_MISS` carries the code ceiling for the
    /// scenario-tailored exact-code constraint.
    pub fn to_profile(&self, platform: &Platform) -> IsolationProfile {
        let ps = self.code_requests * platform.cs_code_min();
        let ds = self.data_requests * platform.cs_data_min();
        IsolationProfile::new(
            self.name.clone(),
            DebugCounters {
                ccnt: ps + ds,
                pmem_stall: ps,
                dmem_stall: ds,
                pcache_miss: self.code_requests,
                dcache_miss_clean: 0,
                dcache_miss_dirty: 0,
            },
        )
    }

    /// Returns `true` if a measured contender stays within this
    /// signature (its bounded request counts do not exceed the
    /// ceilings).
    pub fn admits(&self, platform: &Platform, profile: &IsolationProfile) -> bool {
        let bounds = crate::counts::AccessBounds::from_counters(platform, profile.counters());
        bounds.code <= self.code_requests && bounds.data <= self.data_requests
    }
}

impl std::fmt::Display for ContenderSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: ≤{} code, ≤{} data requests",
            self.name, self.code_requests, self.data_requests
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftc::FtcModel;
    use crate::ilp_ptac::IlpPtacModel;
    use crate::scenario::ScenarioConstraints;
    use crate::wcet::ContentionModel;

    fn app() -> IsolationProfile {
        IsolationProfile::new(
            "app",
            DebugCounters {
                ccnt: 500_000,
                pmem_stall: 6_000,
                dmem_stall: 10_000,
                pcache_miss: 800,
                ..Default::default()
            },
        )
    }

    fn measured(ps: u64, ds: u64, pm: u64) -> IsolationProfile {
        IsolationProfile::new(
            "measured",
            DebugCounters {
                ccnt: 400_000,
                pmem_stall: ps,
                dmem_stall: ds,
                pcache_miss: pm,
                ..Default::default()
            },
        )
    }

    #[test]
    fn profile_roundtrips_the_ceilings() {
        let p = Platform::tc277_reference();
        let sig = ContenderSignature::new("s", 500, 400);
        let prof = sig.to_profile(&p);
        let b = crate::counts::AccessBounds::from_counters(&p, prof.counters());
        assert_eq!(b.code, 500);
        assert_eq!(b.data, 400);
        assert_eq!(prof.counters().pcache_miss, 500);
    }

    #[test]
    fn signature_bound_dominates_admitted_contenders() {
        let p = Platform::tc277_reference();
        let sig = ContenderSignature::new("budget", 300, 500);
        let sig_profile = sig.to_profile(&p);
        let a = app();
        let model = IlpPtacModel::new(&p, ScenarioConstraints::unconstrained());
        let against_sig = model.pairwise_bound(&a, &sig_profile).unwrap().delta_cycles;
        // Any contender within the ceilings is dominated.
        for (ps, ds, pm) in [(600, 1_000, 100), (1_800, 5_000, 300), (0, 0, 0)] {
            let real = measured(ps, ds, pm);
            assert!(sig.admits(&p, &real), "({ps},{ds}) should be admitted");
            let against_real = model.pairwise_bound(&a, &real).unwrap().delta_cycles;
            assert!(
                against_real <= against_sig,
                "{against_real} > {against_sig} for ({ps},{ds})"
            );
        }
    }

    #[test]
    fn admits_rejects_heavier_contenders() {
        let p = Platform::tc277_reference();
        let sig = ContenderSignature::new("budget", 10, 10);
        assert!(!sig.admits(&p, &measured(600, 1_000, 0)));
        assert!(sig.admits(&p, &measured(60, 100, 0)));
    }

    #[test]
    fn covering_signature_admits_its_source() {
        let p = Platform::tc277_reference();
        let real = measured(1_234, 5_678, 99);
        let sig = ContenderSignature::covering(&p, &real);
        assert!(sig.admits(&p, &real));
        assert!(sig.name().contains("measured"));
    }

    #[test]
    fn ftc_is_signature_invariant() {
        // Sanity: the fTC model ignores contenders, so signatures make
        // no difference there.
        let p = Platform::tc277_reference();
        let a = app();
        let m = FtcModel::new(&p);
        let s1 = ContenderSignature::new("s1", 1, 1).to_profile(&p);
        let s2 = ContenderSignature::new("s2", 10_000, 10_000).to_profile(&p);
        assert_eq!(
            m.pairwise_bound(&a, &s1).unwrap(),
            m.pairwise_bound(&a, &s2).unwrap()
        );
    }

    #[test]
    fn display_reads_well() {
        let sig = ContenderSignature::new("partner", 5, 7);
        assert_eq!(sig.to_string(), "partner: ≤5 code, ≤7 data requests");
    }
}
