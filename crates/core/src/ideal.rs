//! The ideal contention model (§3.2, Eq. 1).
//!
//! Assumes exact per-target access counts (PTAC) for both the analysed
//! task and the contender — information a real TC27x cannot provide, but
//! a simulator (or an ideal DSU) can. Each contender request delays one
//! request of the analysed task on the same target:
//!
//! ```text
//! Δcont_{b→a} = Σ_{t∈T} Σ_{o∈O} min(n_a^{t,o}, n_b^{t,o}) · l^{t,o}
//! ```
//!
//! Note the min is taken per (target, operation) pair, exactly as
//! written in Eq. 1.

use crate::error::ModelError;
use crate::platform::{Operation, Platform};
use crate::profile::{AccessCounts, IsolationProfile};
use crate::wcet::{ContentionBound, ContentionModel};

/// The ideal (full-information) model.
///
/// # Examples
///
/// ```
/// use contention::{
///     AccessCounts, ContentionModel, DebugCounters, IdealModel, IsolationProfile,
///     Operation, Platform, Target,
/// };
///
/// # fn main() -> Result<(), contention::ModelError> {
/// let platform = Platform::tc277_reference();
/// let mut na = AccessCounts::new();
/// na.set(Target::Lmu, Operation::Data, 100);
/// let mut nb = AccessCounts::new();
/// nb.set(Target::Lmu, Operation::Data, 40);
///
/// let a = IsolationProfile::new("a", DebugCounters::default()).with_ptac(na);
/// let b = IsolationProfile::new("b", DebugCounters::default()).with_ptac(nb);
///
/// let bound = IdealModel::new(&platform).pairwise_bound(&a, &b)?;
/// assert_eq!(bound.delta_cycles, 40 * 11); // min(100, 40) × l^{lmu,da}
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct IdealModel<'p> {
    platform: &'p Platform,
}

impl<'p> IdealModel<'p> {
    /// Creates the model over a platform description.
    pub fn new(platform: &'p Platform) -> Self {
        IdealModel { platform }
    }
}

fn require_ptac(p: &IsolationProfile) -> Result<&AccessCounts, ModelError> {
    p.ptac().ok_or_else(|| ModelError::MissingPtac {
        task: p.name().to_owned(),
    })
}

impl ContentionModel for IdealModel<'_> {
    fn name(&self) -> &str {
        "ideal"
    }

    fn pairwise_bound(
        &self,
        a: &IsolationProfile,
        b: &IsolationProfile,
    ) -> Result<ContentionBound, ModelError> {
        let na = require_ptac(a)?;
        let nb = require_ptac(b)?;
        let mut code = 0u64;
        let mut data = 0u64;
        let mut mapping = AccessCounts::new();
        for (t, o) in self.platform.paths().pairs() {
            let n = na.get(t, o).min(nb.get(t, o));
            let delay = n * self.platform.latency(t, o);
            mapping.set(t, o, n);
            match o {
                Operation::Code => code += delay,
                Operation::Data => data += delay,
            }
        }
        Ok(ContentionBound {
            delta_cycles: code + data,
            code_delta: code,
            data_delta: data,
            interference: Some(mapping),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Target;
    use crate::profile::DebugCounters;

    fn profile(name: &str, ptac: AccessCounts) -> IsolationProfile {
        IsolationProfile::new(name, DebugCounters::default()).with_ptac(ptac)
    }

    #[test]
    fn min_is_per_pair() {
        let platform = Platform::tc277_reference();
        let mut na = AccessCounts::new();
        na.set(Target::Pf0, Operation::Code, 10);
        na.set(Target::Lmu, Operation::Data, 5);
        let mut nb = AccessCounts::new();
        nb.set(Target::Pf0, Operation::Code, 3);
        nb.set(Target::Lmu, Operation::Data, 50);
        let bound = IdealModel::new(&platform)
            .pairwise_bound(&profile("a", na), &profile("b", nb))
            .unwrap();
        // code: min(10,3)×16 = 48; data: min(5,50)×11 = 55.
        assert_eq!(bound.code_delta, 48);
        assert_eq!(bound.data_delta, 55);
        assert_eq!(bound.delta_cycles, 103);
        let m = bound.interference.unwrap();
        assert_eq!(m.get(Target::Pf0, Operation::Code), 3);
        assert_eq!(m.get(Target::Lmu, Operation::Data), 5);
    }

    #[test]
    fn disjoint_targets_no_contention() {
        let platform = Platform::tc277_reference();
        let mut na = AccessCounts::new();
        na.set(Target::Pf0, Operation::Code, 100);
        let mut nb = AccessCounts::new();
        nb.set(Target::Pf1, Operation::Code, 100);
        let bound = IdealModel::new(&platform)
            .pairwise_bound(&profile("a", na), &profile("b", nb))
            .unwrap();
        assert_eq!(bound.delta_cycles, 0);
    }

    #[test]
    fn missing_ptac_is_an_error() {
        let platform = Platform::tc277_reference();
        let a = IsolationProfile::new("a", DebugCounters::default());
        let b = profile("b", AccessCounts::new());
        match IdealModel::new(&platform).pairwise_bound(&a, &b) {
            Err(ModelError::MissingPtac { task }) => assert_eq!(task, "a"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn symmetric_counts_give_symmetric_bounds() {
        let platform = Platform::tc277_reference();
        let mut n = AccessCounts::new();
        n.set(Target::Dfl, Operation::Data, 7);
        n.set(Target::Pf1, Operation::Code, 3);
        let a = profile("a", n);
        let b = profile("b", n);
        let m = IdealModel::new(&platform);
        let ab = m.pairwise_bound(&a, &b).unwrap();
        let ba = m.pairwise_bound(&b, &a).unwrap();
        assert_eq!(ab, ba);
        assert_eq!(ab.delta_cycles, 7 * 43 + 3 * 16);
    }
}
