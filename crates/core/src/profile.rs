//! Isolation profiles: what a single measurement campaign on one task
//! produces, and all the contention models consume.

use crate::platform::PerTargetOp;
use std::fmt;
use std::str::FromStr;

/// Debug-counter readings of one task executed in isolation (the
/// paper's Table 4 / Table 6 rows).
///
/// Field names mirror the TC27x DSU counters; the values are cumulative
/// end-to-end readings over one activation in isolation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct DebugCounters {
    /// Execution time in cycles (CCNT).
    pub ccnt: u64,
    /// PMEM_STALL: cycles stalled on the program memory interface.
    pub pmem_stall: u64,
    /// DMEM_STALL: cycles stalled on the data memory interface.
    pub dmem_stall: u64,
    /// P$_MISS: instruction-cache misses.
    pub pcache_miss: u64,
    /// D$_MISS_CLEAN: clean data-cache misses.
    pub dcache_miss_clean: u64,
    /// D$_MISS_DIRTY: dirty data-cache misses.
    pub dcache_miss_dirty: u64,
}

impl DebugCounters {
    /// Total data-cache misses (`DMC + DMD`).
    pub fn dcache_miss_total(&self) -> u64 {
        self.dcache_miss_clean + self.dcache_miss_dirty
    }
}

impl fmt::Display for DebugCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CCNT={} PS={} DS={} PM={} DMC={} DMD={}",
            self.ccnt,
            self.pmem_stall,
            self.dmem_stall,
            self.pcache_miss,
            self.dcache_miss_clean,
            self.dcache_miss_dirty
        )
    }
}

/// Exact per-target access counts (`n_x^{t,o}`), available only from a
/// simulator or an ideal DSU — the input the *ideal* model (Eq. 1)
/// assumes and real TC27x hardware cannot provide.
pub type AccessCounts = PerTargetOp;

/// Everything measured about one task in isolation.
///
/// # Examples
///
/// ```
/// use contention::{DebugCounters, IsolationProfile};
///
/// let profile = IsolationProfile::new(
///     "cruise-control",
///     DebugCounters { ccnt: 1_000_000, pmem_stall: 60_000, dmem_stall: 120_000,
///                     pcache_miss: 9_000, dcache_miss_clean: 0, dcache_miss_dirty: 0 },
/// );
/// assert_eq!(profile.counters().pmem_stall, 60_000);
/// assert!(profile.ptac().is_none());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IsolationProfile {
    name: String,
    counters: DebugCounters,
    ptac: Option<AccessCounts>,
}

impl IsolationProfile {
    /// Creates a profile from counter readings.
    pub fn new(name: impl Into<String>, counters: DebugCounters) -> Self {
        IsolationProfile {
            name: name.into(),
            counters,
            ptac: None,
        }
    }

    /// Attaches exact per-target access counts (simulator ground truth);
    /// enables the ideal model.
    #[must_use]
    pub fn with_ptac(mut self, ptac: AccessCounts) -> Self {
        self.ptac = Some(ptac);
        self
    }

    /// The task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The counter readings.
    pub fn counters(&self) -> &DebugCounters {
        &self.counters
    }

    /// Exact PTAC, if known.
    pub fn ptac(&self) -> Option<&AccessCounts> {
        self.ptac.as_ref()
    }
}

impl fmt::Display for IsolationProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.counters)
    }
}

impl IsolationProfile {
    /// Serialises the profile as one CSV record
    /// (`name,ccnt,ps,ds,pm,dmc,dmd`) — the interchange format a
    /// software supplier hands to the integrator. Exact PTAC is
    /// simulator-only and deliberately not part of the record.
    ///
    /// # Examples
    ///
    /// ```
    /// use contention::{DebugCounters, IsolationProfile};
    /// let p = IsolationProfile::new("app", DebugCounters {
    ///     ccnt: 10, pmem_stall: 1, dmem_stall: 2, pcache_miss: 3,
    ///     dcache_miss_clean: 4, dcache_miss_dirty: 5,
    /// });
    /// let rec = p.to_record();
    /// assert_eq!(rec, "app,10,1,2,3,4,5");
    /// assert_eq!(rec.parse::<IsolationProfile>().unwrap(), p);
    /// ```
    pub fn to_record(&self) -> String {
        let c = &self.counters;
        format!(
            "{},{},{},{},{},{},{}",
            self.name,
            c.ccnt,
            c.pmem_stall,
            c.dmem_stall,
            c.pcache_miss,
            c.dcache_miss_clean,
            c.dcache_miss_dirty
        )
    }
}

/// Error parsing an [`IsolationProfile`] record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseProfileError {
    /// What was wrong.
    pub detail: String,
}

impl fmt::Display for ParseProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid profile record: {}", self.detail)
    }
}

impl std::error::Error for ParseProfileError {}

impl FromStr for IsolationProfile {
    type Err = ParseProfileError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let fields: Vec<&str> = s.trim().split(',').collect();
        if fields.len() != 7 {
            return Err(ParseProfileError {
                detail: format!("expected 7 comma-separated fields, got {}", fields.len()),
            });
        }
        if fields[0].is_empty() {
            return Err(ParseProfileError {
                detail: "empty task name".into(),
            });
        }
        let num = |i: usize| -> Result<u64, ParseProfileError> {
            fields[i].trim().parse().map_err(|_| ParseProfileError {
                detail: format!("field {} (`{}`) is not a number", i + 1, fields[i]),
            })
        };
        Ok(IsolationProfile::new(
            fields[0],
            DebugCounters {
                ccnt: num(1)?,
                pmem_stall: num(2)?,
                dmem_stall: num(3)?,
                pcache_miss: num(4)?,
                dcache_miss_clean: num(5)?,
                dcache_miss_dirty: num(6)?,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{Operation, Target};

    #[test]
    fn profile_roundtrip() {
        let c = DebugCounters {
            ccnt: 100,
            pmem_stall: 10,
            dmem_stall: 20,
            pcache_miss: 3,
            dcache_miss_clean: 1,
            dcache_miss_dirty: 2,
        };
        let p = IsolationProfile::new("t", c);
        assert_eq!(p.name(), "t");
        assert_eq!(p.counters().dcache_miss_total(), 3);
        assert!(p.ptac().is_none());
        let mut ptac = AccessCounts::new();
        ptac.set(Target::Lmu, Operation::Data, 9);
        let p = p.with_ptac(ptac);
        assert_eq!(p.ptac().unwrap().get(Target::Lmu, Operation::Data), 9);
    }

    #[test]
    fn display_contains_counters() {
        let p = IsolationProfile::new("x", DebugCounters::default());
        assert!(p.to_string().starts_with("x: CCNT=0"));
    }

    #[test]
    fn record_roundtrip() {
        let p = IsolationProfile::new(
            "cruise",
            DebugCounters {
                ccnt: 846_103,
                pmem_stall: 109_736,
                dmem_stall: 123_840,
                pcache_miss: 18_136,
                dcache_miss_clean: 0,
                dcache_miss_dirty: 0,
            },
        );
        let parsed: IsolationProfile = p.to_record().parse().unwrap();
        assert_eq!(parsed, p);
        // PTAC is not serialised: attaching it changes equality only
        // through the ptac field.
        let with_ptac = p.clone().with_ptac(AccessCounts::new());
        assert_eq!(with_ptac.to_record(), p.to_record());
    }

    #[test]
    fn record_parsing_rejects_garbage() {
        assert!("".parse::<IsolationProfile>().is_err());
        assert!("a,b".parse::<IsolationProfile>().is_err());
        assert!("a,1,2,3,4,5,x".parse::<IsolationProfile>().is_err());
        assert!(",1,2,3,4,5,6".parse::<IsolationProfile>().is_err());
        let err = "a,1,2".parse::<IsolationProfile>().unwrap_err();
        assert!(err.to_string().contains("7 comma-separated"));
    }

    #[test]
    fn record_tolerates_whitespace_in_numbers() {
        let p: IsolationProfile = "t, 1,2 ,3,4,5,6".parse().unwrap();
        assert_eq!(p.counters().ccnt, 1);
        assert_eq!(p.counters().dcache_miss_dirty, 6);
    }
}
