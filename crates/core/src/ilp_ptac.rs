//! The ILP-PTAC model (§3.5, Eqs. 9–23) with scenario tailoring (§4.1).
//!
//! Per-target access counts (PTAC) are not observable on the TC27x, so
//! the model *searches* over every per-target mapping of the analysed
//! task's and the contender's requests that is consistent with the
//! observed debug counters, and maximises the stall cycles the contender
//! can inflict. The result is a partially time-composable bound: valid
//! for any contender whose counters are dominated by the profiled one.
//!
//! ## Formulation notes (deviations documented in DESIGN.md)
//!
//! * Eqs. 15–16 of the paper contain typos (`n^{pf1,co}` repeated); the
//!   implementation uses the obvious pf1 counterparts of Eqs. 11–13.
//! * Eq. 10's `min` of two decision quantities is linearised as a pair
//!   of `≤` constraints — equivalent under maximisation.
//! * Eqs. 20–23 are implemented in *stall-budget* form
//!   (`Σ n·cs_min ≤ cs_observed`) by default: always feasible, same
//!   optimum. `strict_stall_equality` restores the paper's literal
//!   equalities.

use crate::error::ModelError;
use crate::platform::{Operation, Platform, Target};
use crate::profile::{AccessCounts, DebugCounters, IsolationProfile};
use crate::scenario::ScenarioConstraints;
use crate::wcet::{ContentionBound, ContentionModel};
use ilp::{LinExpr, Problem, Var};

/// Options controlling the ILP-PTAC formulation.
#[derive(Clone, Debug)]
pub struct IlpPtacOptions {
    /// Emit the contender constraints (Eqs. 22–23 and the `≤ n_b`
    /// halves of Eqs. 10–19). Disabling them yields the fully
    /// time-composable ILP variant the paper mentions after Eq. 23.
    pub contender_constraints: bool,
    /// Use the paper's literal stall equalities instead of the
    /// (equivalent at the optimum, always feasible) budget form.
    pub strict_stall_equality: bool,
    /// Deployment-scenario tailoring (Table 5), applied to the analysed
    /// task and — when contender constraints are on — to contenders.
    pub scenario: ScenarioConstraints,
    /// Branch & bound node budget before falling back to the LP
    /// relaxation. The relaxation value dominates the ILP optimum, so
    /// the fallback bound stays sound; it is at most a fraction of a
    /// percent looser on degenerate (symmetric-plateau) instances.
    pub node_budget: u64,
}

impl IlpPtacOptions {
    /// Default options for a scenario: contender constraints on, budget
    /// stall form.
    pub fn for_scenario(scenario: ScenarioConstraints) -> Self {
        IlpPtacOptions {
            contender_constraints: true,
            strict_stall_equality: false,
            scenario,
            node_budget: 128,
        }
    }
}

impl Default for IlpPtacOptions {
    fn default() -> Self {
        IlpPtacOptions::for_scenario(ScenarioConstraints::unconstrained())
    }
}

/// Detailed ILP-PTAC outcome: the bound plus the witnessing access-count
/// mappings.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IlpPtacSolution {
    /// The contention bound (Eq. 9 value, split by class).
    pub bound: ContentionBound,
    /// Worst-case per-target mapping of the analysed task's requests.
    pub na: AccessCounts,
    /// Worst-case per-target mapping of the contender's requests (absent
    /// in the fully time-composable variant).
    pub nb: Option<AccessCounts>,
    /// `true` when the exact search hit its node budget and the bound is
    /// the (sound, marginally looser) LP-relaxation value; the mappings
    /// are then rounded witnesses rather than exact optima.
    pub relaxed: bool,
    /// Branch & bound nodes the solve explored — the solver's logical
    /// clock, recorded by the telemetry layer. Equals the node budget
    /// when the exact search was exhausted and the relaxation answered.
    pub nodes_explored: u64,
}

/// The ILP-PTAC contention model.
///
/// # Examples
///
/// ```
/// use contention::{
///     ContentionModel, DebugCounters, IlpPtacModel, IsolationProfile, Platform,
///     ScenarioConstraints,
/// };
///
/// # fn main() -> Result<(), contention::ModelError> {
/// let platform = Platform::tc277_reference();
/// let model = IlpPtacModel::new(&platform, ScenarioConstraints::scenario1());
///
/// let app = IsolationProfile::new("app", DebugCounters {
///     ccnt: 500_000, pmem_stall: 6_000, dmem_stall: 30_000,
///     pcache_miss: 1_000, ..Default::default()
/// });
/// let load = IsolationProfile::new("load", DebugCounters {
///     ccnt: 400_000, pmem_stall: 3_000, dmem_stall: 10_000,
///     pcache_miss: 500, ..Default::default()
/// });
///
/// let bound = model.pairwise_bound(&app, &load)?;
/// // Code: min(PM_a, PM_b) × 16; data: min(DS_a/10, DS_b/10) × 11.
/// assert_eq!(bound.code_delta, 500 * 16);
/// assert_eq!(bound.data_delta, 1_000 * 11);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct IlpPtacModel<'p> {
    platform: &'p Platform,
    options: IlpPtacOptions,
}

/// Per-task variable block in the ILP.
struct TaskVars {
    /// `n^{t,o}` for each feasible (t,o); `None` where zeroed/absent.
    n: Vec<Option<Var>>,
}

impl TaskVars {
    fn get(&self, pairs: &[(Target, Operation)], t: Target, o: Operation) -> Option<Var> {
        pairs
            .iter()
            .position(|&(pt, po)| pt == t && po == o)
            .and_then(|i| self.n[i])
    }
}

impl<'p> IlpPtacModel<'p> {
    /// Creates the model with default options for a scenario.
    pub fn new(platform: &'p Platform, scenario: ScenarioConstraints) -> Self {
        IlpPtacModel {
            platform,
            options: IlpPtacOptions::for_scenario(scenario),
        }
    }

    /// Creates the model with explicit options.
    pub fn with_options(platform: &'p Platform, options: IlpPtacOptions) -> Self {
        IlpPtacModel { platform, options }
    }

    /// The options in effect.
    pub fn options(&self) -> &IlpPtacOptions {
        &self.options
    }

    /// Adds one task's variable block and counter constraints to `p`.
    fn add_task_vars(
        &self,
        p: &mut Problem,
        label: &str,
        counters: &DebugCounters,
        pairs: &[(Target, Operation)],
    ) -> TaskVars {
        let scenario = &self.options.scenario;
        let mut n = Vec::with_capacity(pairs.len());
        for &(t, o) in pairs {
            if scenario.is_zeroed(t, o) {
                n.push(None);
                continue;
            }
            let stall = self.platform.stall(t, o).max(1);
            let budget = match o {
                Operation::Code => counters.pmem_stall,
                Operation::Data => counters.dmem_stall,
            };
            // Loose but finite upper bound; the stall/exact-code
            // constraints below are what actually bind.
            let mut ub = budget.div_ceil(stall);
            if o == Operation::Code && scenario.exact_code_from_pcache() {
                ub = ub.max(counters.pcache_miss);
            }
            n.push(Some(
                p.add_int_var(format!("n_{label}[{t},{o}]"), ub as i128),
            ));
        }
        let vars = TaskVars { n };

        // Stall accounting (Eqs. 20–23). The code equation is superseded
        // by the exact P$_MISS constraint when the scenario provides it.
        let stall_exprs = |op: Operation| -> LinExpr {
            let mut e = LinExpr::new();
            for &(t, o) in pairs {
                if o == op {
                    if let Some(v) = vars.get(pairs, t, o) {
                        e += v * (self.platform.stall(t, o) as i128);
                    }
                }
            }
            e
        };
        if scenario.exact_code_from_pcache() {
            // Σ n^{pf,co} = PM (Table 5); lmu code is zeroed in both
            // paper scenarios, but add it defensively when present.
            let mut e = LinExpr::new();
            for t in [Target::Pf0, Target::Pf1, Target::Lmu] {
                if let Some(v) = vars.get(pairs, t, Operation::Code) {
                    e += v;
                }
            }
            p.add_eq(e, counters.pcache_miss as i128);
        } else if self.options.strict_stall_equality {
            p.add_eq(stall_exprs(Operation::Code), counters.pmem_stall as i128);
        } else {
            p.add_le(stall_exprs(Operation::Code), counters.pmem_stall as i128);
        }
        if self.options.strict_stall_equality {
            p.add_eq(stall_exprs(Operation::Data), counters.dmem_stall as i128);
        } else {
            p.add_le(stall_exprs(Operation::Data), counters.dmem_stall as i128);
        }

        // Scenario 2: cacheable data misses must land on some cacheable
        // data target.
        if scenario.min_cacheable_data() {
            let mut e = LinExpr::new();
            let mut any = false;
            for t in [Target::Pf0, Target::Pf1, Target::Lmu] {
                if let Some(v) = vars.get(pairs, t, Operation::Data) {
                    e += v;
                    any = true;
                }
            }
            if any {
                p.add_ge(e, counters.dcache_miss_total() as i128);
            }
        }
        vars
    }

    /// Builds and solves the ILP for one contender; returns the detailed
    /// solution.
    ///
    /// # Errors
    ///
    /// [`ModelError::Ilp`] if the formulation is infeasible (possible
    /// only with `strict_stall_equality`) or the solver budget runs out.
    pub fn solve_detailed(
        &self,
        a: &IsolationProfile,
        b: &IsolationProfile,
    ) -> Result<IlpPtacSolution, ModelError> {
        self.solve_inner(a, b, true)
    }

    /// Like [`solve_detailed`](Self::solve_detailed) but *without* the
    /// internal LP-relaxation fallback: a blown node budget surfaces as
    /// [`ModelError::Ilp`] with [`ilp::SolveError::BudgetExhausted`] so a
    /// caller can degrade to a different (sound) model instead — see the
    /// [`evaluate`](crate::evaluate) pipeline, which falls back to fTC.
    pub fn solve_exact(
        &self,
        a: &IsolationProfile,
        b: &IsolationProfile,
    ) -> Result<IlpPtacSolution, ModelError> {
        self.solve_inner(a, b, false)
    }

    fn solve_inner(
        &self,
        a: &IsolationProfile,
        b: &IsolationProfile,
        relax_on_budget: bool,
    ) -> Result<IlpPtacSolution, ModelError> {
        let pairs = self.platform.paths().pairs();
        let mut p = Problem::maximize();

        let va = self.add_task_vars(&mut p, "a", a.counters(), &pairs);
        let vb = if self.options.contender_constraints {
            Some(self.add_task_vars(&mut p, "b", b.counters(), &pairs))
        } else {
            None
        };

        // Interference variables n_{b→a}^{t,o} and the Eqs. 10–19
        // constraint block.
        // Even when the scenario zeroes a (t,o) pair for τa, the
        // interference variable stays: contender requests of type o can
        // still delay τa's *other*-type requests at that slave. The
        // per-target sum constraints bound it correctly.
        let mut nba: Vec<Var> = Vec::with_capacity(pairs.len());
        for &(t, o) in &pairs {
            let ub = {
                // n_{b→a}^{t,o} ≤ n_a^{t,co} + n_a^{t,da} ≤ sum of ubs;
                // a loose explicit bound keeps branch & bound finite.
                let code_ub = a.counters().pmem_stall + a.counters().pcache_miss;
                let data_ub = a.counters().dmem_stall;
                (code_ub + data_ub) as i128
            };
            nba.push(p.add_int_var(format!("n_ba[{t},{o}]"), ub));
        }
        let nba_get = |t: Target, o: Operation| -> Option<Var> {
            pairs
                .iter()
                .position(|&(pt, po)| pt == t && po == o)
                .map(|i| nba[i])
        };

        // Per-target sums of τa's requests.
        let ta_sum = |t: Target| -> LinExpr {
            let mut e = LinExpr::new();
            for o in Operation::all() {
                if let Some(v) = va.get(&pairs, t, o) {
                    e += v;
                }
            }
            e
        };

        // Eq. 10: dfl (data only).
        if let Some(dfl_ba) = nba_get(Target::Dfl, Operation::Data) {
            p.add_le(dfl_ba, ta_sum(Target::Dfl));
            if let Some(vb) = &vb {
                match vb.get(&pairs, Target::Dfl, Operation::Data) {
                    Some(nb) => p.add_le(dfl_ba, nb),
                    None => p.add_le(dfl_ba, 0),
                }
            }
        }

        // Eqs. 11–19 for pf0, pf1, lmu (pf1 with the typos corrected).
        for t in [Target::Pf0, Target::Pf1, Target::Lmu] {
            let sum_a = ta_sum(t);
            let mut both = LinExpr::new();
            for o in Operation::all() {
                if !self.platform.paths().is_feasible(t, o) {
                    continue;
                }
                let Some(v) = nba_get(t, o) else { continue };
                p.add_le(v, sum_a.clone());
                both += v;
                if let Some(vb) = &vb {
                    match vb.get(&pairs, t, o) {
                        Some(nb) => p.add_le(v, nb),
                        None => p.add_le(v, 0),
                    }
                }
            }
            // Cumulative conflict cap (Eqs. 13/16/19).
            p.add_le(both, sum_a);
        }

        // Objective (Eq. 9): Σ n_{b→a}^{t,o} · l^{t,o}.
        let mut objective = LinExpr::new();
        for (i, &(t, o)) in pairs.iter().enumerate() {
            objective += nba[i] * (self.platform.latency(t, o) as i128);
        }
        p.set_objective(objective);

        p.set_node_limit(self.options.node_budget);
        // Exact first; on a blown node budget fall back to the LP
        // relaxation, whose value dominates the ILP optimum and is
        // therefore still a valid contention bound. The exact path
        // surfaces the exhaustion instead so callers can pick their own
        // fallback (the evaluate pipeline degrades to fTC); it also
        // demands the search finish *strictly within* the budget — a
        // solve that spends its whole allowance counts as exhausted, so
        // a budget of 1 is a guaranteed-fallback switch regardless of
        // how easy the instance happens to be.
        let (sol, relaxed, nodes_explored) = match p.solve_with_stats() {
            Ok((s, stats)) => {
                if !relax_on_budget && stats.nodes_explored >= self.options.node_budget {
                    return Err(ilp::SolveError::BudgetExhausted {
                        budget: ilp::Budget::Nodes,
                        limit: self.options.node_budget,
                    }
                    .into());
                }
                let nodes = stats.nodes_explored;
                (s, false, nodes)
            }
            Err(e @ ilp::SolveError::BudgetExhausted { .. }) => {
                if relax_on_budget {
                    (p.solve_relaxation()?, true, self.options.node_budget)
                } else {
                    return Err(e.into());
                }
            }
            Err(e) => return Err(e.into()),
        };

        let value_of = |v: Var| -> u64 {
            // Exact solutions are integral; relaxation witnesses are
            // floored for reporting.
            sol.value(v).floor() as u64
        };
        let mut mapping = AccessCounts::new();
        let mut code = 0u64;
        let mut data = 0u64;
        for (i, &(t, o)) in pairs.iter().enumerate() {
            let v = value_of(nba[i]);
            mapping.set(t, o, v);
            let delay = v * self.platform.latency(t, o);
            match o {
                Operation::Code => code += delay,
                Operation::Data => data += delay,
            }
        }
        // In relaxed mode the bound is the floor of the LP objective,
        // not the (lower) value of the floored witness.
        let (delta, code_delta, data_delta) = if relaxed {
            let total = sol.objective().floor() as u64;
            // Attribute the rounding remainder to the larger class so the
            // parts still sum to the total.
            let rem = total - (code + data);
            if code >= data {
                (total, code + rem, data)
            } else {
                (total, code, data + rem)
            }
        } else {
            (code + data, code, data)
        };
        let read_counts = |tv: &TaskVars| {
            let mut c = AccessCounts::new();
            for &(t, o) in &pairs {
                if let Some(v) = tv.get(&pairs, t, o) {
                    c.set(t, o, value_of(v));
                }
            }
            c
        };
        Ok(IlpPtacSolution {
            bound: ContentionBound {
                delta_cycles: delta,
                code_delta,
                data_delta,
                interference: Some(mapping),
            },
            na: read_counts(&va),
            nb: vb.as_ref().map(&read_counts),
            relaxed,
            nodes_explored,
        })
    }
}

impl ContentionModel for IlpPtacModel<'_> {
    fn name(&self) -> &str {
        if self.options.contender_constraints {
            "ILP-PTAC"
        } else {
            "ILP-fTC"
        }
    }

    fn pairwise_bound(
        &self,
        a: &IsolationProfile,
        b: &IsolationProfile,
    ) -> Result<ContentionBound, ModelError> {
        Ok(self.solve_detailed(a, b)?.bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftc::FtcModel;

    fn profile(name: &str, ps: u64, ds: u64, pm: u64) -> IsolationProfile {
        IsolationProfile::new(
            name,
            DebugCounters {
                ccnt: 1_000_000,
                pmem_stall: ps,
                dmem_stall: ds,
                pcache_miss: pm,
                dcache_miss_clean: 0,
                dcache_miss_dirty: 0,
            },
        )
    }

    #[test]
    fn scenario1_closed_form() {
        // Sc1: code on pf (exact via PM), data on lmu only.
        let p = Platform::tc277_reference();
        let m = IlpPtacModel::new(&p, ScenarioConstraints::scenario1());
        let a = profile("a", 6_000, 10_000, 800);
        let b = profile("b", 3_000, 4_000, 300);
        let sol = m.solve_detailed(&a, &b).unwrap();
        // Code interference = min(PMa, PMb) × 16 = 300 × 16.
        // Data interference = min(DSa/10, DSb/10) × 11 = 400 × 11.
        assert_eq!(sol.bound.code_delta, 300 * 16);
        assert_eq!(sol.bound.data_delta, 400 * 11);
        // Witness mappings respect the scenario.
        assert_eq!(sol.na.get(Target::Dfl, Operation::Data), 0);
        assert_eq!(sol.na.get(Target::Lmu, Operation::Code), 0);
        assert_eq!(
            sol.na.get(Target::Pf0, Operation::Code) + sol.na.get(Target::Pf1, Operation::Code),
            800
        );
    }

    #[test]
    fn adapts_to_contender_load() {
        let p = Platform::tc277_reference();
        let m = IlpPtacModel::new(&p, ScenarioConstraints::scenario1());
        let a = profile("a", 6_000, 10_000, 800);
        let heavy = profile("h", 6_000, 10_000, 800);
        let light = profile("l", 600, 1_000, 80);
        let bh = m.pairwise_bound(&a, &heavy).unwrap().delta_cycles;
        let bl = m.pairwise_bound(&a, &light).unwrap().delta_cycles;
        assert!(
            bl < bh,
            "lighter contender must give a tighter bound ({bl} vs {bh})"
        );
    }

    #[test]
    fn never_exceeds_ftc() {
        let p = Platform::tc277_reference();
        let ftc = FtcModel::new(&p);
        for scen in [
            ScenarioConstraints::unconstrained(),
            ScenarioConstraints::scenario1(),
            ScenarioConstraints::scenario2(),
        ] {
            let m = IlpPtacModel::new(&p, scen);
            let a = profile("a", 6_000, 10_000, 800);
            let b = profile("b", 4_000, 9_000, 500);
            let ilp = m.pairwise_bound(&a, &b).unwrap().delta_cycles;
            let f = ftc.pairwise_bound(&a, &b).unwrap().delta_cycles;
            assert!(ilp <= f, "ILP ({ilp}) must not exceed fTC ({f})");
        }
    }

    #[test]
    fn dropping_contender_constraints_loosens_the_bound() {
        let p = Platform::tc277_reference();
        let scen = ScenarioConstraints::scenario1();
        let with = IlpPtacModel::new(&p, scen.clone());
        let without = IlpPtacModel::with_options(
            &p,
            IlpPtacOptions {
                contender_constraints: false,
                ..IlpPtacOptions::for_scenario(scen)
            },
        );
        let a = profile("a", 6_000, 10_000, 800);
        let b = profile("b", 600, 1_000, 80);
        let tight = with.pairwise_bound(&a, &b).unwrap().delta_cycles;
        let loose = without.pairwise_bound(&a, &b).unwrap().delta_cycles;
        assert!(loose >= tight);
        assert_eq!(without.name(), "ILP-fTC");
        // The fully TC variant must be contender-independent.
        let heavy = profile("h", 60_000, 100_000, 8_000);
        assert_eq!(
            loose,
            without.pairwise_bound(&a, &heavy).unwrap().delta_cycles
        );
    }

    #[test]
    fn zero_contender_zero_bound() {
        let p = Platform::tc277_reference();
        let m = IlpPtacModel::new(&p, ScenarioConstraints::scenario1());
        let a = profile("a", 6_000, 10_000, 800);
        let idle = profile("idle", 0, 0, 0);
        assert_eq!(m.pairwise_bound(&a, &idle).unwrap().delta_cycles, 0);
    }

    #[test]
    fn scenario2_mixes_code_and_data_on_pflash() {
        let p = Platform::tc277_reference();
        let m = IlpPtacModel::new(&p, ScenarioConstraints::scenario2());
        let mut ca = DebugCounters {
            ccnt: 1_000_000,
            pmem_stall: 5_000,
            dmem_stall: 2_000,
            pcache_miss: 400,
            dcache_miss_clean: 100,
            dcache_miss_dirty: 0,
        };
        let a = IsolationProfile::new("a", ca);
        ca.pcache_miss = 200;
        ca.dmem_stall = 1_000;
        let b = IsolationProfile::new("b", ca);
        let sol = m.solve_detailed(&a, &b).unwrap();
        // Data can now interfere on pf0/pf1 and lmu; bound is positive
        // and the witness satisfies the cacheable-data floor.
        assert!(sol.bound.delta_cycles > 0);
        let da_total: u64 = [Target::Pf0, Target::Pf1, Target::Lmu]
            .iter()
            .map(|t| sol.na.get(*t, Operation::Data))
            .sum();
        assert!(da_total >= 100);
    }

    #[test]
    fn strict_equality_mode_solves_divisible_profiles() {
        let p = Platform::tc277_reference();
        let m = IlpPtacModel::with_options(
            &p,
            IlpPtacOptions {
                strict_stall_equality: true,
                ..IlpPtacOptions::for_scenario(ScenarioConstraints::unconstrained())
            },
        );
        // Stalls divisible by the minima: feasible under equality.
        let a = profile("a", 600, 1_000, 0);
        let b = profile("b", 60, 100, 0);
        let bound = m.pairwise_bound(&a, &b).unwrap();
        assert!(bound.delta_cycles > 0);
    }

    #[test]
    fn budget_mode_dominates_strict_mode() {
        let p = Platform::tc277_reference();
        let scen = ScenarioConstraints::unconstrained();
        let strict = IlpPtacModel::with_options(
            &p,
            IlpPtacOptions {
                strict_stall_equality: true,
                ..IlpPtacOptions::for_scenario(scen.clone())
            },
        );
        let budget = IlpPtacModel::new(&p, scen);
        let a = profile("a", 600, 1_000, 0);
        let b = profile("b", 600, 1_000, 0);
        let s = strict.pairwise_bound(&a, &b).unwrap().delta_cycles;
        let bu = budget.pairwise_bound(&a, &b).unwrap().delta_cycles;
        assert!(bu >= s, "budget relaxation can only widen the optimum");
    }
}
