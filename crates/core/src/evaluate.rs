//! Fault-tolerant evaluation pipeline: validate, solve, degrade soundly.
//!
//! The [`Evaluator`] chains three stages in front of a Δcont bound:
//!
//! 1. **Validation** — both profiles go through a
//!    [`Validator`](crate::validate::Validator) under the configured
//!    [`ValidationPolicy`]: strict rejects inconsistent counters,
//!    repair clamps them and records what changed.
//! 2. **ILP-PTAC** — the scenario-tailored ILP is solved *exactly*
//!    under its deterministic node budget
//!    ([`IlpPtacModel::solve_exact`]); no silent LP relaxation.
//! 3. **fTC fallback** — if the budget is exhausted or the formulation
//!    infeasible (possible with strict stall equalities), the pipeline
//!    degrades to the fTC bound (Eqs. 6–8), which is valid for *any*
//!    contender and therefore dominates every ILP-PTAC optimum. The
//!    result is tagged with the model that actually produced it.
//!
//! Everything is deterministic: budgets count branch & bound nodes, not
//! wall-clock time, so the exact/fallback decision — and hence every
//! reported bound — is bit-identical across `--jobs N` and machines.
//!
//! # Examples
//!
//! A node budget of 1 cannot close the contention ILP, so the pipeline
//! returns the fTC bound and says so:
//!
//! ```
//! use contention::evaluate::{BoundSource, EvalOptions, Evaluator};
//! use contention::{
//!     ContentionModel, DebugCounters, FtcModel, IsolationProfile, Platform,
//!     ScenarioConstraints,
//! };
//!
//! # fn main() -> Result<(), contention::ModelError> {
//! let platform = Platform::tc277_reference();
//! let app = IsolationProfile::new("app", DebugCounters {
//!     ccnt: 500_000, pmem_stall: 6_000, dmem_stall: 30_000,
//!     pcache_miss: 1_000, ..Default::default()
//! });
//! let load = IsolationProfile::new("load", DebugCounters {
//!     ccnt: 400_000, pmem_stall: 3_000, dmem_stall: 10_000,
//!     pcache_miss: 500, ..Default::default()
//! });
//!
//! let mut options = EvalOptions::for_scenario(ScenarioConstraints::scenario1());
//! options.ilp.node_budget = 1;
//! let evaluated = Evaluator::new(&platform, options).bound(&app, &load)?;
//!
//! assert_eq!(evaluated.source, BoundSource::Ftc);
//! assert_eq!(evaluated.source.tag(), "fallback=ftc");
//! let ftc = FtcModel::new(&platform).pairwise_bound(&app, &load)?;
//! assert_eq!(evaluated.bound.delta_cycles, ftc.delta_cycles);
//! # Ok(())
//! # }
//! ```

use crate::error::ModelError;
use crate::ftc::FtcModel;
use crate::ilp_ptac::{IlpPtacModel, IlpPtacOptions};
use crate::platform::Platform;
use crate::profile::IsolationProfile;
use crate::scenario::ScenarioConstraints;
use crate::validate::{ValidationPolicy, ValidationReport, Validator};
use crate::wcet::{ContentionBound, ContentionModel};
use std::fmt;

/// Which model produced an [`EvaluatedBound`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum BoundSource {
    /// The scenario-tailored ILP-PTAC optimum, solved exactly within
    /// its node budget.
    Ilp,
    /// The fTC bound: the ILP ran out of budget (or was infeasible) and
    /// the pipeline degraded to the contender-independent model.
    Ftc,
}

impl BoundSource {
    /// Stable machine-readable tag (`ilp` / `fallback=ftc`) for CSV
    /// columns and logs.
    pub fn tag(self) -> &'static str {
        match self {
            BoundSource::Ilp => "ilp",
            BoundSource::Ftc => "fallback=ftc",
        }
    }

    /// `true` when the bound came from the fallback model.
    pub fn is_fallback(self) -> bool {
        self == BoundSource::Ftc
    }
}

impl fmt::Display for BoundSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A Δcont bound together with its provenance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EvaluatedBound {
    /// The contention bound (always finite, always sound).
    pub bound: ContentionBound,
    /// The model that produced it.
    pub source: BoundSource,
    /// Validation reports for the analysed task and the contender, in
    /// that order.
    pub reports: Vec<ValidationReport>,
    /// Branch & bound nodes the ILP explored before this bound was
    /// settled — the solver's logical clock, deterministic across
    /// machines and worker counts. On the fTC path this is the
    /// exhausted node budget (or 0 for an infeasible formulation that
    /// never searched).
    pub nodes_explored: u64,
}

impl EvaluatedBound {
    /// `true` when either input profile was repaired.
    pub fn any_repairs(&self) -> bool {
        self.reports.iter().any(|r| r.repaired)
    }
}

/// Options for the evaluation pipeline.
#[derive(Clone, Debug)]
pub struct EvalOptions {
    /// How to treat invariant violations in the input profiles.
    pub policy: ValidationPolicy,
    /// ILP-PTAC formulation options, including the node budget that
    /// decides when to degrade to fTC.
    pub ilp: IlpPtacOptions,
}

impl EvalOptions {
    /// Defaults for a deployment scenario: repair policy, standard ILP
    /// options.
    pub fn for_scenario(scenario: ScenarioConstraints) -> Self {
        EvalOptions {
            policy: ValidationPolicy::default(),
            ilp: IlpPtacOptions::for_scenario(scenario),
        }
    }
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions::for_scenario(ScenarioConstraints::unconstrained())
    }
}

/// The fault-tolerant evaluation pipeline.
#[derive(Clone, Debug)]
pub struct Evaluator<'p> {
    platform: &'p Platform,
    options: EvalOptions,
}

impl<'p> Evaluator<'p> {
    /// Creates an evaluator over `platform` with `options`.
    pub fn new(platform: &'p Platform, options: EvalOptions) -> Self {
        Evaluator { platform, options }
    }

    /// The options in effect.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// Bounds the contention `b` can inflict on `a`, degrading from
    /// ILP-PTAC to fTC when the solve budget runs out.
    ///
    /// # Errors
    ///
    /// [`ModelError::InconsistentProfile`] under the strict policy when
    /// a profile violates an invariant; [`ModelError::Ilp`] only for
    /// solver failures the fallback cannot absorb (e.g. an unbounded
    /// formulation, which indicates a modelling bug rather than noisy
    /// input).
    pub fn bound(
        &self,
        a: &IsolationProfile,
        b: &IsolationProfile,
    ) -> Result<EvaluatedBound, ModelError> {
        let validator = Validator::new(self.platform, self.options.policy);
        let (a, report_a) = validator.apply(a)?;
        let (b, report_b) = validator.apply(b)?;
        let reports = vec![report_a, report_b];

        let ilp = IlpPtacModel::with_options(self.platform, self.options.ilp.clone());
        match ilp.solve_exact(&a, &b) {
            Ok(sol) => Ok(EvaluatedBound {
                bound: sol.bound,
                source: BoundSource::Ilp,
                reports,
                nodes_explored: sol.nodes_explored,
            }),
            Err(ModelError::Ilp(
                e @ (ilp::SolveError::BudgetExhausted { .. } | ilp::SolveError::Infeasible),
            )) => {
                let nodes_explored = match e {
                    ilp::SolveError::BudgetExhausted { limit, .. } => limit,
                    _ => 0,
                };
                let bound = FtcModel::new(self.platform).pairwise_bound(&a, &b)?;
                Ok(EvaluatedBound {
                    bound,
                    source: BoundSource::Ftc,
                    reports,
                    nodes_explored,
                })
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DebugCounters;

    fn profile(name: &str, ps: u64, ds: u64, pm: u64) -> IsolationProfile {
        IsolationProfile::new(
            name,
            DebugCounters {
                ccnt: 1_000_000,
                pmem_stall: ps,
                dmem_stall: ds,
                pcache_miss: pm,
                ..Default::default()
            },
        )
    }

    #[test]
    fn default_budget_matches_the_exact_ilp() {
        let p = Platform::tc277_reference();
        let a = profile("a", 6_000, 10_000, 800);
        let b = profile("b", 3_000, 4_000, 300);
        let options = EvalOptions::for_scenario(ScenarioConstraints::scenario1());
        let ev = Evaluator::new(&p, options).bound(&a, &b).unwrap();
        assert_eq!(ev.source, BoundSource::Ilp);
        assert!(!ev.source.is_fallback());
        let direct = IlpPtacModel::new(&p, ScenarioConstraints::scenario1())
            .pairwise_bound(&a, &b)
            .unwrap();
        assert_eq!(ev.bound, direct);
        assert!(ev.reports.iter().all(|r| r.is_clean()));
    }

    #[test]
    fn budget_of_one_degrades_to_ftc_everywhere() {
        let p = Platform::tc277_reference();
        let ftc = FtcModel::new(&p);
        let pairs = [
            (
                profile("a", 6_000, 10_000, 800),
                profile("b", 3_000, 4_000, 300),
            ),
            (
                profile("a", 34_212, 83_450, 2_365),
                profile("b", 17_441, 42_518, 1_205),
            ),
            (profile("a", 600, 1_000, 80), profile("b", 600, 1_000, 80)),
        ];
        for scenario in [
            ScenarioConstraints::unconstrained(),
            ScenarioConstraints::scenario1(),
            ScenarioConstraints::scenario2(),
        ] {
            let mut options = EvalOptions::for_scenario(scenario);
            options.ilp.node_budget = 1;
            let evaluator = Evaluator::new(&p, options);
            for (a, b) in &pairs {
                let ev = evaluator.bound(a, b).unwrap();
                assert_eq!(ev.source, BoundSource::Ftc, "{a} vs {b}");
                let expected = ftc.pairwise_bound(a, b).unwrap().delta_cycles;
                assert_eq!(ev.bound.delta_cycles, expected);
            }
        }
    }

    #[test]
    fn ftc_fallback_dominates_the_ilp_bound() {
        let p = Platform::tc277_reference();
        let a = profile("a", 6_000, 10_000, 800);
        let b = profile("b", 3_000, 4_000, 300);
        let exact = Evaluator::new(
            &p,
            EvalOptions::for_scenario(ScenarioConstraints::scenario1()),
        )
        .bound(&a, &b)
        .unwrap();
        let mut options = EvalOptions::for_scenario(ScenarioConstraints::scenario1());
        options.ilp.node_budget = 1;
        let fallback = Evaluator::new(&p, options).bound(&a, &b).unwrap();
        assert!(fallback.bound.delta_cycles >= exact.bound.delta_cycles);
    }

    #[test]
    fn strict_policy_rejects_noisy_input() {
        let p = Platform::tc277_reference();
        let options = EvalOptions {
            policy: ValidationPolicy::Strict,
            ..Default::default()
        };
        let evaluator = Evaluator::new(&p, options);
        let bad = IsolationProfile::new(
            "bad",
            DebugCounters {
                ccnt: 10,
                pmem_stall: 600,
                dmem_stall: 1_000,
                pcache_miss: 80,
                ..Default::default()
            },
        );
        let good = profile("good", 600, 1_000, 80);
        let err = evaluator.bound(&bad, &good).unwrap_err();
        assert!(matches!(err, ModelError::InconsistentProfile { .. }));
    }

    #[test]
    fn repair_policy_still_produces_a_bound() {
        let p = Platform::tc277_reference();
        let evaluator = Evaluator::new(&p, EvalOptions::default());
        let bad = IsolationProfile::new(
            "bad",
            DebugCounters {
                ccnt: 10,
                pmem_stall: 600,
                dmem_stall: 1_000,
                pcache_miss: 80,
                ..Default::default()
            },
        );
        let good = profile("good", 600, 1_000, 80);
        let ev = evaluator.bound(&bad, &good).unwrap();
        assert!(ev.any_repairs());
        assert!(!ev.reports[0].is_clean());
        assert!(ev.reports[1].is_clean());
    }
}
