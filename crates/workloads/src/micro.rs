//! Calibration microbenchmarks (§3.3.2 and reference \[10\] of the paper).
//!
//! Each probe performs a *known number of requests of a given type to a
//! desired target resource*, so that dividing the observed stall-cycle
//! counters by the request count yields the per-request stall — the
//! procedure the paper uses to populate Table 2.

use tc27x_sim::{CoreId, DataObject, Pattern, Placement, Program, Region, TaskSpec};

/// Straight-line cacheable code in a bank: `lines` code lines executed
/// once, all fetched sequentially. Derives `cs^{t,co}` (minimum) for
/// pf0/pf1 (prefetched: 6 cycles) and the LMU (11 cycles).
///
/// # Panics
///
/// Panics if `lines == 0` or the bank is the data flash (code cannot
/// live there).
pub fn code_stream(bank: Region, lines: u32) -> TaskSpec {
    assert!(lines > 0, "need at least one line");
    assert!(bank != Region::Dflash, "code cannot live in dflash");
    let prog = Program::build(|b| {
        for _ in 0..lines * 8 {
            b.compute(1);
        }
    });
    TaskSpec::new(
        format!("micro-code-stream-{lines}"),
        prog,
        Placement::new(bank, true),
    )
}

/// A non-cacheable code loop whose body spans two lines: every iteration
/// performs one *non-sequential* fetch (the branch-back target) and one
/// sequential fetch. Separating the two probes isolates the maximum
/// code-fetch latency `l^{pf,co}` (16 cycles on the reference platform).
///
/// # Panics
///
/// Panics if `iters == 0` or the bank is the data flash.
pub fn code_bounce(bank: Region, iters: u32) -> TaskSpec {
    assert!(iters > 0, "need at least one iteration");
    assert!(bank != Region::Dflash, "code cannot live in dflash");
    let prog = Program::build(|b| {
        b.repeat(iters, |b| {
            // 15 ops + the loop branch = 16 ops = 2 lines exactly.
            for _ in 0..15 {
                b.compute(1);
            }
        });
    });
    TaskSpec::new(
        format!("micro-code-bounce-{iters}"),
        prog,
        Placement::new(bank, false),
    )
}

/// `n` non-cacheable sequential word accesses (loads or stores) to the
/// LMU or data flash. Derives `cs^{lmu,da}` (10) and `cs^{dfl,da}` (42).
///
/// # Panics
///
/// Panics if the target region rejects non-cacheable data (Table 3) or
/// `n == 0`.
pub fn data_words(core: CoreId, target: Region, n: u32, write: bool) -> TaskSpec {
    assert!(n > 0, "need at least one access");
    let prog = Program::build(|b| {
        b.repeat(n, |b| {
            if write {
                b.store("buf", Pattern::Sequential);
            } else {
                b.load("buf", Pattern::Sequential);
            }
        });
    });
    TaskSpec::new(
        format!("micro-data-words-{target}-{n}"),
        prog,
        Placement::pspr(core),
    )
    .with_object(DataObject::new(
        "buf",
        4 << 10,
        Placement::new(target, false),
    ))
}

/// `n` cacheable line-granular loads from a program-flash bank,
/// walking sequential lines of a large object: every access misses and
/// fills from the (prefetch-friendly) flash. Derives `cs^{pf,da}` (11).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn data_lines(core: CoreId, bank: Region, n: u32) -> TaskSpec {
    assert!(n > 0, "need at least one access");
    let prog = Program::build(|b| {
        b.repeat(n, |b| {
            b.load("table", Pattern::Stride(32));
        });
    });
    // Object much larger than the d-cache so wrapped walks still miss.
    TaskSpec::new(
        format!("micro-data-lines-{bank}-{n}"),
        prog,
        Placement::pspr(core),
    )
    .with_object(DataObject::new(
        "table",
        256 << 10,
        Placement::new(bank, true),
    ))
}

/// `n` cacheable loads from a program-flash bank at a two-line stride:
/// every access misses on a fresh, *non-sequential* line, so each fill
/// pays the maximum flash latency `l^{pf,da}` (16) — deterministically,
/// unlike the random probe.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn data_skip(core: CoreId, bank: Region, n: u32) -> TaskSpec {
    assert!(n > 0, "need at least one access");
    let prog = Program::build(|b| {
        b.repeat(n, |b| {
            b.load("table", Pattern::Stride(64));
        });
    });
    TaskSpec::new(
        format!("micro-data-skip-{bank}-{n}"),
        prog,
        Placement::pspr(core),
    )
    .with_object(DataObject::new(
        "table",
        512 << 10,
        Placement::new(bank, true),
    ))
}

/// `n` cacheable random loads from a program-flash bank: fills are
/// almost always non-sequential, exposing the maximum flash latency
/// `l^{pf,da}` (16).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn data_random(core: CoreId, bank: Region, n: u32, seed: u64) -> TaskSpec {
    assert!(n > 0, "need at least one access");
    let prog = Program::build(|b| {
        b.repeat(n, |b| {
            b.load("table", Pattern::Random);
        });
    });
    TaskSpec::new(
        format!("micro-data-random-{bank}-{n}"),
        prog,
        Placement::pspr(core),
    )
    .with_object(DataObject::new(
        "table",
        512 << 10,
        Placement::new(bank, true),
    ))
    .with_seed(seed)
}

/// `n` cacheable stores streaming over an LMU object twice the d-cache
/// size: after warm-up every store misses *dirty*, triggering a
/// write-back + line-fill pair. Derives the LMU dirty-miss latency
/// (Table 2's bracketed 21 cycles) via CCNT deltas and exercises the
/// `DCACHE_MISS_DIRTY` counter.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn dirty_stores(core: CoreId, n: u32) -> TaskSpec {
    assert!(n > 0, "need at least one access");
    let prog = Program::build(|b| {
        b.repeat(n, |b| {
            b.store("state", Pattern::Stride(32));
        });
    });
    TaskSpec::new(
        format!("micro-dirty-stores-{n}"),
        prog,
        Placement::pspr(core),
    )
    .with_object(DataObject::new(
        "state",
        16 << 10,
        Placement::new(Region::Lmu, true),
    ))
}

/// A pure-compute task in the scratchpad: generates zero SRI traffic.
/// Baseline for CCNT-difference measurements and the "idle contender".
pub fn compute_only(core: CoreId, cycles: u32) -> TaskSpec {
    let prog = Program::build(|b| {
        b.repeat(cycles.max(1), |b| {
            b.compute(1);
        });
    });
    TaskSpec::new("micro-compute-only", prog, Placement::pspr(core))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc27x_sim::{AccessClass, SriTarget, System};

    fn run_isolated(core: CoreId, spec: &TaskSpec) -> tc27x_sim::RunOutcome {
        let mut sys = System::tc277();
        sys.load(core, spec).unwrap();
        sys.run().unwrap()
    }

    #[test]
    fn code_stream_recovers_pf_code_stall() {
        let c = CoreId(1);
        let out = run_isolated(c, &code_stream(Region::Pflash0, 200));
        let k = out.counters(c);
        // First fetch is non-sequential (16), the rest prefetched (6).
        assert_eq!(k.pmem_stall, 16 + 199 * 6);
        assert_eq!(k.pcache_miss, 200);
    }

    #[test]
    fn code_stream_recovers_lmu_code_stall() {
        let c = CoreId(1);
        let out = run_isolated(c, &code_stream(Region::Lmu, 64));
        let k = out.counters(c);
        assert_eq!(k.pmem_stall, 64 * 11);
    }

    #[test]
    fn code_bounce_exposes_max_flash_latency() {
        let c = CoreId(1);
        let iters = 50;
        let out = run_isolated(c, &code_bounce(Region::Pflash1, iters));
        let k = out.counters(c);
        // Per iteration: one non-sequential (16) + one sequential (6)
        // fetch; the very first iteration is 16 + 6 as well.
        assert_eq!(k.pmem_stall, (16 + 6) * iters as u64);
        // Non-cacheable fetches never count as cache misses.
        assert_eq!(k.pcache_miss, 0);
        let g = out.ground_truth(c);
        assert_eq!(g.max_latency(SriTarget::Pf1), 16);
    }

    #[test]
    fn data_words_recover_lmu_and_dfl_stalls() {
        let c = CoreId(2);
        let out = run_isolated(c, &data_words(c, Region::Lmu, 100, false));
        assert_eq!(out.counters(c).dmem_stall, 100 * 10);
        let out = run_isolated(c, &data_words(c, Region::Dflash, 50, false));
        assert_eq!(out.counters(c).dmem_stall, 50 * 42);
    }

    #[test]
    fn data_lines_recover_pf_data_stall() {
        let c = CoreId(1);
        let n = 128;
        let out = run_isolated(c, &data_lines(c, Region::Pflash0, n));
        let k = out.counters(c);
        // First fill non-sequential (15), the rest sequential (11).
        assert_eq!(k.dmem_stall, 15 + (n as u64 - 1) * 11);
        assert_eq!(k.dcache_miss_clean, n as u64);
        assert_eq!(k.dcache_miss_dirty, 0);
    }

    #[test]
    fn data_skip_is_deterministically_nonsequential() {
        let c = CoreId(1);
        let n = 200;
        let out = run_isolated(c, &data_skip(c, Region::Pflash1, n));
        let k = out.counters(c);
        // Every access misses at the non-sequential fill cost (16 - 1).
        assert_eq!(k.dmem_stall, n as u64 * 15);
        assert_eq!(k.dcache_miss_clean, n as u64);
    }

    #[test]
    fn data_random_hits_max_latency() {
        let c = CoreId(1);
        let out = run_isolated(c, &data_random(c, Region::Pflash0, 300, 7));
        let g = out.ground_truth(c);
        assert_eq!(g.max_latency(SriTarget::Pf0), 16);
    }

    #[test]
    fn dirty_stores_produce_writebacks() {
        let c = CoreId(1);
        // 16 KiB object / 32 = 512 lines; d-cache holds 256 lines.
        let n = 1024;
        let out = run_isolated(c, &dirty_stores(c, n));
        let k = out.counters(c);
        // Warm-up: 256 clean misses; then every store misses dirty.
        assert_eq!(k.dcache_miss_clean, 256);
        assert_eq!(k.dcache_miss_dirty, n as u64 - 256);
        // Dirty miss: write-back (10, unhidden) + fill (11, hide 1).
        let g = out.ground_truth(c);
        assert_eq!(
            g.accesses(SriTarget::Lmu, AccessClass::Data),
            n as u64 + (n as u64 - 256)
        );
    }

    #[test]
    fn dirty_miss_end_to_end_is_21_cycles() {
        let c = CoreId(1);
        // CCNT difference between consecutive sizes isolates one store.
        let t1 = run_isolated(c, &dirty_stores(c, 600)).counters(c).ccnt;
        let t2 = run_isolated(c, &dirty_stores(c, 601)).counters(c).ccnt;
        // One extra dirty store = 1 execute + 10 wb + 10 fill-stall + 1
        // loop-branch... the loop branch is part of both; the marginal
        // cost of one more dirty store iteration is 21 + 1 (branch).
        assert_eq!(t2 - t1, 21 + 1);
    }

    #[test]
    fn compute_only_touches_no_sri() {
        let c = CoreId(0);
        let out = run_isolated(c, &compute_only(c, 500));
        let k = out.counters(c);
        assert_eq!(k.pmem_stall + k.dmem_stall, 0);
        assert_eq!(out.ground_truth(c).total(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_requests_rejected() {
        let _ = data_words(CoreId(1), Region::Lmu, 0, false);
    }
}
