//! # `workloads` — the evaluation workload suite
//!
//! The tasks the paper's evaluation (§4.2) runs on the TC277:
//!
//! * [`control_loop`] — the application under analysis, a cruise-control
//!   style *acquire → compute → update* loop over two medium-size data
//!   structures, deployed per scenario (Figure 3);
//! * [`contender`] — the H/M/L-Load co-runners that put an increasing
//!   load on the SRI;
//! * [`fir_filter`] — a second application with a different memory
//!   shape (sliding-window convolution), for generality checks;
//! * [`micro`] — calibration microbenchmarks with a known number of
//!   requests per (target, operation) pair, used to regenerate Table 2.
//!
//! # Examples
//!
//! ```
//! use tc27x_sim::{CoreId, DeploymentScenario, System};
//! use workloads::{contender, control_loop, LoadLevel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's co-run setup: app on core 1, contender on core 2.
//! let mut sys = System::tc277();
//! sys.load(CoreId(1), &control_loop(DeploymentScenario::Scenario1, CoreId(1), 42))?;
//! sys.load(CoreId(2), &contender(DeploymentScenario::Scenario1, LoadLevel::High, CoreId(2), 7))?;
//! let out = sys.run_until(CoreId(1))?;
//! assert!(out.counters(CoreId(1)).ccnt > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

mod control_loop;
mod fir;
mod loads;
pub mod micro;

pub use control_loop::{control_loop, control_loop_on, ITERS_PER_BANK, UNITS_PER_ITER};
pub use fir::{fir_filter, FIR_SAMPLES, FIR_TAPS};
pub use loads::{contender, contender_on, LoadLevel};

/// The region hosting a workload's *second* flash code bank on this
/// platform: Pflash1 where it exists, else the platform's single flash
/// bank. The paper's two-bank layouts stay bit-identical on the
/// default TC27x; single-flash platforms (e.g. `ahb2`) fold both banks
/// into Pflash0 rather than becoming infeasible.
pub(crate) fn second_code_bank(desc: &platform::PlatformDesc) -> tc27x_sim::Region {
    if desc.slave(1).present {
        tc27x_sim::Region::Pflash1
    } else {
        tc27x_sim::Region::Pflash0
    }
}
