//! The H/M/L-Load contenders (§4.2): co-runners that put an increasing
//! amount of load on the SRI.
//!
//! Contenders mirror the application's deployment (the paper assumes
//! deployment configurations apply equally to the task under analysis
//! and contenders) but scale their SRI traffic by a load factor, padding
//! with scratchpad-resident compute so that all levels run for a
//! comparable amount of time in isolation.

use crate::control_loop::{ITERS_PER_BANK, UNITS_PER_ITER};
use tc27x_sim::{
    CoreId, DataObject, DeploymentScenario, Pattern, Placement, Program, ProgramBuilder, Region,
    TaskSpec,
};

/// Contender load level on shared resources (H-Load, M-Load, L-Load).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LoadLevel {
    /// Low load (~¼ of the application's SRI traffic).
    Low,
    /// Medium load (~½ of the application's traffic).
    Medium,
    /// High load (≈ the application's own traffic).
    High,
}

impl LoadLevel {
    /// All levels, lightest first.
    pub fn all() -> [LoadLevel; 3] {
        [LoadLevel::Low, LoadLevel::Medium, LoadLevel::High]
    }

    /// Main-loop iterations per bank for this level under a scenario.
    fn iterations(self, scenario: DeploymentScenario) -> u32 {
        let base = ITERS_PER_BANK;
        match (scenario, self) {
            // Scenario 2 saturates earlier (the app's data traffic is
            // small), so even the high load stays below the app's rate.
            (DeploymentScenario::Scenario2, LoadLevel::High) => 2 * base / 3,
            (DeploymentScenario::Scenario2, LoadLevel::Medium) => base / 2,
            (DeploymentScenario::Scenario2, LoadLevel::Low) => base / 3,
            (_, LoadLevel::High) => base,
            (_, LoadLevel::Medium) => 7 * base / 10,
            (_, LoadLevel::Low) => 9 * base / 20,
        }
    }

    /// Scratchpad compute padding (cycles) appended per bank so that the
    /// levels have comparable isolation execution times.
    fn padding_cycles(self, scenario: DeploymentScenario) -> u32 {
        let full = ITERS_PER_BANK;
        let mine = self.iterations(scenario);
        // Roughly the per-iteration cycle cost of the main loop.
        let per_iter = match scenario {
            DeploymentScenario::Scenario2 => 9_100,
            _ => 27_000,
        };
        (full - mine) * per_iter
    }
}

impl std::fmt::Display for LoadLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadLevel::Low => write!(f, "L-Load"),
            LoadLevel::Medium => write!(f, "M-Load"),
            LoadLevel::High => write!(f, "H-Load"),
        }
    }
}

fn contender_unit_sc1(b: &mut ProgramBuilder, u: u32) {
    if u % 13 < 9 {
        if u % 3 == 1 {
            b.store("out_buf", Pattern::Sequential);
        } else {
            b.load("in_buf", Pattern::Sequential);
        }
    } else {
        b.compute(1);
    }
    for k in 0..9 {
        b.compute(if (u + k) % 10 < 7 { 4 } else { 3 });
    }
}

fn contender_unit_sc2(b: &mut ProgramBuilder, u: u32) {
    match u % 35 {
        0 => b.load("shared_b", Pattern::Sequential),
        7 => b.load("calib_b", Pattern::Random),
        _ => b.load("lut_b", Pattern::Random),
    };
    for _ in 0..9 {
        b.compute(1);
    }
}

fn main_loop(iters: u32, unit: impl Fn(&mut ProgramBuilder, u32)) -> Program {
    Program::build(|b| {
        b.repeat(iters, |b| {
            for u in 0..UNITS_PER_ITER {
                unit(b, u);
            }
        });
    })
}

fn padding(cycles: u32) -> Program {
    Program::build(|b| {
        b.repeat(cycles / 101 + 1, |b| {
            b.compute(100);
        });
    })
}

/// Builds a contender task for a scenario and load level.
///
/// # Examples
///
/// ```
/// use tc27x_sim::{CoreId, DeploymentScenario, System};
/// use workloads::{contender, LoadLevel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let load = contender(DeploymentScenario::Scenario1, LoadLevel::Low, CoreId(2), 7);
/// let mut sys = System::tc277();
/// sys.load(CoreId(2), &load)?;
/// let out = sys.run()?;
/// assert!(out.counters(CoreId(2)).dmem_stall > 0);
/// # Ok(())
/// # }
/// ```
pub fn contender(
    scenario: DeploymentScenario,
    level: LoadLevel,
    core: CoreId,
    seed: u64,
) -> TaskSpec {
    contender_on(platform::default_platform(), scenario, level, core, seed)
}

/// [`contender`] for an explicit platform description: the second
/// flash bank folds onto the platform's available code slave (see
/// `second_code_bank`). On the default TC27x this is exactly
/// [`contender`].
pub fn contender_on(
    desc: &platform::PlatformDesc,
    scenario: DeploymentScenario,
    level: LoadLevel,
    core: CoreId,
    seed: u64,
) -> TaskSpec {
    let bank2 = crate::second_code_bank(desc);
    let iters = level.iterations(scenario).max(1);
    let pad = level.padding_cycles(scenario);
    let name = format!("{level}-{scenario}");
    match scenario {
        DeploymentScenario::Scenario1 | DeploymentScenario::LowTraffic => TaskSpec::empty(name)
            .with_segment(
                main_loop(iters, contender_unit_sc1),
                Placement::new(Region::Pflash0, true),
            )
            .with_segment(padding(pad), Placement::pspr(core))
            .with_segment(
                main_loop(iters, contender_unit_sc1),
                Placement::new(bank2, true),
            )
            .with_segment(padding(pad), Placement::pspr(core))
            .with_object(DataObject::new(
                "in_buf",
                4 << 10,
                Placement::new(Region::Lmu, false),
            ))
            .with_object(DataObject::new(
                "out_buf",
                2 << 10,
                Placement::new(Region::Lmu, false),
            ))
            .with_seed(seed),
        DeploymentScenario::Scenario2 => TaskSpec::empty(name)
            .with_segment(
                main_loop(iters, contender_unit_sc2),
                Placement::new(Region::Pflash0, true),
            )
            .with_segment(padding(pad), Placement::pspr(core))
            .with_segment(
                main_loop(iters, contender_unit_sc2),
                Placement::new(bank2, true),
            )
            .with_segment(padding(pad), Placement::pspr(core))
            .with_object(DataObject::new(
                "lut_b",
                4 << 10,
                Placement::new(Region::Lmu, true),
            ))
            .with_object(DataObject::new(
                "calib_b",
                2 << 10,
                Placement::new(bank2, true),
            ))
            .with_object(DataObject::new(
                "shared_b",
                1 << 10,
                Placement::new(Region::Lmu, false),
            ))
            .with_seed(seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc27x_sim::System;

    fn profile(scenario: DeploymentScenario, level: LoadLevel) -> tc27x_sim::DebugCounters {
        let core = CoreId(2);
        let spec = contender(scenario, level, core, 7);
        let mut sys = System::tc277();
        sys.load(core, &spec).unwrap();
        sys.run().unwrap().counters(core)
    }

    #[test]
    fn load_levels_scale_sri_traffic() {
        let l = profile(DeploymentScenario::Scenario1, LoadLevel::Low);
        let m = profile(DeploymentScenario::Scenario1, LoadLevel::Medium);
        let h = profile(DeploymentScenario::Scenario1, LoadLevel::High);
        assert!(l.pmem_stall < m.pmem_stall && m.pmem_stall < h.pmem_stall);
        assert!(l.dmem_stall < m.dmem_stall && m.dmem_stall < h.dmem_stall);
        assert!(l.pcache_miss < m.pcache_miss && m.pcache_miss < h.pcache_miss);
    }

    #[test]
    fn padding_keeps_execution_times_comparable() {
        let l = profile(DeploymentScenario::Scenario1, LoadLevel::Low);
        let h = profile(DeploymentScenario::Scenario1, LoadLevel::High);
        let ratio = l.ccnt as f64 / h.ccnt as f64;
        assert!(
            (0.7..=1.3).contains(&ratio),
            "L/H isolation time ratio {ratio:.2} out of range"
        );
    }

    #[test]
    fn scenario2_contenders_have_light_data_traffic() {
        let h = profile(DeploymentScenario::Scenario2, LoadLevel::High);
        assert!(h.dmem_stall < h.pmem_stall / 5);
        assert_eq!(h.dcache_miss_dirty, 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(LoadLevel::High.to_string(), "H-Load");
        assert_eq!(LoadLevel::Medium.to_string(), "M-Load");
        assert_eq!(LoadLevel::Low.to_string(), "L-Load");
        assert_eq!(LoadLevel::all()[0], LoadLevel::Low);
    }
}
