//! A second application: a FIR-filter style signal-processing task.
//!
//! The cruise-control loop is the paper's evaluation subject; this task
//! broadens the suite with a different memory shape — a sliding-window
//! convolution that streams samples from a shared input buffer, reads a
//! coefficient table, and writes decimated output — showing the models
//! are not tuned to one program structure.

use tc27x_sim::{
    CoreId, DataObject, DeploymentScenario, Pattern, Placement, Program, Region, TaskSpec,
};

/// Taps of the simulated filter (reads per produced sample).
pub const FIR_TAPS: u32 = 16;
/// Output samples produced per activation.
pub const FIR_SAMPLES: u32 = 256;

/// Builds the FIR task for a deployment scenario.
///
/// * **Scenario 1** — samples stream from a non-cacheable LMU buffer
///   (shared with the producer core), coefficients live in the data
///   scratchpad, output goes back to the LMU.
/// * **Scenario 2 / LowTraffic** — coefficients are constant cacheable
///   data in pf0 and samples are mostly local; only block boundaries
///   touch the shared LMU.
///
/// # Examples
///
/// ```
/// use tc27x_sim::{CoreId, DeploymentScenario, System};
/// use workloads::fir_filter;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let task = fir_filter(DeploymentScenario::Scenario1, CoreId(2), 5);
/// let mut sys = System::tc277();
/// sys.load(CoreId(2), &task)?;
/// let out = sys.run()?;
/// assert!(out.counters(CoreId(2)).dmem_stall > 0);
/// # Ok(())
/// # }
/// ```
pub fn fir_filter(scenario: DeploymentScenario, core: CoreId, seed: u64) -> TaskSpec {
    match scenario {
        DeploymentScenario::Scenario1 => {
            let prog = Program::build(|b| {
                b.repeat(FIR_SAMPLES, |b| {
                    // Multiply-accumulate over the tap window: one shared
                    // sample read plus local coefficient reads.
                    for t in 0..FIR_TAPS {
                        if t % 4 == 0 {
                            b.load("samples", Pattern::Sequential);
                        } else {
                            b.load("coeffs", Pattern::Sequential);
                        }
                        b.compute(2);
                    }
                    b.store("filtered", Pattern::Sequential);
                    b.compute(6);
                });
            });
            TaskSpec::new("fir-sc1", prog, Placement::new(Region::Pflash1, true))
                .with_object(DataObject::new(
                    "samples",
                    8 << 10,
                    Placement::new(Region::Lmu, false),
                ))
                .with_object(DataObject::new("coeffs", 1 << 10, Placement::dspr(core)))
                .with_object(DataObject::new(
                    "filtered",
                    4 << 10,
                    Placement::new(Region::Lmu, false),
                ))
                .with_seed(seed)
        }
        DeploymentScenario::Scenario2 | DeploymentScenario::LowTraffic => {
            let prog = Program::build(|b| {
                b.repeat(FIR_SAMPLES, |b| {
                    for t in 0..FIR_TAPS {
                        if t % 8 == 0 {
                            b.load("coeff_rom", Pattern::Random);
                        } else {
                            b.load("window", Pattern::Sequential);
                        }
                        b.compute(1);
                    }
                    b.store("window", Pattern::Sequential);
                    b.compute(4);
                });
                b.repeat(FIR_SAMPLES / 8, |b| {
                    b.store("block_out", Pattern::Sequential);
                });
            });
            TaskSpec::new("fir-sc2", prog, Placement::new(Region::Pflash1, true))
                .with_object(DataObject::new(
                    "coeff_rom",
                    2 << 10,
                    Placement::new(Region::Pflash0, true),
                ))
                .with_object(DataObject::new("window", 2 << 10, Placement::dspr(core)))
                .with_object(DataObject::new(
                    "block_out",
                    1 << 10,
                    Placement::new(Region::Lmu, false),
                ))
                .with_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc27x_sim::{AccessClass, SriTarget, System};

    fn run(scenario: DeploymentScenario) -> tc27x_sim::RunOutcome {
        let core = CoreId(2);
        let mut sys = System::tc277();
        sys.load(core, &fir_filter(scenario, core, 5)).unwrap();
        sys.run().unwrap()
    }

    #[test]
    fn scenario1_streams_the_lmu() {
        let out = run(DeploymentScenario::Scenario1);
        let g = out.ground_truth(CoreId(2));
        // 4 shared sample reads + 1 store per produced sample.
        assert_eq!(
            g.accesses(SriTarget::Lmu, AccessClass::Data),
            (FIR_SAMPLES * 5) as u64
        );
        assert_eq!(g.accesses(SriTarget::Dfl, AccessClass::Data), 0);
    }

    #[test]
    fn scenario2_is_mostly_local() {
        let sc1 = run(DeploymentScenario::Scenario1).counters(CoreId(2));
        let sc2 = run(DeploymentScenario::Scenario2).counters(CoreId(2));
        assert!(sc2.dmem_stall * 3 < sc1.dmem_stall);
        // Constant coefficients produce clean misses only.
        assert_eq!(sc2.dcache_miss_dirty, 0);
    }

    #[test]
    fn fir_bounds_are_sound_against_the_cruise_control_contender() {
        use contention_model_check::check;
        check();
    }

    /// A tiny embedded module so the soundness check reads clearly.
    mod contention_model_check {
        use super::super::*;
        use crate::{contender, LoadLevel};

        pub fn check() {
            let (a, b) = (CoreId(1), CoreId(2));
            let fir = fir_filter(DeploymentScenario::Scenario1, a, 5);
            let load = contender(DeploymentScenario::Scenario1, LoadLevel::High, b, 7);
            let mut iso = tc27x_sim::System::tc277();
            iso.load(a, &fir).unwrap();
            let iso_t = iso.run().unwrap().counters(a).ccnt;
            let mut pair = tc27x_sim::System::tc277();
            pair.load(a, &fir).unwrap();
            pair.load(b, &load).unwrap();
            let co_t = pair.run_until(a).unwrap().counters(a).ccnt;
            assert!(co_t >= iso_t);
            // Round-robin bound: each of the FIR's LMU accesses can wait
            // for at most one contender request.
            let lmu_accesses = (FIR_SAMPLES * 5) as u64;
            assert!(co_t - iso_t <= lmu_accesses * 11 + 16 * 1_000);
        }
    }
}
