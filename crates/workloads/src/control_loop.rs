//! The application under analysis: a control loop mimicking an
//! Automotive Cruise Control System (§4.2).
//!
//! The task performs the typical *signal acquisition → computation →
//! status update* sequence over two medium-size data structures, and is
//! deployed in the two variants of Figure 3 (plus the low-SRI-traffic
//! variant the paper mentions for real-world use cases):
//!
//! * **Scenario 1** — cacheable code in pf0/pf1, shared non-cacheable
//!   data (sensor/actuator buffers) in the LMU;
//! * **Scenario 2** — cacheable code in pf0/pf1, a cacheable lookup
//!   table in the LMU, cacheable constant data in pf0, and a small
//!   non-cacheable shared region in the LMU;
//! * **LowTraffic** — most code and data in the core-local scratchpads.

use tc27x_sim::{
    CoreId, DataObject, DeploymentScenario, Pattern, Placement, Program, ProgramBuilder, Region,
    TaskSpec,
};

/// Control iterations per flash bank segment.
pub const ITERS_PER_BANK: u32 = 16;
/// Work units per loop body; each unit is 10 ops (one leading memory or
/// compute op plus nine compute ops), sized so that the body exceeds
/// the 16 KiB i-cache and thrashes it every iteration.
pub const UNITS_PER_ITER: u32 = 558;

/// Emits one Scenario-1 work unit: LMU traffic in 9 of 13 units plus a
/// ~33-cycle compute burst (avg 3.7 cycles per compute op).
fn sc1_unit(b: &mut ProgramBuilder, u: u32) {
    if u % 13 < 9 {
        if u % 3 == 2 {
            b.store("actuators", Pattern::Sequential);
        } else {
            b.load("sensors", Pattern::Sequential);
        }
    } else {
        b.compute(1);
    }
    for k in 0..9 {
        b.compute(if (u + k) % 10 < 7 { 4 } else { 3 });
    }
}

/// Emits one Scenario-2 work unit: mostly-cached data plus minimal
/// compute — the Scenario-2 application is fetch-dominated.
fn sc2_unit(b: &mut ProgramBuilder, u: u32) {
    match u % 35 {
        0 => b.load("shared", Pattern::Sequential),
        7 => b.load("calib", Pattern::Random),
        _ => b.load("lut", Pattern::Random),
    };
    for _ in 0..9 {
        b.compute(1);
    }
}

/// One bank's main-loop program.
fn bank_loop(iters: u32, units: u32, unit: impl Fn(&mut ProgramBuilder, u32)) -> Program {
    Program::build(|b| {
        b.repeat(iters, |b| {
            for u in 0..units {
                unit(b, u);
            }
        });
    })
}

/// A short scratchpad-resident initialisation segment (sensor warm-up
/// and state reset).
fn init_segment() -> Program {
    Program::build(|b| {
        for i in 0..16 {
            b.load("state", Pattern::Sequential);
            b.compute(2 + (i % 3));
            b.store("state", Pattern::Sequential);
        }
    })
}

/// Builds the control-loop application for one deployment scenario.
///
/// `core` is the core the task will run on (its scratchpads hold the
/// init code and local state); `seed` drives the random access
/// patterns.
///
/// # Examples
///
/// ```
/// use tc27x_sim::{CoreId, DeploymentScenario, System};
/// use workloads::control_loop;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app = control_loop(DeploymentScenario::Scenario1, CoreId(1), 42);
/// let mut sys = System::tc277();
/// sys.load(CoreId(1), &app)?;
/// let out = sys.run()?;
/// assert!(out.counters(CoreId(1)).pcache_miss > 0);
/// # Ok(())
/// # }
/// ```
pub fn control_loop(scenario: DeploymentScenario, core: CoreId, seed: u64) -> TaskSpec {
    control_loop_on(platform::default_platform(), scenario, core, seed)
}

/// [`control_loop`] for an explicit platform description: placements
/// that name the second flash bank fold onto the platform's available
/// code slave (see `second_code_bank`). On the default TC27x this is
/// exactly [`control_loop`].
pub fn control_loop_on(
    desc: &platform::PlatformDesc,
    scenario: DeploymentScenario,
    core: CoreId,
    seed: u64,
) -> TaskSpec {
    let bank2 = crate::second_code_bank(desc);
    match scenario {
        DeploymentScenario::Scenario1 => TaskSpec::empty("cruise-control-sc1")
            .with_segment(init_segment(), Placement::pspr(core))
            .with_segment(
                bank_loop(ITERS_PER_BANK, UNITS_PER_ITER, sc1_unit),
                Placement::new(Region::Pflash0, true),
            )
            .with_segment(
                bank_loop(ITERS_PER_BANK, UNITS_PER_ITER, sc1_unit),
                Placement::new(bank2, true),
            )
            .with_object(DataObject::new(
                "sensors",
                4 << 10,
                Placement::new(Region::Lmu, false),
            ))
            .with_object(DataObject::new(
                "actuators",
                2 << 10,
                Placement::new(Region::Lmu, false),
            ))
            .with_object(DataObject::new("state", 1 << 10, Placement::dspr(core)))
            .with_seed(seed),
        DeploymentScenario::Scenario2 => TaskSpec::empty("cruise-control-sc2")
            .with_segment(init_segment(), Placement::pspr(core))
            .with_segment(
                bank_loop(ITERS_PER_BANK, UNITS_PER_ITER, sc2_unit),
                Placement::new(Region::Pflash0, true),
            )
            .with_segment(
                bank_loop(ITERS_PER_BANK, UNITS_PER_ITER, sc2_unit),
                Placement::new(bank2, true),
            )
            .with_object(DataObject::new(
                "lut",
                4 << 10,
                Placement::new(Region::Lmu, true),
            ))
            .with_object(DataObject::new(
                "calib",
                2 << 10,
                Placement::new(Region::Pflash0, true),
            ))
            .with_object(DataObject::new(
                "shared",
                1 << 10,
                Placement::new(Region::Lmu, false),
            ))
            .with_object(DataObject::new("state", 1 << 10, Placement::dspr(core)))
            .with_seed(seed),
        DeploymentScenario::LowTraffic => {
            // Most code/data in the scratchpads; a small flash-resident
            // routine and rare shared-LMU accesses.
            let local = Program::build(|b| {
                b.repeat(200, |b| {
                    for i in 0..8 {
                        b.load("state", Pattern::Sequential);
                        b.compute(4 + (i % 4));
                        b.store("state", Pattern::Sequential);
                    }
                    b.load("shared", Pattern::Sequential);
                });
            });
            let flash_routine = Program::build(|b| {
                b.repeat(4, |b| {
                    for u in 0..UNITS_PER_ITER / 4 {
                        if u % 8 == 0 {
                            b.load("shared", Pattern::Sequential);
                        } else {
                            b.compute(3);
                        }
                    }
                });
            });
            TaskSpec::empty("cruise-control-low")
                .with_segment(local, Placement::pspr(core))
                .with_segment(flash_routine, Placement::new(Region::Pflash0, true))
                .with_object(DataObject::new("state", 2 << 10, Placement::dspr(core)))
                .with_object(DataObject::new(
                    "shared",
                    1 << 10,
                    Placement::new(Region::Lmu, false),
                ))
                .with_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc27x_sim::System;

    fn run(scenario: DeploymentScenario) -> (tc27x_sim::DebugCounters, tc27x_sim::GroundTruth) {
        let core = CoreId(1);
        let app = control_loop(scenario, core, 42);
        let mut sys = System::tc277();
        sys.load(core, &app).unwrap();
        let out = sys.run().unwrap();
        (out.counters(core), out.ground_truth(core))
    }

    #[test]
    fn scenario1_profile_shape() {
        let (k, g) = run(DeploymentScenario::Scenario1);
        // Code misses almost every line of the body, every iteration
        // (the body exceeds the i-cache and thrashes most sets).
        assert!(k.pcache_miss as f64 >= 0.9 * (2 * ITERS_PER_BANK * UNITS_PER_ITER) as f64);
        // Data: all non-cacheable LMU traffic, no d-cache misses. Memory
        // ops occur in 9 of every 13 units (387 per iteration).
        let mem_per_iter = (UNITS_PER_ITER / 13) * 9 + (UNITS_PER_ITER % 13).min(9);
        assert_eq!(k.dcache_miss_total(), 0);
        assert_eq!(
            k.dmem_stall,
            (2 * ITERS_PER_BANK * mem_per_iter) as u64 * 10
        );
        // Code goes only to pf0/pf1, data only to the LMU.
        use tc27x_sim::{AccessClass, SriTarget};
        assert_eq!(g.accesses(SriTarget::Lmu, AccessClass::Code), 0);
        assert_eq!(g.accesses(SriTarget::Dfl, AccessClass::Data), 0);
        assert_eq!(g.accesses(SriTarget::Pf0, AccessClass::Data), 0);
        assert!(g.accesses(SriTarget::Pf0, AccessClass::Code) > 0);
        assert!(g.accesses(SriTarget::Pf1, AccessClass::Code) > 0);
    }

    #[test]
    fn scenario1_pcache_miss_equals_code_sri_requests() {
        // The Scenario-1 tailoring hinges on this counter identity.
        let (k, g) = run(DeploymentScenario::Scenario1);
        use tc27x_sim::{AccessClass, SriTarget};
        let code_reqs = g.accesses(SriTarget::Pf0, AccessClass::Code)
            + g.accesses(SriTarget::Pf1, AccessClass::Code);
        assert_eq!(k.pcache_miss, code_reqs);
    }

    #[test]
    fn scenario2_profile_shape() {
        let (k, g) = run(DeploymentScenario::Scenario2);
        // Cacheable data: some clean misses, no dirty ones (constant
        // data), exactly as Table 6 shows.
        assert!(k.dcache_miss_clean > 0);
        assert_eq!(k.dcache_miss_dirty, 0);
        // Data stalls are far smaller than code stalls (Table 6, Sc2).
        assert!(k.dmem_stall < k.pmem_stall / 5);
        use tc27x_sim::{AccessClass, SriTarget};
        assert!(
            g.accesses(SriTarget::Pf0, AccessClass::Data) > 0,
            "constant data in pf0"
        );
    }

    #[test]
    fn low_traffic_is_an_order_of_magnitude_quieter() {
        let (k1, _) = run(DeploymentScenario::Scenario1);
        let (kl, _) = run(DeploymentScenario::LowTraffic);
        assert!(kl.pmem_stall * 5 < k1.pmem_stall);
        assert!(kl.dmem_stall * 5 < k1.dmem_stall);
        assert!(kl.ccnt > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let (a, _) = run(DeploymentScenario::Scenario1);
        let (b, _) = run(DeploymentScenario::Scenario1);
        assert_eq!(a, b);
    }
}
