//! Shed-cause attribution: operators must be able to tell a tenant
//! flooding itself (per-tenant cap) from aggregate overload (global
//! cap) from a slow reader (write-timeout teardown). Each test drives
//! the matching chaos op and asserts exactly its counter moves.

use serve::chaos::{run, ChaosConfig, ChaosOp};
use serve::client::{Addr, Client};
use serve::query::QueryOptions;
use serve::{QueryKind, Request, Server, ServerConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use tc27x_sim::DeploymentScenario;
use workloads::LoadLevel;

fn scratch(tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("serve-shed-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn server_with_caps(
    dir: &std::path::Path,
    queue_cap: usize,
    global_queue_cap: usize,
) -> (Server, Addr) {
    let sock = dir.join("daemon.sock");
    let server = Server::start(
        Arc::new(mbta::ExecEngine::new(1)),
        ServerConfig {
            unix_socket: Some(sock.clone()),
            tcp_addr: None,
            state_dir: dir.join("state"),
            workers: 1,
            queue_cap,
            global_queue_cap,
            retry_after_ms: 25,
            io_timeout_ms: 500,
            query: QueryOptions::default(),
        },
    )
    .expect("daemon must start");
    (server, Addr::Unix(sock))
}

fn slow_request(i: usize, tenant: &str) -> Request {
    let levels = [LoadLevel::High, LoadLevel::Medium, LoadLevel::Low];
    Request {
        id: format!("r{i}"),
        tenant: tenant.to_string(),
        kind: QueryKind::Bound {
            scenario: if i.is_multiple_of(2) {
                DeploymentScenario::Scenario1
            } else {
                DeploymentScenario::Scenario2
            },
            level: levels[i % 3],
        },
        budget: Some(2_000 + i as u64), // distinct fingerprints, never cached
        strict: false,
    }
}

fn stats(addr: &Addr) -> String {
    let mut c = Client::connect(addr, Duration::from_secs(30)).expect("connect");
    c.request(&Request {
        id: "s".to_string(),
        tenant: "ops".to_string(),
        kind: QueryKind::Stats,
        budget: None,
        strict: false,
    })
    .expect("stats answered")
}

fn stat_u64(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle).unwrap_or_else(|| {
        panic!("stats body has no `{key}`: {body}");
    });
    body[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("`{key}` is not a number in {body}"))
}

#[test]
fn tenant_burst_increments_the_tenant_cap_counter() {
    let dir = scratch("tenant");
    // Per-tenant cap 1, roomy global cap: a one-tenant burst can only
    // shed on its own queue.
    let (server, addr) = server_with_caps(&dir, 1, 64);
    let ops = vec![ChaosOp::Burst(
        (0..8).map(|i| slow_request(i, "burst")).collect(),
    )];
    let report = run(
        &addr,
        &ChaosConfig::default(),
        &ops,
        &BTreeMap::<u64, String>::new(),
    );
    assert!(!report.wedged, "daemon must stay live under the burst");
    assert!(
        report.overloaded_seen > 0,
        "burst never saturated the queue"
    );
    let body = stats(&addr);
    assert!(stat_u64(&body, "shed_tenant_cap") > 0, "{body}");
    assert_eq!(stat_u64(&body, "shed_global_cap"), 0, "{body}");
    assert_eq!(
        stat_u64(&body, "shed"),
        stat_u64(&body, "shed_tenant_cap") + stat_u64(&body, "shed_global_cap"),
        "total must stay the sum of the causes: {body}"
    );
    server.trigger_shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fresh_tenant_flood_increments_the_global_cap_counter() {
    let dir = scratch("global");
    // Roomy per-tenant cap, global cap 1: every request invents a new
    // tenant, so only the global bound can shed.
    let (server, addr) = server_with_caps(&dir, 8, 1);
    let ops = vec![ChaosOp::Burst(
        (0..8)
            .map(|i| slow_request(i, &format!("fresh-{i}")))
            .collect(),
    )];
    let report = run(
        &addr,
        &ChaosConfig::default(),
        &ops,
        &BTreeMap::<u64, String>::new(),
    );
    assert!(!report.wedged, "daemon must stay live under the flood");
    assert!(report.overloaded_seen > 0, "flood never hit the global cap");
    let body = stats(&addr);
    assert!(stat_u64(&body, "shed_global_cap") > 0, "{body}");
    assert_eq!(stat_u64(&body, "shed_tenant_cap"), 0, "{body}");
    server.trigger_shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_reading_client_increments_the_write_teardown_counter() {
    let dir = scratch("teardown");
    let (server, addr) = server_with_caps(&dir, 64, 256);

    // Prime the cache so the flood is answered inline — the BlackHole
    // pattern at a volume no socket buffer absorbs.
    let req = Request {
        id: "bh".to_string(),
        tenant: "hole".to_string(),
        kind: QueryKind::Bound {
            scenario: DeploymentScenario::LowTraffic,
            level: LoadLevel::Low,
        },
        budget: Some(2_000),
        strict: false,
    };
    {
        let mut c = Client::connect(&addr, Duration::from_secs(120)).expect("connect");
        let primed = c.request(&req).expect("prime");
        assert!(primed.contains("\"status\":\"ok\""), "{primed}");
    }

    let (hold_tx, hold_rx) = std::sync::mpsc::channel::<()>();
    let flood = {
        let addr = addr.clone();
        let req = req.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr, Duration::from_secs(5)).expect("connect");
            for _ in 0..8_000 {
                if c.send(&req).is_err() {
                    break; // torn down — exactly what we are waiting for
                }
            }
            let _ = hold_rx.recv();
        })
    };

    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let mut teardowns = 0;
    while std::time::Instant::now() < deadline {
        teardowns = stat_u64(&stats(&addr), "write_teardowns");
        if teardowns > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(
        teardowns > 0,
        "write timeout on a non-reading client must count as a teardown"
    );
    // A slow reader is not a shed: admission never saw overload.
    let body = stats(&addr);
    assert_eq!(stat_u64(&body, "shed"), 0, "{body}");
    drop(hold_tx);
    flood.join().expect("flood thread");
    server.trigger_shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
