//! The `stats` control request as a live observability registry: one
//! snapshot must carry queue depths, shed counters by cause, and the
//! hit/miss numbers for both stores (response cache and engine memo)
//! as structured JSON an operator can parse without scraping logs.

use obs::json::{parse, Json};
use serve::client::{Addr, Client};
use serve::query::QueryOptions;
use serve::{QueryKind, Request, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use tc27x_sim::DeploymentScenario;
use workloads::LoadLevel;

fn scratch(tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("serve-stats-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn u64_field(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats body has no numeric `{key}`: {v:?}"))
}

#[test]
fn stats_snapshot_exposes_queues_sheds_and_store_rates() {
    let dir = scratch("registry");
    let sock = dir.join("daemon.sock");
    let server = Server::start(
        Arc::new(mbta::ExecEngine::new(1)),
        ServerConfig {
            unix_socket: Some(sock.clone()),
            tcp_addr: None,
            state_dir: dir.join("state"),
            workers: 1,
            queue_cap: 16,
            global_queue_cap: 64,
            retry_after_ms: 25,
            io_timeout_ms: 2_000,
            query: QueryOptions::default(),
        },
    )
    .expect("daemon must start");
    let addr = Addr::Unix(sock);

    // The same bound query twice: the first must miss the response
    // cache and simulate, the second must be served from it — exactly
    // one hit and one miss, so the permille rate is a known value.
    let bound = Request {
        id: "b".to_string(),
        tenant: "ops".to_string(),
        kind: QueryKind::Bound {
            scenario: DeploymentScenario::LowTraffic,
            level: LoadLevel::Low,
        },
        budget: Some(2_000),
        strict: false,
    };
    let mut c = Client::connect(&addr, Duration::from_secs(120)).expect("connect");
    for pass in 0..2 {
        let body = c.request(&bound).expect("bound answered");
        assert!(body.contains("\"status\":\"ok\""), "pass {pass}: {body}");
    }

    let raw = c
        .request(&Request {
            id: "s".to_string(),
            tenant: "ops".to_string(),
            kind: QueryKind::Stats,
            budget: None,
            strict: false,
        })
        .expect("stats answered");
    let v = parse(&raw).expect("stats body is valid JSON");

    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"), "{raw}");
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("stats"), "{raw}");

    // Queue depths arrive as a per-tenant object (possibly empty once
    // drained), not a scraped log line.
    assert!(
        matches!(v.get("queue_depths"), Some(Json::Obj(_))),
        "queue_depths must be a JSON object: {raw}"
    );

    // Shed counters by cause, all zero on this quiet run but present.
    assert_eq!(u64_field(&v, "shed"), 0, "{raw}");
    assert_eq!(u64_field(&v, "shed_tenant_cap"), 0, "{raw}");
    assert_eq!(u64_field(&v, "shed_global_cap"), 0, "{raw}");

    // Response store: one miss (first pass), one hit (second pass).
    assert_eq!(u64_field(&v, "cache_hits"), 1, "{raw}");
    assert_eq!(u64_field(&v, "cache_misses"), 1, "{raw}");
    assert_eq!(u64_field(&v, "cache_hit_permille"), 500, "{raw}");

    // Engine memo store: the first pass simulated, so the memo was
    // consulted at least once and the work actually ran.
    assert!(
        u64_field(&v, "memo_hits") + u64_field(&v, "memo_misses") >= 1,
        "memo never consulted: {raw}"
    );
    assert!(u64_field(&v, "simulations_run") >= 1, "{raw}");
    assert!(u64_field(&v, "memo_hit_permille") <= 1000, "{raw}");

    drop(c); // close the connection so shutdown does not wait out the io timeout
    server.trigger_shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
