//! End-to-end daemon tests: restart replay, byte-identity across
//! worker counts, control plane, malformed frames and shedding.

use serve::client::{Addr, Client};
use serve::query::QueryOptions;
use serve::{QueryKind, Request, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use tc27x_sim::DeploymentScenario;
use workloads::LoadLevel;

fn scratch(tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn server_on(
    dir: &std::path::Path,
    workers: usize,
    jobs: usize,
    queue_cap: usize,
) -> (Server, Addr) {
    let sock = dir.join(format!("daemon-{workers}-{jobs}.sock"));
    let server = Server::start(
        Arc::new(mbta::ExecEngine::new(jobs)),
        ServerConfig {
            unix_socket: Some(sock.clone()),
            tcp_addr: None,
            state_dir: dir.join("state"),
            workers,
            queue_cap,
            retry_after_ms: 25,
            io_timeout_ms: 500,
            query: QueryOptions::default(),
        },
    )
    .expect("daemon must start");
    (server, Addr::Unix(sock))
}

fn batch() -> Vec<Request> {
    let mk = |i: usize, kind: QueryKind, budget: Option<u64>| Request {
        id: format!("r{i}"),
        tenant: if i.is_multiple_of(2) { "alpha" } else { "beta" }.to_string(),
        kind,
        budget,
        strict: false,
    };
    vec![
        mk(
            0,
            QueryKind::Bound {
                scenario: DeploymentScenario::LowTraffic,
                level: LoadLevel::Low,
            },
            None,
        ),
        mk(
            1,
            QueryKind::Bound {
                scenario: DeploymentScenario::LowTraffic,
                level: LoadLevel::Medium,
            },
            Some(1), // guaranteed ILP exhaustion → fallback provenance
        ),
        mk(
            2,
            QueryKind::Sweep {
                scenario: DeploymentScenario::LowTraffic,
                level: LoadLevel::Low,
            },
            None,
        ),
        mk(
            3,
            QueryKind::Rta {
                scenario: DeploymentScenario::LowTraffic,
                level: LoadLevel::Low,
                period: 50_000_000,
                deadline: 50_000_000,
            },
            None,
        ),
    ]
}

fn drive(addr: &Addr, reqs: &[Request]) -> Vec<String> {
    let mut client = Client::connect(addr, Duration::from_secs(120)).expect("connect");
    reqs.iter()
        .map(|r| client.request(r).expect("response"))
        .collect()
}

#[test]
fn restart_replays_byte_identical_at_different_worker_count() {
    let dir = scratch("replay");
    let reqs = batch();

    let (server_a, addr_a) = server_on(&dir, 2, 2, 64);
    let first = drive(&addr_a, &reqs);
    assert!(
        first[1].contains("\"provenance\":\"fallback=ftc\""),
        "budget-1 answer must be tagged as degraded: {}",
        first[1]
    );
    assert!(first[0].contains("\"provenance\":\"ilp\""));
    server_a.trigger_shutdown();
    server_a.wait();

    // "Restart": new engine, different worker count and job count.
    let (server_b, addr_b) = server_on(&dir, 4, 1, 64);
    assert!(
        server_b.recovery().responses >= reqs.len() as u64,
        "all bodies must replay from the store: {:?}",
        server_b.recovery()
    );
    assert!(server_b.recovery().profiles >= 2);
    let second = drive(&addr_b, &reqs);
    assert_eq!(first, second, "replayed responses must be byte-identical");
    server_b.trigger_shutdown();
    server_b.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn control_plane_and_malformed_frames() {
    let dir = scratch("control");
    let (server, addr) = server_on(&dir, 1, 1, 64);

    let mut c = Client::connect(&addr, Duration::from_secs(30)).expect("connect");
    let ping = Request {
        id: "p1".to_string(),
        tenant: "ops".to_string(),
        kind: QueryKind::Ping,
        budget: None,
        strict: false,
    };
    let resp = c.request(&ping).expect("ping answered");
    assert_eq!(
        resp,
        r#"{"id":"p1","tenant":"ops","status":"ok","kind":"ping"}"#
    );

    // A garbage frame must produce a clean error, not a hang or drop.
    c.send_raw(b"definitely not json").expect("send garbage");
    let err = c.recv().expect("error frame").expect("error body");
    assert!(err.contains("\"status\":\"error\""), "{err}");

    // Same connection still works afterwards.
    let resp2 = c.request(&ping).expect("ping after garbage");
    assert_eq!(resp, resp2);

    // Stats reflects the invalid frame.
    let stats = c
        .request(&Request {
            id: "s1".to_string(),
            tenant: "ops".to_string(),
            kind: QueryKind::Stats,
            budget: None,
            strict: false,
        })
        .expect("stats answered");
    assert!(stats.contains("\"kind\":\"stats\""));
    assert!(stats.contains("\"invalid_requests\":1"), "{stats}");

    server.trigger_shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn saturated_tenant_queue_sheds_with_retry_hint() {
    let dir = scratch("shed");
    // One worker, queue cap 1: pipelining several distinct slow
    // requests under one tenant must shed at least one.
    let (server, addr) = server_on(&dir, 1, 1, 1);
    let levels = [LoadLevel::High, LoadLevel::Medium, LoadLevel::Low];
    let mut c = Client::connect(&addr, Duration::from_secs(120)).expect("connect");
    let reqs: Vec<Request> = (0..6)
        .map(|i| Request {
            id: format!("b{i}"),
            tenant: "hammer".to_string(),
            kind: QueryKind::Bound {
                scenario: if i % 2 == 0 {
                    DeploymentScenario::Scenario1
                } else {
                    DeploymentScenario::Scenario2
                },
                level: levels[i % 3],
            },
            budget: Some(2_000 + i as u64), // distinct fingerprints
            strict: false,
        })
        .collect();
    for r in &reqs {
        c.send(r).expect("send");
    }
    let mut shed = 0;
    let mut ok = 0;
    for _ in 0..reqs.len() {
        let resp = c.recv().expect("response").expect("body");
        if resp.contains("\"status\":\"overloaded\"") {
            assert!(resp.contains("\"retry_after_ms\":25"), "{resp}");
            shed += 1;
        } else {
            ok += 1;
        }
    }
    assert!(shed > 0, "cap-1 queue under a 6-burst must shed");
    assert!(ok > 0, "some requests must still be served");
    server.trigger_shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
