//! End-to-end daemon tests: restart replay, byte-identity across
//! worker counts, control plane, malformed frames and shedding.

use serve::client::{Addr, Client};
use serve::query::QueryOptions;
use serve::{QueryKind, Request, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use tc27x_sim::DeploymentScenario;
use workloads::LoadLevel;

fn scratch(tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn server_with(
    dir: &std::path::Path,
    workers: usize,
    jobs: usize,
    queue_cap: usize,
    query: QueryOptions,
) -> (Server, Addr) {
    let sock = dir.join(format!("daemon-{workers}-{jobs}.sock"));
    let server = Server::start(
        Arc::new(mbta::ExecEngine::new(jobs)),
        ServerConfig {
            unix_socket: Some(sock.clone()),
            tcp_addr: None,
            state_dir: dir.join("state"),
            workers,
            queue_cap,
            global_queue_cap: queue_cap.max(64),
            retry_after_ms: 25,
            io_timeout_ms: 500,
            query,
        },
    )
    .expect("daemon must start");
    (server, Addr::Unix(sock))
}

fn server_on(
    dir: &std::path::Path,
    workers: usize,
    jobs: usize,
    queue_cap: usize,
) -> (Server, Addr) {
    server_with(dir, workers, jobs, queue_cap, QueryOptions::default())
}

fn batch() -> Vec<Request> {
    let mk = |i: usize, kind: QueryKind, budget: Option<u64>| Request {
        id: format!("r{i}"),
        tenant: if i.is_multiple_of(2) { "alpha" } else { "beta" }.to_string(),
        kind,
        budget,
        strict: false,
    };
    vec![
        mk(
            0,
            QueryKind::Bound {
                scenario: DeploymentScenario::LowTraffic,
                level: LoadLevel::Low,
            },
            None,
        ),
        mk(
            1,
            QueryKind::Bound {
                scenario: DeploymentScenario::LowTraffic,
                level: LoadLevel::Medium,
            },
            Some(1), // guaranteed ILP exhaustion → fallback provenance
        ),
        mk(
            2,
            QueryKind::Sweep {
                scenario: DeploymentScenario::LowTraffic,
                level: LoadLevel::Low,
            },
            None,
        ),
        mk(
            3,
            QueryKind::Rta {
                scenario: DeploymentScenario::LowTraffic,
                level: LoadLevel::Low,
                period: 50_000_000,
                deadline: 50_000_000,
            },
            None,
        ),
    ]
}

fn drive(addr: &Addr, reqs: &[Request]) -> Vec<String> {
    let mut client = Client::connect(addr, Duration::from_secs(120)).expect("connect");
    reqs.iter()
        .map(|r| client.request(r).expect("response"))
        .collect()
}

#[test]
fn restart_replays_byte_identical_at_different_worker_count() {
    let dir = scratch("replay");
    let reqs = batch();

    let (server_a, addr_a) = server_on(&dir, 2, 2, 64);
    let first = drive(&addr_a, &reqs);
    assert!(
        first[1].contains("\"provenance\":\"fallback=ftc\""),
        "budget-1 answer must be tagged as degraded: {}",
        first[1]
    );
    assert!(first[0].contains("\"provenance\":\"ilp\""));
    server_a.trigger_shutdown();
    server_a.wait();

    // "Restart": new engine, different worker count and job count.
    let (server_b, addr_b) = server_on(&dir, 4, 1, 64);
    assert!(
        server_b.recovery().responses >= reqs.len() as u64,
        "all bodies must replay from the store: {:?}",
        server_b.recovery()
    );
    assert!(server_b.recovery().profiles >= 2);
    let second = drive(&addr_b, &reqs);
    assert_eq!(first, second, "replayed responses must be byte-identical");
    server_b.trigger_shutdown();
    server_b.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn control_plane_and_malformed_frames() {
    let dir = scratch("control");
    let (server, addr) = server_on(&dir, 1, 1, 64);

    let mut c = Client::connect(&addr, Duration::from_secs(30)).expect("connect");
    let ping = Request {
        id: "p1".to_string(),
        tenant: "ops".to_string(),
        kind: QueryKind::Ping,
        budget: None,
        strict: false,
    };
    let resp = c.request(&ping).expect("ping answered");
    assert_eq!(
        resp,
        r#"{"id":"p1","tenant":"ops","status":"ok","kind":"ping"}"#
    );

    // A garbage frame must produce a clean error, not a hang or drop.
    c.send_raw(b"definitely not json").expect("send garbage");
    let err = c.recv().expect("error frame").expect("error body");
    assert!(err.contains("\"status\":\"error\""), "{err}");

    // Same connection still works afterwards.
    let resp2 = c.request(&ping).expect("ping after garbage");
    assert_eq!(resp, resp2);

    // Stats reflects the invalid frame.
    let stats = c
        .request(&Request {
            id: "s1".to_string(),
            tenant: "ops".to_string(),
            kind: QueryKind::Stats,
            budget: None,
            strict: false,
        })
        .expect("stats answered");
    assert!(stats.contains("\"kind\":\"stats\""));
    assert!(stats.contains("\"invalid_requests\":1"), "{stats}");

    server.trigger_shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_with_new_default_budget_never_replays_stale_bodies() {
    let dir = scratch("budget-default");
    let reqs = vec![Request {
        id: "d0".to_string(),
        tenant: "alpha".to_string(),
        kind: QueryKind::Bound {
            scenario: DeploymentScenario::LowTraffic,
            level: LoadLevel::Low,
        },
        budget: None,
        strict: false,
    }];
    // First run: default budget 1 forces every budget-less request
    // onto the fallback rung.
    let (server_a, addr_a) = server_with(
        &dir,
        2,
        2,
        64,
        QueryOptions {
            default_budget: Some(1),
        },
    );
    let first = drive(&addr_a, &reqs);
    assert!(
        first[0].contains("\"provenance\":\"fallback=ftc\""),
        "default budget 1 must degrade: {}",
        first[0]
    );
    server_a.trigger_shutdown();
    server_a.wait();

    // Second run, no default: the same budget-less request must be
    // *recomputed* under the scenario default — replaying the stored
    // body computed under default 1 would silently serve a degraded
    // bound with the wrong provenance.
    let (server_b, addr_b) = server_with(&dir, 2, 2, 64, QueryOptions::default());
    let second = drive(&addr_b, &reqs);
    assert!(
        second[0].contains("\"provenance\":\"ilp\""),
        "restart with a different default budget must not replay stale bodies: {}",
        second[0]
    );
    server_b.trigger_shutdown();
    server_b.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_reading_client_is_dropped_not_wedged() {
    let dir = scratch("blackhole");
    let (server, addr) = server_on(&dir, 1, 1, 64);

    // Prime the cache so the flood below is answered inline — each
    // reply pushes bytes at a client that never reads them.
    let req = Request {
        id: "bh".to_string(),
        tenant: "hole".to_string(),
        kind: QueryKind::Bound {
            scenario: DeploymentScenario::LowTraffic,
            level: LoadLevel::Low,
        },
        budget: Some(2_000),
        strict: false,
    };
    let primed = drive(&addr, std::slice::from_ref(&req));
    assert!(primed[0].contains("\"status\":\"ok\""), "{}", primed[0]);

    // Pipeline far more duplicates than any socket buffer holds and
    // never read a byte back, keeping the connection open. Without a
    // write timeout the serving thread blocks in write_all forever
    // once the send buffer fills; with it, the daemon tears this
    // connection down after io_timeout (500ms here).
    let (tx, rx) = std::sync::mpsc::channel::<()>();
    let flood = {
        let addr = addr.clone();
        let req = req.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr, Duration::from_secs(5)).expect("connect");
            let mut sent = 0u32;
            for _ in 0..8_000 {
                if c.send(&req).is_err() {
                    break; // the daemon tore the connection down
                }
                sent += 1;
            }
            // Hold the (never-read) connection until the main thread
            // has observed the daemon dropping it.
            let _ = rx.recv();
            sent
        })
    };

    // The flooded connection must disappear from the active count
    // while the client still holds its end open; a fresh probe
    // connection is the only one left.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let mut dropped = false;
    while std::time::Instant::now() < deadline {
        let mut probe = Client::connect(&addr, Duration::from_secs(5)).expect("probe connect");
        let stats = probe
            .request(&Request {
                id: "s".to_string(),
                tenant: "ops".to_string(),
                kind: QueryKind::Stats,
                budget: None,
                strict: false,
            })
            .expect("stats answered while flooded");
        if stats.contains("\"active_connections\":1") {
            dropped = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(
        dropped,
        "non-reading connection must be dropped, not block the daemon"
    );
    drop(tx);
    let sent = flood.join().expect("flood thread");
    assert!(sent > 0, "flood must have pipelined something");

    // The daemon still serves normally afterwards.
    let after = drive(&addr, std::slice::from_ref(&req));
    assert_eq!(primed, after);
    server.trigger_shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn saturated_tenant_queue_sheds_with_retry_hint() {
    let dir = scratch("shed");
    // One worker, queue cap 1: pipelining several distinct slow
    // requests under one tenant must shed at least one.
    let (server, addr) = server_on(&dir, 1, 1, 1);
    let levels = [LoadLevel::High, LoadLevel::Medium, LoadLevel::Low];
    let mut c = Client::connect(&addr, Duration::from_secs(120)).expect("connect");
    let reqs: Vec<Request> = (0..6)
        .map(|i| Request {
            id: format!("b{i}"),
            tenant: "hammer".to_string(),
            kind: QueryKind::Bound {
                scenario: if i % 2 == 0 {
                    DeploymentScenario::Scenario1
                } else {
                    DeploymentScenario::Scenario2
                },
                level: levels[i % 3],
            },
            budget: Some(2_000 + i as u64), // distinct fingerprints
            strict: false,
        })
        .collect();
    for r in &reqs {
        c.send(r).expect("send");
    }
    let mut shed = 0;
    let mut ok = 0;
    for _ in 0..reqs.len() {
        let resp = c.recv().expect("response").expect("body");
        if resp.contains("\"status\":\"overloaded\"") {
            assert!(resp.contains("\"retry_after_ms\":25"), "{resp}");
            shed += 1;
        } else {
            ok += 1;
        }
    }
    assert!(shed > 0, "cap-1 queue under a 6-burst must shed");
    assert!(ok > 0, "some requests must still be served");
    server.trigger_shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
