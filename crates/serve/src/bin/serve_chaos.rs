//! `serve-chaos` — throws a seeded fault plan at a live daemon.
//!
//! ```text
//! serve-chaos --addr unix:/path|tcp:host:port [--seed N] [--ops N]
//!             [--timeout-ms N] [--oracle-jobs N]
//! ```
//!
//! The plan is a pure function of `--seed`; a CI failure replays with
//! the same number. Before running, every semantically distinct
//! well-formed request in the plan is answered *locally* by an
//! in-process [`serve::QueryEngine`] — that oracle is what makes the
//! "never a wrong bound" assertion byte-exact. Exits non-zero when the
//! daemon wedged, answered wrongly, or diverged on duplicates.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use mbta::ExecEngine;
use serve::chaos::{self, ChaosConfig};
use serve::client::Addr;
use serve::query::QueryOptions;
use serve::QueryEngine;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Duration;

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn take_parsed<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
) -> Result<Option<T>, String> {
    take_value(args, flag)?
        .map(|v| v.parse().map_err(|_| format!("invalid {flag} `{v}`")))
        .transpose()
}

fn run() -> Result<bool, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let addr = Addr::parse(&take_value(&mut args, "--addr")?.ok_or("--addr is required")?);
    let config = ChaosConfig {
        seed: take_parsed(&mut args, "--seed")?.unwrap_or(42),
        ops: take_parsed(&mut args, "--ops")?.unwrap_or(40),
        read_timeout: Duration::from_millis(
            take_parsed(&mut args, "--timeout-ms")?
                .unwrap_or(30_000u64)
                .max(1),
        ),
    };
    let oracle_jobs: usize = take_parsed(&mut args, "--oracle-jobs")?.unwrap_or(2);
    if let Some(stray) = args.first() {
        return Err(format!("unknown argument `{stray}`"));
    }

    let ops = chaos::plan(&config);
    let pool = chaos::semantic_pool(&ops);
    eprintln!(
        "serve-chaos: seed {} — {} op(s), {} distinct semantic request(s) to oracle",
        config.seed,
        ops.len(),
        pool.len()
    );

    // The oracle: compute every expected body locally. Must use the
    // same defaults as the daemon under test (no --default-budget).
    let engine = ExecEngine::new(oracle_jobs);
    let qe = QueryEngine::new(&engine, QueryOptions::default());
    let mut oracle = BTreeMap::new();
    for req in &pool {
        if let Ok(answer) = qe.answer(req) {
            oracle.insert(req.fingerprint(), answer.body);
        }
    }

    let report = chaos::run(&addr, &config, &ops, &oracle);
    println!(
        "serve-chaos: seed {} ops {} — valid_ok {} wrong {} garbage_rejected {} \
         overloaded {} dup_identical {} dup_diverged {} faults {} transport_errors {} wedged {}",
        config.seed,
        report.ops,
        report.valid_ok,
        report.wrong_answers,
        report.garbage_rejected,
        report.overloaded_seen,
        report.duplicates_identical,
        report.duplicates_diverged,
        report.faults_injected,
        report.transport_errors,
        report.wedged,
    );
    Ok(report.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("serve-chaos: FAILED — daemon wedged, answered wrongly or diverged");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("serve-chaos: {e}");
            ExitCode::FAILURE
        }
    }
}
