//! `serve-client` — drives a batch of requests against the daemon.
//!
//! ```text
//! serve-client --addr unix:/path|tcp:host:port --batch FILE.jsonl
//!              [--limit N] [--out FILE] [--timeout-ms N]
//! ```
//!
//! The batch file holds one JSON request per line. All requests are
//! sent pipelined over one connection; responses are re-ordered to
//! batch order (matched by `id`) and written one per line, so the
//! output file is byte-comparable across runs regardless of worker
//! scheduling. `--limit N` sends only the first N lines — the CI
//! crash-recovery stage uses it to stop a batch halfway before the
//! daemon is killed.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use serve::client::{Addr, Client};
use serve::Request;
use std::collections::BTreeMap;
use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let addr = Addr::parse(&take_value(&mut args, "--addr")?.ok_or("--addr is required")?);
    let batch_path = take_value(&mut args, "--batch")?.ok_or("--batch FILE is required")?;
    let limit: Option<usize> = take_value(&mut args, "--limit")?
        .map(|v| v.parse().map_err(|_| format!("invalid --limit `{v}`")))
        .transpose()?;
    let out_path = take_value(&mut args, "--out")?;
    let timeout_ms: u64 = take_value(&mut args, "--timeout-ms")?
        .map(|v| v.parse().map_err(|_| format!("invalid --timeout-ms `{v}`")))
        .transpose()?
        .unwrap_or(60_000);
    if let Some(stray) = args.first() {
        return Err(format!("unknown argument `{stray}`"));
    }

    let text = std::fs::read_to_string(&batch_path)
        .map_err(|e| format!("cannot read {batch_path}: {e}"))?;
    let mut requests = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let req = Request::parse(line.as_bytes())
            .map_err(|e| format!("{batch_path}:{}: {e}", lineno + 1))?;
        requests.push(req);
    }
    if let Some(n) = limit {
        requests.truncate(n);
    }

    let mut client = Client::connect(&addr, Duration::from_millis(timeout_ms.max(1)))
        .map_err(|e| format!("cannot connect: {e}"))?;
    for req in &requests {
        client
            .send(req)
            .map_err(|e| format!("send failed for `{}`: {e}", req.id))?;
    }

    // Collect one response per request, then restore batch order by
    // id (a repeated id keeps arrival order within that id).
    let mut by_id: BTreeMap<String, std::collections::VecDeque<String>> = BTreeMap::new();
    for _ in 0..requests.len() {
        let resp = client
            .recv()
            .map_err(|e| format!("receive failed: {e}"))?
            .ok_or("server closed the stream before all responses arrived")?;
        let id = obs::json::parse(&resp)
            .ok()
            .and_then(|d| d.get("id").and_then(|v| v.as_str().map(String::from)))
            .unwrap_or_else(|| "-".to_string());
        by_id.entry(id).or_default().push_back(resp);
    }
    let mut lines = Vec::with_capacity(requests.len());
    for req in &requests {
        let resp = by_id
            .get_mut(&req.id)
            .and_then(std::collections::VecDeque::pop_front)
            .ok_or_else(|| format!("no response for id `{}`", req.id))?;
        lines.push(resp);
    }

    let mut rendered = lines.join("\n");
    rendered.push('\n');
    match out_path {
        Some(path) => {
            std::fs::write(&path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            lock.write_all(rendered.as_bytes())
                .map_err(|e| format!("cannot write stdout: {e}"))?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve-client: {e}");
            ExitCode::FAILURE
        }
    }
}
