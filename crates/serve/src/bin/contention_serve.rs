//! `contention-serve` — the crash-tolerant bound-query daemon.
//!
//! ```text
//! contention-serve --state DIR [--unix PATH] [--tcp ADDR]
//!                  [--jobs N] [--workers N] [--queue-cap N]
//!                  [--global-queue-cap N] [--retry-after-ms N]
//!                  [--io-timeout-ms N] [--default-budget N]
//!                  [--telemetry FILE[:FORMAT]] [--platform NAME]
//! ```
//!
//! At least one of `--unix` / `--tcp` is required. The daemon replays
//! its stores from `--state` on startup, logs what it recovered, and
//! runs until a `shutdown` request (or the process is killed — which
//! is the point: restart and replay).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use mbta::{ExecEngine, SinkSpec, Telemetry};
use serve::query::QueryOptions;
use serve::{Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    config: ServerConfig,
    jobs: usize,
    telemetry: Option<SinkSpec>,
    platform: platform::PlatformDesc,
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn take_parsed<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
) -> Result<Option<T>, String> {
    take_value(args, flag)?
        .map(|v| v.parse().map_err(|_| format!("invalid {flag} `{v}`")))
        .transpose()
}

fn parse(mut args: Vec<String>) -> Result<Args, String> {
    let mut config = ServerConfig {
        state_dir: take_value(&mut args, "--state")?
            .map(PathBuf::from)
            .ok_or("--state DIR is required")?,
        unix_socket: take_value(&mut args, "--unix")?.map(PathBuf::from),
        tcp_addr: take_value(&mut args, "--tcp")?,
        ..ServerConfig::default()
    };
    if config.unix_socket.is_none() && config.tcp_addr.is_none() {
        return Err("at least one of --unix / --tcp is required".to_string());
    }
    if let Some(n) = take_parsed(&mut args, "--workers")? {
        config.workers = n;
    }
    if let Some(n) = take_parsed(&mut args, "--queue-cap")? {
        config.queue_cap = n;
    }
    if let Some(n) = take_parsed(&mut args, "--global-queue-cap")? {
        config.global_queue_cap = n;
    }
    if let Some(n) = take_parsed(&mut args, "--retry-after-ms")? {
        config.retry_after_ms = n;
    }
    if let Some(n) = take_parsed(&mut args, "--io-timeout-ms")? {
        config.io_timeout_ms = n;
    }
    config.query = QueryOptions {
        default_budget: take_parsed(&mut args, "--default-budget")?,
    };
    let jobs = take_parsed(&mut args, "--jobs")?.unwrap_or(2);
    let telemetry = take_value(&mut args, "--telemetry")?
        .map(|v| {
            v.parse::<SinkSpec>()
                .map_err(|e| format!("invalid --telemetry `{v}`: {e}"))
        })
        .transpose()?;
    // The platform flag changes the *results* the daemon serves, and
    // the store fingerprint tracks it: a state dir written for one
    // machine model is never replayed for another.
    let platform = match take_value(&mut args, "--platform")? {
        Some(v) => platform::PlatformDesc::builtin(&v).ok_or_else(|| {
            format!(
                "unknown platform `{v}` (known platforms: {})",
                platform::PlatformDesc::names().join(", ")
            )
        })?,
        None => platform::default_platform().clone(),
    };
    if let Some(stray) = args.first() {
        return Err(format!("unknown argument `{stray}`"));
    }
    Ok(Args {
        config,
        jobs,
        telemetry,
        platform,
    })
}

fn run() -> Result<(), String> {
    let args = parse(std::env::args().skip(1).collect())?;
    let telemetry = args
        .telemetry
        .as_ref()
        .map(|_| Arc::new(Telemetry::new("contention-serve")));
    let mut engine = ExecEngine::new(args.jobs).with_platform(args.platform.clone());
    if let Some(t) = &telemetry {
        engine = engine.with_telemetry(Arc::clone(t));
    }
    let engine = Arc::new(engine);
    let server = Server::start(Arc::clone(&engine), args.config.clone())
        .map_err(|e| format!("cannot start daemon: {e}"))?;
    let rec = server.recovery();
    println!(
        "contention-serve: listening (unix={:?} tcp={:?}); recovered {} response(s), {} profile(s), {} torn byte(s) truncated",
        args.config.unix_socket,
        server.tcp_addr(),
        rec.responses,
        rec.profiles,
        rec.truncated_bytes,
    );
    server.wait();
    println!("contention-serve: shut down cleanly");
    if let (Some(t), Some(spec)) = (telemetry.as_deref(), args.telemetry.as_ref()) {
        t.record_engine(&engine.report());
        t.flush(spec)
            .map_err(|e| format!("cannot write telemetry to {}: {e}", spec.path))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("contention-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
