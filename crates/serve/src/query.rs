//! The compute plane: turns a validated [`Request`] into a canonical
//! response body.
//!
//! A response body is a **pure function of the request's semantic
//! fields** — it never mentions the caller's `id`/`tenant`, wall-clock
//! time or worker count. That purity is what the crash-recovery store
//! keys on: the same request replayed after a `kill -9` (at any
//! `--jobs N`) re-derives or re-serves the same bytes.
//!
//! Deadline-driven degradation lives here too. A request's `budget`
//! caps the ILP's branch-and-bound node count — the solver's
//! deterministic logical clock — and when it runs out the
//! [`contention::Evaluator`] ladder degrades to the warm fTC bound.
//! Every body carries a `provenance` tag (`ilp` / `fallback=ftc`), so
//! a degraded answer is visible to the caller, never silent.

use crate::proto::{level_token, scenario_token, QueryKind, Request};
use contention::rta::{self, PeriodicTask};
use contention::{
    ContentionModel, EvalOptions, Evaluator, FtcModel, Platform, ValidationPolicy, Validator,
    WcetEstimate,
};
use mbta::{constraints_for, job_key_on, ExecEngine, SimJob};
use obs::json::Val;
use tc27x_sim::{CoreId, DeploymentScenario};
use workloads::LoadLevel;

/// Tuning knobs for the compute plane.
#[derive(Clone, Debug, Default)]
pub struct QueryOptions {
    /// ILP node budget applied when a request does not carry one
    /// (`None` keeps the scenario default).
    pub default_budget: Option<u64>,
}

/// One computed answer: the canonical body plus what the server
/// should persist and count.
#[derive(Clone, Debug)]
pub struct Answer {
    /// Canonical `{"status":"ok",…}` JSON body (identity-free).
    pub body: String,
    /// `true` when the bound came from the fTC fallback.
    pub fallback: bool,
    /// `true` when an input profile needed repair.
    pub repaired: bool,
    /// Isolation profiles produced on the way, keyed by engine job
    /// key — the server feeds these to the profile store so a
    /// restarted daemon can warm its memo cache.
    pub profiles: Vec<(u64, contention::IsolationProfile)>,
}

/// Stored profiles (keyed by engine job key) plus the app and
/// contender profiles of one query.
type Pair = (
    Vec<(u64, contention::IsolationProfile)>,
    contention::IsolationProfile,
    contention::IsolationProfile,
);

/// Stateless query evaluator over a shared [`ExecEngine`].
pub struct QueryEngine<'e> {
    engine: &'e ExecEngine,
    platform: Platform,
    options: QueryOptions,
}

impl<'e> QueryEngine<'e> {
    /// Creates a query engine over `engine`; the model tables are
    /// derived from the platform description the engine simulates
    /// (the paper's TC277 by default).
    pub fn new(engine: &'e ExecEngine, options: QueryOptions) -> QueryEngine<'e> {
        QueryEngine {
            platform: Platform::from_desc(engine.platform()),
            engine,
            options,
        }
    }

    /// Computes the canonical answer for `req`.
    ///
    /// # Errors
    ///
    /// A human-readable message; the server wraps it in an `error`
    /// response (errors are not stored).
    pub fn answer(&self, req: &Request) -> Result<Answer, String> {
        match &req.kind {
            QueryKind::Ping => Ok(Answer {
                body: Val::Obj(vec![
                    ("status".to_string(), Val::str("ok")),
                    ("kind".to_string(), Val::str("ping")),
                ])
                .to_json(),
                fallback: false,
                repaired: false,
                profiles: Vec::new(),
            }),
            QueryKind::Stats | QueryKind::Shutdown => {
                Err(format!("`{}` is control-plane only", req.kind.token()))
            }
            QueryKind::Bound { scenario, level } => self.bound_body(req, *scenario, *level, None),
            QueryKind::Rta {
                scenario,
                level,
                period,
                deadline,
            } => self.bound_body(req, *scenario, *level, Some((*period, *deadline))),
            QueryKind::Sweep { scenario, level } => self.sweep_body(req, *scenario, *level),
        }
    }

    fn policy(req: &Request) -> ValidationPolicy {
        if req.strict {
            ValidationPolicy::Strict
        } else {
            ValidationPolicy::Repair
        }
    }

    fn eval_options(&self, req: &Request, scenario: DeploymentScenario) -> EvalOptions {
        let mut options = EvalOptions::for_scenario(constraints_for(scenario));
        options.policy = Self::policy(req);
        if let Some(budget) = req.budget.or(self.options.default_budget) {
            options.ilp.node_budget = budget;
        }
        options
    }

    /// The two isolation profiles every data-plane query needs, with
    /// their engine job keys (the profile-store addresses).
    fn isolation_pair(
        &self,
        scenario: DeploymentScenario,
        level: LoadLevel,
    ) -> Result<Pair, String> {
        let desc = self.engine.platform();
        let (app_core, load_core) = (CoreId(desc.app_core as u8), CoreId(desc.load_core as u8));
        let app_spec = workloads::control_loop_on(desc, scenario, app_core, 42);
        let load_spec = workloads::contender_on(desc, scenario, level, load_core, 7);
        let app = self
            .engine
            .isolation(&app_spec, app_core)
            .map_err(|e| format!("app isolation failed: {e}"))?;
        let load = self
            .engine
            .isolation(&load_spec, load_core)
            .map_err(|e| format!("contender isolation failed: {e}"))?;
        let profiles = vec![
            (
                job_key_on(
                    &SimJob::Isolation {
                        spec: app_spec,
                        core: app_core,
                    },
                    desc,
                ),
                app.clone(),
            ),
            (
                job_key_on(
                    &SimJob::Isolation {
                        spec: load_spec,
                        core: load_core,
                    },
                    desc,
                ),
                load.clone(),
            ),
        ];
        Ok((profiles, app, load))
    }

    fn bound_body(
        &self,
        req: &Request,
        scenario: DeploymentScenario,
        level: LoadLevel,
        rta_params: Option<(u64, u64)>,
    ) -> Result<Answer, String> {
        let (profiles, app, load) = self.isolation_pair(scenario, level)?;
        let evaluated = Evaluator::new(&self.platform, self.eval_options(req, scenario))
            .bound(&app, &load)
            .map_err(|e| format!("evaluation failed: {e}"))?;
        let est = WcetEstimate {
            isolation_cycles: app.counters().ccnt,
            contention_cycles: evaluated.bound.delta_cycles,
        };
        let mut pairs = vec![
            ("status".to_string(), Val::str("ok")),
            (
                "kind".to_string(),
                Val::str(if rta_params.is_some() { "rta" } else { "bound" }),
            ),
            ("scenario".to_string(), Val::str(scenario_token(scenario))),
            ("level".to_string(), Val::str(level_token(level))),
            (
                "isolation_cycles".to_string(),
                Val::U64(est.isolation_cycles),
            ),
            ("delta_cycles".to_string(), Val::U64(est.contention_cycles)),
            ("bound_cycles".to_string(), Val::U64(est.bound_cycles())),
            ("ratio".to_string(), Val::F64(est.ratio())),
            ("provenance".to_string(), Val::str(evaluated.source.tag())),
            (
                "nodes_explored".to_string(),
                Val::U64(evaluated.nodes_explored),
            ),
            ("repaired".to_string(), Val::Bool(evaluated.any_repairs())),
        ];
        if let Some((period, deadline)) = rta_params {
            // Constrained deadlines are analysed conservatively by
            // running the implicit-deadline recurrence with T =
            // deadline; utilisation is still reported against the true
            // period.
            let task = PeriodicTask::from_estimate("served-task", deadline, &est);
            let verdict = rta::analyze(std::slice::from_ref(&task));
            let response = verdict.tasks.first().and_then(|r| r.response);
            pairs.push(("period".to_string(), Val::U64(period)));
            pairs.push(("deadline".to_string(), Val::U64(deadline)));
            pairs.push((
                "schedulable".to_string(),
                Val::Bool(verdict.is_schedulable()),
            ));
            pairs.push((
                "response_cycles".to_string(),
                response.map_or(Val::str("-"), Val::U64),
            ));
            pairs.push((
                "slack_cycles".to_string(),
                Val::U64(response.map_or(0, |r| deadline.saturating_sub(r))),
            ));
            pairs.push((
                "utilization".to_string(),
                Val::F64(est.bound_cycles() as f64 / period as f64),
            ));
        }
        Ok(Answer {
            body: Val::Obj(pairs).to_json(),
            fallback: evaluated.source.is_fallback(),
            repaired: evaluated.any_repairs(),
            profiles,
        })
    }

    fn sweep_body(
        &self,
        req: &Request,
        scenario: DeploymentScenario,
        level: LoadLevel,
    ) -> Result<Answer, String> {
        let (profiles, app, load) = self.isolation_pair(scenario, level)?;
        let evaluated = Evaluator::new(&self.platform, self.eval_options(req, scenario))
            .bound(&app, &load)
            .map_err(|e| format!("evaluation failed: {e}"))?;
        let validator = Validator::new(&self.platform, Self::policy(req));
        let (va, ra) = validator
            .apply(&app)
            .map_err(|e| format!("app validation failed: {e}"))?;
        let (vb, rb) = validator
            .apply(&load)
            .map_err(|e| format!("contender validation failed: {e}"))?;
        let ftc = FtcModel::new(&self.platform)
            .wcet_estimate(&va, &[&vb])
            .map_err(|e| format!("fTC model failed: {e}"))?;
        let desc = self.engine.platform();
        let (app_core, load_core) = (CoreId(desc.app_core as u8), CoreId(desc.load_core as u8));
        let observed = self
            .engine
            .corun(
                &workloads::control_loop_on(desc, scenario, app_core, 42),
                app_core,
                &workloads::contender_on(desc, scenario, level, load_core, 7),
                load_core,
            )
            .map_err(|e| format!("co-run failed: {e}"))?;
        let iso = app.counters().ccnt;
        let bound = iso + evaluated.bound.delta_cycles;
        let body = Val::Obj(vec![
            ("status".to_string(), Val::str("ok")),
            ("kind".to_string(), Val::str("sweep")),
            ("scenario".to_string(), Val::str(scenario_token(scenario))),
            ("level".to_string(), Val::str(level_token(level))),
            ("isolation_cycles".to_string(), Val::U64(iso)),
            ("observed_cycles".to_string(), Val::U64(observed)),
            ("ftc_ratio".to_string(), Val::F64(ftc.ratio())),
            ("ilp_ratio".to_string(), Val::F64(bound as f64 / iso as f64)),
            (
                "observed_ratio".to_string(),
                Val::F64(observed as f64 / iso as f64),
            ),
            ("sound".to_string(), Val::Bool(bound >= observed)),
            ("provenance".to_string(), Val::str(evaluated.source.tag())),
            (
                "repaired".to_string(),
                Val::Bool(ra.repaired || rb.repaired || evaluated.any_repairs()),
            ),
        ])
        .to_json();
        Ok(Answer {
            body,
            fallback: evaluated.source.is_fallback(),
            repaired: ra.repaired || rb.repaired || evaluated.any_repairs(),
            profiles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Request;

    fn engine() -> ExecEngine {
        ExecEngine::new(2)
    }

    fn req(kind: QueryKind, budget: Option<u64>) -> Request {
        Request {
            id: "t".to_string(),
            tenant: "t".to_string(),
            kind,
            budget,
            strict: false,
        }
    }

    #[test]
    fn bound_body_is_identity_free_and_deterministic() {
        let e1 = engine();
        let e2 = ExecEngine::new(4);
        let r = req(
            QueryKind::Bound {
                scenario: DeploymentScenario::LowTraffic,
                level: LoadLevel::Low,
            },
            None,
        );
        let a = QueryEngine::new(&e1, QueryOptions::default())
            .answer(&r)
            .unwrap();
        let b = QueryEngine::new(&e2, QueryOptions::default())
            .answer(&r)
            .unwrap();
        assert_eq!(a.body, b.body, "body must not depend on worker count");
        assert!(a.body.starts_with("{\"status\":\"ok\""));
        assert!(!a.body.contains("tenant"));
        assert_eq!(a.profiles.len(), 2);
    }

    #[test]
    fn tiny_budget_degrades_with_visible_provenance() {
        let e = engine();
        let r = req(
            QueryKind::Bound {
                scenario: DeploymentScenario::LowTraffic,
                level: LoadLevel::Low,
            },
            Some(1),
        );
        let a = QueryEngine::new(&e, QueryOptions::default())
            .answer(&r)
            .unwrap();
        assert!(a.fallback, "node budget 1 must exhaust the ILP");
        assert!(a.body.contains("\"provenance\":\"fallback=ftc\""));
    }

    #[test]
    fn rta_body_reports_schedulability() {
        let e = engine();
        let probe = QueryEngine::new(&e, QueryOptions::default())
            .answer(&req(
                QueryKind::Bound {
                    scenario: DeploymentScenario::LowTraffic,
                    level: LoadLevel::Low,
                },
                None,
            ))
            .unwrap();
        // Pull bound_cycles out of the probe body to build one
        // schedulable and one unschedulable period.
        let doc = obs::json::parse(&probe.body).unwrap();
        let bound = doc.get("bound_cycles").and_then(|v| v.as_u64()).unwrap();
        let sched = QueryEngine::new(&e, QueryOptions::default())
            .answer(&req(
                QueryKind::Rta {
                    scenario: DeploymentScenario::LowTraffic,
                    level: LoadLevel::Low,
                    period: bound * 2,
                    deadline: bound * 2,
                },
                None,
            ))
            .unwrap();
        assert!(sched.body.contains("\"schedulable\":true"));
        let miss = QueryEngine::new(&e, QueryOptions::default())
            .answer(&req(
                QueryKind::Rta {
                    scenario: DeploymentScenario::LowTraffic,
                    level: LoadLevel::Low,
                    period: bound - 1,
                    deadline: bound - 1,
                },
                None,
            ))
            .unwrap();
        assert!(miss.body.contains("\"schedulable\":false"));
    }

    #[test]
    fn sweep_body_is_sound() {
        let e = engine();
        let a = QueryEngine::new(&e, QueryOptions::default())
            .answer(&req(
                QueryKind::Sweep {
                    scenario: DeploymentScenario::LowTraffic,
                    level: LoadLevel::Low,
                },
                None,
            ))
            .unwrap();
        assert!(a.body.contains("\"sound\":true"));
        assert!(a.body.contains("\"observed_ratio\":"));
    }
}
