//! The chaos harness: seeded fault plans thrown at a live daemon.
//!
//! A plan is a deterministic function of its SplitMix64 seed — the
//! same seed replays the same faults in the same order, so a chaos
//! failure in CI is reproducible with one number. Operations cover the
//! robustness surface end to end: well-formed requests (whose answers
//! are checked byte-for-byte against a locally computed oracle),
//! garbage and truncated frames, oversized length prefixes, slow-loris
//! drips, mid-request disconnects, duplicate requests (which must get
//! identical bodies), overload bursts (which must produce explicit
//! `overloaded` sheds, not hangs) and black-hole clients that pipeline
//! requests but never read a reply (which must cost the daemon at most
//! a write timeout, never a captured worker).
//!
//! The harness asserts three invariants after every plan:
//! 1. the daemon still answers `ping` (never wedges),
//! 2. `stats` shows zero active chaos connections left behind
//!    (never leaks a worker), and
//! 3. no well-formed request ever received a wrong bound.

use crate::client::{Addr, Client};
use crate::proto::{splice_identity, QueryKind, Request};
use std::collections::BTreeMap;
use std::time::Duration;
use tc27x_sim::rng::SplitMix64;
use tc27x_sim::DeploymentScenario;
use workloads::LoadLevel;

/// One scripted fault.
#[derive(Clone, Debug)]
pub enum ChaosOp {
    /// A well-formed request whose response is oracle-checked.
    Valid(Request),
    /// The same request sent twice on one connection; both bodies
    /// must be identical.
    Duplicate(Request),
    /// A frame of non-JSON bytes (must yield an `error` response).
    Garbage(Vec<u8>),
    /// A frame length promising more bytes than are sent, then
    /// disconnect (the daemon must just drop the connection).
    TruncatedFrame(Vec<u8>),
    /// A length prefix beyond the frame cap.
    OversizedPrefix,
    /// A valid request dribbled a few bytes at a time.
    SlowLoris(Request),
    /// A valid request sent, connection dropped before reading the
    /// reply (the write-ahead store must still persist the answer).
    Disconnect(Request),
    /// `n` rapid-fire requests under one tenant against a small
    /// queue — some must be shed with `overloaded`.
    Burst(Vec<Request>),
    /// Requests pipelined on a connection that never reads a byte
    /// back, held open briefly, then dropped — the write-timeout path
    /// (the daemon must drop the non-reading connection, not block a
    /// serving thread on its full socket buffer).
    BlackHole(Vec<Request>),
}

/// Plan generation and run parameters.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed for the fault plan (same seed = same plan).
    pub seed: u64,
    /// Number of operations to script.
    pub ops: usize,
    /// Client read timeout per response.
    pub read_timeout: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 42,
            ops: 40,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// What a chaos run observed.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Operations executed.
    pub ops: usize,
    /// Well-formed requests answered with the oracle's exact bytes.
    pub valid_ok: u64,
    /// Well-formed requests answered with *different* bytes — must
    /// stay zero.
    pub wrong_answers: u64,
    /// Malformed frames that produced a clean `error` response.
    pub garbage_rejected: u64,
    /// `overloaded` sheds observed during bursts.
    pub overloaded_seen: u64,
    /// Duplicate pairs whose two bodies matched.
    pub duplicates_identical: u64,
    /// Duplicate pairs whose bodies differed — must stay zero.
    pub duplicates_diverged: u64,
    /// Connection-level faults delivered (truncated/oversized/loris/
    /// disconnect).
    pub faults_injected: u64,
    /// `true` when the final liveness probe failed — must stay false.
    pub wedged: bool,
    /// Transport errors on operations that should have succeeded.
    pub transport_errors: u64,
}

impl ChaosReport {
    /// The pass verdict CI gates on.
    pub fn passed(&self) -> bool {
        !self.wedged && self.wrong_answers == 0 && self.duplicates_diverged == 0
    }
}

const SCENARIOS: [DeploymentScenario; 3] = [
    DeploymentScenario::Scenario1,
    DeploymentScenario::Scenario2,
    DeploymentScenario::LowTraffic,
];
const LEVELS: [LoadLevel; 3] = [LoadLevel::High, LoadLevel::Medium, LoadLevel::Low];

/// Draws a well-formed request from the small semantic pool the oracle
/// precomputes. Budgets come from a fixed menu so the degradation
/// ladder is exercised (including budget 1 = guaranteed fallback).
fn draw_request(rng: &mut SplitMix64, n: u64) -> Request {
    let scenario = SCENARIOS[rng.below(3) as usize];
    let level = LEVELS[rng.below(3) as usize];
    let budget = match rng.below(4) {
        0 => None,
        1 => Some(1),
        2 => Some(2_000),
        _ => Some(50_000),
    };
    let kind = match rng.below(3) {
        0 => QueryKind::Bound { scenario, level },
        1 => QueryKind::Sweep { scenario, level },
        _ => QueryKind::Rta {
            scenario,
            level,
            period: 40_000_000,
            deadline: 40_000_000,
        },
    };
    Request {
        id: format!("chaos-{n}"),
        tenant: format!("tenant-{}", rng.below(3)),
        kind,
        budget,
        strict: false,
    }
}

/// Generates the deterministic fault plan for a seed.
pub fn plan(config: &ChaosConfig) -> Vec<ChaosOp> {
    let mut rng = SplitMix64::new(config.seed);
    let mut ops = Vec::with_capacity(config.ops);
    for n in 0..config.ops as u64 {
        let op = match rng.below(11) {
            0..=2 => ChaosOp::Valid(draw_request(&mut rng, n)),
            3 => ChaosOp::Duplicate(draw_request(&mut rng, n)),
            4 => {
                let len = 1 + rng.below(64) as usize;
                let bytes = (0..len).map(|_| rng.next_u64() as u8).collect();
                ChaosOp::Garbage(bytes)
            }
            5 => {
                let len = 1 + rng.below(32) as usize;
                let bytes = (0..len).map(|_| rng.next_u64() as u8).collect();
                ChaosOp::TruncatedFrame(bytes)
            }
            6 => ChaosOp::OversizedPrefix,
            7 => ChaosOp::SlowLoris(draw_request(&mut rng, n)),
            8 => ChaosOp::Disconnect(draw_request(&mut rng, n)),
            9 => {
                let reqs = (0..4)
                    .map(|i| {
                        let mut r = draw_request(&mut rng, n);
                        r.id = format!("blackhole-{n}-{i}");
                        r.tenant = "blackhole".to_string();
                        r
                    })
                    .collect();
                ChaosOp::BlackHole(reqs)
            }
            _ => {
                let burst = (0..6)
                    .map(|i| {
                        let mut r = draw_request(&mut rng, n);
                        r.id = format!("burst-{n}-{i}");
                        r.tenant = "burst".to_string();
                        r
                    })
                    .collect();
                ChaosOp::Burst(burst)
            }
        };
        ops.push(op);
    }
    ops
}

/// Every semantically distinct request a plan can draw — the oracle
/// precomputes answers for exactly this set.
pub fn semantic_pool(ops: &[ChaosOp]) -> Vec<Request> {
    let mut seen = BTreeMap::new();
    let mut push = |r: &Request| {
        seen.entry(r.fingerprint()).or_insert_with(|| r.clone());
    };
    for op in ops {
        match op {
            ChaosOp::Valid(r)
            | ChaosOp::Duplicate(r)
            | ChaosOp::SlowLoris(r)
            | ChaosOp::Disconnect(r) => push(r),
            ChaosOp::Burst(rs) | ChaosOp::BlackHole(rs) => rs.iter().for_each(&mut push),
            _ => {}
        }
    }
    seen.into_values().collect()
}

fn check_answer(
    oracle: &BTreeMap<u64, String>,
    req: &Request,
    got: &str,
    report: &mut ChaosReport,
) {
    match oracle.get(&req.fingerprint()) {
        Some(body) if splice_identity(&req.id, &req.tenant, body) == got => {
            report.valid_ok += 1;
        }
        Some(_) => {
            report.wrong_answers += 1;
            eprintln!("chaos: WRONG ANSWER for {}: {got}", req.id);
        }
        // Requests the oracle could not precompute (e.g. strict-mode
        // errors) only need to be *answered*; status is free-form.
        None => report.valid_ok += 1,
    }
}

/// Executes `ops` against a live daemon, checking well-formed answers
/// against `oracle` (fingerprint → canonical body).
pub fn run(
    addr: &Addr,
    config: &ChaosConfig,
    ops: &[ChaosOp],
    oracle: &BTreeMap<u64, String>,
) -> ChaosReport {
    let mut report = ChaosReport {
        ops: ops.len(),
        ..ChaosReport::default()
    };
    let connect = || Client::connect(addr, config.read_timeout);
    for op in ops {
        match op {
            ChaosOp::Valid(req) => match connect().and_then(|mut c| {
                c.request(req)
                    .map_err(|e| std::io::Error::other(e.to_string()))
            }) {
                Ok(got) => check_answer(oracle, req, &got, &mut report),
                Err(_) => report.transport_errors += 1,
            },
            ChaosOp::Duplicate(req) => {
                let Ok(mut c) = connect() else {
                    report.transport_errors += 1;
                    continue;
                };
                let first = c.request(req);
                let second = c.request(req);
                match (first, second) {
                    (Ok(a), Ok(b)) if a == b => {
                        report.duplicates_identical += 1;
                        check_answer(oracle, req, &a, &mut report);
                    }
                    (Ok(a), Ok(b)) => {
                        report.duplicates_diverged += 1;
                        eprintln!("chaos: duplicate diverged: {a} vs {b}");
                    }
                    _ => report.transport_errors += 1,
                }
            }
            ChaosOp::Garbage(bytes) => {
                report.faults_injected += 1;
                if let Ok(mut c) = connect() {
                    if c.send_raw(bytes).is_ok() {
                        if let Ok(Some(resp)) = c.recv() {
                            if resp.contains("\"status\":\"error\"") {
                                report.garbage_rejected += 1;
                            }
                        }
                    }
                }
            }
            ChaosOp::TruncatedFrame(bytes) => {
                report.faults_injected += 1;
                if let Ok(mut c) = connect() {
                    // Promise twice the bytes we send, then vanish.
                    let promised = (bytes.len() as u32) * 2 + 8;
                    let mut torn = promised.to_be_bytes().to_vec();
                    torn.extend_from_slice(bytes);
                    let _ = c.send_bytes(&torn);
                }
            }
            ChaosOp::OversizedPrefix => {
                report.faults_injected += 1;
                if let Ok(mut c) = connect() {
                    let _ = c.send_bytes(&u32::MAX.to_be_bytes());
                }
            }
            ChaosOp::SlowLoris(req) => {
                report.faults_injected += 1;
                let Ok(mut c) = connect() else {
                    report.transport_errors += 1;
                    continue;
                };
                let payload = req.to_json();
                let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
                frame.extend_from_slice(payload.as_bytes());
                let mut ok = true;
                for chunk in frame.chunks(7) {
                    if c.send_bytes(chunk).is_err() {
                        ok = false;
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                if ok {
                    match c.recv() {
                        Ok(Some(got)) => check_answer(oracle, req, &got, &mut report),
                        _ => report.transport_errors += 1,
                    }
                }
            }
            ChaosOp::Disconnect(req) => {
                report.faults_injected += 1;
                if let Ok(mut c) = connect() {
                    let _ = c.send(req);
                    drop(c);
                }
            }
            ChaosOp::BlackHole(reqs) => {
                report.faults_injected += 1;
                if let Ok(mut c) = connect() {
                    for req in reqs {
                        if c.send(req).is_err() {
                            break;
                        }
                    }
                    // Hold the connection open without ever reading:
                    // replies pile up in the socket buffer. The final
                    // liveness probe below catches a daemon that let
                    // this capture a serving thread.
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
            ChaosOp::Burst(reqs) => {
                let Ok(mut c) = connect() else {
                    report.transport_errors += 1;
                    continue;
                };
                let mut sent = 0u64;
                for req in reqs {
                    if c.send(req).is_ok() {
                        sent += 1;
                    }
                }
                for _ in 0..sent {
                    match c.recv() {
                        Ok(Some(resp)) if resp.contains("\"status\":\"overloaded\"") => {
                            report.overloaded_seen += 1;
                        }
                        Ok(Some(_)) => {}
                        _ => break,
                    }
                }
            }
        }
    }
    // Final invariants: the daemon must still answer a ping.
    let probe = Request {
        id: "chaos-final-ping".to_string(),
        tenant: "chaos".to_string(),
        kind: QueryKind::Ping,
        budget: None,
        strict: false,
    };
    match connect().and_then(|mut c| {
        c.request(&probe)
            .map_err(|e| std::io::Error::other(e.to_string()))
    }) {
        Ok(resp) if resp.contains("\"kind\":\"ping\"") => {}
        _ => report.wedged = true,
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic() {
        let cfg = ChaosConfig::default();
        let a = format!("{:?}", plan(&cfg));
        let b = format!("{:?}", plan(&cfg));
        assert_eq!(a, b);
        let other = format!(
            "{:?}",
            plan(&ChaosConfig {
                seed: 43,
                ..ChaosConfig::default()
            })
        );
        assert_ne!(a, other);
    }

    #[test]
    fn ci_seed_plan_covers_overload_and_blackhole() {
        // `ci.sh serve` runs seed 42 / 40 ops and gates on admission
        // control tripping (`overloaded ≥ 1`), which requires at
        // least one Burst in the plan; the write-timeout defence is
        // only exercised if a BlackHole appears too.
        let ops = plan(&ChaosConfig::default());
        assert!(
            ops.iter().any(|op| matches!(op, ChaosOp::Burst(_))),
            "CI seed plan lost its burst ops"
        );
        assert!(
            ops.iter().any(|op| matches!(op, ChaosOp::BlackHole(_))),
            "CI seed plan lost its black-hole ops"
        );
    }

    #[test]
    fn semantic_pool_dedupes_by_fingerprint() {
        let cfg = ChaosConfig {
            seed: 7,
            ops: 60,
            ..ChaosConfig::default()
        };
        let ops = plan(&cfg);
        let pool = semantic_pool(&ops);
        let mut fps: Vec<u64> = pool.iter().map(Request::fingerprint).collect();
        fps.dedup();
        assert_eq!(fps.len(), pool.len(), "pool must be fingerprint-unique");
        assert!(!pool.is_empty());
    }
}
