//! The daemon: listeners, connection threads, the worker pool and the
//! crash-recovery stores.
//!
//! Layout:
//!
//! ```text
//! acceptor (unix) ─┐                         ┌─ worker 0 ─┐
//! acceptor (tcp) ──┤→ conn threads → admission→ worker 1 ─┤→ stores → reply
//!                  │   (parse, control       └─ worker N ─┘
//!                  │    plane, cache hits)
//! ```
//!
//! Every accepted connection gets a read timeout (slow-loris defence)
//! *and* a write timeout (slow-reader defence: a client that pipelines
//! requests and never reads replies would otherwise block the serving
//! thread forever inside `write_all` once its socket buffer fills — a
//! timed-out write tears the connection down instead), plus its own
//! reader thread; replies go through a per-connection
//! writer mutex so frames never interleave. Data-plane requests flow
//! through [`crate::Admission`] into a fixed worker pool; control
//! frames (`ping`/`stats`/`shutdown`) are answered inline so a
//! saturated queue can never starve liveness probes.
//!
//! Crash recovery: every computed response body is `put` into a
//! content-addressed [`mbta::Store`] *before* the reply frame is
//! written (write-ahead), and isolation profiles are stored the same
//! way. On restart both stores replay; profiles warm the engine's memo
//! cache and responses are served from cache byte-identically — at any
//! worker count, because bodies are identity- and schedule-free by
//! construction (see [`crate::query`]).

use crate::admission::{Admission, AdmissionOutcome};
use crate::proto::{
    read_frame, render_error, render_overloaded, splice_identity, write_frame, FrameError, Request,
};
use crate::query::{QueryEngine, QueryOptions};
use mbta::{ExecEngine, Store, Telemetry};
use obs::json::Val;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Fingerprint namespace for the serve stores. Deliberately constant
/// across `--jobs` and engine choices: recovery must replay regardless
/// of how the daemon is redeployed. (It does *not* need to encode
/// `--default-budget`: request fingerprints are taken over the
/// *effective* budget, resolved at ingress, so entries computed under
/// one default are never replayed for another.) v2 marks that keying
/// change — v1 stores keyed budget-less requests before resolution.
const STORE_CONFIG: &str = "contention-serve/v2";

/// Store fingerprint, bound to the platform the daemon simulates. The
/// default (paper TC27x) keeps the bare `STORE_CONFIG` hash, so every
/// existing store replays; any other description is folded in, so a
/// daemon restarted onto a different machine model refuses to replay
/// bodies computed for the old one.
fn store_config_fp(desc: &platform::PlatformDesc) -> u64 {
    if desc.is_default() {
        obs::fnv1a(STORE_CONFIG.as_bytes())
    } else {
        obs::fnv1a(format!("{STORE_CONFIG}+platform/{:016x}", desc.fingerprint()).as_bytes())
    }
}

/// A reply sink that can also tear its connection down. When a write
/// times out the frame is torn mid-stream, so the connection cannot be
/// reused — and the conn thread may be blocked in a read that only a
/// socket shutdown will interrupt.
trait ConnWriter: Write + Send {
    fn teardown(&self);
}

impl ConnWriter for UnixStream {
    fn teardown(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

impl ConnWriter for TcpStream {
    fn teardown(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Unix socket to listen on (removed and re-bound at start).
    pub unix_socket: Option<PathBuf>,
    /// TCP address to listen on, e.g. `127.0.0.1:0`.
    pub tcp_addr: Option<String>,
    /// Directory holding the persistent response/profile stores.
    pub state_dir: PathBuf,
    /// Worker threads computing data-plane answers.
    pub workers: usize,
    /// Per-tenant admission queue cap.
    pub queue_cap: usize,
    /// Global admission queue cap across all tenants. Tenants are
    /// client-chosen tokens, so this — not the per-tenant cap — is the
    /// real bound on queued memory.
    pub global_queue_cap: usize,
    /// Back-off hint echoed on shed requests, milliseconds.
    pub retry_after_ms: u64,
    /// Per-connection read *and* write timeout, milliseconds
    /// (slow-loris and slow-reader bound).
    pub io_timeout_ms: u64,
    /// Compute-plane options.
    pub query: QueryOptions,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            unix_socket: None,
            tcp_addr: None,
            state_dir: PathBuf::from("serve-state"),
            workers: 2,
            queue_cap: 64,
            global_queue_cap: 256,
            retry_after_ms: 50,
            io_timeout_ms: 2_000,
            query: QueryOptions::default(),
        }
    }
}

/// What restart replay recovered from the stores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Distinct response bodies replayed into the serve cache.
    pub responses: u64,
    /// Distinct isolation profiles replayed into the engine memo.
    pub profiles: u64,
    /// Torn-tail bytes truncated across both stores.
    pub truncated_bytes: u64,
}

struct Work {
    request: Request,
    fingerprint: u64,
    writer: Arc<Mutex<Box<dyn ConnWriter>>>,
}

struct Counters {
    served: AtomicU64,
    cache_hits: AtomicU64,
    /// Data-plane requests that missed the response cache and had to
    /// go through the query engine. Together with `cache_hits` this
    /// makes the response-store hit rate derivable from one stats
    /// snapshot.
    cache_misses: AtomicU64,
    fallback: AtomicU64,
    repaired: AtomicU64,
    errors: AtomicU64,
    invalid: AtomicU64,
    proto_errors: AtomicU64,
    /// Connections torn down because a reply write failed or timed out
    /// — the slow-reader defence firing. Counted separately from
    /// `proto_errors` so operators can tell a non-reading client from
    /// one sending junk frames.
    write_teardowns: AtomicU64,
}

struct Inner {
    engine: Arc<ExecEngine>,
    admission: Admission<Work>,
    responses: Store,
    profiles: Store,
    cache: Mutex<BTreeMap<u64, String>>,
    profile_keys: Mutex<std::collections::BTreeSet<u64>>,
    shutdown: AtomicBool,
    active_conns: AtomicUsize,
    counters: Counters,
    recovery: RecoveryStats,
    query: QueryOptions,
    io_timeout: Duration,
    workers: usize,
}

impl Inner {
    fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.engine.telemetry()
    }

    fn count(&self, name: &str, delta: u64) {
        if let Some(t) = self.telemetry() {
            t.count(name, delta);
        }
    }
}

/// A running daemon. Dropping it does **not** stop the threads; call
/// [`Server::wait`] (blocks until shutdown) or
/// [`Server::trigger_shutdown`].
pub struct Server {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
    tcp_addr: Option<std::net::SocketAddr>,
}

impl Server {
    /// Starts the daemon: replays the stores, warms the engine, binds
    /// the listeners and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates store corruption and bind failures.
    pub fn start(engine: Arc<ExecEngine>, config: ServerConfig) -> io::Result<Server> {
        std::fs::create_dir_all(&config.state_dir)?;
        let fp = store_config_fp(engine.platform());
        let (responses, bodies, rec_r) =
            Store::open(&config.state_dir.join("responses.store"), "responses", fp)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let (profiles, stored_profiles, rec_p) =
            Store::open(&config.state_dir.join("profiles.store"), "profiles", fp)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;

        // Warm the restarted engine's memo cache from the profile
        // store so replayed batches skip straight to evaluation.
        let mut profile_keys = std::collections::BTreeSet::new();
        let mut warmed = 0u64;
        for value in stored_profiles.values() {
            if let Ok((key, profile)) = mbta::store::decode_profile(value) {
                engine.prime_keyed(key, profile);
                profile_keys.insert(key);
                warmed += 1;
            }
        }
        let recovery = RecoveryStats {
            responses: bodies.len() as u64,
            profiles: warmed,
            truncated_bytes: rec_r.truncated_bytes + rec_p.truncated_bytes,
        };

        let inner = Arc::new(Inner {
            engine,
            admission: Admission::new(
                config.queue_cap,
                config.global_queue_cap,
                config.retry_after_ms,
            ),
            responses,
            profiles,
            cache: Mutex::new(bodies),
            profile_keys: Mutex::new(profile_keys),
            shutdown: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            counters: Counters {
                served: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                cache_misses: AtomicU64::new(0),
                fallback: AtomicU64::new(0),
                repaired: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                invalid: AtomicU64::new(0),
                proto_errors: AtomicU64::new(0),
                write_teardowns: AtomicU64::new(0),
            },
            recovery,
            query: config.query.clone(),
            io_timeout: Duration::from_millis(config.io_timeout_ms.max(1)),
            workers: config.workers.max(1),
        });
        inner.count("serve.recovered_responses", recovery.responses);
        inner.count("serve.recovered_profiles", recovery.profiles);

        let mut threads = Vec::new();
        for w in 0..config.workers.max(1) {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&inner))?,
            );
        }

        if let Some(path) = &config.unix_socket {
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept-unix".to_string())
                    .spawn(move || accept_loop_unix(&inner, &listener))?,
            );
        }
        let mut tcp_addr = None;
        if let Some(addr) = &config.tcp_addr {
            let listener = TcpListener::bind(addr)?;
            tcp_addr = Some(listener.local_addr()?);
            listener.set_nonblocking(true)?;
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept-tcp".to_string())
                    .spawn(move || accept_loop_tcp(&inner, &listener))?,
            );
        }

        Ok(Server {
            inner,
            threads,
            tcp_addr,
        })
    }

    /// The bound TCP address, when a TCP listener was requested
    /// (useful with port 0).
    pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
        self.tcp_addr
    }

    /// What restart replay recovered.
    pub fn recovery(&self) -> RecoveryStats {
        self.inner.recovery
    }

    /// Requests a clean shutdown: stops accepting, drains the queue.
    pub fn trigger_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.admission.close();
    }

    /// Blocks until the daemon has shut down and all threads exited.
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
        // Connection threads are detached but counted; give in-flight
        // replies a bounded window to finish.
        let deadline = std::time::Instant::now() + self.inner.io_timeout * 2;
        while self.inner.active_conns.load(Ordering::SeqCst) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

fn accept_loop_unix(inner: &Arc<Inner>, listener: &UnixListener) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_read_timeout(Some(inner.io_timeout));
                let _ = stream.set_write_timeout(Some(inner.io_timeout));
                let writer: Option<Box<dyn ConnWriter>> = stream
                    .try_clone()
                    .ok()
                    .map(|s| Box::new(s) as Box<dyn ConnWriter>);
                spawn_conn(inner, stream, writer);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn accept_loop_tcp(inner: &Arc<Inner>, listener: &TcpListener) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_read_timeout(Some(inner.io_timeout));
                let _ = stream.set_write_timeout(Some(inner.io_timeout));
                let _ = stream.set_nodelay(true);
                let writer: Option<Box<dyn ConnWriter>> = stream
                    .try_clone()
                    .ok()
                    .map(|s| Box::new(s) as Box<dyn ConnWriter>);
                spawn_conn(inner, stream, writer);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn spawn_conn(
    inner: &Arc<Inner>,
    reader: impl io::Read + Send + 'static,
    writer: Option<Box<dyn ConnWriter>>,
) {
    let Some(writer) = writer else {
        inner.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let inner = Arc::clone(inner);
    inner.active_conns.fetch_add(1, Ordering::SeqCst);
    let tracked = Arc::clone(&inner);
    let spawned = std::thread::Builder::new()
        .name("serve-conn".to_string())
        .spawn(move || {
            let writer: Arc<Mutex<Box<dyn ConnWriter>>> = Arc::new(Mutex::new(writer));
            conn_loop(&tracked, reader, &writer);
            tracked.active_conns.fetch_sub(1, Ordering::SeqCst);
        });
    if spawned.is_err() {
        inner.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

fn reply(inner: &Inner, writer: &Arc<Mutex<Box<dyn ConnWriter>>>, body: &str) {
    let mut w = writer
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if write_frame(&mut **w, body.as_bytes()).is_err() {
        // Client went away — or is pipelining without reading, and the
        // write timeout fired with its socket buffer full. Either way
        // the frame may be torn, so tear the connection down; that
        // also kicks the conn thread's blocked read loose instead of
        // leaving this (possibly worker) thread captured by one slow
        // reader. The body is already in the store, so a reconnect
        // replays it.
        w.teardown();
        inner
            .counters
            .write_teardowns
            .fetch_add(1, Ordering::Relaxed);
    }
}

fn conn_loop(
    inner: &Arc<Inner>,
    mut reader: impl io::Read,
    writer: &Arc<Mutex<Box<dyn ConnWriter>>>,
) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) && inner.admission.is_closed() {
            return;
        }
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            // Idle at a frame boundary: the client is waiting on
            // replies, not stalling. Loop — which also re-checks the
            // shutdown flag, bounding shutdown latency to one timeout.
            Err(FrameError::Idle) => continue,
            Err(FrameError::Truncated | FrameError::TooLarge(_) | FrameError::Io(_)) => {
                // Garbage length, torn frame, mid-frame stall
                // (slow-loris) or disconnect: the stream cannot be
                // resynchronised — drop it.
                inner.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                inner.count("serve.proto_errors", 1);
                return;
            }
        };
        let mut request = match Request::parse(&payload) {
            Ok(r) => r,
            Err(msg) => {
                inner.counters.invalid.fetch_add(1, Ordering::Relaxed);
                inner.count("serve.invalid_requests", 1);
                reply(inner, writer, &render_error("-", &msg));
                continue;
            }
        };
        if request.kind.is_control() {
            handle_control(inner, writer, &request);
            continue;
        }
        // Resolve the effective budget *before* fingerprinting: the
        // body is a pure function of what is actually computed, so the
        // cache/store key must reflect the daemon's `--default-budget`.
        // Otherwise a restart under a different default would replay
        // bodies computed under the old one.
        if request.budget.is_none() {
            request.budget = inner.query.default_budget;
        }
        let fingerprint = request.fingerprint_on(inner.engine.platform());
        // Served-before? Byte-identical replay straight from cache.
        let cached = {
            let cache = inner
                .cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            cache.get(&fingerprint).cloned()
        };
        if let Some(body) = cached {
            inner.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            inner.counters.served.fetch_add(1, Ordering::Relaxed);
            reply(
                inner,
                writer,
                &splice_identity(&request.id, &request.tenant, &body),
            );
            continue;
        }
        let tenant = request.tenant.clone();
        let id = request.id.clone();
        match inner.admission.offer(
            &tenant,
            fingerprint,
            Work {
                request,
                fingerprint,
                writer: Arc::clone(writer),
            },
        ) {
            AdmissionOutcome::Accepted => {}
            AdmissionOutcome::Shed { retry_after_ms } => {
                inner.count("serve.shed", 1);
                reply(
                    inner,
                    writer,
                    &render_overloaded(&id, &tenant, retry_after_ms),
                );
            }
            AdmissionOutcome::Closed => {
                reply(inner, writer, &render_error(&id, "daemon is shutting down"));
            }
        }
    }
}

fn handle_control(inner: &Arc<Inner>, writer: &Arc<Mutex<Box<dyn ConnWriter>>>, req: &Request) {
    match req.kind.token() {
        "ping" => {
            let body = r#"{"status":"ok","kind":"ping"}"#;
            reply(inner, writer, &splice_identity(&req.id, &req.tenant, body));
        }
        "shutdown" => {
            let body = r#"{"status":"ok","kind":"shutdown"}"#;
            reply(inner, writer, &splice_identity(&req.id, &req.tenant, body));
            inner.shutdown.store(true, Ordering::SeqCst);
            inner.admission.close();
        }
        _ => {
            // stats: live operational numbers — deliberately
            // nondeterministic and never stored.
            let memo = inner.engine.report();
            let depths = inner
                .admission
                .depths()
                .into_iter()
                .map(|(t, d)| (t, Val::U64(d as u64)))
                .collect();
            let c = &inner.counters;
            let body = Val::Obj(vec![
                ("status".to_string(), Val::str("ok")),
                ("kind".to_string(), Val::str("stats")),
                ("queue_depths".to_string(), Val::Obj(depths)),
                (
                    "admitted".to_string(),
                    Val::U64(inner.admission.admitted_total()),
                ),
                ("shed".to_string(), Val::U64(inner.admission.shed_total())),
                (
                    "shed_tenant_cap".to_string(),
                    Val::U64(inner.admission.shed_tenant_total()),
                ),
                (
                    "shed_global_cap".to_string(),
                    Val::U64(inner.admission.shed_global_total()),
                ),
                (
                    "write_teardowns".to_string(),
                    Val::U64(c.write_teardowns.load(Ordering::Relaxed)),
                ),
                (
                    "served".to_string(),
                    Val::U64(c.served.load(Ordering::Relaxed)),
                ),
                (
                    "cache_hits".to_string(),
                    Val::U64(c.cache_hits.load(Ordering::Relaxed)),
                ),
                (
                    "cache_misses".to_string(),
                    Val::U64(c.cache_misses.load(Ordering::Relaxed)),
                ),
                (
                    "cache_hit_permille".to_string(),
                    Val::U64(hit_permille(
                        c.cache_hits.load(Ordering::Relaxed),
                        c.cache_misses.load(Ordering::Relaxed),
                    )),
                ),
                (
                    "fallback".to_string(),
                    Val::U64(c.fallback.load(Ordering::Relaxed)),
                ),
                (
                    "repaired".to_string(),
                    Val::U64(c.repaired.load(Ordering::Relaxed)),
                ),
                (
                    "errors".to_string(),
                    Val::U64(c.errors.load(Ordering::Relaxed)),
                ),
                (
                    "invalid_requests".to_string(),
                    Val::U64(c.invalid.load(Ordering::Relaxed)),
                ),
                (
                    "proto_errors".to_string(),
                    Val::U64(c.proto_errors.load(Ordering::Relaxed)),
                ),
                (
                    "active_connections".to_string(),
                    Val::U64(inner.active_conns.load(Ordering::SeqCst) as u64),
                ),
                ("workers".to_string(), Val::U64(inner.workers as u64)),
                (
                    "recovered_responses".to_string(),
                    Val::U64(inner.recovery.responses),
                ),
                (
                    "recovered_profiles".to_string(),
                    Val::U64(inner.recovery.profiles),
                ),
                // Engine memo store: isolation-profile reuse across all
                // requests this process has answered.
                ("memo_hits".to_string(), Val::U64(memo.cache_hits)),
                ("memo_misses".to_string(), Val::U64(memo.cache_misses)),
                (
                    "memo_hit_permille".to_string(),
                    Val::U64(hit_permille(memo.cache_hits, memo.cache_misses)),
                ),
                (
                    "simulations_run".to_string(),
                    Val::U64(memo.simulations_run),
                ),
            ])
            .to_json();
            reply(inner, writer, &splice_identity(&req.id, &req.tenant, &body));
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    let qe = QueryEngine::new(&inner.engine, inner.query.clone());
    while let Some((_tenant, work)) = inner.admission.take() {
        let Work {
            request,
            fingerprint,
            writer,
        } = work;
        // Another worker may have computed the same fingerprint while
        // this one queued — serve the cached bytes in that case.
        let cached = {
            let cache = inner
                .cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            cache.get(&fingerprint).cloned()
        };
        if let Some(body) = cached {
            inner.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            inner.counters.served.fetch_add(1, Ordering::Relaxed);
            reply(
                inner,
                &writer,
                &splice_identity(&request.id, &request.tenant, &body),
            );
            continue;
        }
        inner.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        match qe.answer(&request) {
            Ok(answer) => {
                persist_profiles(inner, &answer.profiles);
                // Write-ahead: persist the body before replying, so a
                // crash after this line re-serves identical bytes.
                if let Err(e) = inner.responses.put(fingerprint, &answer.body) {
                    store_warn(inner, "responses", &e);
                }
                inner
                    .cache
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .insert(fingerprint, answer.body.clone());
                if answer.fallback {
                    inner.counters.fallback.fetch_add(1, Ordering::Relaxed);
                    inner.count("serve.fallback", 1);
                }
                if answer.repaired {
                    inner.counters.repaired.fetch_add(1, Ordering::Relaxed);
                }
                inner.counters.served.fetch_add(1, Ordering::Relaxed);
                inner.count("serve.served", 1);
                reply(
                    inner,
                    &writer,
                    &splice_identity(&request.id, &request.tenant, &answer.body),
                );
            }
            Err(msg) => {
                inner.counters.errors.fetch_add(1, Ordering::Relaxed);
                inner.count("serve.errors", 1);
                reply(inner, &writer, &render_error(&request.id, &msg));
            }
        }
    }
}

fn persist_profiles(inner: &Inner, profiles: &[(u64, contention::IsolationProfile)]) {
    for (key, profile) in profiles {
        // The in-process memo is already warm (the engine computed the
        // profile); this write keeps the *next* process warm too. The
        // key set is held across the put so concurrent workers cannot
        // double-append, and the key is only marked persisted once the
        // append succeeds — a transient store failure is retried by the
        // next request producing the same profile instead of silently
        // dropping it from the next restart's warm-up.
        let mut keys = inner
            .profile_keys
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if keys.contains(key) {
            continue;
        }
        match inner
            .profiles
            .put(*key, &mbta::store::encode_profile(*key, profile))
        {
            Ok(()) => {
                keys.insert(*key);
            }
            Err(e) => store_warn(inner, "profiles", &e),
        }
    }
}

/// Integer hit rate in permille (hits per thousand lookups); zero for
/// a store that has never been consulted. Integer so the stats body
/// stays free of float formatting concerns.
fn hit_permille(hits: u64, misses: u64) -> u64 {
    (hits * 1000).checked_div(hits + misses).unwrap_or(0)
}

fn store_warn(inner: &Inner, which: &str, e: &io::Error) {
    match inner.telemetry() {
        Some(t) => t.warn(
            "store.append_failed",
            format!("{which} store append failed: {e}"),
        ),
        None => eprintln!("warning: {which} store append failed: {e}"),
    }
}
