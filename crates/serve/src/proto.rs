//! Wire protocol: length-prefixed JSON frames and the typed request
//! they carry.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. The length cap ([`MAX_FRAME_BYTES`]) is the
//! first line of defence against garbage prefixes — a bogus
//! multi-gigabyte length is rejected before any allocation. Requests
//! and responses both travel as frames; a client that stops mid-frame
//! (slow-loris or disconnect) hits the connection's read timeout and
//! is dropped without wedging a worker.
//!
//! Responses are rendered deterministically: a stored response body is
//! a pure function of the request's *semantic* fields, and the
//! client-visible frame splices the caller's `id`/`tenant` in front of
//! it. That split is what makes crash-recovery replay byte-identical.

use mbta::store::content_key;
use obs::json::{parse, Json, Val};
use std::io::{self, Read, Write};
use tc27x_sim::DeploymentScenario;
use workloads::LoadLevel;

/// Maximum accepted frame payload, request or response (1 MiB).
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying read failed. A timeout *inside* a frame lands
    /// here — that is the slow-loris signature and the connection
    /// should be dropped.
    Io(io::Error),
    /// The read timed out at a frame boundary, before any byte of the
    /// next frame. The peer is idle, not stalling: keep waiting.
    Idle,
    /// The stream ended inside a frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::Idle => write!(f, "read timed out at a frame boundary"),
            FrameError::Truncated => write!(f, "stream ended inside a frame"),
            FrameError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME_BYTES} cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame: length prefix plus payload, then flush.
///
/// # Errors
///
/// Propagates I/O errors; rejects oversized payloads as
/// `InvalidInput`.
pub fn write_frame(w: &mut (impl Write + ?Sized), payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME_BYTES)
        .ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds the cap")
        })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream at a frame
/// boundary; ending anywhere else is [`FrameError::Truncated`].
///
/// # Errors
///
/// [`FrameError::Io`] on read failures (including timeouts),
/// [`FrameError::TooLarge`] on an oversized length prefix.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if got == 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                return Err(FrameError::Idle)
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    match r.read_exact(&mut payload) {
        Ok(()) => Ok(Some(payload)),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(FrameError::Truncated),
        Err(e) => Err(FrameError::Io(e)),
    }
}

/// What a request asks for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Live operational stats; answered inline, never queued
    /// (responses are load-dependent and deliberately *not* stored).
    Stats,
    /// Clean shutdown request (drain and exit).
    Shutdown,
    /// Δcont bound of a contender level against the reference app.
    Bound {
        /// Deployment scenario.
        scenario: DeploymentScenario,
        /// Contender load level.
        level: LoadLevel,
    },
    /// Response-time analysis of the app under contention.
    Rta {
        /// Deployment scenario.
        scenario: DeploymentScenario,
        /// Contender load level.
        level: LoadLevel,
        /// Task period in cycles.
        period: u64,
        /// Task deadline in cycles (≤ period for the analysis here).
        deadline: u64,
    },
    /// One model-vs-observation sweep cell: fTC/ILP/observed ratios.
    Sweep {
        /// Deployment scenario.
        scenario: DeploymentScenario,
        /// Contender load level.
        level: LoadLevel,
    },
}

impl QueryKind {
    /// Stable token for fingerprints and response bodies.
    pub fn token(&self) -> &'static str {
        match self {
            QueryKind::Ping => "ping",
            QueryKind::Stats => "stats",
            QueryKind::Shutdown => "shutdown",
            QueryKind::Bound { .. } => "bound",
            QueryKind::Rta { .. } => "rta",
            QueryKind::Sweep { .. } => "sweep",
        }
    }

    /// Whether this kind is answered inline by the connection thread
    /// (control plane) rather than queued through admission.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            QueryKind::Ping | QueryKind::Stats | QueryKind::Shutdown
        )
    }
}

/// Stable scenario token (`sc1` / `sc2` / `low`).
pub fn scenario_token(s: DeploymentScenario) -> &'static str {
    match s {
        DeploymentScenario::Scenario1 => "sc1",
        DeploymentScenario::Scenario2 => "sc2",
        DeploymentScenario::LowTraffic => "low",
    }
}

fn parse_scenario(s: &str) -> Result<DeploymentScenario, String> {
    match s {
        "sc1" => Ok(DeploymentScenario::Scenario1),
        "sc2" => Ok(DeploymentScenario::Scenario2),
        "low" => Ok(DeploymentScenario::LowTraffic),
        other => Err(format!("unknown scenario `{other}` (expected sc1|sc2|low)")),
    }
}

/// Stable load-level token (`high` / `medium` / `low`).
pub fn level_token(l: LoadLevel) -> &'static str {
    match l {
        LoadLevel::High => "high",
        LoadLevel::Medium => "medium",
        LoadLevel::Low => "low",
    }
}

fn parse_level(s: &str) -> Result<LoadLevel, String> {
    match s {
        "high" => Ok(LoadLevel::High),
        "medium" => Ok(LoadLevel::Medium),
        "low" => Ok(LoadLevel::Low),
        other => Err(format!(
            "unknown level `{other}` (expected high|medium|low)"
        )),
    }
}

/// One validated request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen request id, echoed on the response.
    pub id: String,
    /// Tenant the request is admitted under.
    pub tenant: String,
    /// What is being asked.
    pub kind: QueryKind,
    /// ILP node budget — the request's deterministic deadline. `None`
    /// uses the scenario default.
    pub budget: Option<u64>,
    /// `true` = strict validation (reject repaired profiles).
    pub strict: bool,
}

fn get_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string `{key}`"))
}

fn get_u64(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` is not an unsigned integer")),
    }
}

fn token_ok(s: &str, max: usize) -> bool {
    !s.is_empty()
        && s.len() <= max
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

impl Request {
    /// Parses and validates one request frame.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem found — the
    /// server echoes it in an `error` response.
    pub fn parse(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "frame is not UTF-8".to_string())?;
        let doc = parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        if !matches!(doc, Json::Obj(_)) {
            return Err("request is not a JSON object".to_string());
        }
        let id = get_str(&doc, "id")?;
        if !token_ok(id, 64) {
            return Err("`id` must be a 1-64 char [A-Za-z0-9._-] token".to_string());
        }
        let tenant = get_str(&doc, "tenant")?;
        if !token_ok(tenant, 32) {
            return Err("`tenant` must be a 1-32 char [A-Za-z0-9._-] token".to_string());
        }
        let strict = match doc.get("policy").and_then(Json::as_str) {
            None | Some("repair") => false,
            Some("strict") => true,
            Some(other) => {
                return Err(format!("unknown policy `{other}` (expected strict|repair)"))
            }
        };
        let budget = get_u64(&doc, "budget")?;
        let kind = match get_str(&doc, "kind")? {
            "ping" => QueryKind::Ping,
            "stats" => QueryKind::Stats,
            "shutdown" => QueryKind::Shutdown,
            k @ ("bound" | "rta" | "sweep") => {
                let scenario = parse_scenario(get_str(&doc, "scenario")?)?;
                let level = parse_level(get_str(&doc, "level")?)?;
                match k {
                    "bound" => QueryKind::Bound { scenario, level },
                    "sweep" => QueryKind::Sweep { scenario, level },
                    _ => {
                        let period = get_u64(&doc, "period")?
                            .ok_or_else(|| "rta requires a `period`".to_string())?;
                        if period == 0 {
                            return Err("`period` must be positive".to_string());
                        }
                        let deadline = get_u64(&doc, "deadline")?.unwrap_or(period);
                        if deadline == 0 || deadline > period {
                            return Err("`deadline` must be in 1..=period".to_string());
                        }
                        QueryKind::Rta {
                            scenario,
                            level,
                            period,
                            deadline,
                        }
                    }
                }
            }
            other => return Err(format!("unknown kind `{other}`")),
        };
        Ok(Request {
            id: id.to_string(),
            tenant: tenant.to_string(),
            kind,
            budget,
            strict,
        })
    }

    /// Content-address of the request's *semantic* fields — `id` and
    /// `tenant` excluded, so identical queries from different callers
    /// share one stored response. Keys the daemon's default platform;
    /// a daemon serving another machine uses [`Request::fingerprint_on`].
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint_on(platform::default_platform())
    }

    /// [`Request::fingerprint`] bound to the platform the daemon
    /// simulates. The default (paper TC27x) keys are unchanged from
    /// `fingerprint`; any other description is folded in, so the same
    /// request against two platforms never shares a store entry.
    pub fn fingerprint_on(&self, desc: &platform::PlatformDesc) -> u64 {
        let budget = self.budget.map_or("-".to_string(), |b| b.to_string());
        let policy = if self.strict { "strict" } else { "repair" };
        let (scenario, level, period, deadline) = match &self.kind {
            QueryKind::Bound { scenario, level } | QueryKind::Sweep { scenario, level } => {
                (scenario_token(*scenario), level_token(*level), 0, 0)
            }
            QueryKind::Rta {
                scenario,
                level,
                period,
                deadline,
            } => (
                scenario_token(*scenario),
                level_token(*level),
                *period,
                *deadline,
            ),
            _ => ("-", "-", 0, 0),
        };
        let period = period.to_string();
        let deadline = deadline.to_string();
        let mut fields = vec![
            self.kind.token(),
            scenario,
            level,
            period.as_str(),
            deadline.as_str(),
            &budget,
            policy,
        ];
        let plat;
        if !desc.is_default() {
            plat = format!("platform/{:016x}", desc.fingerprint());
            fields.push(plat.as_str());
        }
        content_key("contention-serve/req/v1", &fields)
    }

    /// Renders this request as a canonical JSON frame payload (the
    /// client side of [`Request::parse`]).
    pub fn to_json(&self) -> String {
        let mut pairs = vec![
            ("id".to_string(), Val::str(self.id.clone())),
            ("tenant".to_string(), Val::str(self.tenant.clone())),
            ("kind".to_string(), Val::str(self.kind.token())),
        ];
        match &self.kind {
            QueryKind::Bound { scenario, level } | QueryKind::Sweep { scenario, level } => {
                pairs.push(("scenario".to_string(), Val::str(scenario_token(*scenario))));
                pairs.push(("level".to_string(), Val::str(level_token(*level))));
            }
            QueryKind::Rta {
                scenario,
                level,
                period,
                deadline,
            } => {
                pairs.push(("scenario".to_string(), Val::str(scenario_token(*scenario))));
                pairs.push(("level".to_string(), Val::str(level_token(*level))));
                pairs.push(("period".to_string(), Val::U64(*period)));
                pairs.push(("deadline".to_string(), Val::U64(*deadline)));
            }
            _ => {}
        }
        if let Some(b) = self.budget {
            pairs.push(("budget".to_string(), Val::U64(b)));
        }
        if self.strict {
            pairs.push(("policy".to_string(), Val::str("strict")));
        }
        Val::Obj(pairs).to_json()
    }
}

/// Splices a caller's identity in front of a stored `{"status":"ok"…}`
/// response body. The body is stored without `id`/`tenant`, so replay
/// after a crash is byte-identical for the same batch file.
pub fn splice_identity(id: &str, tenant: &str, stored_body: &str) -> String {
    let mut out = String::with_capacity(stored_body.len() + id.len() + tenant.len() + 32);
    out.push('{');
    obs::json::escape_into("id", &mut out);
    out.push(':');
    obs::json::escape_into(id, &mut out);
    out.push(',');
    obs::json::escape_into("tenant", &mut out);
    out.push(':');
    obs::json::escape_into(tenant, &mut out);
    out.push(',');
    out.push_str(stored_body.strip_prefix('{').unwrap_or(stored_body));
    out
}

/// Renders an `overloaded` rejection.
pub fn render_overloaded(id: &str, tenant: &str, retry_after_ms: u64) -> String {
    Val::Obj(vec![
        ("id".to_string(), Val::str(id)),
        ("tenant".to_string(), Val::str(tenant)),
        ("status".to_string(), Val::str("overloaded")),
        ("retry_after_ms".to_string(), Val::U64(retry_after_ms)),
    ])
    .to_json()
}

/// Renders an `error` response.
pub fn render_error(id: &str, message: &str) -> String {
    Val::Obj(vec![
        ("id".to_string(), Val::str(id)),
        ("status".to_string(), Val::str("error")),
        ("error".to_string(), Val::str(message)),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_and_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"a\":1}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"{\"a\":1}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_and_truncated_frames_are_rejected() {
        let mut buf = (MAX_FRAME_BYTES + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        assert!(matches!(
            read_frame(&mut io::Cursor::new(buf)),
            Err(FrameError::TooLarge(_))
        ));
        let mut torn = 10u32.to_be_bytes().to_vec();
        torn.extend_from_slice(b"only5");
        assert!(matches!(
            read_frame(&mut io::Cursor::new(torn)),
            Err(FrameError::Truncated)
        ));
        // A lone partial length prefix is torn too.
        assert!(matches!(
            read_frame(&mut io::Cursor::new(vec![0u8, 0])),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn request_parse_roundtrip() {
        let req = Request {
            id: "r-1".to_string(),
            tenant: "acme".to_string(),
            kind: QueryKind::Rta {
                scenario: DeploymentScenario::Scenario2,
                level: LoadLevel::Medium,
                period: 900_000,
                deadline: 800_000,
            },
            budget: Some(5_000),
            strict: true,
        };
        let parsed = Request::parse(req.to_json().as_bytes()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn request_validation_rejects_garbage() {
        for bad in [
            &b"not json"[..],
            br#"{"id":"x","tenant":"t","kind":"frobnicate"}"#,
            br#"{"id":"x","tenant":"t","kind":"bound","scenario":"sc9","level":"high"}"#,
            br#"{"id":"x","tenant":"t","kind":"bound","scenario":"sc1","level":"ultra"}"#,
            br#"{"id":"","tenant":"t","kind":"ping"}"#,
            br#"{"id":"x","tenant":"bad tenant","kind":"ping"}"#,
            br#"{"id":"x","tenant":"t","kind":"rta","scenario":"sc1","level":"low"}"#,
            br#"{"id":"x","tenant":"t","kind":"rta","scenario":"sc1","level":"low","period":5,"deadline":9}"#,
            br#"{"id":"x","tenant":"t","kind":"ping","policy":"yolo"}"#,
            br#"{"id":"x","tenant":"t","kind":"ping","budget":-4}"#,
        ] {
            assert!(
                Request::parse(bad).is_err(),
                "accepted: {}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn fingerprint_ignores_identity_but_not_semantics() {
        let mk = |id: &str, tenant: &str, budget: Option<u64>| Request {
            id: id.to_string(),
            tenant: tenant.to_string(),
            kind: QueryKind::Bound {
                scenario: DeploymentScenario::Scenario1,
                level: LoadLevel::High,
            },
            budget,
            strict: false,
        };
        assert_eq!(
            mk("a", "t1", Some(9)).fingerprint(),
            mk("b", "t2", Some(9)).fingerprint()
        );
        assert_ne!(
            mk("a", "t1", Some(9)).fingerprint(),
            mk("a", "t1", Some(10)).fingerprint()
        );
        assert_ne!(
            mk("a", "t1", None).fingerprint(),
            Request {
                kind: QueryKind::Sweep {
                    scenario: DeploymentScenario::Scenario1,
                    level: LoadLevel::High,
                },
                ..mk("a", "t1", None)
            }
            .fingerprint()
        );
    }

    #[test]
    fn fingerprint_binds_the_platform_but_default_is_unchanged() {
        let req = Request {
            id: "a".to_string(),
            tenant: "t".to_string(),
            kind: QueryKind::Bound {
                scenario: DeploymentScenario::Scenario1,
                level: LoadLevel::High,
            },
            budget: None,
            strict: false,
        };
        // Default TC27x keys are exactly the historical `fingerprint`
        // keys — existing stores keep replaying.
        assert_eq!(
            req.fingerprint(),
            req.fingerprint_on(&platform::PlatformDesc::tc27x())
        );
        // Any other machine gets its own key space.
        let tdma = req.fingerprint_on(&platform::PlatformDesc::tc27x_tdma());
        let ahb = req.fingerprint_on(&platform::PlatformDesc::ahb2());
        assert_ne!(req.fingerprint(), tdma);
        assert_ne!(req.fingerprint(), ahb);
        assert_ne!(tdma, ahb);
    }

    #[test]
    fn splice_prepends_identity() {
        let body = r#"{"status":"ok","kind":"bound","delta_cycles":42}"#;
        assert_eq!(
            splice_identity("r9", "acme", body),
            r#"{"id":"r9","tenant":"acme","status":"ok","kind":"bound","delta_cycles":42}"#
        );
    }
}
