//! Admission control: a bounded per-tenant queue with deterministic
//! fair dequeue.
//!
//! Each tenant gets its own bounded queue; an offer beyond the cap is
//! *shed* with an explicit retry hint instead of buffered without
//! limit. Tenant names are unauthenticated client-chosen tokens, so
//! the per-tenant cap alone bounds nothing — a client inventing a new
//! tenant per request would multiply it without limit. A second,
//! *global* cap bounds the total queued items across all tenants, and
//! a tenant's map entry is removed the moment its queue drains, so the
//! tenant map never outgrows the global cap either. Dequeue order is
//! deterministic given the queue contents:
//! tenants are served round-robin in name order, and within a tenant
//! items drain in `(order_key, arrival)` order — the server uses the
//! request fingerprint as the order key, which is exactly the
//! `ExecEngine` job-key discipline applied one layer up. A saturated
//! daemon therefore degrades *predictably*: no tenant can starve
//! another, and reordering offers never reorders answers to the same
//! tenant's identical queue state.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};

/// Result of offering work to the queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// Queued; a worker will pick it up.
    Accepted,
    /// The tenant's queue is full — retry after the given hint.
    Shed {
        /// Deterministic client back-off hint in milliseconds.
        retry_after_ms: u64,
    },
    /// The queue is closed (daemon is draining for shutdown).
    Closed,
}

struct TenantQueue<T> {
    // (order_key, arrival seq) -> item: deterministic drain order.
    items: BTreeMap<(u64, u64), T>,
}

struct State<T> {
    tenants: BTreeMap<String, TenantQueue<T>>,
    /// Tenant served last; the next take starts strictly after it.
    cursor: Option<String>,
    /// Total items queued across all tenants (≤ `global_cap`).
    queued: usize,
    seq: u64,
    closed: bool,
    /// Offers shed because the tenant's own queue was full.
    shed_tenant: u64,
    /// Offers shed because the cross-tenant global cap was reached.
    shed_global: u64,
    admitted: u64,
}

/// Bounded multi-tenant work queue. `T` is the queued payload.
pub struct Admission<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    per_tenant_cap: usize,
    global_cap: usize,
    retry_after_ms: u64,
}

fn lock<'a, T>(m: &'a Mutex<State<T>>) -> std::sync::MutexGuard<'a, State<T>> {
    // Queue state is plain data; a poisoned lock still holds a
    // consistent queue, so recover rather than wedge the daemon.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<T> Admission<T> {
    /// Creates a queue admitting at most `per_tenant_cap` in-flight
    /// items per tenant and `global_cap` in total (tenants are
    /// client-chosen, so only the global cap is a real memory bound).
    /// `retry_after_ms` is the back-off hint echoed on every shed.
    pub fn new(per_tenant_cap: usize, global_cap: usize, retry_after_ms: u64) -> Admission<T> {
        Admission {
            state: Mutex::new(State {
                tenants: BTreeMap::new(),
                cursor: None,
                queued: 0,
                seq: 0,
                closed: false,
                shed_tenant: 0,
                shed_global: 0,
                admitted: 0,
            }),
            ready: Condvar::new(),
            per_tenant_cap: per_tenant_cap.max(1),
            global_cap: global_cap.max(1),
            retry_after_ms,
        }
    }

    /// Offers one item under `tenant`, draining in `order_key` order
    /// within the tenant (ties broken by arrival).
    pub fn offer(&self, tenant: &str, order_key: u64, item: T) -> AdmissionOutcome {
        let mut st = lock(&self.state);
        if st.closed {
            return AdmissionOutcome::Closed;
        }
        if st.queued >= self.global_cap {
            st.shed_global += 1;
            return AdmissionOutcome::Shed {
                retry_after_ms: self.retry_after_ms,
            };
        }
        let seq = st.seq;
        st.seq += 1;
        // Shed-before-insert: a rejected offer must not leave an empty
        // map entry behind, or arbitrary tenant tokens would still
        // grow the map without bound.
        if st
            .tenants
            .get(tenant)
            .is_some_and(|q| q.items.len() >= self.per_tenant_cap)
        {
            st.shed_tenant += 1;
            return AdmissionOutcome::Shed {
                retry_after_ms: self.retry_after_ms,
            };
        }
        st.tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantQueue {
                items: BTreeMap::new(),
            })
            .items
            .insert((order_key, seq), item);
        st.queued += 1;
        st.admitted += 1;
        drop(st);
        self.ready.notify_one();
        AdmissionOutcome::Accepted
    }

    /// Takes the next item: round-robin across tenants in name order,
    /// lowest `(order_key, arrival)` within the chosen tenant. Blocks
    /// while empty; returns `None` once closed *and* drained.
    pub fn take(&self) -> Option<(String, T)> {
        let mut st = lock(&self.state);
        loop {
            if let Some((tenant, key)) = Self::pick(&st) {
                let item = st
                    .tenants
                    .get_mut(&tenant)
                    .and_then(|q| q.items.remove(&key))?;
                st.queued -= 1;
                // Drop drained tenants so the map stays bounded by the
                // *queued* population, not every name ever offered.
                if st.tenants.get(&tenant).is_some_and(|q| q.items.is_empty()) {
                    st.tenants.remove(&tenant);
                }
                st.cursor = Some(tenant.clone());
                return Some((tenant, item));
            }
            if st.closed {
                return None;
            }
            st = self
                .ready
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn pick(st: &State<T>) -> Option<(String, (u64, u64))> {
        let next =
            |name: &String, q: &TenantQueue<T>| q.items.keys().next().map(|k| (name.clone(), *k));
        // Strictly after the cursor first, then wrap to the start.
        if let Some(cur) = &st.cursor {
            use std::ops::Bound;
            let after = st
                .tenants
                .range::<String, _>((Bound::Excluded(cur.clone()), Bound::Unbounded))
                .find_map(|(n, q)| next(n, q));
            if after.is_some() {
                return after;
            }
        }
        st.tenants.iter().find_map(|(n, q)| next(n, q))
    }

    /// Closes the queue: pending items still drain, new offers are
    /// rejected with [`AdmissionOutcome::Closed`], blocked takers wake.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.ready.notify_all();
    }

    /// Whether [`Admission::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock(&self.state).closed
    }

    /// Queued depth per tenant with work in flight, in tenant name
    /// order (drained tenants are evicted, so they never appear).
    pub fn depths(&self) -> Vec<(String, usize)> {
        lock(&self.state)
            .tenants
            .iter()
            .map(|(n, q)| (n.clone(), q.items.len()))
            .collect()
    }

    /// Total offers shed since construction (both causes).
    pub fn shed_total(&self) -> u64 {
        let st = lock(&self.state);
        st.shed_tenant + st.shed_global
    }

    /// Offers shed because the *tenant's own* queue was at its cap —
    /// one client flooding itself.
    pub fn shed_tenant_total(&self) -> u64 {
        lock(&self.state).shed_tenant
    }

    /// Offers shed because the *global* cross-tenant cap was reached —
    /// aggregate overload (or a client inventing tenant names).
    pub fn shed_global_total(&self) -> u64 {
        lock(&self.state).shed_global
    }

    /// Total offers admitted since construction.
    pub fn admitted_total(&self) -> u64 {
        lock(&self.state).admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn drains_round_robin_across_tenants_in_name_order() {
        let q = Admission::new(8, 64, 25);
        for (tenant, key) in [("b", 2), ("a", 1), ("c", 3), ("a", 0), ("b", 1)] {
            assert_eq!(q.offer(tenant, key, key), AdmissionOutcome::Accepted);
        }
        q.close();
        let mut order = Vec::new();
        while let Some((tenant, key)) = q.take() {
            order.push((tenant, key));
        }
        // a, b, c round-robin; within a tenant, ascending order key.
        assert_eq!(
            order,
            vec![
                ("a".to_string(), 0),
                ("b".to_string(), 1),
                ("c".to_string(), 3),
                ("a".to_string(), 1),
                ("b".to_string(), 2),
            ]
        );
    }

    #[test]
    fn sheds_at_cap_with_retry_hint_and_counts() {
        let q = Admission::new(2, 64, 40);
        assert_eq!(q.offer("t", 1, ()), AdmissionOutcome::Accepted);
        assert_eq!(q.offer("t", 2, ()), AdmissionOutcome::Accepted);
        assert_eq!(
            q.offer("t", 3, ()),
            AdmissionOutcome::Shed { retry_after_ms: 40 }
        );
        // Another tenant still has room.
        assert_eq!(q.offer("u", 1, ()), AdmissionOutcome::Accepted);
        assert_eq!(q.shed_total(), 1);
        assert_eq!(q.shed_tenant_total(), 1, "a full tenant queue is the cause");
        assert_eq!(q.shed_global_total(), 0);
        assert_eq!(q.admitted_total(), 3);
        assert_eq!(q.depths(), vec![("t".to_string(), 2), ("u".to_string(), 1)]);
    }

    #[test]
    fn close_rejects_new_offers_and_wakes_blocked_takers() {
        let q: Arc<Admission<u64>> = Arc::new(Admission::new(4, 64, 10));
        let taker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.take())
        };
        // Give the taker a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(taker.join().expect("taker panicked").is_none());
        assert_eq!(q.offer("t", 1, 1), AdmissionOutcome::Closed);
    }

    #[test]
    fn arrival_breaks_order_key_ties_fifo() {
        let q = Admission::new(8, 64, 10);
        q.offer("t", 7, "first");
        q.offer("t", 7, "second");
        q.close();
        assert_eq!(q.take(), Some(("t".to_string(), "first")));
        assert_eq!(q.take(), Some(("t".to_string(), "second")));
    }

    #[test]
    fn global_cap_sheds_across_fresh_tenant_names() {
        // Per-tenant cap alone would admit all of these: every offer
        // invents a new tenant. The global cap must stop them.
        let q = Admission::new(8, 3, 15);
        for i in 0..3 {
            assert_eq!(
                q.offer(&format!("fresh-{i}"), i, i),
                AdmissionOutcome::Accepted
            );
        }
        assert_eq!(
            q.offer("fresh-3", 3, 3),
            AdmissionOutcome::Shed { retry_after_ms: 15 }
        );
        assert_eq!(q.shed_total(), 1);
        assert_eq!(q.shed_global_total(), 1, "the global cap is the cause");
        assert_eq!(q.shed_tenant_total(), 0);
        // Shed offers must not leave empty map entries behind.
        assert_eq!(q.depths().len(), 3);
        // Draining frees global capacity again.
        q.close();
        assert!(q.take().is_some());
        assert_eq!(q.depths().len(), 2);
    }

    #[test]
    fn drained_tenants_are_evicted_from_the_map() {
        let q = Admission::new(4, 64, 10);
        q.offer("a", 1, 1);
        q.offer("b", 2, 2);
        q.close();
        assert_eq!(q.depths().len(), 2);
        let _ = q.take();
        let _ = q.take();
        assert!(
            q.depths().is_empty(),
            "drained tenants must not accumulate: {:?}",
            q.depths()
        );
    }
}
