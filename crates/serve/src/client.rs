//! A small blocking client for the daemon, shared by `serve-client`,
//! `serve-chaos` and the integration tests.

use crate::proto::{read_frame, write_frame, FrameError, Request};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Where a daemon listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Addr {
    /// Unix socket path.
    Unix(std::path::PathBuf),
    /// TCP `host:port`.
    Tcp(String),
}

impl Addr {
    /// Parses `unix:<path>`, `tcp:<host:port>`, or a bare path
    /// (treated as a Unix socket).
    pub fn parse(s: &str) -> Addr {
        if let Some(rest) = s.strip_prefix("tcp:") {
            Addr::Tcp(rest.to_string())
        } else if let Some(rest) = s.strip_prefix("unix:") {
            Addr::Unix(rest.into())
        } else {
            Addr::Unix(s.into())
        }
    }
}

trait Transport: Read + Write + Send {}
impl Transport for UnixStream {}
impl Transport for TcpStream {}

/// One blocking connection to the daemon.
pub struct Client {
    stream: Box<dyn Transport>,
}

impl Client {
    /// Connects with the given read timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: &Addr, read_timeout: Duration) -> io::Result<Client> {
        let stream: Box<dyn Transport> = match addr {
            Addr::Unix(path) => {
                let s = UnixStream::connect(path)?;
                s.set_read_timeout(Some(read_timeout))?;
                Box::new(s)
            }
            Addr::Tcp(hostport) => {
                let s = TcpStream::connect(hostport.as_str())?;
                s.set_read_timeout(Some(read_timeout))?;
                s.set_nodelay(true)?;
                Box::new(s)
            }
        };
        Ok(Client { stream })
    }

    /// Sends one request frame.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, req.to_json().as_bytes())
    }

    /// Sends an arbitrary payload frame (chaos only).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stream, payload)
    }

    /// Writes raw bytes *without* framing (chaos: torn frames,
    /// garbage prefixes, slow-loris drips).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Receives one response frame as UTF-8 text. `Ok(None)` means the
    /// server closed the stream cleanly.
    ///
    /// # Errors
    ///
    /// Frame errors (including read timeouts) and non-UTF-8 payloads.
    pub fn recv(&mut self) -> Result<Option<String>, FrameError> {
        match read_frame(&mut self.stream)? {
            None => Ok(None),
            Some(payload) => String::from_utf8(payload).map(Some).map_err(|_| {
                FrameError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "response is not UTF-8",
                ))
            }),
        }
    }

    /// Sends `req` and waits for one response.
    ///
    /// # Errors
    ///
    /// I/O and frame errors; a cleanly closed stream is reported as
    /// `UnexpectedEof`.
    pub fn request(&mut self, req: &Request) -> Result<String, FrameError> {
        self.send(req).map_err(FrameError::Io)?;
        self.recv()?.ok_or_else(|| {
            FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the stream before replying",
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_parse_covers_all_schemes() {
        assert_eq!(
            Addr::parse("tcp:127.0.0.1:9000"),
            Addr::Tcp("127.0.0.1:9000".to_string())
        );
        assert_eq!(
            Addr::parse("unix:/tmp/s.sock"),
            Addr::Unix("/tmp/s.sock".into())
        );
        assert_eq!(Addr::parse("/tmp/s.sock"), Addr::Unix("/tmp/s.sock".into()));
    }
}
