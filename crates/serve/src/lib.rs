//! `contention-serve`: a crash-tolerant bound-query daemon for the
//! TC27x contention models.
//!
//! The paper's Δcont/RTA pipeline is a one-shot batch artefact; this
//! crate gives it a front door. A long-running, multi-tenant daemon
//! listens on a Unix socket and/or TCP (plain `std::net`, zero new
//! dependencies), accepts length-prefixed JSON request frames and
//! serves batched Δcont / RTA / sweep queries through
//! [`mbta::ExecEngine`]. Robustness is the headline, in four layers:
//!
//! 1. **Admission control + backpressure** ([`admission`]) — a bounded
//!    per-tenant queue with deterministic fair dequeue (tenant
//!    round-robin, job-key order within a tenant) and explicit
//!    `Overloaded{retry_after_ms}` rejections instead of unbounded
//!    buffering.
//! 2. **Deadline-driven graceful degradation** ([`query`]) — each
//!    request carries a solve budget; the server walks the
//!    deterministic ladder exact ILP → warm fTC fallback (the
//!    `SolveError::BudgetExhausted` plumbing behind
//!    [`contention::Evaluator`]) and tags every response with its
//!    provenance, so a degraded answer is never silent.
//! 3. **Crash recovery** ([`server`]) — responses and isolation
//!    profiles flow through two content-addressed persistent stores
//!    ([`mbta::Store`], the journal discipline generalized), keyed by
//!    FNV fingerprints. `kill -9` mid-batch restarts into replay and
//!    re-serves byte-identical responses at any worker count.
//! 4. **A chaos harness** ([`chaos`]) — SplitMix64-seeded fault plans
//!    (slow-loris frames, truncated/garbage frames, mid-request
//!    disconnects, duplicates, overload bursts) asserting the daemon
//!    never wedges, never leaks a worker and never emits a wrong
//!    bound.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod admission;
pub mod chaos;
pub mod client;
pub mod proto;
pub mod query;
pub mod server;

pub use admission::{Admission, AdmissionOutcome};
pub use proto::{read_frame, write_frame, FrameError, QueryKind, Request, MAX_FRAME_BYTES};
pub use query::{QueryEngine, QueryOptions};
pub use server::{Server, ServerConfig};
