//! Property-based tests for the exact ILP solver.
//!
//! Random small problems are generated and the solver's answers are
//! cross-checked against brute-force enumeration (for bounded ILPs) and
//! against basic LP invariants (feasibility of the returned point,
//! optimality versus random feasible points).

use ilp::{LinExpr, Problem, Rational, SolveError};
use proptest::prelude::*;

/// A generated constraint: coefficients (small ints) and rhs.
#[derive(Clone, Debug)]
struct RandConstraint {
    coeffs: Vec<i64>,
    rhs: i64,
}

fn constraint_strategy(nvars: usize) -> impl Strategy<Value = RandConstraint> {
    (
        proptest::collection::vec(-4i64..=6, nvars),
        0i64..=40,
    )
        .prop_map(|(coeffs, rhs)| RandConstraint { coeffs, rhs })
}

/// Builds a bounded maximisation ILP with `nvars` integer variables in
/// `[0, ub]` and `≤` constraints. Always feasible (origin satisfies all
/// constraints because rhs ≥ 0).
fn build_problem(
    objective: &[i64],
    constraints: &[RandConstraint],
    ub: i64,
) -> (Problem, Vec<ilp::Var>) {
    let mut p = Problem::maximize();
    let vars: Vec<_> = (0..objective.len())
        .map(|i| p.add_var(format!("v{i}")).integer().bounds(0, ub).build())
        .collect();
    let mut obj = LinExpr::new();
    for (v, k) in vars.iter().zip(objective) {
        obj += *v * *k;
    }
    p.set_objective(obj);
    for c in constraints {
        let mut e = LinExpr::new();
        for (v, k) in vars.iter().zip(&c.coeffs) {
            e += *v * *k;
        }
        p.add_le(e, c.rhs);
    }
    (p, vars)
}

/// Brute-force optimum by enumerating the integer box.
fn brute_force(objective: &[i64], constraints: &[RandConstraint], ub: i64) -> i128 {
    let n = objective.len();
    let mut best = i128::MIN;
    let mut point = vec![0i64; n];
    loop {
        let feasible = constraints.iter().all(|c| {
            c.coeffs
                .iter()
                .zip(&point)
                .map(|(k, x)| k * x)
                .sum::<i64>()
                <= c.rhs
        });
        if feasible {
            let val: i128 = objective
                .iter()
                .zip(&point)
                .map(|(k, x)| *k as i128 * *x as i128)
                .sum();
            best = best.max(val);
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            point[i] += 1;
            if point[i] > ub {
                point[i] = 0;
                i += 1;
            } else {
                break;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ILP optimum matches brute-force enumeration on small boxes.
    #[test]
    fn ilp_matches_brute_force(
        objective in proptest::collection::vec(-5i64..=8, 1..=3),
        constraints in proptest::collection::vec(constraint_strategy(3), 0..=3),
        ub in 1i64..=4,
    ) {
        let nvars = objective.len();
        let constraints: Vec<RandConstraint> = constraints
            .into_iter()
            .map(|mut c| { c.coeffs.truncate(nvars); c })
            .collect();
        let (p, _) = build_problem(&objective, &constraints, ub);
        let sol = p.solve().expect("origin is always feasible");
        let expected = brute_force(&objective, &constraints, ub);
        prop_assert_eq!(sol.objective(), Rational::from_int(expected));
    }

    /// Returned assignments satisfy every constraint and bound exactly.
    #[test]
    fn solution_is_feasible(
        objective in proptest::collection::vec(-5i64..=8, 1..=4),
        constraints in proptest::collection::vec(constraint_strategy(4), 0..=4),
        ub in 1i64..=6,
    ) {
        let nvars = objective.len();
        let constraints: Vec<RandConstraint> = constraints
            .into_iter()
            .map(|mut c| { c.coeffs.truncate(nvars); c })
            .collect();
        let (p, vars) = build_problem(&objective, &constraints, ub);
        let sol = p.solve().expect("origin is always feasible");
        for v in &vars {
            let x = sol.value(*v);
            prop_assert!(x >= Rational::ZERO);
            prop_assert!(x <= Rational::from_int(ub as i128));
            prop_assert!(x.is_integer());
        }
        for c in p.constraints() {
            prop_assert!(c.is_satisfied_by(|v| sol.value(v)));
        }
    }

    /// LP relaxation dominates the ILP optimum (maximisation).
    #[test]
    fn lp_relaxation_dominates(
        objective in proptest::collection::vec(0i64..=8, 1..=3),
        constraints in proptest::collection::vec(constraint_strategy(3), 1..=3),
        ub in 1i64..=4,
    ) {
        let nvars = objective.len();
        let constraints: Vec<RandConstraint> = constraints
            .into_iter()
            .map(|mut c| { c.coeffs.truncate(nvars); c })
            .collect();
        let (ilp_p, _) = build_problem(&objective, &constraints, ub);
        // Same problem without integrality.
        let mut lp_p = Problem::maximize();
        let vars: Vec<_> = (0..nvars)
            .map(|i| lp_p.add_var(format!("v{i}")).bounds(0, ub).build())
            .collect();
        let mut obj = LinExpr::new();
        for (v, k) in vars.iter().zip(&objective) {
            obj += *v * *k;
        }
        lp_p.set_objective(obj);
        for c in &constraints {
            let mut e = LinExpr::new();
            for (v, k) in vars.iter().zip(&c.coeffs) {
                e += *v * *k;
            }
            lp_p.add_le(e, c.rhs);
        }
        let ilp_sol = ilp_p.solve().unwrap();
        let lp_sol = lp_p.solve().unwrap();
        prop_assert!(lp_sol.objective() >= ilp_sol.objective());
    }

    /// Rational arithmetic: field axioms on random values.
    #[test]
    fn rational_field_axioms(
        an in -1000i128..1000, ad in 1i128..50,
        bn in -1000i128..1000, bd in 1i128..50,
        cn in -1000i128..1000, cd in 1i128..50,
    ) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        let c = Rational::new(cn, cd);
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Rational::ZERO);
        if !b.is_zero() {
            prop_assert_eq!(a / b * b, a);
        }
    }

    /// floor/ceil bracket the value and differ only for non-integers.
    #[test]
    fn floor_ceil_bracket(n in -10_000i128..10_000, d in 1i128..100) {
        let r = Rational::new(n, d);
        let f = Rational::from_int(r.floor());
        let c = Rational::from_int(r.ceil());
        prop_assert!(f <= r && r <= c);
        if r.is_integer() {
            prop_assert_eq!(f, c);
        } else {
            prop_assert_eq!(r.ceil() - r.floor(), 1);
        }
    }
}

#[test]
fn infeasible_box_detected() {
    let mut p = Problem::maximize();
    let x = p.add_var("x").integer().bounds(0, 3).build();
    p.set_objective(x);
    p.add_ge(x, 10);
    assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
}
