//! Property-style tests for the exact ILP solver.
//!
//! Random small problems are generated from a seeded in-tree PRNG and
//! the solver's answers are cross-checked against brute-force
//! enumeration (for bounded ILPs) and against basic LP invariants
//! (feasibility of the returned point, LP-relaxation dominance). Every
//! case is derived deterministically from its case index, so a failure
//! message names the exact reproducer seed.

use ilp::{LinExpr, Problem, Rational, SolveError};

/// SplitMix64, copied in-tree: the `ilp` crate is dependency-free, so
/// its tests carry their own 20-line generator rather than pulling in
/// the simulator crate.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo + 1) as u64) as i64
    }
}

/// A generated constraint: coefficients (small ints) and rhs ≥ 0, so
/// the origin is always feasible.
#[derive(Clone, Debug)]
struct RandConstraint {
    coeffs: Vec<i64>,
    rhs: i64,
}

fn rand_constraint(rng: &mut Rng, nvars: usize) -> RandConstraint {
    RandConstraint {
        coeffs: (0..nvars).map(|_| rng.range(-4, 6)).collect(),
        rhs: rng.range(0, 40),
    }
}

fn rand_objective(rng: &mut Rng, lo: i64, hi: i64, max_vars: usize) -> Vec<i64> {
    let n = 1 + rng.below(max_vars as u64) as usize;
    (0..n).map(|_| rng.range(lo, hi)).collect()
}

fn rand_constraints(rng: &mut Rng, nvars: usize, max: usize) -> Vec<RandConstraint> {
    let n = rng.below(max as u64 + 1) as usize;
    (0..n).map(|_| rand_constraint(rng, nvars)).collect()
}

/// Builds a bounded maximisation ILP with integer variables in
/// `[0, ub]` and `≤` constraints.
fn build_problem(
    objective: &[i64],
    constraints: &[RandConstraint],
    ub: i64,
) -> (Problem, Vec<ilp::Var>) {
    let mut p = Problem::maximize();
    let vars: Vec<_> = (0..objective.len())
        .map(|i| p.add_var(format!("v{i}")).integer().bounds(0, ub).build())
        .collect();
    let mut obj = LinExpr::new();
    for (v, k) in vars.iter().zip(objective) {
        obj += *v * *k;
    }
    p.set_objective(obj);
    for c in constraints {
        let mut e = LinExpr::new();
        for (v, k) in vars.iter().zip(&c.coeffs) {
            e += *v * *k;
        }
        p.add_le(e, c.rhs);
    }
    (p, vars)
}

/// Brute-force optimum by enumerating the integer box.
fn brute_force(objective: &[i64], constraints: &[RandConstraint], ub: i64) -> i128 {
    let n = objective.len();
    let mut best = i128::MIN;
    let mut point = vec![0i64; n];
    loop {
        let feasible = constraints
            .iter()
            .all(|c| c.coeffs.iter().zip(&point).map(|(k, x)| k * x).sum::<i64>() <= c.rhs);
        if feasible {
            let val: i128 = objective
                .iter()
                .zip(&point)
                .map(|(k, x)| *k as i128 * *x as i128)
                .sum();
            best = best.max(val);
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            point[i] += 1;
            if point[i] > ub {
                point[i] = 0;
                i += 1;
            } else {
                break;
            }
        }
    }
}

/// The ILP optimum matches brute-force enumeration on small boxes.
#[test]
fn ilp_matches_brute_force() {
    for case in 0..64u64 {
        let mut rng = Rng(0x11f0_0000 + case);
        let objective = rand_objective(&mut rng, -5, 8, 3);
        let nvars = objective.len();
        let constraints = rand_constraints(&mut rng, nvars, 3);
        let ub = rng.range(1, 4);
        let (p, _) = build_problem(&objective, &constraints, ub);
        let sol = p.solve().expect("origin is always feasible");
        let expected = brute_force(&objective, &constraints, ub);
        assert_eq!(
            sol.objective(),
            Rational::from_int(expected),
            "case {case}: {objective:?} s.t. {constraints:?}, ub {ub}"
        );
    }
}

/// Returned assignments satisfy every constraint and bound exactly.
#[test]
fn solution_is_feasible() {
    for case in 0..64u64 {
        let mut rng = Rng(0x2fea_0000 + case);
        let objective = rand_objective(&mut rng, -5, 8, 4);
        let nvars = objective.len();
        let constraints = rand_constraints(&mut rng, nvars, 4);
        let ub = rng.range(1, 6);
        let (p, vars) = build_problem(&objective, &constraints, ub);
        let sol = p.solve().expect("origin is always feasible");
        for v in &vars {
            let x = sol.value(*v);
            assert!(x >= Rational::ZERO, "case {case}");
            assert!(x <= Rational::from_int(ub as i128), "case {case}");
            assert!(x.is_integer(), "case {case}");
        }
        for c in p.constraints() {
            assert!(c.is_satisfied_by(|v| sol.value(v)), "case {case}");
        }
    }
}

/// LP relaxation dominates the ILP optimum (maximisation).
#[test]
fn lp_relaxation_dominates() {
    for case in 0..48u64 {
        let mut rng = Rng(0x3e1a_0000 + case);
        let objective = rand_objective(&mut rng, 0, 8, 3);
        let nvars = objective.len();
        let constraints: Vec<_> = (0..1 + rng.below(3) as usize)
            .map(|_| rand_constraint(&mut rng, nvars))
            .collect();
        let ub = rng.range(1, 4);
        let (ilp_p, _) = build_problem(&objective, &constraints, ub);
        // Same problem without integrality.
        let mut lp_p = Problem::maximize();
        let vars: Vec<_> = (0..nvars)
            .map(|i| lp_p.add_var(format!("v{i}")).bounds(0, ub).build())
            .collect();
        let mut obj = LinExpr::new();
        for (v, k) in vars.iter().zip(&objective) {
            obj += *v * *k;
        }
        lp_p.set_objective(obj);
        for c in &constraints {
            let mut e = LinExpr::new();
            for (v, k) in vars.iter().zip(&c.coeffs) {
                e += *v * *k;
            }
            lp_p.add_le(e, c.rhs);
        }
        let ilp_sol = ilp_p.solve().unwrap();
        let lp_sol = lp_p.solve().unwrap();
        assert!(lp_sol.objective() >= ilp_sol.objective(), "case {case}");
    }
}

/// Rational arithmetic: field axioms on random values.
#[test]
fn rational_field_axioms() {
    let mut rng = Rng(0x4a71_beef);
    for case in 0..500 {
        let a = Rational::new(rng.range(-1000, 999) as i128, rng.range(1, 49) as i128);
        let b = Rational::new(rng.range(-1000, 999) as i128, rng.range(1, 49) as i128);
        let c = Rational::new(rng.range(-1000, 999) as i128, rng.range(1, 49) as i128);
        assert_eq!(a + b, b + a, "case {case}");
        assert_eq!((a + b) + c, a + (b + c), "case {case}");
        assert_eq!(a * (b + c), a * b + a * c, "case {case}");
        assert_eq!(a - a, Rational::ZERO, "case {case}");
        if !b.is_zero() {
            assert_eq!(a / b * b, a, "case {case}");
        }
    }
}

/// floor/ceil bracket the value and differ only for non-integers.
#[test]
fn floor_ceil_bracket() {
    let mut rng = Rng(0x5bed_cafe);
    for case in 0..500 {
        let n = rng.range(-10_000, 9_999) as i128;
        let d = rng.range(1, 99) as i128;
        let r = Rational::new(n, d);
        let f = Rational::from_int(r.floor());
        let c = Rational::from_int(r.ceil());
        assert!(f <= r && r <= c, "case {case}: {n}/{d}");
        if r.is_integer() {
            assert_eq!(f, c, "case {case}");
        } else {
            assert_eq!(r.ceil() - r.floor(), 1, "case {case}");
        }
    }
}

#[test]
fn infeasible_box_detected() {
    let mut p = Problem::maximize();
    let x = p.add_var("x").integer().bounds(0, 3).build();
    p.set_objective(x);
    p.add_ge(x, 10);
    assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
}
