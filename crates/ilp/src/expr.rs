//! Linear expressions over problem variables.
//!
//! A [`LinExpr`] is a sparse map from [`Var`] to rational coefficients plus
//! a constant term. Expressions are built with ordinary operators:
//!
//! ```
//! use ilp::{Problem, Rational};
//!
//! let mut p = Problem::maximize();
//! let x = p.add_var("x").bounds(0, 10).build();
//! let y = p.add_var("y").bounds(0, 10).build();
//! let e = x * 3 + y * 2 + 1;
//! assert_eq!(e.coeff(x), Rational::from_int(3));
//! assert_eq!(e.constant(), Rational::from_int(1));
//! ```

use crate::rational::Rational;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Handle to a decision variable in a [`crate::Problem`].
///
/// `Var`s are cheap copyable indices; they are only meaningful for the
/// problem that created them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Index of this variable within its owning problem.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A sparse linear expression: `Σ cᵢ·xᵢ + k`.
///
/// # Examples
///
/// ```
/// use ilp::{LinExpr, Problem};
/// let mut p = Problem::maximize();
/// let x = p.add_var("x").build();
/// let expr: LinExpr = x * 2 + 5;
/// assert_eq!(expr.to_string(), "2·x0 + 5");
/// ```
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct LinExpr {
    terms: BTreeMap<Var, Rational>,
    constant: Rational,
}

impl LinExpr {
    /// The empty expression (zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// An expression consisting of a constant only.
    pub fn constant_expr(k: impl Into<Rational>) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: k.into(),
        }
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: Var) -> Rational {
        self.terms.get(&v).copied().unwrap_or(Rational::ZERO)
    }

    /// The constant term.
    pub fn constant(&self) -> Rational {
        self.constant
    }

    /// Iterates over `(variable, coefficient)` pairs with non-zero
    /// coefficients, in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, Rational)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, *c))
    }

    /// Number of variables with a non-zero coefficient.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the expression has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Adds `coeff·v` to the expression in place.
    pub fn add_term(&mut self, v: Var, coeff: impl Into<Rational>) {
        let c = self.terms.entry(v).or_insert(Rational::ZERO);
        *c += coeff.into();
        if c.is_zero() {
            self.terms.remove(&v);
        }
    }

    /// Evaluates the expression under an assignment function.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilp::{Problem, Rational};
    /// let mut p = Problem::maximize();
    /// let x = p.add_var("x").build();
    /// let e = x * 4 + 2;
    /// let v = e.eval(|_| Rational::from_int(3));
    /// assert_eq!(v, Rational::from_int(14));
    /// ```
    pub fn eval(&self, mut assignment: impl FnMut(Var) -> Rational) -> Rational {
        self.terms
            .iter()
            .map(|(v, c)| *c * assignment(*v))
            .sum::<Rational>()
            + self.constant
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                if *c == Rational::ONE {
                    write!(f, "{v}")?;
                } else {
                    write!(f, "{c}·{v}")?;
                }
                first = false;
            } else if c.is_negative() {
                write!(f, " - {}·{v}", c.abs())?;
            } else {
                write!(f, " + {c}·{v}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if !self.constant.is_zero() {
            if self.constant.is_negative() {
                write!(f, " - {}", self.constant.abs())?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> Self {
        let mut e = LinExpr::new();
        e.add_term(v, Rational::ONE);
        e
    }
}

macro_rules! impl_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for LinExpr {
            fn from(k: $t) -> Self {
                LinExpr::constant_expr(k)
            }
        }
    )*};
}
impl_from_num!(i32, u32, i64, u64, i128, Rational);

impl<T: Into<LinExpr>> Add<T> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: T) -> LinExpr {
        let rhs = rhs.into();
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl<T: Into<LinExpr>> Sub<T> for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: T) -> LinExpr {
        self + (-rhs.into())
    }
}

impl<T: Into<LinExpr>> AddAssign<T> for LinExpr {
    fn add_assign(&mut self, rhs: T) {
        let rhs = rhs.into();
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl<T: Into<LinExpr>> SubAssign<T> for LinExpr {
    fn sub_assign(&mut self, rhs: T) {
        *self += -rhs.into();
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        LinExpr {
            terms: self.terms.into_iter().map(|(v, c)| (v, -c)).collect(),
            constant: -self.constant,
        }
    }
}

impl<T: Into<Rational>> Mul<T> for LinExpr {
    type Output = LinExpr;
    fn mul(self, rhs: T) -> LinExpr {
        let k = rhs.into();
        if k.is_zero() {
            return LinExpr::new();
        }
        LinExpr {
            terms: self.terms.into_iter().map(|(v, c)| (v, c * k)).collect(),
            constant: self.constant * k,
        }
    }
}

impl<T: Into<LinExpr>> Add<T> for Var {
    type Output = LinExpr;
    fn add(self, rhs: T) -> LinExpr {
        LinExpr::from(self) + rhs
    }
}

impl<T: Into<LinExpr>> Sub<T> for Var {
    type Output = LinExpr;
    fn sub(self, rhs: T) -> LinExpr {
        LinExpr::from(self) - rhs
    }
}

impl<T: Into<Rational>> Mul<T> for Var {
    type Output = LinExpr;
    fn mul(self, rhs: T) -> LinExpr {
        LinExpr::from(self) * rhs
    }
}

impl Neg for Var {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        -LinExpr::from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars() -> (Var, Var, Var) {
        (Var(0), Var(1), Var(2))
    }

    #[test]
    fn build_and_read_coefficients() {
        let (x, y, _) = vars();
        let e = x * 3 + y * Rational::new(1, 2) - 4;
        assert_eq!(e.coeff(x), Rational::from_int(3));
        assert_eq!(e.coeff(y), Rational::new(1, 2));
        assert_eq!(e.constant(), Rational::from_int(-4));
    }

    #[test]
    fn cancelling_terms_are_removed() {
        let (x, y, _) = vars();
        let e = x + y - x;
        assert_eq!(e.len(), 1);
        assert_eq!(e.coeff(x), Rational::ZERO);
        assert_eq!(e.coeff(y), Rational::ONE);
    }

    #[test]
    #[allow(clippy::erasing_op)] // multiplying by zero is the behaviour under test
    fn mul_by_zero_clears() {
        let (x, y, _) = vars();
        let e = (x + y * 7 + 3) * 0;
        assert!(e.is_empty());
        assert_eq!(e.constant(), Rational::ZERO);
    }

    #[test]
    fn eval_applies_assignment() {
        let (x, y, z) = vars();
        let e = x * 2 + y * 3 + z + 10;
        let val = e.eval(|v| Rational::from_int(v.index() as i128 + 1));
        // 2*1 + 3*2 + 3 + 10 = 21
        assert_eq!(val, Rational::from_int(21));
    }

    #[test]
    fn display_is_readable() {
        let (x, y, _) = vars();
        assert_eq!((x * 2 - y + 5).to_string(), "2·x0 - 1·x1 + 5");
        assert_eq!(LinExpr::new().to_string(), "0");
        assert_eq!(LinExpr::constant_expr(-3).to_string(), "-3");
    }

    #[test]
    fn var_operators_produce_expressions() {
        let (x, y, _) = vars();
        let e = -x + y;
        assert_eq!(e.coeff(x), -Rational::ONE);
        assert_eq!(e.coeff(y), Rational::ONE);
    }

    #[test]
    fn add_assign_merges() {
        let (x, y, _) = vars();
        let mut e = LinExpr::from(x);
        e += y * 2;
        e -= x;
        assert_eq!(e.coeff(x), Rational::ZERO);
        assert_eq!(e.coeff(y), Rational::from_int(2));
    }
}
