//! Solved assignments.

use crate::expr::{LinExpr, Var};
use crate::rational::Rational;
use std::fmt;

/// An optimal assignment returned by [`crate::Problem::solve`].
///
/// # Examples
///
/// ```
/// use ilp::{Problem, Rational};
/// # fn main() -> Result<(), ilp::SolveError> {
/// let mut p = Problem::maximize();
/// let x = p.add_var("x").integer().bounds(0, 10).build();
/// p.set_objective(x * 3);
/// p.add_le(x * 2, 7);
/// let sol = p.solve()?;
/// assert_eq!(sol.int_value(x), 3);
/// assert_eq!(sol.objective(), Rational::from_int(9));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solution {
    values: Vec<Rational>,
    objective: Rational,
}

impl Solution {
    pub(crate) fn new(values: Vec<Rational>, objective: Rational) -> Self {
        Solution { values, objective }
    }

    /// The optimal objective value.
    pub fn objective(&self) -> Rational {
        self.objective
    }

    /// The value assigned to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the solved problem.
    pub fn value(&self, v: Var) -> Rational {
        self.values[v.index()]
    }

    /// The value of an integer variable as `i128`.
    ///
    /// # Panics
    ///
    /// Panics if the stored value is fractional (only possible for
    /// continuous variables) or if `v` is foreign.
    pub fn int_value(&self, v: Var) -> i128 {
        let value = self.values[v.index()];
        value
            .to_integer()
            .unwrap_or_else(|| panic!("variable has a fractional value: {value}"))
    }

    /// Evaluates an arbitrary linear expression under this assignment.
    pub fn eval(&self, expr: &LinExpr) -> Rational {
        expr.eval(|v| self.values[v.index()])
    }

    /// All values, indexed by variable index.
    pub fn values(&self) -> &[Rational] {
        &self.values
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "objective = {}; ", self.objective)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "x{i} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Var;

    #[test]
    fn accessors_round_trip() {
        let s = Solution::new(
            vec![Rational::from_int(3), Rational::new(1, 2)],
            Rational::from_int(7),
        );
        assert_eq!(s.objective(), Rational::from_int(7));
        assert_eq!(s.value(Var(0)), Rational::from_int(3));
        assert_eq!(s.int_value(Var(0)), 3);
        assert_eq!(s.values().len(), 2);
    }

    #[test]
    #[should_panic(expected = "fractional")]
    fn int_value_panics_on_fraction() {
        let s = Solution::new(vec![Rational::new(1, 2)], Rational::ZERO);
        let _ = s.int_value(Var(0));
    }

    #[test]
    fn display_lists_values() {
        let s = Solution::new(vec![Rational::from_int(1)], Rational::from_int(1));
        assert_eq!(s.to_string(), "objective = 1; x0 = 1");
    }
}
