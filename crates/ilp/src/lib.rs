//! # `ilp` — exact integer linear programming
//!
//! A small, dependency-free (integer) linear programming solver built for
//! the AURIX TC27x contention models of this workspace:
//!
//! * **exact arithmetic** — all pivoting happens on [`Rational`] numbers
//!   over `i128`, so optimality and feasibility answers carry no
//!   floating-point doubt (important when the result is a WCET *bound*);
//! * **two-phase primal simplex** with Bland's rule (guaranteed
//!   termination);
//! * **branch & bound** with most-fractional branching and exact
//!   incumbent pruning for integer variables.
//!
//! The API follows the usual modelling style: create a [`Problem`], add
//! variables through the [`VarBuilder`], combine them into [`LinExpr`]s
//! with `+`/`-`/`*`, add constraints, and call [`Problem::solve`].
//!
//! # Examples
//!
//! A tiny production-planning ILP:
//!
//! ```
//! use ilp::{Problem, Rational};
//!
//! # fn main() -> Result<(), ilp::SolveError> {
//! let mut p = Problem::maximize();
//! let chairs = p.add_var("chairs").integer().build();
//! let tables = p.add_var("tables").integer().build();
//! p.set_objective(chairs * 45 + tables * 80);
//! p.add_le(chairs * 5 + tables * 20, 400); // mahogany
//! p.add_le(chairs * 10 + tables * 15, 450); // labour
//! let sol = p.solve()?;
//! assert_eq!(sol.objective(), Rational::from_int(2200));
//! # Ok(())
//! # }
//! ```
//!
//! The contention models in the [`contention`] crate build their
//! ILP-PTAC formulation (Eqs. 9–23 of the DAC'18 paper) on this API.
//!
//! [`contention`]: ../contention/index.html

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

mod branch_bound;
mod error;
mod expr;
mod model;
mod rational;
mod simplex;
mod solution;

pub use error::{Budget, SolveError};
pub use expr::{LinExpr, Var};
pub use model::{Constraint, Problem, Relation, Sense, SolveStats, VarBuilder};
pub use rational::Rational;
pub use solution::Solution;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<Problem>();
        assert_ss::<Solution>();
        assert_ss::<LinExpr>();
        assert_ss::<Rational>();
        assert_ss::<SolveError>();
    }

    #[test]
    fn empty_problem_solves_to_constant_objective() {
        let mut p = Problem::maximize();
        p.set_objective(LinExpr::constant_expr(5));
        let s = p.solve().unwrap();
        assert_eq!(s.objective(), Rational::from_int(5));
    }

    #[test]
    fn unconstrained_bounded_var() {
        let mut p = Problem::maximize();
        let x = p.add_var("x").bounds(2, 9).build();
        p.set_objective(x);
        assert_eq!(p.solve().unwrap().objective(), Rational::from_int(9));
        let mut p = Problem::minimize();
        let x = p.add_var("x").bounds(2, 9).build();
        p.set_objective(x);
        assert_eq!(p.solve().unwrap().objective(), Rational::from_int(2));
    }
}
