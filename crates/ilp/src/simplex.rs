//! Two-phase primal simplex over exact rationals.
//!
//! The solver works on a dense tableau. Variables are shifted so that all
//! structural variables are non-negative; upper bounds and general
//! constraints become rows. Phase 1 minimises the sum of artificial
//! variables to find a basic feasible solution; phase 2 optimises the real
//! objective. Bland's rule is used throughout, which guarantees
//! termination (no cycling) at the cost of some extra pivots — irrelevant
//! at the problem sizes produced by the contention models.

use crate::error::{Budget, SolveError};
use crate::expr::Var;
use crate::model::{Problem, Relation, Sense};
use crate::rational::Rational;

/// Outcome of an LP relaxation solve: optimal variable values in the
/// *original* (unshifted) space plus the objective value.
#[derive(Clone, Debug)]
pub(crate) struct LpSolution {
    pub(crate) values: Vec<Rational>,
    pub(crate) objective: Rational,
}

/// Extra bound tightenings applied on top of the problem's own variable
/// bounds (used by branch & bound).
#[derive(Clone, Debug, Default)]
pub(crate) struct BoundOverrides {
    /// `(var index, new lower bound)` pairs.
    pub(crate) lower: Vec<(usize, Rational)>,
    /// `(var index, new upper bound)` pairs.
    pub(crate) upper: Vec<(usize, Rational)>,
}

impl BoundOverrides {
    fn effective(&self, problem: &Problem, idx: usize) -> (Rational, Option<Rational>) {
        let mut lo = problem.vars[idx].lower;
        let mut hi = problem.vars[idx].upper;
        for (i, b) in &self.lower {
            if *i == idx && *b > lo {
                lo = *b;
            }
        }
        for (i, b) in &self.upper {
            if *i == idx {
                hi = Some(match hi {
                    Some(h) if h < *b => h,
                    _ => *b,
                });
            }
        }
        (lo, hi)
    }
}

/// Dense simplex tableau in equality form `A·y = b`, `y ≥ 0`.
struct Tableau {
    /// Row-major coefficient matrix, `rows × cols`.
    a: Vec<Vec<Rational>>,
    /// Right-hand sides (kept non-negative at start).
    b: Vec<Rational>,
    /// Objective coefficients (for the phase being run).
    c: Vec<Rational>,
    /// Basis: for each row, the column index of its basic variable.
    basis: Vec<usize>,
    rows: usize,
    cols: usize,
}

impl Tableau {
    /// One pivot on (row `r`, column `s`): scale the row and eliminate the
    /// column elsewhere, then update the basis.
    fn pivot(&mut self, r: usize, s: usize) {
        let piv = self.a[r][s];
        debug_assert!(!piv.is_zero());
        let inv = piv.recip();
        for j in 0..self.cols {
            self.a[r][j] *= inv;
        }
        self.b[r] *= inv;
        for i in 0..self.rows {
            if i != r && !self.a[i][s].is_zero() {
                let f = self.a[i][s];
                for j in 0..self.cols {
                    let d = self.a[r][j] * f;
                    self.a[i][j] -= d;
                }
                let d = self.b[r] * f;
                self.b[i] -= d;
            }
        }
        self.basis[r] = s;
    }

    /// Reduced cost of column `j` under objective `c` (to maximise):
    /// `c_j - Σᵢ c_{basis(i)}·a_{ij}`.
    fn reduced_cost(&self, j: usize) -> Rational {
        let mut z = Rational::ZERO;
        for i in 0..self.rows {
            let cb = self.c[self.basis[i]];
            if !cb.is_zero() {
                z += cb * self.a[i][j];
            }
        }
        self.c[j] - z
    }

    /// Current objective value `Σᵢ c_{basis(i)}·bᵢ`.
    fn objective(&self) -> Rational {
        (0..self.rows)
            .map(|i| self.c[self.basis[i]] * self.b[i])
            .sum()
    }

    /// Runs primal simplex (maximisation) with Bland's rule.
    ///
    /// Returns `Ok(())` at optimality; `Err(Unbounded)` when a column with
    /// positive reduced cost has no blocking row.
    fn optimize(&mut self, budget: &mut u64) -> Result<(), SolveError> {
        loop {
            // Bland: entering column = lowest index with positive reduced cost.
            let mut entering = None;
            for j in 0..self.cols {
                if self.reduced_cost(j).is_positive() {
                    entering = Some(j);
                    break;
                }
            }
            let Some(s) = entering else { return Ok(()) };

            // Ratio test; Bland tie-break on lowest basis column index.
            let mut leave: Option<(usize, Rational)> = None;
            for i in 0..self.rows {
                if self.a[i][s].is_positive() {
                    let ratio = self.b[i] / self.a[i][s];
                    let better = match &leave {
                        None => true,
                        Some((li, lr)) => {
                            ratio < *lr || (ratio == *lr && self.basis[i] < self.basis[*li])
                        }
                    };
                    if better {
                        leave = Some((i, ratio));
                    }
                }
            }
            let Some((r, _)) = leave else {
                return Err(SolveError::Unbounded);
            };
            self.pivot(r, s);

            if *budget == 0 {
                return Err(SolveError::BudgetExhausted {
                    budget: Budget::Pivots,
                    limit: 0,
                });
            }
            *budget -= 1;
        }
    }
}

/// Solves the LP relaxation of `problem` (integrality ignored) with the
/// additional bound tightenings in `overrides`.
pub(crate) fn solve_lp(
    problem: &Problem,
    overrides: &BoundOverrides,
    budget: &mut u64,
) -> Result<LpSolution, SolveError> {
    let n = problem.vars.len();

    // Effective bounds; shift each variable by its lower bound so y = x - lo ≥ 0.
    let mut shift = Vec::with_capacity(n);
    let mut upper_rows: Vec<(usize, Rational)> = Vec::new();
    for idx in 0..n {
        let (lo, hi) = overrides.effective(problem, idx);
        if let Some(h) = hi {
            if lo > h {
                return Err(SolveError::Infeasible);
            }
            upper_rows.push((idx, h - lo));
        }
        shift.push(lo);
    }

    let m = problem.constraints.len() + upper_rows.len();
    // Columns: n structural + m sl/surplus (at most one per row) + artificials.
    // Build rows first as (coeffs over structural, relation, rhs).
    struct Row {
        coeffs: Vec<Rational>,
        relation: Relation,
        rhs: Rational,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(m);

    for c in &problem.constraints {
        let mut coeffs = vec![Rational::ZERO; n];
        let mut rhs = c.rhs;
        for (v, k) in c.expr.iter() {
            if v.index() >= n {
                return Err(SolveError::ForeignVariable);
            }
            coeffs[v.index()] = k;
            // Substituting x = y + shift moves k·shift to the RHS.
            rhs -= k * shift[v.index()];
        }
        rows.push(Row {
            coeffs,
            relation: c.relation,
            rhs,
        });
    }
    for (idx, ub) in &upper_rows {
        let mut coeffs = vec![Rational::ZERO; n];
        coeffs[*idx] = Rational::ONE;
        rows.push(Row {
            coeffs,
            relation: Relation::Le,
            rhs: *ub,
        });
    }

    // Normalise to rhs ≥ 0 (flip relation when negating).
    for row in &mut rows {
        if row.rhs.is_negative() {
            for k in &mut row.coeffs {
                *k = -*k;
            }
            row.rhs = -row.rhs;
            row.relation = match row.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
    }

    // Count slack and artificial columns.
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for row in &rows {
        match row.relation {
            Relation::Le => n_slack += 1,
            Relation::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Relation::Eq => n_art += 1,
        }
    }

    let cols = n + n_slack + n_art;
    let mut a = vec![vec![Rational::ZERO; cols]; rows.len()];
    let mut b = vec![Rational::ZERO; rows.len()];
    let mut basis = vec![0usize; rows.len()];
    let mut slack_cursor = n;
    let mut art_cursor = n + n_slack;
    let mut art_cols: Vec<usize> = Vec::with_capacity(n_art);

    for (i, row) in rows.iter().enumerate() {
        a[i][..n].clone_from_slice(&row.coeffs);
        b[i] = row.rhs;
        match row.relation {
            Relation::Le => {
                a[i][slack_cursor] = Rational::ONE;
                basis[i] = slack_cursor;
                slack_cursor += 1;
            }
            Relation::Ge => {
                a[i][slack_cursor] = -Rational::ONE;
                slack_cursor += 1;
                a[i][art_cursor] = Rational::ONE;
                basis[i] = art_cursor;
                art_cols.push(art_cursor);
                art_cursor += 1;
            }
            Relation::Eq => {
                a[i][art_cursor] = Rational::ONE;
                basis[i] = art_cursor;
                art_cols.push(art_cursor);
                art_cursor += 1;
            }
        }
    }

    let rows_n = rows.len();
    let mut t = Tableau {
        a,
        b,
        c: vec![Rational::ZERO; cols],
        basis,
        rows: rows_n,
        cols,
    };

    // Phase 1: maximise -Σ artificials.
    if n_art > 0 {
        for &j in &art_cols {
            t.c[j] = -Rational::ONE;
        }
        t.optimize(budget).map_err(|e| match e {
            // Phase 1 objective is bounded above by 0; unbounded cannot occur.
            SolveError::Unbounded => SolveError::Infeasible,
            other => other,
        })?;
        if t.objective().is_negative() {
            return Err(SolveError::Infeasible);
        }
        // Drive remaining artificials out of the basis where possible.
        for i in 0..t.rows {
            if art_cols.contains(&t.basis[i]) {
                // Degenerate row: pivot on any non-artificial column with a
                // non-zero entry; if none, the row is redundant.
                let pivot_col = (0..n + n_slack).find(|&j| !t.a[i][j].is_zero());
                if let Some(j) = pivot_col {
                    t.pivot(i, j);
                }
            }
        }
        // Forbid artificials from re-entering: zero their columns out of
        // consideration by setting a strongly negative cost and clearing
        // the phase-1 objective.
        for j in 0..cols {
            t.c[j] = Rational::ZERO;
        }
        for i in 0..t.rows {
            if art_cols.contains(&t.basis[i]) {
                // Redundant constraint with artificial stuck at level 0 —
                // harmless; leave it, its b must be 0.
                debug_assert!(t.b[i].is_zero());
            }
        }
        // Remove artificial columns from pricing by truncating: safe because
        // artificial columns are the trailing block.
        t.cols = n + n_slack;
        for row in &mut t.a {
            row.truncate(n + n_slack);
        }
        // Any basis entry pointing at a truncated artificial column refers
        // to a zero-level redundant row; remap it to a fresh virtual zero
        // column is unnecessary since reduced_cost only reads c[basis[i]],
        // which we keep by padding c to the old width.
    }

    // Phase 2: the real objective over structural variables (shift applied).
    let sign = match problem.sense {
        Sense::Maximize => Rational::ONE,
        Sense::Minimize => -Rational::ONE,
    };
    let mut c = vec![Rational::ZERO; t.cols.max(cols)];
    for (v, k) in problem.objective.iter() {
        if v.index() >= n {
            return Err(SolveError::ForeignVariable);
        }
        c[v.index()] = k * sign;
    }
    t.c = c;
    t.optimize(budget)?;

    // Read off structural values.
    let mut values = shift;
    for i in 0..t.rows {
        let bi = t.basis[i];
        if bi < n {
            values[bi] += t.b[i];
        }
    }

    let objective = problem.objective.eval(|v| values[v.index()]);

    Ok(LpSolution { values, objective })
}

/// Re-exported check used by tests: verifies a value vector against all
/// constraints and bounds of `problem` (with overrides).
pub(crate) fn is_feasible(
    problem: &Problem,
    overrides: &BoundOverrides,
    values: &[Rational],
) -> bool {
    for (idx, _) in problem.vars.iter().enumerate() {
        let (lo, hi) = overrides.effective(problem, idx);
        if values[idx] < lo {
            return false;
        }
        if let Some(h) = hi {
            if values[idx] > h {
                return false;
            }
        }
    }
    problem
        .constraints
        .iter()
        .all(|c| c.is_satisfied_by(|v: Var| values[v.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Problem;

    fn budget() -> u64 {
        1_000_000
    }

    #[test]
    fn textbook_maximum() {
        // max 3x + 2y, x + y ≤ 4, x + 3y ≤ 6 → x=4, y=0, obj=12.
        let mut p = Problem::maximize();
        let x = p.add_var("x").build();
        let y = p.add_var("y").build();
        p.set_objective(x * 3 + y * 2);
        p.add_le(x + y, 4);
        p.add_le(x + y * 3, 6);
        let mut b = budget();
        let s = solve_lp(&p, &BoundOverrides::default(), &mut b).unwrap();
        assert_eq!(s.objective, Rational::from_int(12));
        assert_eq!(s.values[x.index()], Rational::from_int(4));
        assert_eq!(s.values[y.index()], Rational::ZERO);
    }

    #[test]
    fn fractional_optimum() {
        // max x + y, 2x + y ≤ 3, x + 2y ≤ 3 → x=y=1, obj=2 (integral here);
        // max x + 2y with x+y≤1 gives a vertex at y=1.
        let mut p = Problem::maximize();
        let x = p.add_var("x").build();
        let y = p.add_var("y").build();
        p.set_objective(x + y * 2);
        p.add_le(x + y, 1);
        let mut b = budget();
        let s = solve_lp(&p, &BoundOverrides::default(), &mut b).unwrap();
        assert_eq!(s.objective, Rational::from_int(2));
        assert_eq!(s.values[y.index()], Rational::ONE);
    }

    #[test]
    fn equality_constraints_via_phase1() {
        // max x, x + y = 5, y ≥ 2 → x = 3.
        let mut p = Problem::maximize();
        let x = p.add_var("x").build();
        let y = p.add_var("y").build();
        p.set_objective(x);
        p.add_eq(x + y, 5);
        p.add_ge(y, 2);
        let mut b = budget();
        let s = solve_lp(&p, &BoundOverrides::default(), &mut b).unwrap();
        assert_eq!(s.objective, Rational::from_int(3));
    }

    #[test]
    fn detects_infeasibility() {
        let mut p = Problem::maximize();
        let x = p.add_var("x").build();
        p.set_objective(x);
        p.add_le(x, 1);
        p.add_ge(x, 2);
        let mut b = budget();
        assert_eq!(
            solve_lp(&p, &BoundOverrides::default(), &mut b).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn detects_unboundedness() {
        let mut p = Problem::maximize();
        let x = p.add_var("x").build();
        p.set_objective(x);
        p.add_ge(x, 1);
        let mut b = budget();
        assert_eq!(
            solve_lp(&p, &BoundOverrides::default(), &mut b).unwrap_err(),
            SolveError::Unbounded
        );
    }

    #[test]
    fn negative_lower_bounds_are_shifted() {
        // min x with x ≥ -7 → x = -7.
        let mut p = Problem::minimize();
        let x = p.add_var("x").lower(-7).build();
        p.set_objective(x);
        let mut b = budget();
        let s = solve_lp(&p, &BoundOverrides::default(), &mut b).unwrap();
        assert_eq!(s.objective, Rational::from_int(-7));
    }

    #[test]
    fn overrides_tighten_bounds() {
        let mut p = Problem::maximize();
        let x = p.add_var("x").bounds(0, 10).build();
        p.set_objective(x);
        let mut ov = BoundOverrides::default();
        ov.upper.push((x.index(), Rational::from_int(4)));
        let mut b = budget();
        let s = solve_lp(&p, &ov, &mut b).unwrap();
        assert_eq!(s.objective, Rational::from_int(4));
    }

    #[test]
    fn objective_constant_carried() {
        let mut p = Problem::maximize();
        let x = p.add_var("x").bounds(0, 2).build();
        p.set_objective(x + 100);
        let mut b = budget();
        let s = solve_lp(&p, &BoundOverrides::default(), &mut b).unwrap();
        assert_eq!(s.objective, Rational::from_int(102));
    }

    #[test]
    fn degenerate_equalities_do_not_cycle() {
        // Redundant equalities around a single point.
        let mut p = Problem::maximize();
        let x = p.add_var("x").build();
        let y = p.add_var("y").build();
        p.set_objective(x + y);
        p.add_eq(x + y, 2);
        p.add_eq(x + y, 2);
        p.add_le(x, 2);
        p.add_le(y, 2);
        let mut b = budget();
        let s = solve_lp(&p, &BoundOverrides::default(), &mut b).unwrap();
        assert_eq!(s.objective, Rational::from_int(2));
    }

    #[test]
    fn feasibility_checker_agrees() {
        let mut p = Problem::maximize();
        let x = p.add_var("x").bounds(0, 5).build();
        let y = p.add_var("y").bounds(0, 5).build();
        p.set_objective(x + y);
        p.add_le(x + y * 2, 8);
        let mut b = budget();
        let s = solve_lp(&p, &BoundOverrides::default(), &mut b).unwrap();
        assert!(is_feasible(&p, &BoundOverrides::default(), &s.values));
    }
}
