//! Error types for model construction and solving.

use std::error::Error;
use std::fmt;

/// Errors produced while building or solving an (I)LP.
///
/// # Examples
///
/// ```
/// use ilp::{Problem, SolveError};
///
/// let mut p = Problem::maximize();
/// let x = p.add_var("x").bounds(0, 10).build();
/// p.add_ge(x, 20); // x ≥ 20 contradicts x ≤ 10
/// assert!(matches!(p.solve(), Err(SolveError::Infeasible)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// A deterministic work budget ran out before the solve finished.
    ///
    /// Budgets are counted in solver work units (branch & bound nodes
    /// or simplex pivots), never wall-clock time, so exhaustion is
    /// bit-identical across thread counts and machines.
    BudgetExhausted {
        /// Which budget ran out.
        budget: Budget,
        /// The configured limit that was reached.
        limit: u64,
    },
    /// A variable was used with a problem that did not create it.
    ForeignVariable,
    /// A variable bound pair is contradictory (`lower > upper`).
    InvalidBounds {
        /// Name of the offending variable.
        name: String,
    },
}

/// The kind of deterministic work budget a solve can exhaust.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Budget {
    /// Branch & bound nodes (LP relaxations solved).
    Nodes,
    /// Simplex pivots, summed across all nodes.
    Pivots,
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Budget::Nodes => write!(f, "node"),
            Budget::Pivots => write!(f, "pivot"),
        }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "problem is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::BudgetExhausted { budget, limit } => {
                write!(f, "solver {budget} budget of {limit} exhausted")
            }
            SolveError::ForeignVariable => {
                write!(f, "variable does not belong to this problem")
            }
            SolveError::InvalidBounds { name } => {
                write!(f, "variable `{name}` has lower bound above upper bound")
            }
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        assert_eq!(SolveError::Infeasible.to_string(), "problem is infeasible");
        assert_eq!(SolveError::Unbounded.to_string(), "objective is unbounded");
        let budget = SolveError::BudgetExhausted {
            budget: Budget::Nodes,
            limit: 42,
        };
        assert!(budget.to_string().contains("42"));
        assert!(budget.to_string().contains("node"));
        assert!(SolveError::InvalidBounds { name: "n_a".into() }
            .to_string()
            .contains("n_a"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<SolveError>();
    }
}
