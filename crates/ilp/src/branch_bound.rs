//! Branch & bound over the rational LP relaxation.
//!
//! Depth-first search with best-incumbent pruning, sharpened by two
//! standard (and exactness-preserving) devices that matter enormously for
//! the contention models' knapsack-like structure with large counter
//! magnitudes:
//!
//! * **integral-bound pruning** — when every objective term ranges over
//!   integer variables with integer coefficients, the ILP optimum is an
//!   integer, so a node whose LP relaxation value *floors* to no more
//!   than the incumbent can be pruned;
//! * **floor-rounding heuristic** — at every node the LP point with its
//!   integer variables floored is tested for feasibility; when feasible
//!   it seeds/improves the incumbent, which usually closes the gap at
//!   the root node for budget-style constraint systems.
//!
//! Branching picks the integer variable whose relaxation value is
//! fractional and closest to 1/2, splitting into `x ≤ ⌊v⌋` / `x ≥ ⌈v⌉`.

use crate::error::{Budget, SolveError};
use crate::model::{Problem, Sense};
use crate::rational::Rational;
use crate::simplex::{is_feasible, solve_lp, BoundOverrides, LpSolution};
use crate::solution::Solution;

/// Statistics of one solve.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SolveStats {
    /// Branch & bound nodes whose LP relaxation was solved. Surfaced
    /// downstream as `IlpPtacSolution::nodes_explored` and the
    /// telemetry layer's `ilp.nodes` histogram — nodes are the solver's
    /// *logical* clock, so budgets and telemetry stay deterministic
    /// where wall-clock time would not.
    pub nodes_explored: u64,
    /// Simplex pivots performed across all nodes.
    pub pivots: u64,
    /// `true` if the incumbent came from the floor-rounding heuristic
    /// rather than an integral LP vertex.
    pub incumbent_from_heuristic: bool,
}

/// Solves the LP relaxation of `problem` directly.
pub(crate) fn solve_relaxed(problem: &Problem) -> Result<Solution, SolveError> {
    let mut pivots = problem.iteration_limit;
    let lp = solve_lp(problem, &BoundOverrides::default(), &mut pivots)
        .map_err(|e| remap_limit(e, problem.iteration_limit))?;
    Ok(Solution::new(lp.values, lp.objective))
}

/// Solves `problem`, dispatching between pure LP and branch & bound.
pub(crate) fn solve(problem: &Problem) -> Result<Solution, SolveError> {
    solve_with_stats(problem).map(|(s, _)| s)
}

/// Solves `problem` and reports search statistics.
pub(crate) fn solve_with_stats(problem: &Problem) -> Result<(Solution, SolveStats), SolveError> {
    let mut stats = SolveStats::default();
    let mut pivots = problem.iteration_limit;
    let has_integers = problem.vars.iter().any(|v| v.integer);
    if !has_integers {
        let lp = solve_lp(problem, &BoundOverrides::default(), &mut pivots)
            .map_err(|e| remap_limit(e, problem.iteration_limit))?;
        stats.pivots = problem.iteration_limit - pivots;
        return Ok((Solution::new(lp.values, lp.objective), stats));
    }

    // The ILP optimum is integral iff every objective term is an integer
    // coefficient on an integer variable (plus an integer constant).
    let integral_objective = problem.objective.constant().is_integer()
        && problem
            .objective
            .iter()
            .all(|(v, c)| c.is_integer() && problem.vars[v.index()].integer);

    let mut best: Option<LpSolution> = None;
    let mut nodes_left = problem.node_limit;
    let mut stack: Vec<BoundOverrides> = vec![BoundOverrides::default()];

    while let Some(node) = stack.pop() {
        if nodes_left == 0 {
            return Err(SolveError::BudgetExhausted {
                budget: Budget::Nodes,
                limit: problem.node_limit,
            });
        }
        nodes_left -= 1;
        stats.nodes_explored += 1;

        let lp = match solve_lp(problem, &node, &mut pivots) {
            Ok(lp) => lp,
            Err(SolveError::Infeasible) => continue,
            Err(SolveError::Unbounded) => {
                // An unbounded relaxation means the ILP is unbounded or
                // infeasible; surface it as unbounded — the caller's
                // constraints are the problem either way.
                return Err(SolveError::Unbounded);
            }
            Err(e) => return Err(remap_limit(e, problem.iteration_limit)),
        };

        // Prune against the incumbent, using the integrality of the
        // optimum where available.
        let node_bound = if integral_objective {
            match problem.sense {
                Sense::Maximize => Rational::from_int(lp.objective.floor()),
                Sense::Minimize => Rational::from_int(lp.objective.ceil()),
            }
        } else {
            lp.objective
        };
        if let Some(b) = &best {
            let improves = match problem.sense {
                Sense::Maximize => node_bound > b.objective,
                Sense::Minimize => node_bound < b.objective,
            };
            if !improves {
                continue;
            }
        }

        // Find the most-fractional integer variable.
        let mut branch_var: Option<(usize, Rational)> = None;
        let half = Rational::new(1, 2);
        for (idx, vd) in problem.vars.iter().enumerate() {
            if vd.integer && !lp.values[idx].is_integer() {
                let dist = (lp.values[idx].fract() - half).abs();
                match &branch_var {
                    Some((_, bestd)) if *bestd <= dist => {}
                    _ => branch_var = Some((idx, dist)),
                }
            }
        }

        let Some((idx, _)) = branch_var else {
            // Integral: new incumbent (we only get here if it improves).
            best = Some(lp);
            stats.incumbent_from_heuristic = false;
            continue;
        };

        // Floor-rounding heuristic: often feasible for budget-style
        // constraints and then closes the gap immediately.
        let mut rounded = lp.values.clone();
        for (i, vd) in problem.vars.iter().enumerate() {
            if vd.integer {
                rounded[i] = Rational::from_int(rounded[i].floor());
            }
        }
        if is_feasible(problem, &node, &rounded) {
            let obj = problem.objective.eval(|v| rounded[v.index()]);
            let improves = match (&best, problem.sense) {
                (None, _) => true,
                (Some(b), Sense::Maximize) => obj > b.objective,
                (Some(b), Sense::Minimize) => obj < b.objective,
            };
            if improves {
                best = Some(LpSolution {
                    values: rounded,
                    objective: obj,
                });
                stats.incumbent_from_heuristic = true;
                // The node bound may now be closed by the heuristic.
                if let Some(b) = &best {
                    let closed = match problem.sense {
                        Sense::Maximize => node_bound <= b.objective,
                        Sense::Minimize => node_bound >= b.objective,
                    };
                    if closed {
                        continue;
                    }
                }
            }
        }

        let v = lp.values[idx];
        let down = Rational::from_int(v.floor());
        let up = Rational::from_int(v.ceil());

        let mut le = node.clone();
        le.upper.push((idx, down));
        let mut ge = node;
        ge.lower.push((idx, up));
        // DFS: explore the "round up" branch first — the contention
        // objective rewards larger interference counts, so this tends to
        // find good incumbents early.
        stack.push(le);
        stack.push(ge);
    }

    stats.pivots = problem.iteration_limit - pivots;
    match best {
        Some(lp) => Ok((Solution::new(lp.values, lp.objective), stats)),
        None => Err(SolveError::Infeasible),
    }
}

fn remap_limit(e: SolveError, limit: u64) -> SolveError {
    match e {
        SolveError::BudgetExhausted {
            budget: Budget::Pivots,
            ..
        } => SolveError::BudgetExhausted {
            budget: Budget::Pivots,
            limit,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use crate::model::Problem;
    use crate::rational::Rational;
    use crate::SolveError;

    #[test]
    fn knapsack_toy() {
        // max 8a + 11b + 6c + 4d, 5a + 7b + 4c + 3d ≤ 14, binary vars.
        let mut p = Problem::maximize();
        let a = p.add_var("a").integer().bounds(0, 1).build();
        let b = p.add_var("b").integer().bounds(0, 1).build();
        let c = p.add_var("c").integer().bounds(0, 1).build();
        let d = p.add_var("d").integer().bounds(0, 1).build();
        p.set_objective(a * 8 + b * 11 + c * 6 + d * 4);
        p.add_le(a * 5 + b * 7 + c * 4 + d * 3, 14);
        let s = p.solve().unwrap();
        assert_eq!(s.objective(), Rational::from_int(21));
        assert_eq!(s.int_value(b), 1);
        assert_eq!(s.int_value(c), 1);
        assert_eq!(s.int_value(d), 1);
        assert_eq!(s.int_value(a), 0);
    }

    #[test]
    fn rounding_matters() {
        // max y, 2y ≤ 7 → LP gives 3.5, ILP must give 3.
        let mut p = Problem::maximize();
        let y = p.add_var("y").integer().build();
        p.set_objective(y);
        p.add_le(y * 2, 7);
        let s = p.solve().unwrap();
        assert_eq!(s.int_value(y), 3);
    }

    #[test]
    fn infeasible_integrality_gap() {
        // 2x = 1 has the LP solution x = 1/2 but no integer solution.
        let mut p = Problem::maximize();
        let x = p.add_var("x").integer().bounds(0, 10).build();
        p.set_objective(x);
        p.add_eq(x * 2, 1);
        assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn minimization_branches_correctly() {
        // min 3x + 4y s.t. x + 2y ≥ 5, 2x + y ≥ 4, integers.
        let mut p = Problem::minimize();
        let x = p.add_var("x").integer().build();
        let y = p.add_var("y").integer().build();
        p.set_objective(x * 3 + y * 4);
        p.add_ge(x + y * 2, 5);
        p.add_ge(x * 2 + y, 4);
        let s = p.solve().unwrap();
        // Candidates: (1,2)->11, (3,1)->13, (5,0)->15, (0,4)->16; optimum 11.
        assert_eq!(s.objective(), Rational::from_int(11));
    }

    #[test]
    fn mixed_integer_continuous() {
        // max x + y with x integer ≤ 2.5 constraint, y continuous ≤ 0.5.
        let mut p = Problem::maximize();
        let x = p.add_var("x").integer().build();
        let y = p.add_var("y").build();
        p.set_objective(x + y);
        p.add_le(x * 2, 5);
        p.add_le(y * 2, 1);
        let s = p.solve().unwrap();
        assert_eq!(s.int_value(x), 2);
        assert_eq!(s.value(y), Rational::new(1, 2));
        assert_eq!(s.objective(), Rational::new(5, 2));
    }

    /// Budget-style problems with huge magnitudes must solve in a few
    /// nodes thanks to floor pruning (this is the ILP-PTAC shape).
    #[test]
    fn large_magnitude_budget_solves_fast() {
        let mut p = Problem::maximize();
        let n1 = p.add_var("n1").integer().bounds(0, 2_000_000).build();
        let n2 = p.add_var("n2").integer().bounds(0, 2_000_000).build();
        let n3 = p.add_var("n3").integer().bounds(0, 2_000_000).build();
        p.set_objective(n1 * 16 + n2 * 16 + n3 * 11);
        p.add_le(n1 * 6 + n2 * 6 + n3 * 11, 3_421_242);
        p.add_le(n3 * 10, 8_345_056);
        p.set_node_limit(1_000);
        p.set_iteration_limit(100_000);
        let s = p.solve().unwrap();
        // Optimum: all budget on the 16/6 ratio vars: floor(3421242/6)=570207.
        assert_eq!(s.objective(), Rational::from_int(570207 * 16));
    }

    #[test]
    fn stats_reflect_the_search() {
        // LP-only problem: zero nodes, some pivots.
        let mut p = Problem::maximize();
        let x = p.add_var("x").build();
        p.set_objective(x);
        p.add_le(x * 2, 7);
        let (_, stats) = p.solve_with_stats().unwrap();
        assert_eq!(stats.nodes_explored, 0);
        assert!(stats.pivots > 0);

        // ILP with a fractional root: at least one node explored.
        let mut p = Problem::maximize();
        let y = p.add_var("y").integer().build();
        p.set_objective(y);
        p.add_le(y * 2, 7);
        let (sol, stats) = p.solve_with_stats().unwrap();
        assert_eq!(sol.int_value(y), 3);
        assert!(stats.nodes_explored >= 1);
        assert!(stats.incumbent_from_heuristic, "floor(3.5) = 3 is feasible");
    }

    #[test]
    fn node_limit_is_enforced() {
        // An infeasible-by-parity equality chain forces real branching
        // with no feasible rounding, so the node budget is consumed.
        let mut p = Problem::maximize();
        let vars: Vec<_> = (0..10)
            .map(|i| p.add_var(format!("v{i}")).integer().bounds(0, 9).build())
            .collect();
        let mut obj = crate::LinExpr::new();
        for v in &vars {
            obj += *v;
        }
        p.set_objective(obj.clone());
        // Σ 2v_i = 19 is unsatisfiable over integers but LP-feasible.
        p.add_eq(obj * 2, 19);
        p.set_node_limit(3);
        match p.solve() {
            Err(SolveError::BudgetExhausted { limit: 3, .. }) | Err(SolveError::Infeasible) => {}
            other => panic!("expected budget exhaustion or infeasible, got {other:?}"),
        }
    }
}
