//! Exact rational arithmetic over `i128`.
//!
//! The simplex engine in this crate pivots on [`Rational`] values so that
//! feasibility and optimality decisions are exact: no epsilon tuning, no
//! accumulation of floating-point error. Numerators and denominators are
//! kept reduced (via gcd) after every operation, and multiplications
//! pre-reduce cross factors, which keeps magnitudes small for the modest
//! problem sizes produced by the contention models.
//!
//! # Examples
//!
//! ```
//! use ilp::Rational;
//!
//! let a = Rational::new(1, 3);
//! let b = Rational::new(1, 6);
//! assert_eq!(a + b, Rational::new(1, 2));
//! assert!(a > b);
//! assert_eq!((a * b).to_string(), "1/18");
//! ```

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Greatest common divisor of two non-negative `i128` values.
fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// An exact rational number with `i128` numerator and denominator.
///
/// Invariants: the denominator is strictly positive and
/// `gcd(|numer|, denom) == 1`. Zero is represented as `0/1`.
///
/// # Panics
///
/// Arithmetic panics on `i128` overflow (after reduction). The linear
/// programs built by this workspace stay far below that range.
///
/// # Examples
///
/// ```
/// use ilp::Rational;
/// let half = Rational::new(2, 4);
/// assert_eq!(half.numer(), 1);
/// assert_eq!(half.denom(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    numer: i128,
    denom: i128,
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { numer: 0, denom: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { numer: 1, denom: 1 };

    /// Creates a reduced rational from a numerator and denominator.
    ///
    /// # Panics
    ///
    /// Panics if `denom == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilp::Rational;
    /// assert_eq!(Rational::new(6, -4), Rational::new(-3, 2));
    /// ```
    pub fn new(numer: i128, denom: i128) -> Self {
        assert!(denom != 0, "rational denominator must be non-zero");
        let sign = if denom < 0 { -1 } else { 1 };
        let g = gcd(numer.unsigned_abs() as i128, denom.unsigned_abs() as i128).max(1);
        Rational {
            numer: sign * numer / g,
            denom: sign * denom / g,
        }
    }

    /// Creates a rational from an integer.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilp::Rational;
    /// assert_eq!(Rational::from_int(7), Rational::new(7, 1));
    /// ```
    pub const fn from_int(n: i128) -> Self {
        Rational { numer: n, denom: 1 }
    }

    /// Returns the reduced numerator.
    pub const fn numer(&self) -> i128 {
        self.numer
    }

    /// Returns the reduced, strictly positive denominator.
    pub const fn denom(&self) -> i128 {
        self.denom
    }

    /// Returns `true` if this value is an integer.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilp::Rational;
    /// assert!(Rational::new(4, 2).is_integer());
    /// assert!(!Rational::new(1, 2).is_integer());
    /// ```
    pub const fn is_integer(&self) -> bool {
        self.denom == 1
    }

    /// Returns `true` if this value is zero.
    pub const fn is_zero(&self) -> bool {
        self.numer == 0
    }

    /// Returns `true` if this value is strictly positive.
    pub const fn is_positive(&self) -> bool {
        self.numer > 0
    }

    /// Returns `true` if this value is strictly negative.
    pub const fn is_negative(&self) -> bool {
        self.numer < 0
    }

    /// Largest integer less than or equal to this value.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilp::Rational;
    /// assert_eq!(Rational::new(7, 2).floor(), 3);
    /// assert_eq!(Rational::new(-7, 2).floor(), -4);
    /// ```
    pub const fn floor(&self) -> i128 {
        self.numer.div_euclid(self.denom)
    }

    /// Smallest integer greater than or equal to this value.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilp::Rational;
    /// assert_eq!(Rational::new(7, 2).ceil(), 4);
    /// assert_eq!(Rational::new(-7, 2).ceil(), -3);
    /// ```
    pub const fn ceil(&self) -> i128 {
        -((-self.numer).div_euclid(self.denom))
    }

    /// Absolute value.
    pub const fn abs(&self) -> Rational {
        Rational {
            numer: self.numer.abs(),
            denom: self.denom,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(self.numer != 0, "cannot invert zero");
        Rational::new(self.denom, self.numer)
    }

    /// Lossy conversion to `f64`, for reporting only.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilp::Rational;
    /// assert!((Rational::new(1, 4).to_f64() - 0.25).abs() < 1e-12);
    /// ```
    pub fn to_f64(&self) -> f64 {
        self.numer as f64 / self.denom as f64
    }

    /// Converts to an integer if the value is integral.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilp::Rational;
    /// assert_eq!(Rational::new(8, 2).to_integer(), Some(4));
    /// assert_eq!(Rational::new(1, 2).to_integer(), None);
    /// ```
    pub const fn to_integer(&self) -> Option<i128> {
        if self.denom == 1 {
            Some(self.numer)
        } else {
            None
        }
    }

    /// The fractional part `self - floor(self)`, in `[0, 1)`.
    pub fn fract(&self) -> Rational {
        *self - Rational::from_int(self.floor())
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denom == 1 {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

impl From<i128> for Rational {
    fn from(n: i128) -> Self {
        Rational::from_int(n)
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n as i128)
    }
}

impl From<u64> for Rational {
    fn from(n: u64) -> Self {
        Rational::from_int(n as i128)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::from_int(n as i128)
    }
}

impl From<u32> for Rational {
    fn from(n: u32) -> Self {
        Rational::from_int(n as i128)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d).
        let g = gcd(self.denom, rhs.denom);
        let l = self.denom / g * rhs.denom;
        Rational::new(
            self.numer * (l / self.denom) + rhs.numer * (l / rhs.denom),
            l,
        )
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce before multiplying to delay overflow.
        let g1 = gcd(self.numer.unsigned_abs() as i128, rhs.denom).max(1);
        let g2 = gcd(rhs.numer.unsigned_abs() as i128, self.denom).max(1);
        Rational::new(
            (self.numer / g1) * (rhs.numer / g2),
            (self.denom / g2) * (rhs.denom / g1),
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a · b⁻¹ by definition
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            numer: -self.numer,
            denom: self.denom,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Compare a/b vs c/d as a*d vs c*b (both denominators positive).
        (self.numer * other.denom).cmp(&(other.numer * self.denom))
    }
}

impl std::iter::Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ZERO, |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_reduces_and_normalizes_sign() {
        let r = Rational::new(-6, -4);
        assert_eq!(r.numer(), 3);
        assert_eq!(r.denom(), 2);
        let r = Rational::new(6, -4);
        assert_eq!(r.numer(), -3);
        assert_eq!(r.denom(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn new_rejects_zero_denominator() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn zero_is_canonical() {
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
        assert!(Rational::new(0, -17).is_zero());
        assert_eq!(Rational::new(0, -17).denom(), 1);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Rational::new(3, 7);
        let b = Rational::new(5, 11);
        assert_eq!(a + b - b, a);
        assert_eq!(a - a, Rational::ZERO);
    }

    #[test]
    fn mul_div_roundtrip() {
        let a = Rational::new(22, 7);
        let b = Rational::new(-5, 13);
        assert_eq!(a * b / b, a);
        assert_eq!(a / a, Rational::ONE);
    }

    #[test]
    fn ordering_matches_f64() {
        let vals = [
            Rational::new(1, 3),
            Rational::new(-1, 3),
            Rational::new(7, 2),
            Rational::ZERO,
            Rational::new(100, 3),
        ];
        for a in vals {
            for b in vals {
                assert_eq!(
                    a.cmp(&b),
                    a.to_f64().partial_cmp(&b.to_f64()).unwrap(),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn floor_ceil_negative_values() {
        assert_eq!(Rational::new(-1, 2).floor(), -1);
        assert_eq!(Rational::new(-1, 2).ceil(), 0);
        assert_eq!(Rational::new(5, 1).floor(), 5);
        assert_eq!(Rational::new(5, 1).ceil(), 5);
    }

    #[test]
    fn fract_in_unit_interval() {
        for (n, d) in [(7, 2), (-7, 2), (0, 1), (9, 4), (-9, 4)] {
            let f = Rational::new(n, d).fract();
            assert!(f >= Rational::ZERO && f < Rational::ONE, "{f}");
        }
    }

    #[test]
    fn display_integer_without_denominator() {
        assert_eq!(Rational::new(4, 2).to_string(), "2");
        assert_eq!(Rational::new(1, 2).to_string(), "1/2");
        assert_eq!(Rational::new(-3, 9).to_string(), "-1/3");
    }

    #[test]
    fn sum_of_thirds() {
        let s: Rational = (0..9).map(|_| Rational::new(1, 3)).sum();
        assert_eq!(s, Rational::from_int(3));
    }

    #[test]
    fn recip_inverts() {
        assert_eq!(Rational::new(3, 4).recip(), Rational::new(4, 3));
        assert_eq!(Rational::new(-3, 4).recip(), Rational::new(-4, 3));
    }

    #[test]
    #[should_panic(expected = "cannot invert zero")]
    fn recip_of_zero_panics() {
        let _ = Rational::ZERO.recip();
    }
}
